// Smock runtime: transfer cost model, CPU serialization, installation with
// code download, wiring, request routing, lookup service.
#include <gtest/gtest.h>

#include "runtime/lookup.hpp"
#include "runtime/smock.hpp"
#include "spec/builder.hpp"

namespace psf::runtime {
namespace {

struct EchoBody : MessageBody {
  std::string text;
};

// A component that answers requests directly or forwards them downstream.
class EchoComponent : public Component {
 public:
  void handle_request(const Request& request, ResponseCallback done) override {
    ++handled;
    if (request.op == "echo") {
      auto body = std::make_shared<EchoBody>();
      const auto* in = body_as<EchoBody>(request);
      body->text = in != nullptr ? in->text : "";
      Response response;
      response.body = body;
      response.wire_bytes = 64;
      done(std::move(response));
    } else if (request.op == "forward") {
      Request inner;
      inner.op = "echo";
      inner.body = request.body;
      inner.wire_bytes = request.wire_bytes;
      call("Down", std::move(inner), std::move(done));
    } else {
      done(Response::failure("unknown op"));
    }
  }

  int handled = 0;
};

struct RuntimeFixture : public ::testing::Test {
  RuntimeFixture() : runtime(sim, network) {
    net::Credentials secure;
    secure.set("secure", true);
    a = network.add_node("a", 1e6);
    b = network.add_node("b", 1e6);
    link = network.add_link(a, b, 8e6, sim::Duration::from_millis(100),
                            secure);

    spec = std::make_unique<spec::ServiceSpec>(
        spec::SpecBuilder("Echo")
            .interface("Api", {})
            .component("Echo")
            .implements("Api", {})
            .cpu_per_request(100)
            .code_size(100 * 1024)
            .done()
            .build());

    PSF_CHECK(runtime.factories()
                  .register_type("Echo",
                                 [] { return std::make_unique<EchoComponent>(); })
                  .is_ok());
  }

  RuntimeInstanceId install(net::NodeId node, net::NodeId origin) {
    RuntimeInstanceId out = 0;
    runtime.install(*spec->find_component("Echo"), node, {}, origin,
                    [&out](util::Expected<RuntimeInstanceId> id) {
                      ASSERT_TRUE(id.has_value()) << id.status().to_string();
                      out = *id;
                    });
    sim.run();
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  SmockRuntime runtime;
  net::NodeId a, b;
  net::LinkId link;
  std::unique_ptr<spec::ServiceSpec> spec;
};

TEST_F(RuntimeFixture, SendBytesChargesSerializationAndLatency) {
  sim::Time delivered;
  bool done = false;
  // 1 MB over 8 Mb/s = 1 s + 100 ms latency.
  runtime.send_bytes(a, b, 1'000'000, [&] {
    delivered = sim.now();
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(delivered.seconds(), 1.1, 1e-9);
  EXPECT_EQ(runtime.stats().messages_sent, 1u);
  EXPECT_EQ(runtime.stats().bytes_transferred, 1'000'000u);
}

TEST_F(RuntimeFixture, LocalDeliveryIsImmediate) {
  bool done = false;
  runtime.send_bytes(a, a, 1'000'000, [&] {
    EXPECT_EQ(sim.now(), sim::Time::zero());
    done = true;
  });
  EXPECT_TRUE(done);  // synchronous
}

TEST_F(RuntimeFixture, LinkContentionSerializesTransfers) {
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    runtime.send_bytes(a, b, 1'000'000,
                       [&] { arrivals.push_back(sim.now().seconds()); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Serializations queue: 1s, 2s, 3s (+0.1s latency each).
  EXPECT_NEAR(arrivals[0], 1.1, 1e-9);
  EXPECT_NEAR(arrivals[1], 2.1, 1e-9);
  EXPECT_NEAR(arrivals[2], 3.1, 1e-9);
}

TEST_F(RuntimeFixture, CpuChargesQueueFifo) {
  std::vector<double> completions;
  // 1e5 units at 1e6 units/s = 100 ms each.
  for (int i = 0; i < 3; ++i) {
    runtime.charge_cpu(a, 1e5,
                       [&] { completions.push_back(sim.now().millis()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[0], 100.0, 1e-6);
  EXPECT_NEAR(completions[1], 200.0, 1e-6);
  EXPECT_NEAR(completions[2], 300.0, 1e-6);
}

TEST_F(RuntimeFixture, InstallDownloadsCode) {
  // Code 100 KB from a to b over 8 Mb/s: ~102.4 ms + 100 ms latency.
  sim::Time finished;
  RuntimeInstanceId id = 0;
  runtime.install(*spec->find_component("Echo"), b, {}, a,
                  [&](util::Expected<RuntimeInstanceId> got) {
                    ASSERT_TRUE(got.has_value());
                    id = *got;
                    finished = sim.now();
                  });
  sim.run();
  ASSERT_NE(id, 0u);
  EXPECT_NEAR(finished.seconds(), 100.0 * 1024 * 8 / 8e6 + 0.1, 1e-6);
  EXPECT_EQ(runtime.instance(id).node, b);
  EXPECT_FALSE(runtime.instance(id).started);
}

TEST_F(RuntimeFixture, LocalInstallSkipsTransfer) {
  install(a, a);
  EXPECT_EQ(sim.now(), sim::Time::zero());
}

TEST_F(RuntimeFixture, InstallUnknownTypeFails) {
  spec::ServiceSpec other = spec::SpecBuilder("Other")
                                .interface("I", {})
                                .component("Ghost")
                                .implements("I", {})
                                .done()
                                .build();
  bool failed = false;
  runtime.install(*other.find_component("Ghost"), a, {}, a,
                  [&](util::Expected<RuntimeInstanceId> id) {
                    EXPECT_FALSE(id.has_value());
                    EXPECT_EQ(id.status().code(), util::ErrorCode::kNotFound);
                    failed = true;
                  });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(RuntimeFixture, StartStopLifecycle) {
  const RuntimeInstanceId id = install(a, a);
  EXPECT_TRUE(runtime.start(id).is_ok());
  EXPECT_FALSE(runtime.start(id).is_ok());  // double start
  EXPECT_TRUE(runtime.stop(id).is_ok());
  EXPECT_FALSE(runtime.stop(id).is_ok());
  EXPECT_TRUE(runtime.start(id).is_ok());  // restartable
  EXPECT_TRUE(runtime.uninstall(id).is_ok());
  EXPECT_FALSE(runtime.exists(id));
  EXPECT_EQ(runtime.uninstall(id).code(), util::ErrorCode::kNotFound);
}

TEST_F(RuntimeFixture, InvokeChargesNetworkAndCpu) {
  const RuntimeInstanceId id = install(b, b);
  ASSERT_TRUE(runtime.start(id).is_ok());

  Request request;
  request.op = "echo";
  request.wire_bytes = 1000;
  auto body = std::make_shared<EchoBody>();
  body->text = "hi";
  request.body = body;

  sim::Time completed;
  bool ok = false;
  runtime.invoke_from_node(a, id, std::move(request), [&](Response response) {
    ASSERT_TRUE(response.ok) << response.error;
    const auto* echoed = body_as<EchoBody>(response);
    ASSERT_NE(echoed, nullptr);
    EXPECT_EQ(echoed->text, "hi");
    completed = sim.now();
    ok = true;
  });
  sim.run();
  ASSERT_TRUE(ok);
  // Request: 1000B/8Mb/s = 1ms + 100ms; CPU 100us; response 64B + 100ms.
  const double expected =
      (1000.0 * 8 / 8e6) + 0.1 + 1e-4 + (64.0 * 8 / 8e6) + 0.1;
  EXPECT_NEAR(completed.seconds(), expected, 1e-6);
}

TEST_F(RuntimeFixture, CallFollowsWiresAndCountsStats) {
  const RuntimeInstanceId front = install(a, a);
  const RuntimeInstanceId back = install(b, b);
  ASSERT_TRUE(runtime.wire(front, "Down", back).is_ok());
  ASSERT_TRUE(runtime.start(front).is_ok());
  ASSERT_TRUE(runtime.start(back).is_ok());

  Request request;
  request.op = "forward";
  request.wire_bytes = 500;
  bool ok = false;
  runtime.invoke_from_node(a, front, std::move(request),
                           [&](Response response) {
                             EXPECT_TRUE(response.ok) << response.error;
                             ok = true;
                           });
  sim.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(runtime.instance(front).stats.requests_handled, 1u);
  EXPECT_EQ(runtime.instance(front).stats.requests_forwarded, 1u);
  EXPECT_EQ(runtime.instance(back).stats.requests_handled, 1u);
}

TEST_F(RuntimeFixture, UnwiredCallFails) {
  const RuntimeInstanceId front = install(a, a);
  ASSERT_TRUE(runtime.start(front).is_ok());
  Request request;
  request.op = "forward";
  bool failed = false;
  runtime.invoke_from_node(a, front, std::move(request),
                           [&](Response response) {
                             EXPECT_FALSE(response.ok);
                             failed = true;
                           });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(RuntimeFixture, CallToUninstalledInstanceFails) {
  const RuntimeInstanceId front = install(a, a);
  const RuntimeInstanceId back = install(b, b);
  ASSERT_TRUE(runtime.wire(front, "Down", back).is_ok());
  ASSERT_TRUE(runtime.start(front).is_ok());
  ASSERT_TRUE(runtime.start(back).is_ok());
  ASSERT_TRUE(runtime.uninstall(back).is_ok());

  Request request;
  request.op = "forward";
  bool failed = false;
  runtime.invoke_from_node(a, front, std::move(request),
                           [&](Response response) {
                             EXPECT_FALSE(response.ok);
                             failed = true;
                           });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(RuntimeFixture, RequestToStoppedInstanceFails) {
  const RuntimeInstanceId id = install(a, a);
  Request request;
  request.op = "echo";
  bool failed = false;
  runtime.invoke_from_node(a, id, std::move(request), [&](Response response) {
    EXPECT_FALSE(response.ok);
    failed = true;
  });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST_F(RuntimeFixture, InstancesOnFiltersByNode) {
  install(a, a);
  install(a, a);
  install(b, b);
  EXPECT_EQ(runtime.instances_on(a).size(), 2u);
  EXPECT_EQ(runtime.instances_on(b).size(), 1u);
  EXPECT_EQ(runtime.instance_count(), 3u);
}

// ---- lookup ----------------------------------------------------------

TEST(LookupTest, RegisterFindUnregister) {
  LookupService lookup(net::NodeId{0});
  ServiceAdvertisement ad;
  ad.service_name = "mail";
  ad.attributes = {{"kind", "mail"}, {"security", "high"}};
  ASSERT_TRUE(lookup.register_service(ad).is_ok());
  EXPECT_EQ(lookup.register_service(ad).code(),
            util::ErrorCode::kAlreadyExists);

  ASSERT_NE(lookup.find("mail"), nullptr);
  EXPECT_EQ(lookup.find("none"), nullptr);

  EXPECT_EQ(lookup.query({{"kind", "mail"}}).size(), 1u);
  EXPECT_EQ(lookup.query({{"kind", "mail"}, {"security", "high"}}).size(), 1u);
  EXPECT_TRUE(lookup.query({{"kind", "storage"}}).empty());
  EXPECT_EQ(lookup.query({}).size(), 1u);  // empty filter matches all

  ASSERT_TRUE(lookup.unregister_service("mail").is_ok());
  EXPECT_EQ(lookup.unregister_service("mail").code(),
            util::ErrorCode::kNotFound);
}

TEST(LookupTest, EmptyNameRejected) {
  LookupService lookup(net::NodeId{0});
  ServiceAdvertisement ad;
  EXPECT_EQ(lookup.register_service(ad).code(),
            util::ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace psf::runtime
