// Fig. 7 machinery: each scenario runs end-to-end, mail actually flows
// (sends succeed, receives return decrypted mail), and the latency ordering
// the paper reports holds:
//   {SF, SS0, DF, DS0}  <  {SS1000, DS1000}  <  {SS500, DS500}  <<  {SS}
// with dynamic ≈ static inside each group.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"

namespace psf {
namespace {

using core::Scenario;
using core::ScenarioResult;
using core::WorkloadParams;

WorkloadParams quick_params() {
  WorkloadParams p;
  p.sends = 40;
  p.receives = 4;
  return p;
}

class ScenarioSmoke : public ::testing::TestWithParam<Scenario> {};

TEST_P(ScenarioSmoke, RunsCleanlyWithOneClient) {
  ScenarioResult r = core::run_scenario(GetParam(), 1, quick_params());
  EXPECT_EQ(r.workload.sends_failed, 0u) << core::scenario_name(GetParam());
  EXPECT_EQ(r.workload.receives_failed, 0u);
  EXPECT_EQ(r.workload.sends_ok, 40u);
  EXPECT_EQ(r.workload.receives_ok, 4u);
  EXPECT_GT(r.workload.messages_received, 0u);
  EXPECT_EQ(r.workload.plaintext_mismatches, 0u);
  EXPECT_GT(r.mean_send_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioSmoke,
    ::testing::ValuesIn(core::kAllScenarios),
    [](const ::testing::TestParamInfo<Scenario>& param_info) {
      return core::scenario_name(param_info.param);
    });

TEST(ScenarioOrdering, PaperGroupsHold) {
  const WorkloadParams params;  // full paper workload: 100 sends, 10 receives
  auto mean = [&](Scenario s) {
    return core::run_scenario(s, /*clients=*/2, params).mean_send_ms;
  };

  const double df = mean(Scenario::kDF);
  const double ds0 = mean(Scenario::kDS0);
  const double ds500 = mean(Scenario::kDS500);
  const double ds1000 = mean(Scenario::kDS1000);
  const double sf = mean(Scenario::kSF);
  const double ss0 = mean(Scenario::kSS0);
  const double ss500 = mean(Scenario::kSS500);
  const double ss1000 = mean(Scenario::kSS1000);
  const double ss = mean(Scenario::kSS);

  // Group 1 fastest; SS slowest by a large factor.
  for (double fast : {df, ds0, sf, ss0}) {
    EXPECT_LT(fast, ds1000);
    EXPECT_LT(fast, ss1000);
    EXPECT_LT(fast * 10.0, ss)
        << "caching must beat the naive slow-link deployment by an order of "
           "magnitude";
  }
  // More frequent propagation costs more.
  EXPECT_LT(ds1000, ds500);
  EXPECT_LT(ss1000, ss500);
  // Group 3 still clearly beats SS.
  EXPECT_LT(ds500, ss);
  EXPECT_LT(ss500, ss);

  // Dynamic deployments track their static counterparts (paper: "virtually
  // indistinguishable"); allow 50% slack on scales that differ by 10x+
  // between groups.
  EXPECT_NEAR(df, sf, 0.5 * std::max(df, sf));
  EXPECT_NEAR(ds0, ss0, 0.5 * std::max(ds0, ss0));
  EXPECT_NEAR(ds500, ss500, 0.5 * std::max(ds500, ss500));
  EXPECT_NEAR(ds1000, ss1000, 0.5 * std::max(ds1000, ss1000));
}

}  // namespace
}  // namespace psf
