// Mini-dRBAC trust engine: assertions, delegation chains, authority checks,
// value capping, revocation and expiry.
#include <gtest/gtest.h>

#include "trust/trust_graph.hpp"

namespace psf::trust {
namespace {

TrustCredential assertion(Principal issuer, Principal subject, Role role,
                          std::optional<std::int64_t> value = std::nullopt,
                          bool delegatable = false) {
  TrustCredential c;
  c.kind = CredentialKind::kAssertion;
  c.issuer = std::move(issuer);
  c.subject = std::move(subject);
  c.granted = std::move(role);
  c.value = value;
  c.delegatable = delegatable;
  return c;
}

TrustCredential delegation(Principal issuer, Role granted, Role via,
                           std::optional<std::int64_t> value = std::nullopt) {
  TrustCredential c;
  c.kind = CredentialKind::kDelegation;
  c.issuer = std::move(issuer);
  c.granted = std::move(granted);
  c.via = std::move(via);
  c.value = value;
  return c;
}

const Role kTrust{"mail", "TrustLevel"};
const Role kPartner{"partner", "Member"};

TEST(TrustGraphTest, OwnerAssertionGrantsRole) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.add(assertion("MailCA", "node-ny", kTrust, 5));
  EXPECT_EQ(g.role_value("node-ny", kTrust), 5);
  EXPECT_FALSE(g.role_value("node-other", kTrust).has_value());
}

TEST(TrustGraphTest, NonOwnerAssertionIsIgnored) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.add(assertion("Mallory", "node-x", kTrust, 5));
  EXPECT_FALSE(g.role_value("node-x", kTrust).has_value());
}

TEST(TrustGraphTest, DelegatableHolderCanGrant) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  // MailCA grants the branch admin TrustLevel 4, delegatable.
  g.add(assertion("MailCA", "BranchAdmin", kTrust, 4, /*delegatable=*/true));
  // The branch admin asserts trust for its nodes.
  g.add(assertion("BranchAdmin", "node-sd", kTrust, 4));
  EXPECT_EQ(g.role_value("node-sd", kTrust), 4);
}

TEST(TrustGraphTest, DelegatedGrantCappedAtHolderValue) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.add(assertion("MailCA", "BranchAdmin", kTrust, 4, /*delegatable=*/true));
  // Branch admin tries to grant more than it holds.
  g.add(assertion("BranchAdmin", "node-sd", kTrust, 5));
  EXPECT_EQ(g.role_value("node-sd", kTrust), 4);  // capped
}

TEST(TrustGraphTest, NonDelegatableHolderCannotGrant) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.add(assertion("MailCA", "Peon", kTrust, 4, /*delegatable=*/false));
  g.add(assertion("Peon", "node-x", kTrust, 4));
  EXPECT_FALSE(g.role_value("node-x", kTrust).has_value());
}

TEST(TrustGraphTest, CrossNamespaceDelegation) {
  // The §6 scenario: partner-organization membership translates into a
  // (weaker) mail trust level via a delegation credential.
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.declare_namespace("partner", "PartnerCA");
  g.add(assertion("PartnerCA", "node-sea", kPartner));
  g.add(delegation("MailCA", kTrust, kPartner, /*value=*/2));
  EXPECT_EQ(g.role_value("node-sea", kTrust), 2);
  // A node without partner membership gains nothing.
  EXPECT_FALSE(g.role_value("node-x", kTrust).has_value());
}

TEST(TrustGraphTest, DelegationRequiresAuthorizedIssuer) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.declare_namespace("partner", "PartnerCA");
  g.add(assertion("PartnerCA", "node-sea", kPartner));
  // PartnerCA cannot delegate into the mail namespace.
  g.add(delegation("PartnerCA", kTrust, kPartner, 5));
  EXPECT_FALSE(g.role_value("node-sea", kTrust).has_value());
}

TEST(TrustGraphTest, ChainedDelegations) {
  TrustGraph g;
  g.declare_namespace("a", "A");
  g.declare_namespace("b", "B");
  g.declare_namespace("c", "C");
  const Role ra{"a", "R"}, rb{"b", "R"}, rc{"c", "R"};
  g.add(assertion("A", "p", ra, 9));
  g.add(delegation("B", rb, ra, 7));
  g.add(delegation("C", rc, rb));
  EXPECT_EQ(g.role_value("p", rb), 7);
  EXPECT_EQ(g.role_value("p", rc), 7);  // inherits the capped value
}

TEST(TrustGraphTest, MultipleGrantsTakeMaximum) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.add(assertion("MailCA", "node", kTrust, 2));
  g.add(assertion("MailCA", "node", kTrust, 4));
  EXPECT_EQ(g.role_value("node", kTrust), 4);
}

TEST(TrustGraphTest, RevocationRemovesDerivedRoles) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  g.declare_namespace("partner", "PartnerCA");
  const std::uint64_t membership =
      g.add(assertion("PartnerCA", "node-sea", kPartner));
  g.add(delegation("MailCA", kTrust, kPartner, 2));
  ASSERT_EQ(g.role_value("node-sea", kTrust), 2);

  int notifications = 0;
  g.add_revocation_observer(
      [&notifications](const TrustCredential&) { ++notifications; });
  ASSERT_TRUE(g.revoke(membership).is_ok());
  EXPECT_EQ(notifications, 1);
  // Both the membership and everything derived from it are gone.
  EXPECT_FALSE(g.role_value("node-sea", kPartner).has_value());
  EXPECT_FALSE(g.role_value("node-sea", kTrust).has_value());
}

TEST(TrustGraphTest, RevokeErrors) {
  TrustGraph g;
  EXPECT_EQ(g.revoke(99).code(), util::ErrorCode::kNotFound);
  g.declare_namespace("mail", "MailCA");
  const auto id = g.add(assertion("MailCA", "n", kTrust, 1));
  ASSERT_TRUE(g.revoke(id).is_ok());
  EXPECT_EQ(g.revoke(id).code(), util::ErrorCode::kFailedPrecondition);
}

TEST(TrustGraphTest, ExpiryHonored) {
  TrustGraph g;
  g.declare_namespace("mail", "MailCA");
  TrustCredential c = assertion("MailCA", "node", kTrust, 3);
  c.not_after = sim::Time::zero() + sim::Duration::from_seconds(10);
  g.add(c);
  EXPECT_EQ(g.role_value("node", kTrust, sim::Time::zero()), 3);
  EXPECT_EQ(g.role_value(
                "node", kTrust,
                sim::Time::zero() + sim::Duration::from_seconds(11))
                .has_value(),
            false);
}

TEST(TrustGraphTest, DelegationCycleTerminates) {
  TrustGraph g;
  g.declare_namespace("a", "A");
  g.declare_namespace("b", "B");
  const Role ra{"a", "R"}, rb{"b", "R"};
  g.add(delegation("A", ra, rb));
  g.add(delegation("B", rb, ra));
  g.add(assertion("A", "p", ra, 3));
  // Must not loop forever; p holds both roles at 3.
  EXPECT_EQ(g.role_value("p", ra), 3);
  EXPECT_EQ(g.role_value("p", rb), 3);
}

TEST(TrustGraphTest, ValuelessRoleDefaultsToOne) {
  TrustGraph g;
  g.declare_namespace("partner", "PartnerCA");
  g.add(assertion("PartnerCA", "n", kPartner));
  EXPECT_EQ(g.role_value("n", kPartner), 1);
}

}  // namespace
}  // namespace psf::trust
