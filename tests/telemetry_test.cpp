// Telemetry: deterministic busy-time accounting and windowed utilization.
#include <gtest/gtest.h>

#include "runtime/telemetry.hpp"

namespace psf::runtime {
namespace {

struct TelemetryFixture : public ::testing::Test {
  TelemetryFixture() : runtime(sim, network) {
    a = network.add_node("a", 1e6);
    b = network.add_node("b", 1e6);
    link = network.add_link(a, b, 8e6, sim::Duration::from_millis(10));
  }

  sim::Simulator sim;
  net::Network network;
  SmockRuntime runtime;
  net::NodeId a, b;
  net::LinkId link;
};

TEST_F(TelemetryFixture, BusySecondsAccumulateExactly) {
  // Three 1 MB transfers over 8 Mb/s: 1 s of serialization each.
  for (int i = 0; i < 3; ++i) {
    runtime.send_bytes(a, b, 1'000'000, [] {});
  }
  sim.run();
  EXPECT_NEAR(runtime.link_busy_seconds(link), 3.0, 1e-9);

  // 2e5 cpu units at 1e6 units/s = 0.2 s.
  runtime.charge_cpu(a, 2e5, [] {});
  runtime.charge_cpu(a, 2e5, [] {});
  sim.run();
  EXPECT_NEAR(runtime.node_busy_seconds(a), 0.4, 1e-9);
  EXPECT_NEAR(runtime.node_busy_seconds(b), 0.0, 1e-9);
}

TEST_F(TelemetryFixture, WindowedUtilization) {
  Telemetry telemetry(runtime, sim::Duration::from_seconds(1));
  telemetry.start();

  // Saturate the link for the first two windows: 2 MB at 8 Mb/s = 2 s.
  runtime.send_bytes(a, b, 2'000'000, [] {});
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(4));
  telemetry.stop();

  EXPECT_EQ(telemetry.samples(), 4u);
  const auto links = telemetry.link_usage();
  ASSERT_EQ(links.size(), 1u);
  // 2 s busy across 4 windows => 50% mean. Busy time is committed at
  // reservation, so the whole 2 s lands in window 1 (200% = backlog).
  EXPECT_NEAR(links[0].mean_utilization, 0.5, 1e-9);
  EXPECT_NEAR(links[0].peak_utilization, 2.0, 1e-6);
  EXPECT_NEAR(links[0].busy_seconds, 2.0, 1e-9);
}

TEST_F(TelemetryFixture, BacklogShowsUtilizationAboveOne) {
  Telemetry telemetry(runtime, sim::Duration::from_seconds(1));
  telemetry.start();
  // Submit 5 s of work in one instant: the first window records 5x.
  runtime.send_bytes(a, b, 5'000'000, [] {});
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(1));
  telemetry.stop();
  const auto links = telemetry.link_usage();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_GT(links[0].peak_utilization, 1.0);
}

TEST_F(TelemetryFixture, ReportListsBusiestResources) {
  Telemetry telemetry(runtime, sim::Duration::from_millis(100));
  telemetry.start();
  runtime.send_bytes(a, b, 500'000, [] {});
  runtime.charge_cpu(a, 1e5, [] {});
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(1));
  telemetry.stop();
  const std::string report = telemetry.report();
  EXPECT_NE(report.find("node cpu utilization"), std::string::npos);
  EXPECT_NE(report.find("link utilization"), std::string::npos);
  EXPECT_NE(report.find("a<->b"), std::string::npos);
}

TEST_F(TelemetryFixture, PlanCacheCountersRenderInReport) {
  PlanCacheTelemetry cache;
  cache.hits = 7;
  cache.misses = 2;
  cache.coalesced = 5;
  cache.invalidations = 3;
  cache.stale_epoch_evictions = 1;
  cache.liveness_evictions = 1;
  cache.capacity_evictions = 1;
  cache.epoch_bumps = 4;
  cache.inserts = 2;
  cache.cold_access_ms.add(120.0);
  cache.cold_access_ms.add(80.0);
  for (int i = 0; i < 7; ++i) cache.warm_access_ms.add(0.0);

  Telemetry telemetry(runtime, sim::Duration::from_seconds(1));
  telemetry.attach_plan_cache(&cache);
  telemetry.start();
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(1));
  telemetry.stop();

  const std::string report = telemetry.report();
  EXPECT_NE(report.find("plan cache"), std::string::npos);
  EXPECT_NE(report.find("hits 7 misses 2 coalesced 5 invalidations 3"),
            std::string::npos);
  EXPECT_NE(report.find("stale-epoch 1 liveness 1 capacity 1"),
            std::string::npos);
  EXPECT_NE(report.find("epoch bumps 4"), std::string::npos);
  EXPECT_NE(report.find("cold access (plan+deploy): n=2"), std::string::npos);
  EXPECT_NE(report.find("warm access (plan+deploy): n=7"), std::string::npos);

  // The standalone report carries the latency histogram line for each
  // distribution (log-decade buckets).
  const std::string cache_report = cache.report();
  EXPECT_NE(cache_report.find("<=1000ms:1"), std::string::npos)  // 120 ms
      << cache_report;
  EXPECT_NE(cache_report.find("<=0.01ms:7"), std::string::npos)  // warm zeros
      << cache_report;
}

TEST_F(TelemetryFixture, ReportWithoutPlanCacheOmitsSection) {
  Telemetry telemetry(runtime, sim::Duration::from_seconds(1));
  telemetry.start();
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(1));
  telemetry.stop();
  EXPECT_EQ(telemetry.report().find("plan cache"), std::string::npos);
}

TEST_F(TelemetryFixture, IdleResourcesReportZero) {
  Telemetry telemetry(runtime, sim::Duration::from_millis(100));
  telemetry.start();
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(1));
  telemetry.stop();
  for (const auto& usage : telemetry.node_usage()) {
    EXPECT_EQ(usage.mean_utilization, 0.0) << usage.name;
  }
}

}  // namespace
}  // namespace psf::runtime
