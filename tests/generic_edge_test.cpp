// Generic server pool-management edges: forget/release error paths, load
// floors, quarantine interactions, and deployment-engine failure surfaces.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "runtime/deployment.hpp"

namespace psf {
namespace {

struct GenericEdgeFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
};

TEST_F(GenericEdgeFixture, ForgetInstanceErrors) {
  EXPECT_EQ(fw->server().forget_instance("NoService", 1).code(),
            util::ErrorCode::kNotFound);
  EXPECT_EQ(fw->server().forget_instance("SecureMail", 424242).code(),
            util::ErrorCode::kNotFound);

  // Forgetting the real MailServer removes it from the pool (the runtime
  // instance keeps running).
  const auto& pool = fw->server().existing_instances("SecureMail");
  ASSERT_EQ(pool.size(), 1u);
  const auto id = pool[0].runtime_id;
  ASSERT_TRUE(fw->server().forget_instance("SecureMail", id).is_ok());
  EXPECT_TRUE(fw->server().existing_instances("SecureMail").empty());
  EXPECT_TRUE(fw->runtime().exists(id));
  // Second forget fails.
  EXPECT_EQ(fw->server().forget_instance("SecureMail", id).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(GenericEdgeFixture, ReleaseLoadFloorsAtZero) {
  const auto& pool = fw->server().existing_instances("SecureMail");
  ASSERT_EQ(pool.size(), 1u);
  const auto id = pool[0].runtime_id;
  EXPECT_EQ(fw->server().release_load("SecureMail", id, 1e9).code(),
            util::ErrorCode::kOk);
  EXPECT_EQ(fw->server().existing_instances("SecureMail")[0].current_load_rps,
            0.0);
  EXPECT_EQ(fw->server().release_load("NoService", id, 1.0).code(),
            util::ErrorCode::kNotFound);
  EXPECT_EQ(fw->server().release_load("SecureMail", 999999, 1.0).code(),
            util::ErrorCode::kNotFound);
}

TEST_F(GenericEdgeFixture, RefreshOnUnknownServiceFails) {
  EXPECT_EQ(fw->server().refresh_environment("NoService").code(),
            util::ErrorCode::kNotFound);
}

TEST_F(GenericEdgeFixture, AccessorsOnUnknownServiceAreNull) {
  EXPECT_EQ(fw->server().service_spec("NoService"), nullptr);
  EXPECT_EQ(fw->server().environment("NoService"), nullptr);
  EXPECT_TRUE(fw->server().existing_instances("NoService").empty());
}

TEST_F(GenericEdgeFixture, DeploymentEngineRejectsVanishedReuse) {
  // Build a plan that reuses the MailServer, then forget + crash it before
  // deploying: the engine must fail cleanly.
  const auto* spec = fw->server().service_spec("SecureMail");
  const auto* env = fw->server().environment("SecureMail");
  planner::Planner planner(*spec, *env);
  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.required_properties.emplace_back("TrustLevel",
                                           spec::PropertyValue::integer(4));
  request.client_node = sites.ny_client;
  request.request_rate_rps = 10.0;
  auto plan =
      planner.plan(request, fw->server().existing_instances("SecureMail"));
  ASSERT_TRUE(plan.has_value());

  fw->fail_node(sites.mail_home);

  runtime::DeploymentEngine engine(fw->runtime());
  util::Status result = util::Status::ok();
  bool done = false;
  engine.deploy(*plan, sites.mail_home,
                [&](util::Expected<runtime::DeployedPlan> deployed) {
                  result = deployed.status();
                  done = true;
                });
  fw->run_until_condition([&done]() { return done; },
                          sim::Duration::from_seconds(60));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), util::ErrorCode::kNotFound);
}

TEST_F(GenericEdgeFixture, RequestAccessForwardsPlannerRejections) {
  planner::PlanRequest request;
  request.interface_name = "NoSuchInterface";
  request.client_node = sites.ny_client;
  util::Status status = util::Status::ok();
  bool done = false;
  fw->server().request_access(
      "SecureMail", request,
      [&](util::Expected<runtime::AccessOutcome> outcome) {
        status = outcome.status();
        done = true;
      });
  fw->run_until_condition([&done]() { return done; },
                          sim::Duration::from_seconds(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(status.code(), util::ErrorCode::kNotFound);
}

TEST_F(GenericEdgeFixture, OutcomeInstancesAlignWithPlacements) {
  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.required_properties.emplace_back("TrustLevel",
                                           spec::PropertyValue::integer(4));
  request.client_node = sites.sd_client;
  request.request_rate_rps = 10.0;
  util::Expected<runtime::AccessOutcome> result =
      util::internal_error("pending");
  bool done = false;
  fw->server().request_access(
      "SecureMail", request,
      [&](util::Expected<runtime::AccessOutcome> outcome) {
        result = std::move(outcome);
        done = true;
      });
  fw->run_until_condition([&done]() { return done; },
                          sim::Duration::from_seconds(120));
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  ASSERT_EQ(result->instances.size(), result->plan.placements.size());
  for (std::size_t i = 0; i < result->instances.size(); ++i) {
    ASSERT_TRUE(fw->runtime().exists(result->instances[i])) << i;
    const auto& inst = fw->runtime().instance(result->instances[i]);
    EXPECT_EQ(inst.def, result->plan.placements[i].component);
    EXPECT_EQ(inst.node, result->plan.placements[i].node);
  }
  EXPECT_EQ(result->instances[result->plan.entry], result->entry);
}

}  // namespace
}  // namespace psf
