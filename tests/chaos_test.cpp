// Chaos-readiness: deterministic fault injection (link/node state, loss,
// partitions, FaultPlan replay), transported delivery errors and invoke
// deadlines, lease-based partition detection with recovery, and the client
// retry/rebind policy bridging injected faults.
#include <gtest/gtest.h>

#include <vector>

#include "core/case_study.hpp"
#include "core/fault_plan.hpp"
#include "core/framework.hpp"
#include "core/workload.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"

namespace psf {
namespace {

struct ChaosFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    fw->enable_adaptation("SecureMail");
  }

  planner::PlanRequest request_for(std::int64_t trust) {
    planner::PlanRequest d;
    d.interface_name = "ClientInterface";
    d.required_properties.emplace_back("TrustLevel",
                                       spec::PropertyValue::integer(trust));
    d.request_rate_rps = 25.0;
    return d;
  }

  std::unique_ptr<runtime::GenericProxy> bind_ok(net::NodeId node,
                                                 std::int64_t trust) {
    auto proxy = fw->make_proxy(node, "SecureMail", request_for(trust));
    util::Status status = util::internal_error("incomplete");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(300));
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return proxy;
  }

  runtime::Request receive_request(const std::string& user, bool high) {
    auto body = std::make_shared<mail::ReceiveBody>();
    body->user = user;
    body->max_messages = 16;
    body->include_high_sensitivity = high;
    runtime::Request request;
    request.op = mail::ops::kReceive;
    request.body = body;
    request.wire_bytes = 256;
    request.principal = user;
    return request;
  }

  net::LinkId wan(net::NodeId a, net::NodeId b) {
    auto link = fw->network().link_between(a, b);
    EXPECT_TRUE(link.has_value());
    return *link;
  }

  std::vector<net::NodeId> sd_side() { return sites.san_diego; }
  std::vector<net::NodeId> other_side() {
    std::vector<net::NodeId> out = sites.new_york;
    out.insert(out.end(), sites.seattle.begin(), sites.seattle.end());
    return out;
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
};

TEST_F(ChaosFixture, LinkFailureReroutesAndHealRestores) {
  const net::NodeId ny0 = sites.new_york[0];
  const net::NodeId sd0 = sites.san_diego[0];
  const net::LinkId sd_ny = wan(ny0, sd0);

  ASSERT_NEAR(fw->network().cached_route(ny0, sd0)->total_latency.millis(),
              100.0, 1e-9);

  fw->monitor().fail_link(sd_ny);
  // Traffic detours over the Seattle triangle leg: 400 ms + 200 ms.
  EXPECT_FALSE(fw->network().link_up(sd_ny));
  EXPECT_NEAR(fw->network().cached_route(ny0, sd0)->total_latency.millis(),
              600.0, 1e-9);

  fw->monitor().heal_link(sd_ny);
  EXPECT_NEAR(fw->network().cached_route(ny0, sd0)->total_latency.millis(),
              100.0, 1e-9);
}

TEST_F(ChaosFixture, PartitionSeversExactlyTheCrossingLinks) {
  auto severed = fw->monitor().partition(sd_side(), other_side());
  // Both San Diego WAN legs (to New York and to Seattle) cross the cut.
  EXPECT_EQ(severed.size(), 2u);
  EXPECT_FALSE(
      fw->network().route(sites.ny_client, sites.sd_client).has_value());
  EXPECT_FALSE(
      fw->network().route(sites.sea_client, sites.sd_client).has_value());
  // Intra-partition routes survive on both sides.
  EXPECT_TRUE(
      fw->network().route(sites.san_diego[0], sites.sd_client).has_value());
  EXPECT_TRUE(
      fw->network().route(sites.ny_client, sites.sea_client).has_value());

  for (net::LinkId link : severed) fw->monitor().heal_link(link);
  EXPECT_TRUE(
      fw->network().route(sites.ny_client, sites.sd_client).has_value());
}

TEST_F(ChaosFixture, LossDrawsAreSeededAndDeterministic) {
  const net::LinkId sd_ny = wan(sites.new_york[0], sites.san_diego[0]);
  auto run_once = [&](std::uint64_t seed) {
    auto outcome = std::make_pair(0, 0);  // delivered, dropped
    fw->runtime().set_fault_seed(seed);
    fw->monitor().set_link_loss(sd_ny, 0.5);
    for (int i = 0; i < 32; ++i) {
      fw->runtime().send_bytes(
          sites.ny_client, sites.sd_client, 1024,
          [&outcome]() { ++outcome.first; },
          [&outcome](runtime::TransportError) { ++outcome.second; });
    }
    fw->run_for(sim::Duration::from_seconds(5));
    fw->monitor().set_link_loss(sd_ny, 0.0);
    return outcome;
  };

  const auto first = run_once(7);
  const auto replay = run_once(7);
  EXPECT_EQ(first, replay);  // same seed, bit-identical draws
  EXPECT_EQ(first.first + first.second, 32);
  EXPECT_GT(first.first, 0);   // some got through
  EXPECT_GT(first.second, 0);  // some were lost
}

TEST_F(ChaosFixture, InvokeDeadlineCompletesWithTimeout) {
  auto proxy = bind_ok(sites.sd_client, 4);
  // Find the San Diego view: a cross-WAN call to it from New York takes at
  // least the 100 ms propagation delay, so a 1 ms deadline must fire first.
  runtime::RuntimeInstanceId view = 0;
  bool found = false;
  for (auto id : proxy->outcome().instances) {
    const auto& inst = fw->runtime().instance(id);
    if (inst.def->name == "ViewMailServer") {
      view = id;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  config->keys->provision_user("carol", mail::kMaxSensitivity);
  runtime::Response final_response;
  bool done = false;
  fw->runtime().invoke_from_node(sites.ny_client, view,
                                 receive_request("carol", false),
                                 [&](runtime::Response r) {
                                   final_response = r;
                                   done = true;
                                 },
                                 sim::Duration::from_millis(1));
  fw->run_until_condition([&done]() { return done; },
                          sim::Duration::from_seconds(10));
  ASSERT_TRUE(done);
  EXPECT_FALSE(final_response.ok);
  EXPECT_EQ(final_response.transport, runtime::TransportError::kTimeout);
  EXPECT_EQ(fw->runtime().stats().invoke_timeouts, 1u);
  // The late real response must not fire the callback a second time.
  fw->run_for(sim::Duration::from_seconds(5));
}

TEST_F(ChaosFixture, LeaseExpiresUnderPartitionAndRecoversOnHeal) {
  auto& lease = fw->enable_failure_detection();
  auto severed = fw->monitor().partition(sd_side(), other_side());
  ASSERT_EQ(severed.size(), 2u);

  // Every San Diego lease expires: heartbeats cannot reach the registry.
  const bool expired = fw->run_until_condition(
      [&]() { return lease.expirations().size() >= sites.san_diego.size(); },
      sim::Duration::from_seconds(30));
  ASSERT_TRUE(expired);
  for (net::NodeId node : sites.san_diego) {
    EXPECT_FALSE(lease.lease_active(node));
  }
  EXPECT_TRUE(lease.lease_active(sites.ny_client));
  EXPECT_TRUE(lease.lease_active(sites.sea_client));

  // Heal: renewals resume, the leases reactivate (crash and partition are
  // indistinguishable to the detector, but only a partition can recover).
  for (net::LinkId link : severed) fw->monitor().heal_link(link);
  const bool recovered = fw->run_until_condition(
      [&]() { return lease.recoveries() >= sites.san_diego.size(); },
      sim::Duration::from_seconds(30));
  ASSERT_TRUE(recovered);
  for (net::NodeId node : sites.san_diego) {
    EXPECT_TRUE(lease.lease_active(node));
  }
}

TEST_F(ChaosFixture, RetryBridgesAPartitionWindow) {
  config->keys->provision_user("dave", mail::kMaxSensitivity);
  auto plain = bind_ok(sites.sd_client, 4);
  auto resilient = bind_ok(sites.sd_client, 4);
  runtime::RetryPolicy policy;
  policy.attempt_timeout = sim::Duration::from_millis(400);
  policy.backoff_base = sim::Duration::from_millis(100);
  policy.backoff_cap = sim::Duration::from_millis(400);
  policy.max_attempts = 12;
  policy.rebind_on_unreachable = false;  // the binding survives a partition
  resilient->enable_retries(policy, &fw->retry_telemetry());

  auto severed = fw->monitor().partition(sd_side(), other_side());

  // Without retries the cross-WAN receive (high sensitivity is always
  // forwarded past the view) fails fast with a transported error once its
  // forward hop finds no route.
  runtime::Response plain_response;
  bool plain_done = false;
  plain->invoke(receive_request("dave", true), [&](runtime::Response r) {
    plain_response = r;
    plain_done = true;
  });
  fw->run_until_condition([&]() { return plain_done; },
                          sim::Duration::from_seconds(10));
  ASSERT_TRUE(plain_done);
  EXPECT_FALSE(plain_response.ok);
  EXPECT_NE(plain_response.transport, runtime::TransportError::kNone);

  // With retries the same call rides out the 1 s window.
  runtime::Response retry_response;
  bool retry_done = false;
  resilient->invoke(receive_request("dave", true), [&](runtime::Response r) {
    retry_response = r;
    retry_done = true;
  });
  fw->simulator().schedule(sim::Duration::from_seconds(1), [&]() {
    for (net::LinkId link : severed) fw->monitor().heal_link(link);
  });
  fw->run_until_condition([&]() { return retry_done; },
                          sim::Duration::from_seconds(60));
  ASSERT_TRUE(retry_done);
  EXPECT_TRUE(retry_response.ok) << retry_response.error;
  EXPECT_GE(fw->retry_telemetry().retries, 1u);
  EXPECT_GE(fw->retry_telemetry().successes, 1u);
}

TEST_F(ChaosFixture, RebindRecoversFromUpstreamCrash) {
  // The Seattle chain relays through San Diego's view; crashing its host
  // leaves the Seattle client holding a dead wire. The retry policy's
  // rebind path must replan around the loss without any oracle report.
  config->keys->provision_user("erin", mail::kMaxSensitivity);
  bind_ok(sites.sd_client, 4);  // deploys the San Diego view
  auto proxy = bind_ok(sites.sea_client, 2);
  runtime::RetryPolicy policy;
  policy.attempt_timeout = sim::Duration::from_seconds(20);
  policy.backoff_base = sim::Duration::from_millis(200);
  policy.max_attempts = 8;
  proxy->enable_retries(policy, &fw->retry_telemetry());

  fw->crash_node(sites.sd_client);  // silent: nobody is told

  // High sensitivity forces the Seattle view to forward upstream — straight
  // into the dead San Diego wire.
  runtime::Response response;
  bool done = false;
  proxy->invoke(receive_request("erin", true), [&](runtime::Response r) {
    response = r;
    done = true;
  });
  fw->run_until_condition([&]() { return done; },
                          sim::Duration::from_seconds(300));
  ASSERT_TRUE(done);
  EXPECT_TRUE(response.ok) << response.error << " (transport "
                           << runtime::transport_error_name(response.transport)
                           << ", attempts " << fw->retry_telemetry().attempts
                           << ")";
  EXPECT_GE(fw->retry_telemetry().rebinds, 1u);
}

// Two identical worlds driven by the same FaultPlan seed must agree on every
// counter — the replayability contract chaos debugging depends on.
TEST(ChaosReplayTest, SameSeedIsBitIdentical) {
  struct Counters {
    std::uint64_t sent, dropped, unroutable, timeouts, delivered;
    std::uint64_t sends_ok, sends_failed, receives_ok, receives_failed;
    std::uint64_t attempts, retries, expirations;
    bool operator==(const Counters& o) const {
      return sent == o.sent && dropped == o.dropped &&
             unroutable == o.unroutable && timeouts == o.timeouts &&
             delivered == o.delivered && sends_ok == o.sends_ok &&
             sends_failed == o.sends_failed && receives_ok == o.receives_ok &&
             receives_failed == o.receives_failed && attempts == o.attempts &&
             retries == o.retries && expirations == o.expirations;
    }
  };

  auto run_world = [](std::uint64_t seed) -> Counters {
    core::CaseStudySites sites;
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    core::Framework fw(std::move(network), options);
    auto config = std::make_shared<mail::MailServiceConfig>();
    EXPECT_TRUE(
        mail::register_mail_factories(fw.runtime().factories(), config)
            .is_ok());
    EXPECT_TRUE(fw.register_service(mail::mail_registration(sites.mail_home),
                                    mail::mail_translator())
                    .is_ok());
    fw.enable_adaptation("SecureMail");

    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(4));
    request.request_rate_rps = 25.0;
    auto proxy = fw.make_proxy(sites.sd_client, "SecureMail", request);
    bool bound = false;
    proxy->bind([&](util::Status st) {
      EXPECT_TRUE(st.is_ok()) << st.to_string();
      bound = true;
    });
    fw.run_until_condition([&]() { return bound; },
                           sim::Duration::from_seconds(300));

    auto& lease = fw.enable_failure_detection();
    runtime::RetryPolicy policy;
    policy.attempt_timeout = sim::Duration::from_millis(500);
    policy.backoff_base = sim::Duration::from_millis(100);
    policy.max_attempts = 6;
    proxy->enable_retries(policy, &fw.retry_telemetry());

    config->keys->provision_user("frank", mail::kMaxSensitivity);
    core::WorkloadParams params;
    params.sends = 25;
    params.receives = 5;
    core::WorkloadClient client(
        fw.runtime(), "frank", config,
        [&proxy](runtime::Request req, runtime::ResponseCallback done) {
          proxy->invoke(std::move(req), std::move(done));
        },
        params);

    core::FaultPlan plan(seed);
    plan.random_link_flaps(fw.network(), 4, sim::Duration::from_seconds(1),
                           sim::Duration::from_seconds(8),
                           sim::Duration::from_millis(100),
                           sim::Duration::from_millis(600));
    plan.loss_burst(*fw.network().link_between(sites.new_york[0],
                                               sites.san_diego[0]),
                    sim::Duration::from_seconds(2),
                    sim::Duration::from_seconds(2), 0.3);
    plan.crash_node_at(sim::Duration::from_seconds(5), sites.sea_client);
    plan.arm(fw);

    client.start();
    fw.run_for(sim::Duration::from_seconds(30));

    const auto& stats = fw.runtime().stats();
    const auto& wl = client.stats();
    return Counters{stats.messages_sent,
                    stats.messages_dropped,
                    stats.messages_unroutable,
                    stats.invoke_timeouts,
                    stats.requests_delivered,
                    wl.sends_ok,
                    wl.sends_failed,
                    wl.receives_ok,
                    wl.receives_failed,
                    fw.retry_telemetry().attempts,
                    fw.retry_telemetry().retries,
                    lease.expirations().size()};
  };

  const Counters first = run_world(42);
  const Counters replay = run_world(42);
  EXPECT_TRUE(first == replay);
  EXPECT_GT(first.sent, 0u);
}

}  // namespace
}  // namespace psf
