// AdaptationController: the closed monitor -> repair -> live-cutover loop.
// Violations are classified against tracked plans, Planner::repair pins
// survivors and re-searches the affected neighborhood, and the runtime
// migrates component state sync-then-cutover with a drain window for
// stragglers. Also covers SmockRuntime::migrate directly and the plan-cache
// guarantee that a stale handle never binds a migrated-away instance.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"
#include "mail/view_server.hpp"
#include "runtime/adaptation.hpp"

namespace psf {
namespace {

struct AdaptationControllerFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    runtime::AdaptationParams params;
    params.drain = sim::Duration::from_millis(200);
    ctl = std::make_unique<runtime::AdaptationController>(
        fw->runtime(), fw->server(), fw->monitor(), "SecureMail", params);
  }

  planner::PlanRequest sd_request() {
    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(4));
    request.client_node = sites.sd_client;
    request.request_rate_rps = 50.0;
    return request;
  }

  runtime::AccessOutcome bind(const planner::PlanRequest& request) {
    auto proxy = fw->make_proxy(request.client_node, "SecureMail", request);
    util::Status status = util::internal_error("");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(300));
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return proxy->outcome();
  }

  // Sends one sensitivity-2 message from/to `user` through `entry`.
  void send_mail(runtime::RuntimeInstanceId entry, const std::string& user,
                 std::uint64_t id, net::NodeId from = net::NodeId{}) {
    if (!from.valid()) from = sites.sd_client;
    auto body = std::make_shared<mail::SendBody>();
    body->message.id = id;
    body->message.from = user;
    body->message.to = user;
    body->message.sensitivity = 2;
    body->message.plaintext = {'h', 'i'};
    runtime::Request send;
    send.op = mail::ops::kSend;
    send.body = body;
    send.wire_bytes = mail::send_wire_bytes(body->message);
    bool done = false;
    fw->runtime().invoke_from_node(from, entry, std::move(send),
                                   [&done](runtime::Response r) {
                                     EXPECT_TRUE(r.ok) << r.error;
                                     done = true;
                                   });
    ASSERT_TRUE(fw->run_until_condition([&done]() { return done; },
                                        sim::Duration::from_seconds(30)));
  }

  std::size_t receive_count(runtime::RuntimeInstanceId entry,
                            const std::string& user) {
    auto body = std::make_shared<mail::ReceiveBody>();
    body->user = user;
    runtime::Request recv;
    recv.op = mail::ops::kReceive;
    recv.body = body;
    recv.wire_bytes = 256;
    bool done = false;
    std::size_t got = 0;
    fw->runtime().invoke_from_node(
        sites.sd_client, entry, std::move(recv), [&](runtime::Response r) {
          EXPECT_TRUE(r.ok) << r.error;
          const auto* result = runtime::body_as<mail::ReceiveResultBody>(r);
          if (result != nullptr) got = result->messages.size();
          done = true;
        });
    EXPECT_TRUE(fw->run_until_condition([&done]() { return done; },
                                        sim::Duration::from_seconds(30)));
    return got;
  }

  // The runtime id + node of the tracked plan's ViewMailServer placement.
  std::pair<runtime::RuntimeInstanceId, net::NodeId> tracked_view(
      std::size_t index) {
    const auto& outcome = ctl->current_outcome(index);
    for (std::size_t i = 0; i < outcome.plan.placements.size(); ++i) {
      if (outcome.plan.placements[i].component->name == "ViewMailServer") {
        return {outcome.instances[i], outcome.plan.placements[i].node};
      }
    }
    return {0, net::NodeId{}};
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
  std::unique_ptr<runtime::AdaptationController> ctl;
};

TEST_F(AdaptationControllerFixture, IrrelevantChangeIsStillValid) {
  auto request = sd_request();
  auto outcome = bind(request);
  ctl->track(outcome, request);

  fw->monitor().set_node_credential(sites.seattle[1], "trust",
                                    std::int64_t{3});
  fw->run_for(sim::Duration::from_seconds(5));

  ASSERT_FALSE(ctl->events().empty());
  EXPECT_EQ(ctl->events().back().outcome,
            runtime::AdaptationEvent::Outcome::kStillValid);
  EXPECT_EQ(ctl->stats().repairs_triggered, 0u);
  EXPECT_GE(ctl->stats().events_observed, 1u);
}

TEST_F(AdaptationControllerFixture, CapacitySqueezeMigratesViewWithState) {
  auto request = sd_request();
  auto outcome = bind(request);
  const std::size_t index = ctl->track(outcome, request);
  const runtime::RuntimeInstanceId entry = outcome.entry;
  const auto [old_view, old_node] = tracked_view(index);
  ASSERT_NE(old_view, 0u);
  ASSERT_EQ(old_node, sites.sd_client);  // trust-4 client: local warm view

  // Warm the view so the migration has observable state to carry.
  config->keys->provision_user("sam", mail::kMaxSensitivity);
  send_mail(entry, "sam", 1);

  // Flash crowd on the client machine: capacity drops to where the entry
  // still fits but the co-located view does not. The controller must move
  // the view off-node and carry its cache along.
  fw->monitor().set_node_capacity(sites.sd_client, 3.5e3);
  fw->run_for(sim::Duration::from_seconds(60));

  bool repaired = false;
  for (const auto& event : ctl->events()) {
    if (event.outcome == runtime::AdaptationEvent::Outcome::kRepaired &&
        event.tracked_index == index) {
      repaired = true;
      EXPECT_GE(event.state_transfers, 1u) << event.detail;
    }
  }
  ASSERT_TRUE(repaired);
  EXPECT_EQ(ctl->stats().repaired, 1u);
  EXPECT_GE(ctl->stats().state_transfers, 1u);
  EXPECT_GT(fw->runtime().stats().state_transfer_bytes, 0u);

  const auto [new_view, new_node] = tracked_view(index);
  ASSERT_NE(new_view, 0u);
  EXPECT_NE(new_view, old_view);
  EXPECT_NE(new_node, sites.sd_client);

  // Past the drain window the replaced view is gone; the grafted entry
  // serves the warm cache from the new placement.
  fw->run_for(sim::Duration::from_seconds(1));
  EXPECT_FALSE(fw->runtime().exists(old_view));
  EXPECT_TRUE(fw->runtime().exists(entry));
  EXPECT_GE(receive_count(entry, "sam"), 1u)
      << "migrated view lost its warm state";

  // Repair telemetry: the incremental path ran without full fallback.
  EXPECT_GE(fw->server().repair_telemetry().repairs_succeeded, 1u);
  EXPECT_EQ(fw->server().repair_telemetry().full_fallbacks, 0u);
}

TEST_F(AdaptationControllerFixture, StaleHandleNeverBindsMigratedAwayView) {
  auto request = sd_request();
  auto outcome = bind(request);
  const std::size_t index = ctl->track(outcome, request);
  const auto [old_view, old_node] = tracked_view(index);
  ASSERT_NE(old_view, 0u);

  fw->monitor().set_node_capacity(sites.sd_client, 3.5e3);
  fw->run_for(sim::Duration::from_seconds(60));
  ASSERT_GE(ctl->stats().repaired, 1u);

  // The retired view must be out of the plan cache and reuse pool the
  // moment cutover completes — a second client binding the same fingerprint
  // must get a fully live chain that never references it.
  for (const auto& inst : fw->server().existing_instances("SecureMail")) {
    EXPECT_NE(inst.runtime_id, old_view);
  }
  auto later = bind(sd_request());
  for (auto id : later.instances) {
    EXPECT_NE(id, old_view);
    EXPECT_TRUE(fw->runtime().exists(id));
  }
}

TEST_F(AdaptationControllerFixture, NodeDeathAfterMigrationRepairsAgain) {
  // sd-0 is San Diego's only WAN gateway — killing it would legitimately
  // sever the site. Cap its CPU below the view's footprint up front so the
  // first repair migrates the view to sd-1, a host that CAN die repairably.
  fw->monitor().set_node_capacity(sites.san_diego[0], 2.5e3);
  auto request = sd_request();
  auto outcome = bind(request);
  const std::size_t index = ctl->track(outcome, request);
  const runtime::RuntimeInstanceId entry = outcome.entry;

  // First repair: squeeze pushes the view off the client node; the only
  // node with both trust 4 and room for it is sd-1.
  fw->monitor().set_node_capacity(sites.sd_client, 3.5e3);
  fw->run_for(sim::Duration::from_seconds(60));
  ASSERT_EQ(ctl->stats().repaired, 1u);
  const auto [view_after_squeeze, host] = tracked_view(index);
  ASSERT_NE(view_after_squeeze, 0u);
  ASSERT_EQ(host, sites.san_diego[1]);

  // Second repair: the migrated view's host dies outright. No state to
  // transfer (the source is gone) — the chain is rebuilt from survivors,
  // with the replacement placements landing wherever trust and capacity
  // still allow (New York, across the surviving gateway).
  const std::uint64_t transfers_before = ctl->stats().state_transfers;
  fw->fail_node(host);
  fw->run_for(sim::Duration::from_seconds(60));

  ASSERT_EQ(ctl->stats().repaired, 2u)
      << (ctl->events().empty() ? "no events" : ctl->events().back().detail);
  EXPECT_EQ(ctl->stats().state_transfers, transfers_before);
  const auto& current = ctl->current_outcome(index);
  for (std::size_t i = 0; i < current.plan.placements.size(); ++i) {
    EXPECT_NE(current.plan.placements[i].node, host);
    EXPECT_TRUE(fw->runtime().exists(current.instances[i]));
  }

  // The original entry still answers through the twice-grafted chain.
  config->keys->provision_user("sam", mail::kMaxSensitivity);
  send_mail(entry, "sam", 7);
}

TEST_F(AdaptationControllerFixture, RollingDrainMovesDeploymentOffNode) {
  auto request = sd_request();
  auto outcome = bind(request);
  const std::size_t index = ctl->track(outcome, request);
  const runtime::RuntimeInstanceId entry = outcome.entry;
  const auto [old_view, old_node] = tracked_view(index);
  ASSERT_EQ(old_node, sites.sd_client);

  // Maintenance drain: the node stays up, but placement must treat it as
  // dead. The pinned entry is the one component allowed to remain (it IS
  // the client).
  ctl->drain_node(sites.sd_client);
  fw->run_for(sim::Duration::from_seconds(60));

  EXPECT_TRUE(ctl->draining(sites.sd_client));
  EXPECT_EQ(ctl->stats().drains_requested, 1u);
  ASSERT_GE(ctl->stats().repaired, 1u);
  const auto [new_view, new_node] = tracked_view(index);
  ASSERT_NE(new_view, 0u);
  EXPECT_NE(new_node, sites.sd_client);
  // Live migration, not a cold rebuild: the drain scenario's whole point.
  EXPECT_GE(ctl->stats().state_transfers, 1u);

  fw->run_for(sim::Duration::from_seconds(1));
  EXPECT_FALSE(fw->runtime().exists(old_view));
  EXPECT_TRUE(fw->runtime().exists(entry));

  // Maintenance over: the node is placeable again and the current plan is
  // already valid, so nothing churns.
  ctl->undrain_node(sites.sd_client);
  const std::uint64_t repaired_before = ctl->stats().repaired;
  ctl->check_now();
  EXPECT_EQ(ctl->stats().repaired, repaired_before);
  EXPECT_EQ(ctl->events().back().outcome,
            runtime::AdaptationEvent::Outcome::kStillValid);
}

TEST_F(AdaptationControllerFixture, SiteTrustLossIsUnsatisfiable) {
  auto request = sd_request();
  auto outcome = bind(request);
  ctl->track(outcome, request);

  for (net::NodeId n : sites.san_diego) {
    fw->monitor().set_node_credential(n, "trust", std::int64_t{2});
  }
  fw->run_for(sim::Duration::from_seconds(30));

  bool unsatisfiable_seen = false;
  for (const auto& event : ctl->events()) {
    if (event.outcome == runtime::AdaptationEvent::Outcome::kUnsatisfiable) {
      unsatisfiable_seen = true;
      // The restricted repair could not fix a whole-site trust drop; the
      // full-replan fallback ran and failed too.
      EXPECT_TRUE(event.fell_back_to_full) << event.detail;
    }
  }
  EXPECT_TRUE(unsatisfiable_seen);
  EXPECT_EQ(ctl->stats().repaired, 0u);
}

TEST_F(AdaptationControllerFixture, MigrateMovesStateAndRetiresSource) {
  // SmockRuntime::migrate directly: install-at-target, start, sync state
  // through prepare_migration/export/import, hand back the new id, then
  // uninstall the source after the drain window.
  auto request = sd_request();
  auto outcome = bind(request);
  runtime::RuntimeInstanceId view = 0;
  for (std::size_t i = 0; i < outcome.plan.placements.size(); ++i) {
    if (outcome.plan.placements[i].component->name == "ViewMailServer") {
      view = outcome.instances[i];
    }
  }
  ASSERT_NE(view, 0u);
  config->keys->provision_user("sam", mail::kMaxSensitivity);
  send_mail(outcome.entry, "sam", 3);

  net::NodeId target;
  for (net::NodeId n : sites.san_diego) {
    if (!(n == fw->runtime().instance(view).node)) {
      target = n;
      break;
    }
  }
  ASSERT_TRUE(target.valid());

  util::Expected<runtime::RuntimeInstanceId> moved =
      util::internal_error("incomplete");
  bool done = false;
  fw->runtime().migrate(view, target, sites.mail_home,
                        sim::Duration::from_millis(100),
                        [&](util::Expected<runtime::RuntimeInstanceId> r) {
                          moved = std::move(r);
                          done = true;
                        });
  ASSERT_TRUE(fw->run_until_condition([&done]() { return done; },
                                      sim::Duration::from_seconds(30)));
  ASSERT_TRUE(moved.has_value()) << moved.status().to_string();
  EXPECT_TRUE(fw->runtime().exists(*moved));
  EXPECT_EQ(fw->runtime().instance(*moved).node, target);
  EXPECT_EQ(fw->runtime().stats().migrations, 1u);
  EXPECT_GT(fw->runtime().stats().state_transfer_bytes, 0u);

  // The copy carries the warm cache; the source drains away.
  const auto* copy = dynamic_cast<const mail::ViewMailServerComponent*>(
      fw->runtime().instance(*moved).component.get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->cached_inbox_size("sam"), 1u);
  EXPECT_TRUE(fw->runtime().exists(view));  // still draining
  fw->run_for(sim::Duration::from_millis(200));
  EXPECT_FALSE(fw->runtime().exists(view));
}

}  // namespace
}  // namespace psf
