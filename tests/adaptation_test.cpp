// §6 extensions: network monitoring driving environment refresh and
// replanning, and the trust-management-backed property translation.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "planner/planner.hpp"
#include "trust/trust_graph.hpp"

namespace psf {
namespace {

// ---- monitor primitives --------------------------------------------------

TEST(MonitorTest, MutationsNotifyObservers) {
  sim::Simulator sim;
  net::Network network;
  const net::NodeId a = network.add_node("a");
  const net::NodeId b = network.add_node("b");
  const net::LinkId l =
      network.add_link(a, b, 10e6, sim::Duration::from_millis(10));

  runtime::NetworkMonitor monitor(sim, network);
  std::vector<runtime::NetworkMonitor::ChangeKind> seen;
  monitor.subscribe([&seen](const runtime::NetworkMonitor::ChangeEvent& e) {
    seen.push_back(e.kind);
  });

  monitor.set_link_bandwidth(l, 5e6);
  monitor.set_link_latency(l, sim::Duration::from_millis(80));
  monitor.set_link_credential(l, "secure", false);
  monitor.set_node_credential(a, "trust", std::int64_t{2});
  monitor.set_node_capacity(b, 2e6);

  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(network.link(l).bandwidth_bps, 5e6);
  EXPECT_EQ(network.link(l).latency.millis(), 80.0);
  EXPECT_FALSE(network.link(l).credentials.get_bool("secure", true));
  EXPECT_EQ(network.node(a).credentials.get_int("trust", 0), 2);
  EXPECT_EQ(network.node(b).cpu_capacity, 2e6);
}

TEST(MonitorTest, ScheduledChangeFiresAtSimTime) {
  sim::Simulator sim;
  net::Network network;
  const net::NodeId a = network.add_node("a");
  const net::NodeId b = network.add_node("b");
  const net::LinkId l =
      network.add_link(a, b, 10e6, sim::Duration::from_millis(10));
  runtime::NetworkMonitor monitor(sim, network);

  monitor.schedule_change(sim::Duration::from_seconds(30),
                          [l](runtime::NetworkMonitor& m) {
                            m.set_link_bandwidth(l, 1e6);
                          });
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(29));
  EXPECT_EQ(network.link(l).bandwidth_bps, 10e6);
  sim.run();
  EXPECT_EQ(network.link(l).bandwidth_bps, 1e6);
}

// ---- end-to-end adaptive replanning ---------------------------------------

struct AdaptationFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    fw->enable_adaptation("SecureMail");
  }

  runtime::AccessOutcome bind(net::NodeId node, std::int64_t trust) {
    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(trust));
    defaults.request_rate_rps = 50.0;
    auto proxy = fw->make_proxy(node, "SecureMail", defaults);
    util::Status status = util::internal_error("incomplete");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(120));
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return proxy->outcome();
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
};

TEST_F(AdaptationFixture, SecuringTheWanLinkRemovesEncryptors) {
  // Baseline: San Diego needs an Encryptor/Decryptor pair.
  auto before = bind(sites.sd_client, 4);
  std::set<std::string> comps_before;
  for (const auto& p : before.plan.placements) {
    comps_before.insert(p.component->name);
  }
  ASSERT_TRUE(comps_before.count("Encryptor"));

  // Operations installs a VPN: the SD<->NY link becomes secure. The monitor
  // event refreshes the planner's environment (enable_adaptation), so a new
  // client's plan needs no tunnel.
  auto lid = fw->network().link_between(sites.san_diego[0],
                                        sites.new_york[0]);
  ASSERT_TRUE(lid.has_value());
  fw->monitor().set_link_credential(*lid, "secure", true);

  auto after = bind(sites.sd_client, 4);
  std::set<std::string> comps_after;
  for (const auto& p : after.plan.placements) {
    comps_after.insert(p.component->name);
  }
  EXPECT_FALSE(comps_after.count("Encryptor"))
      << after.plan.to_string(fw->network());
  EXPECT_FALSE(comps_after.count("Decryptor"));
  // Still cached behind the slow link.
  EXPECT_TRUE(comps_after.count("ViewMailServer"));
}

TEST_F(AdaptationFixture, RaisingSeattleTrustUnlocksFullClient) {
  // Seattle at trust 2 cannot host the full MailClient...
  {
    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(4));
    auto proxy = fw->make_proxy(sites.sea_client, "SecureMail", defaults);
    util::Status status = util::Status::ok();
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(120));
    EXPECT_EQ(status.code(), util::ErrorCode::kUnsatisfiable);
  }
  // ...until the partner site is promoted.
  for (net::NodeId n : sites.seattle) {
    fw->monitor().set_node_credential(n, "trust", std::int64_t{4});
  }
  auto outcome = bind(sites.sea_client, 4);
  EXPECT_EQ(fw->runtime().instance(outcome.entry).def->name, "MailClient");
}

// ---- trust-backed translation ----------------------------------------------

TEST(TrustTranslatorTest, NodePropertiesComeFromRoleHoldings) {
  net::Network network;
  const net::NodeId ny = network.add_node("ny-1");
  const net::NodeId sea = network.add_node("sea-1");
  net::Credentials secure;
  secure.set("secure", true);
  network.add_link(ny, sea, 10e6, sim::Duration::from_millis(10), secure);

  trust::TrustGraph graph;
  graph.declare_namespace("mail", "MailCA");
  graph.declare_namespace("partner", "PartnerCA");
  const trust::Role trust_role{"mail", "TrustLevel"};
  const trust::Role member{"partner", "Member"};
  // NY asserted directly; Seattle derived through cross-domain delegation.
  {
    trust::TrustCredential c;
    c.kind = trust::CredentialKind::kAssertion;
    c.issuer = "MailCA";
    c.subject = "ny-1";
    c.granted = trust_role;
    c.value = 5;
    graph.add(c);
  }
  {
    trust::TrustCredential c;
    c.kind = trust::CredentialKind::kAssertion;
    c.issuer = "PartnerCA";
    c.subject = "sea-1";
    c.granted = member;
    graph.add(c);
  }
  {
    trust::TrustCredential c;
    c.kind = trust::CredentialKind::kDelegation;
    c.issuer = "MailCA";
    c.granted = trust_role;
    c.via = member;
    c.value = 2;
    graph.add(c);
  }

  planner::CredentialMapTranslator link_fallback;
  link_fallback.map_link({"Confidentiality", "secure",
                          spec::PropertyType::kBoolean,
                          spec::PropertyValue::boolean(false)});
  planner::TrustBackedTranslator translator(
      graph, "mail",
      {{"TrustLevel", "TrustLevel", spec::PropertyType::kInterval,
        spec::PropertyValue::integer(1)}},
      link_fallback);

  planner::EnvironmentView env(network, translator);
  EXPECT_EQ(env.node_env(ny).get("TrustLevel"),
            spec::PropertyValue::integer(5));
  EXPECT_EQ(env.node_env(sea).get("TrustLevel"),
            spec::PropertyValue::integer(2));
  EXPECT_EQ(env.link_env(net::LinkId{0}).get("Confidentiality"),
            spec::PropertyValue::boolean(true));
}

}  // namespace
}  // namespace psf
