// Region-parallel engine: partitioning, conservative lookahead, and the
// core determinism contract — the merged trace is bit-identical for any
// worker count.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/megascale.hpp"
#include "net/topology.hpp"
#include "sim/parallel.hpp"
#include "sim/region.hpp"
#include "util/rng.hpp"

namespace psf {
namespace {

net::Network waxman(std::size_t nodes, std::uint64_t seed) {
  net::WaxmanParams params;
  params.num_nodes = nodes;
  util::Rng rng(seed);
  return net::generate_waxman(params, rng);
}

// ---- partitioning ----------------------------------------------------------

TEST(RegionPartitionTest, CoversEveryNodeWithBoundedImbalance) {
  const net::Network network = waxman(40, 7);
  const sim::RegionPartition part = sim::partition_network(network, 4);
  ASSERT_EQ(part.num_regions, 4u);
  ASSERT_EQ(part.region_of_node.size(), 40u);
  std::vector<std::size_t> counts(4, 0);
  for (const sim::RegionId r : part.region_of_node) {
    ASSERT_LT(r, 4u);
    ++counts[r];
  }
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(counts[r], part.region_nodes[r]);
    EXPECT_LE(counts[r], (40 + 3) / 4 + 0u);  // capacity bound
    EXPECT_GT(counts[r], 0u);
  }
}

TEST(RegionPartitionTest, DeterministicAcrossCalls) {
  const net::Network network = waxman(60, 11);
  const sim::RegionPartition a = sim::partition_network(network, 6);
  const sim::RegionPartition b = sim::partition_network(network, 6);
  EXPECT_EQ(a.region_of_node, b.region_of_node);
  EXPECT_EQ(a.cut_links, b.cut_links);
  EXPECT_EQ(a.lookahead.nanos(), b.lookahead.nanos());
}

TEST(RegionPartitionTest, LookaheadIsMinimumCutLinkLatency) {
  const net::Network network = waxman(30, 3);
  const sim::RegionPartition part = sim::partition_network(network, 3);
  ASSERT_GT(part.cut_links, 0u);
  std::int64_t min_cut = INT64_MAX;
  for (const net::LinkId lid : network.all_links()) {
    const net::Link& l = network.link(lid);
    if (part.region_of(l.a) != part.region_of(l.b)) {
      min_cut = std::min(min_cut, l.latency.nanos());
    }
  }
  EXPECT_EQ(part.lookahead.nanos(), min_cut);
  EXPECT_GT(part.lookahead.nanos(), 0);
}

TEST(RegionPartitionTest, SingleRegionHasNoCutLinks) {
  const net::Network network = waxman(20, 5);
  const sim::RegionPartition part = sim::partition_network(network, 1);
  EXPECT_EQ(part.cut_links, 0u);
  EXPECT_EQ(part.lookahead.nanos(), INT64_MAX);
}

// ---- engine determinism ----------------------------------------------------

// A synthetic ping-pong workload across R regions: every region runs
// chains of local events that periodically post to the next region at
// now + lookahead. Region state is region-confined (one counter vector per
// region), so any worker count must produce the same trace.
struct PingPongWorld {
  static constexpr std::int64_t kLookaheadNs = 1'000'000;  // 1ms

  explicit PingPongWorld(std::size_t regions)
      : engine(regions, sim::Duration::from_nanos(kLookaheadNs)),
        counters(regions, 0) {
    engine.enable_trace(true);
    for (sim::RegionId r = 0; r < regions; ++r) {
      engine.seed_event(r, sim::Time::from_nanos(1000 + r), [this, r] {
        bounce(r, 24);
      });
    }
  }

  void bounce(sim::RegionId r, int remaining) {
    ++counters[r];
    if (remaining <= 0) return;
    if (remaining % 3 == 0) {
      const auto dst = static_cast<sim::RegionId>(
          (r + 1) % engine.num_regions());
      engine.post(dst,
                  engine.now() + sim::Duration::from_nanos(kLookaheadNs + 17),
                  [this, dst, remaining] { bounce(dst, remaining - 1); },
                  static_cast<std::uint64_t>(remaining));
    } else {
      engine.schedule_local(sim::Duration::from_nanos(231),
                            [this, r, remaining] { bounce(r, remaining - 1); },
                            static_cast<std::uint64_t>(remaining));
    }
  }

  sim::ParallelSimulator engine;
  std::vector<std::uint64_t> counters;
};

TEST(ParallelSimTest, TraceBitIdenticalAcrossWorkerCounts) {
  PingPongWorld reference(4);
  const std::size_t ref_executed = reference.engine.run(1);
  const std::vector<sim::TraceEntry> ref_trace =
      reference.engine.merged_trace();
  ASSERT_GT(ref_executed, 0u);

  for (const std::size_t workers : {2u, 4u, 8u}) {
    PingPongWorld world(4);
    const std::size_t executed = world.engine.run(workers);
    EXPECT_EQ(executed, ref_executed) << workers << " workers";
    EXPECT_EQ(world.engine.merged_trace(), ref_trace)
        << workers << " workers";
    EXPECT_EQ(world.counters, reference.counters) << workers << " workers";
  }
}

TEST(ParallelSimTest, RunUntilRespectsDeadlineAndResumes) {
  PingPongWorld a(2);
  PingPongWorld b(2);
  const std::size_t total = a.engine.run(1);

  // Same workload in two run_until slices (parallel) matches one full
  // serial run, including events landing exactly on the deadline.
  const sim::Time cut = sim::Time::from_nanos(1'500'000);
  const std::size_t first = b.engine.run_until(cut, 2);
  EXPECT_LE(b.engine.end_time(), cut);
  const std::size_t second = b.engine.run_until(sim::Time::max(), 2);
  EXPECT_EQ(first + second, total);
  EXPECT_EQ(b.engine.merged_trace(), a.engine.merged_trace());
  EXPECT_TRUE(b.engine.empty());
}

TEST(ParallelSimTest, MailboxNodesAreRecycled) {
  PingPongWorld world(4);
  world.engine.run(2);
  const sim::ParallelStats stats = world.engine.stats();
  ASSERT_GT(stats.cross_region_posts, 0u);
  EXPECT_EQ(stats.mailbox_nodes, stats.cross_region_posts);
  // Slab blocks are the only allocator calls; steady state recycles.
  EXPECT_LE(stats.mailbox_blocks, 4u);
}

TEST(ParallelSimTest, CrossRegionPostBelowLookaheadDies) {
  sim::ParallelSimulator engine(2, sim::Duration::from_millis(1));
  engine.seed_event(0, sim::Time::from_nanos(100), [&engine] {
    engine.post(1, engine.now() + sim::Duration::from_nanos(10), [] {});
  });
  EXPECT_DEATH(engine.run(1), "lookahead");
}

TEST(ParallelSimTest, ParallelRunRequiresPositiveLookahead) {
  sim::ParallelSimulator engine(2, sim::Duration::zero());
  engine.seed_event(0, sim::Time::zero(), [] {});
  EXPECT_DEATH(engine.run_until(sim::Time::max(), 2), "lookahead");
  // The serial path is still fine (no window synchronization involved).
  EXPECT_EQ(engine.run_until(sim::Time::max(), 1), 1u);
}

// ---- megascale workload equivalence ---------------------------------------

core::MegascaleConfig small_config() {
  core::MegascaleConfig config;
  config.nodes = 24;
  config.regions = 4;
  config.clients = 600;
  config.requests_per_client = 2;
  config.seed = 99;
  config.record_trace = true;
  return config;
}

TEST(MegascaleWorldTest, ParallelRunMatchesSerialBitForBit) {
  core::MegascaleWorld serial(small_config());
  const core::MegascaleReport sr = serial.run(1);
  ASSERT_EQ(sr.requests_completed + sr.requests_failed, 600u * 2u);

  for (const std::size_t workers : {2u, 4u}) {
    core::MegascaleWorld parallel(small_config());
    const core::MegascaleReport pr = parallel.run(workers);
    EXPECT_EQ(pr.events_executed, sr.events_executed);
    EXPECT_EQ(pr.requests_completed, sr.requests_completed);
    EXPECT_EQ(pr.requests_failed, sr.requests_failed);
    EXPECT_EQ(pr.sim_seconds, sr.sim_seconds);
    EXPECT_EQ(parallel.engine().merged_trace(),
              serial.engine().merged_trace());
  }
}

// Chaos composition: pause at a quiescent point mid-run, fail links, and
// resume. Requests that lost their route fail deterministically — with the
// same counts and trace for every worker count.
core::MegascaleReport chaos_run(std::size_t workers) {
  core::MegascaleWorld world(small_config());
  world.run_until(sim::Time::from_nanos(120'000'000), workers);
  // Deterministic fault: take down every 5th link at quiescence.
  const std::vector<net::LinkId> links = world.network().all_links();
  for (std::size_t i = 0; i < links.size(); i += 5) {
    world.network().set_link_up(links[i], false);
  }
  world.refresh_routes();
  world.run_until(sim::Time::max(), workers);
  return world.report();
}

TEST(MegascaleWorldTest, ChaosCompositionStaysDeterministic) {
  const core::MegascaleReport serial = chaos_run(1);
  const core::MegascaleReport parallel = chaos_run(4);
  EXPECT_EQ(parallel.events_executed, serial.events_executed);
  EXPECT_EQ(parallel.requests_completed, serial.requests_completed);
  EXPECT_EQ(parallel.requests_failed, serial.requests_failed);
  EXPECT_EQ(parallel.sim_seconds, serial.sim_seconds);
}

}  // namespace
}  // namespace psf
