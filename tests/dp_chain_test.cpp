// DP chain planner: optimality on small instances (checked against brute
// force), constraint handling, and agreement with the exhaustive planner on
// chain-shaped problems.
#include <gtest/gtest.h>

#include <limits>

#include "planner/dp_chain.hpp"
#include "planner/planner.hpp"
#include "spec/builder.hpp"

namespace psf::planner {
namespace {

using spec::PropertyValue;

// A linear network path of `n` nodes with identical links.
struct PathWorld {
  net::Network network;
  std::vector<net::NodeId> path;

  explicit PathWorld(std::size_t n, double bw = 10e6,
                     sim::Duration latency = sim::Duration::from_millis(20)) {
    for (std::size_t i = 0; i < n; ++i) {
      net::Credentials creds;
      creds.set("trust", static_cast<std::int64_t>(i + 1));
      creds.set("secure", true);
      path.push_back(network.add_node("n" + std::to_string(i), 1e6, creds));
    }
    net::Credentials secure;
    secure.set("secure", true);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      network.add_link(path[i], path[i + 1], bw, latency, secure);
    }
  }
};

CredentialMapTranslator trust_translator() {
  CredentialMapTranslator t;
  t.map_node({"TrustLevel", "trust", spec::PropertyType::kInterval,
              PropertyValue::integer(1)});
  t.map_node({"Confidentiality", "secure", spec::PropertyType::kBoolean,
              PropertyValue::boolean(false)});
  t.map_link({"Confidentiality", "secure", spec::PropertyType::kBoolean,
              PropertyValue::boolean(false)});
  return t;
}

spec::ServiceSpec chain_spec(double filter_rrf) {
  return spec::SpecBuilder("Chain")
      .interval_property("TrustLevel", 1, 99)
      .interface("Entry", {})
      .interface("Mid", {})
      .interface("Api", {})
      .component("Client")
      .implements("Entry", {})
      .requires_iface("Mid", {})
      .cpu_per_request(10)
      .done()
      .component("Filter")
      .implements("Mid", {})
      .requires_iface("Api", {})
      .rrf(filter_rrf)
      .cpu_per_request(30)
      .done()
      .component("Origin")
      .implements("Api", {})
      .cpu_per_request(50)
      .done()
      .build();
}

std::vector<const spec::ComponentDef*> chain_of(const spec::ServiceSpec& s) {
  return {s.find_component("Client"), s.find_component("Filter"),
          s.find_component("Origin")};
}

// Brute force: all monotone placements with pinned endpoints.
double brute_force_best(const spec::ServiceSpec& /*spec*/,
                        const EnvironmentView& env,
                        const std::vector<const spec::ComponentDef*>& chain,
                        const std::vector<net::NodeId>& path,
                        std::vector<std::size_t>* best_assignment = nullptr) {
  const std::size_t k = chain.size();
  const std::size_t m = path.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> assignment(k);

  std::function<void(std::size_t, std::size_t)> recurse =
      [&](std::size_t i, std::size_t min_j) {
        if (i == k) {
          if (assignment.front() != 0 || assignment.back() != m - 1) return;
          // Evaluate.
          double cost = 0.0;
          double prefix = 1.0;
          for (std::size_t c = 0; c < k; ++c) {
            if (c > 0) prefix *= chain[c - 1]->behaviors.rrf;
            cost += prefix * chain[c]->behaviors.cpu_per_request /
                    env.network().node(path[assignment[c]]).cpu_capacity;
            if (c > 0) {
              const double bits =
                  static_cast<double>(chain[c]->behaviors.bytes_per_request +
                                      chain[c]->behaviors.bytes_per_response) *
                  8.0;
              for (std::size_t j = assignment[c - 1]; j < assignment[c]; ++j) {
                auto lid = env.network().link_between(path[j], path[j + 1]);
                const net::Link& link = env.network().link(*lid);
                cost += prefix * (2.0 * link.latency.seconds() +
                                  bits / link.bandwidth_bps);
              }
            }
          }
          if (cost < best) {
            best = cost;
            if (best_assignment) *best_assignment = assignment;
          }
          return;
        }
        for (std::size_t j = min_j; j < m; ++j) {
          assignment[i] = j;
          recurse(i + 1, j);
        }
      };
  recurse(0, 0);
  return best;
}

TEST(DpChainTest, MatchesBruteForceAcrossRrfValues) {
  for (double rrf : {0.05, 0.2, 0.5, 0.9, 1.0}) {
    PathWorld world(5);
    auto translator = trust_translator();
    EnvironmentView env(world.network, translator);
    spec::ServiceSpec s = chain_spec(rrf);
    auto chain = chain_of(s);

    auto result = plan_chain_dp(s, env, chain, world.path);
    ASSERT_TRUE(result.has_value()) << result.status().to_string();

    std::vector<std::size_t> expected;
    const double best = brute_force_best(s, env, chain, world.path, &expected);
    EXPECT_NEAR(result->expected_latency_s, best, 1e-12) << "rrf=" << rrf;
  }
}

TEST(DpChainTest, LowRrfPullsFilterTowardClient) {
  // A strong filter (rrf 0.1) should sit early on the path; a pass-through
  // (rrf 1.0) placement is latency-indifferent, but the filter must never
  // sit later than necessary when it reduces traffic.
  PathWorld world(6);
  auto translator = trust_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec s = chain_spec(0.1);
  auto result = plan_chain_dp(s, env, chain_of(s), world.path);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->assignment[0], 0u);
  EXPECT_EQ(result->assignment[1], 0u);  // filter colocated with client
  EXPECT_EQ(result->assignment[2], 5u);
}

TEST(DpChainTest, AssignmentIsMonotone) {
  PathWorld world(7);
  auto translator = trust_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec s = chain_spec(0.3);
  auto result = plan_chain_dp(s, env, chain_of(s), world.path);
  ASSERT_TRUE(result.has_value());
  for (std::size_t i = 1; i < result->assignment.size(); ++i) {
    EXPECT_LE(result->assignment[i - 1], result->assignment[i]);
  }
}

TEST(DpChainTest, ConditionsRestrictPlacement) {
  // Filter requires trust >= 4: only path positions 3+ (trust = index+1).
  spec::ServiceSpec s =
      spec::SpecBuilder("Cond")
          .interval_property("TrustLevel", 1, 99)
          .interface("Entry", {})
          .interface("Mid", {})
          .interface("Api", {})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Mid", {})
          .done()
          .component("Filter")
          .implements("Mid", {})
          .requires_iface("Api", {})
          .rrf(0.1)
          .condition_ge("TrustLevel", PropertyValue::integer(4))
          .done()
          .component("Origin")
          .implements("Api", {})
          .done()
          .build();
  PathWorld world(6);
  auto translator = trust_translator();
  EnvironmentView env(world.network, translator);
  auto chain = std::vector<const spec::ComponentDef*>{
      s.find_component("Client"), s.find_component("Filter"),
      s.find_component("Origin")};
  auto result = plan_chain_dp(s, env, chain, world.path);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->assignment[1], 3u);
}

TEST(DpChainTest, UnsatisfiableWhenNoFeasiblePlacement) {
  spec::ServiceSpec s =
      spec::SpecBuilder("Never")
          .interval_property("TrustLevel", 1, 999)
          .interface("Entry", {})
          .interface("Api", {})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {})
          .done()
          .component("Origin")
          .implements("Api", {})
          .condition_ge("TrustLevel", PropertyValue::integer(100))
          .done()
          .build();
  PathWorld world(4);
  auto translator = trust_translator();
  EnvironmentView env(world.network, translator);
  auto chain = std::vector<const spec::ComponentDef*>{
      s.find_component("Client"), s.find_component("Origin")};
  auto result = plan_chain_dp(s, env, chain, world.path);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kUnsatisfiable);
}

TEST(DpChainTest, RejectsNonAdjacentPath) {
  PathWorld world(4);
  auto translator = trust_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec s = chain_spec(0.5);
  std::vector<net::NodeId> bogus = {world.path[0], world.path[2]};
  auto result = plan_chain_dp(s, env, chain_of(s), bogus);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(DpChainTest, SingleNodePathColocatesEverything) {
  PathWorld world(1);
  auto translator = trust_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec s = chain_spec(0.2);
  auto result = plan_chain_dp(s, env, chain_of(s), world.path);
  ASSERT_TRUE(result.has_value());
  for (std::size_t j : result->assignment) EXPECT_EQ(j, 0u);
}

TEST(DpChainTest, AgreesWithExhaustivePlannerOnPathNetworks) {
  // On a pure path network with a chain-shaped spec, both planners must find
  // mappings with identical expected latency (the exhaustive planner adds
  // CPU cost of the entry hop identically).
  PathWorld world(4);
  auto translator = trust_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec s = chain_spec(0.2);

  auto dp = plan_chain_dp(s, env, chain_of(s), world.path);
  ASSERT_TRUE(dp.has_value());

  Planner planner(s, env);
  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.path.front();
  request.cold_view_penalty = 0.0;  // chain spec has no views anyway
  // Pin Origin to the last node via an existing instance? Not needed: give
  // the exhaustive planner the same degrees of freedom minus pinning, so it
  // may only do better than the DP's pinned-endpoints answer.
  auto ex = planner.plan(request);
  ASSERT_TRUE(ex.has_value());
  EXPECT_LE(ex->metrics.expected_latency_s, dp->expected_latency_s + 1e-12);
}

}  // namespace
}  // namespace psf::planner
