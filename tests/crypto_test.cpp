// Toy crypto substrate: round trips, tamper detection, key separation,
// keystore release-ledger semantics.
#include <gtest/gtest.h>

#include "crypto/cipher.hpp"
#include "crypto/keystore.hpp"

namespace psf::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(CipherTest, SealUnsealRoundTrip) {
  const SymmetricKey key = derive_key(123, "alice#3");
  const auto plaintext = bytes("the quick brown fox");
  const SealedBlob blob = seal(key, /*nonce=*/7, plaintext);
  EXPECT_NE(blob.ciphertext, plaintext);  // actually transformed

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(unseal(key, blob, out));
  EXPECT_EQ(out, plaintext);
}

TEST(CipherTest, EmptyPayload) {
  const SymmetricKey key = derive_key(1, "k");
  const SealedBlob blob = seal(key, 1, {});
  std::vector<std::uint8_t> out{1, 2, 3};
  ASSERT_TRUE(unseal(key, blob, out));
  EXPECT_TRUE(out.empty());
}

TEST(CipherTest, WrongKeyFailsMac) {
  const SymmetricKey k1 = derive_key(123, "alice#3");
  const SymmetricKey k2 = derive_key(123, "alice#4");
  const SealedBlob blob = seal(k1, 7, bytes("secret"));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(unseal(k2, blob, out));
  EXPECT_TRUE(out.empty());
}

TEST(CipherTest, TamperedCiphertextFailsMac) {
  const SymmetricKey key = derive_key(9, "bob#1");
  SealedBlob blob = seal(key, 3, bytes("integrity matters"));
  blob.ciphertext[4] ^= 0x01;
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(unseal(key, blob, out));
}

TEST(CipherTest, TamperedMacFails) {
  const SymmetricKey key = derive_key(9, "bob#1");
  SealedBlob blob = seal(key, 3, bytes("integrity"));
  blob.mac ^= 1;
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(unseal(key, blob, out));
}

TEST(CipherTest, NonceChangesCiphertext) {
  const SymmetricKey key = derive_key(5, "x");
  const auto p = bytes("same plaintext");
  EXPECT_NE(seal(key, 1, p).ciphertext, seal(key, 2, p).ciphertext);
}

TEST(CipherTest, KeyDerivationIsDeterministicAndSeparated) {
  EXPECT_EQ(derive_key(42, "a"), derive_key(42, "a"));
  EXPECT_NE(derive_key(42, "a"), derive_key(42, "b"));
  EXPECT_NE(derive_key(42, "a"), derive_key(43, "a"));
}

TEST(CipherTest, KeystreamIsItsOwnInverse) {
  const SymmetricKey key = derive_key(8, "inv");
  const auto p = bytes("involution");
  const auto c = apply_keystream(key, 11, p);
  EXPECT_EQ(apply_keystream(key, 11, c), p);
}

TEST(CipherTest, WireSizeIncludesOverhead) {
  const SymmetricKey key = derive_key(1, "k");
  const SealedBlob blob = seal(key, 1, bytes("12345"));
  EXPECT_EQ(blob.wire_size(), 5u + 16u);
}

TEST(CipherTest, CostScalesWithSize) {
  EXPECT_LT(crypto_cpu_cost(100), crypto_cpu_cost(100000));
  EXPECT_GT(crypto_cpu_cost(0), 0.0);  // fixed setup cost
}

// ---- keystore -----------------------------------------------------------

TEST(KeyStoreTest, ProvisionCreatesPerLevelKeys) {
  KeyStore ks(777);
  ks.provision_user("alice", 5);
  for (std::int64_t level = 1; level <= 5; ++level) {
    EXPECT_TRUE(ks.has_key({"alice", level}));
  }
  EXPECT_FALSE(ks.has_key({"alice", 6}));
  EXPECT_FALSE(ks.has_key({"bob", 1}));
  EXPECT_EQ(ks.key_count(), 5u);
}

TEST(KeyStoreTest, ProvisionIsIdempotent) {
  KeyStore ks(777);
  ks.provision_user("alice", 3);
  const SymmetricKey before = ks.key({"alice", 2}).value();
  ks.provision_user("alice", 5);
  EXPECT_EQ(ks.key({"alice", 2}).value(), before);  // keys stable
  EXPECT_EQ(ks.key_count(), 5u);
}

TEST(KeyStoreTest, DistinctUsersGetDistinctKeys) {
  KeyStore ks(777);
  ks.provision_user("alice", 2);
  ks.provision_user("bob", 2);
  EXPECT_NE(ks.key({"alice", 1}).value(), ks.key({"bob", 1}).value());
  EXPECT_NE(ks.key({"alice", 1}).value(), ks.key({"alice", 2}).value());
}

TEST(KeyStoreTest, MissingKeyIsNotFound) {
  KeyStore ks(1);
  auto key = ks.key({"ghost", 1});
  EXPECT_FALSE(key.has_value());
  EXPECT_EQ(key.status().code(), util::ErrorCode::kNotFound);
}

TEST(KeyStoreTest, ReleaseLedgerTracksMaximum) {
  KeyStore ks(1);
  ks.provision_user("alice", 5);
  EXPECT_EQ(ks.released_level("node-sd", "alice"), 0);
  ASSERT_TRUE(ks.release_to_node("node-sd", "alice", 4).is_ok());
  EXPECT_EQ(ks.released_level("node-sd", "alice"), 4);
  // Lower release does not shrink the ledger.
  ASSERT_TRUE(ks.release_to_node("node-sd", "alice", 2).is_ok());
  EXPECT_EQ(ks.released_level("node-sd", "alice"), 4);
  // Other nodes unaffected.
  EXPECT_EQ(ks.released_level("node-sea", "alice"), 0);
}

TEST(KeyStoreTest, ReleaseFailsForUnprovisionedLevels) {
  KeyStore ks(1);
  ks.provision_user("alice", 2);
  EXPECT_FALSE(ks.release_to_node("n", "alice", 3).is_ok());
}

}  // namespace
}  // namespace psf::crypto
