// Planner diagnostics: the per-cause rejection breakdown must attribute
// unsatisfiable requests to the right constraint class.
#include <gtest/gtest.h>

#include "planner/planner.hpp"
#include "spec/builder.hpp"

namespace psf::planner {
namespace {

using spec::PropertyValue;

struct DiagnosticsFixture : public ::testing::Test {
  DiagnosticsFixture() {
    net::Credentials edge_creds;
    edge_creds.set("trust", std::int64_t{3});
    edge_creds.set("secure", true);
    edge = network.add_node("edge", 1e6, edge_creds);
    net::Credentials origin_creds;
    origin_creds.set("trust", std::int64_t{5});
    origin_creds.set("secure", true);
    origin = network.add_node("origin", 1e6, origin_creds);
    net::Credentials secure;
    secure.set("secure", true);
    link = network.add_link(edge, origin, 10e6,
                            sim::Duration::from_millis(40), secure);

    translator.map_node({"TrustLevel", "trust", spec::PropertyType::kInterval,
                         PropertyValue::integer(1)});
    translator.map_node({"Confidentiality", "secure",
                         spec::PropertyType::kBoolean,
                         PropertyValue::boolean(false)});
    translator.map_link({"Confidentiality", "secure",
                         spec::PropertyType::kBoolean,
                         PropertyValue::boolean(false)});
  }

  SearchStats plan_and_expect_unsat(const spec::ServiceSpec& service,
                                    double rate = 1.0) {
    EnvironmentView env(network, translator);
    Planner planner(service, env);
    PlanRequest request;
    request.interface_name = "Entry";
    request.client_node = edge;
    request.request_rate_rps = rate;
    SearchStats stats;
    auto plan = planner.plan(request, {}, &stats);
    EXPECT_FALSE(plan.has_value());
    if (plan.has_value()) {
      ADD_FAILURE() << plan->to_string(network);
    }
    return stats;
  }

  net::Network network;
  net::NodeId edge, origin;
  net::LinkId link;
  CredentialMapTranslator translator;
};

TEST_F(DiagnosticsFixture, ConditionDominatedFailure) {
  spec::ServiceSpec service =
      spec::SpecBuilder("S")
          .interval_property("TrustLevel", 1, 9)
          .interface("Entry", {})
          .interface("Api", {})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {})
          .done()
          .component("Origin")
          .implements("Api", {})
          .condition_ge("TrustLevel", PropertyValue::integer(9))  // nobody
          .done()
          .build();
  const SearchStats stats = plan_and_expect_unsat(service);
  EXPECT_GT(stats.rejected_condition, 0u);
  EXPECT_EQ(stats.rejected_link_capacity, 0u);
  EXPECT_NE(stats.to_string().find("condition="), std::string::npos);
}

TEST_F(DiagnosticsFixture, LinkCapacityDominatedFailure) {
  spec::ServiceSpec service =
      spec::SpecBuilder("S")
          .interval_property("TrustLevel", 1, 9)
          .interface("Entry", {})
          .interface("Api", {})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {})
          .done()
          .component("Origin")
          .implements("Api", {})
          .condition_ge("TrustLevel", PropertyValue::integer(5))
          .message_bytes(100000, 100000)  // 1.6 Mb per exchange
          .done()
          .build();
  // 100 rps x 1.6 Mb = 160 Mbps >> 10 Mbps link.
  const SearchStats stats = plan_and_expect_unsat(service, 100.0);
  EXPECT_GT(stats.rejected_link_capacity, 0u);
  EXPECT_NE(stats.to_string().find("link-capacity="), std::string::npos);
}

TEST_F(DiagnosticsFixture, StaticDominatedFailure) {
  spec::ServiceSpec service =
      spec::SpecBuilder("S")
          .interval_property("TrustLevel", 1, 9)
          .interface("Entry", {})
          .interface("Api", {})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {})
          .done()
          .component("Origin")
          .static_placement()
          .implements("Api", {})
          .done()
          .build();
  const SearchStats stats = plan_and_expect_unsat(service);
  EXPECT_GT(stats.rejected_static, 0u);
}

TEST_F(DiagnosticsFixture, CompatibilityDominatedFailure) {
  // Api demands Confidentiality=T but the spec has the degradation rule and
  // the (only) placement forces an insecure crossing.
  net::Network insecure_net;
  net::Credentials edge_creds;
  edge_creds.set("trust", std::int64_t{3});
  edge_creds.set("secure", true);
  const net::NodeId e = insecure_net.add_node("edge", 1e6, edge_creds);
  net::Credentials origin_creds;
  origin_creds.set("trust", std::int64_t{5});
  origin_creds.set("secure", true);
  const net::NodeId o = insecure_net.add_node("origin", 1e6, origin_creds);
  net::Credentials insecure;
  insecure.set("secure", false);
  insecure_net.add_link(e, o, 10e6, sim::Duration::from_millis(40), insecure);

  spec::ServiceSpec service =
      spec::SpecBuilder("S")
          .boolean_property("Confidentiality")
          .interval_property("TrustLevel", 1, 9)
          .interface("Entry", {})
          .interface("Api", {"Confidentiality"})
          .confidentiality_rule("Confidentiality")
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {{"Confidentiality", spec::lit_bool(true)}})
          .done()
          .component("Origin")
          .implements("Api", {{"Confidentiality", spec::lit_bool(true)}})
          .condition_ge("TrustLevel", PropertyValue::integer(5))
          .done()
          .build();

  EnvironmentView env(insecure_net, translator);
  Planner planner(service, env);
  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = e;
  SearchStats stats;
  auto plan = planner.plan(request, {}, &stats);
  ASSERT_FALSE(plan.has_value());
  EXPECT_GT(stats.rejected_compatibility, 0u);
}

TEST_F(DiagnosticsFixture, SuccessfulPlanStillCountsExploration) {
  spec::ServiceSpec service =
      spec::SpecBuilder("S")
          .interval_property("TrustLevel", 1, 9)
          .interface("Entry", {})
          .interface("Api", {})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {})
          .done()
          .component("Origin")
          .implements("Api", {})
          .condition_ge("TrustLevel", PropertyValue::integer(5))
          .done()
          .build();
  EnvironmentView env(network, translator);
  Planner planner(service, env);
  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = edge;
  SearchStats stats;
  auto plan = planner.plan(request, {}, &stats);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(stats.candidates_examined, 0u);
  EXPECT_GT(stats.plans_scored, 0u);
  // The Origin's condition rejected the edge node.
  EXPECT_GT(stats.rejected_condition, 0u);
  EXPECT_NE(stats.to_string().find("examined"), std::string::npos);
}

TEST_F(DiagnosticsFixture, EmptyBreakdownSaysNone) {
  SearchStats stats;
  EXPECT_NE(stats.to_string().find("none"), std::string::npos);
}

}  // namespace
}  // namespace psf::planner
