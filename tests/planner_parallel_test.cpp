// Parallel branch-and-bound planner: the parallel search must return plans
// identical to the serial exhaustive search (same placements, same wires,
// same metrics) for every objective, with or without bound pruning — the
// bound and the fan-out are pure search accelerations, never result changes.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "mail/mail_spec.hpp"
#include "net/topology.hpp"
#include "planner/planner.hpp"

namespace {

using namespace psf;

// The mail service on a seeded Waxman topology — the same world as the
// planner scaling benchmark, shrunk to test-friendly sizes.
struct WaxmanWorld {
  net::Network network;
  spec::ServiceSpec spec;
  std::shared_ptr<planner::CredentialMapTranslator> translator;
  std::unique_ptr<planner::EnvironmentView> env;
  std::unique_ptr<planner::Planner> planner;
  std::vector<planner::ExistingInstance> existing;

  WaxmanWorld(std::size_t num_nodes, std::uint64_t seed) {
    net::WaxmanParams params;
    params.num_nodes = num_nodes;
    util::Rng rng(seed);
    network = net::generate_waxman(params, rng);
    for (net::NodeId id : network.all_nodes()) {
      network.node(id).credentials.set(
          "trust", static_cast<std::int64_t>(2 + id.value % 3));
      network.node(id).credentials.set("secure", true);
    }
    network.node(net::NodeId{0}).credentials.set("trust", std::int64_t{5});
    for (net::LinkId id : network.all_links()) {
      network.link(id).credentials.set("secure", (id.value % 3) != 0);
    }

    spec = mail::mail_service_spec();
    translator = mail::mail_translator();
    env = std::make_unique<planner::EnvironmentView>(network, *translator);
    planner = std::make_unique<planner::Planner>(spec, *env);

    planner::ExistingInstance home;
    home.runtime_id = 1;
    home.component = spec.find_component("MailServer");
    home.node = net::NodeId{0};
    home.effective["ServerInterface"]["Confidentiality"] =
        spec::PropertyValue::boolean(true);
    home.effective["ServerInterface"]["TrustLevel"] =
        spec::PropertyValue::integer(5);
    home.downstream_latency_s = 1e-4;
    existing.push_back(home);
  }

  planner::PlanRequest request(planner::Objective objective) const {
    planner::PlanRequest req;
    req.interface_name = "ClientInterface";
    req.required_properties.emplace_back("TrustLevel",
                                         spec::PropertyValue::integer(2));
    req.client_node =
        net::NodeId{static_cast<std::uint32_t>(network.node_count() - 1)};
    req.max_depth = 4;
    req.objective = objective;
    return req;
  }
};

std::string describe_plan(const planner::DeploymentPlan& plan) {
  std::ostringstream oss;
  oss << "entry=" << plan.entry << "\n";
  for (const planner::Placement& p : plan.placements) {
    oss << "placement " << p.id << " " << p.component->name << "@"
        << p.node.value << " factors=" << p.factors.to_string()
        << " rate=" << p.inbound_rate_rps << " reuse=" << p.reuse_existing
        << "/" << p.existing_runtime_id << "\n";
  }
  for (const planner::Wire& w : plan.wires) {
    oss << "wire " << w.client << " -[" << w.interface_name << "]-> "
        << w.server << " rate=" << w.rate_rps << " hops=" << w.route.links.size()
        << "\n";
  }
  return oss.str();
}

// Exact structural equality: the parallel search promises bit-identical
// plans, so latency/cost compare with == rather than tolerances.
void expect_same_plan(const planner::DeploymentPlan& a,
                      const planner::DeploymentPlan& b,
                      const std::string& label) {
  EXPECT_EQ(describe_plan(a), describe_plan(b)) << label;
  EXPECT_EQ(a.metrics.expected_latency_s, b.metrics.expected_latency_s)
      << label;
  EXPECT_EQ(a.metrics.deployment_cost_s, b.metrics.deployment_cost_s)
      << label;
  EXPECT_EQ(a.metrics.new_components, b.metrics.new_components) << label;
  EXPECT_EQ(a.metrics.reused_components, b.metrics.reused_components)
      << label;
  EXPECT_EQ(a.metrics.min_headroom, b.metrics.min_headroom) << label;
}

constexpr planner::Objective kObjectives[] = {
    planner::Objective::kMinLatency, planner::Objective::kMinDeploymentCost,
    planner::Objective::kMaxCapacity};

TEST(PlannerParallelTest, ParallelEqualsSerialOnEveryObjective) {
  for (std::uint64_t seed : {2026ull, 7ull, 99ull}) {
    WaxmanWorld world(10, seed);
    for (planner::Objective objective : kObjectives) {
      planner::PlanRequest serial = world.request(objective);
      serial.search_threads = 1;

      planner::PlanRequest parallel = serial;
      parallel.search_threads = 4;

      planner::SearchStats serial_stats, parallel_stats;
      auto a = world.planner->plan(serial, world.existing, &serial_stats);
      auto b = world.planner->plan(parallel, world.existing, &parallel_stats);

      const std::string label = "seed=" + std::to_string(seed) +
                                " objective=" +
                                planner::objective_name(objective);
      ASSERT_EQ(a.has_value(), b.has_value()) << label;
      if (!a.has_value()) continue;
      expect_same_plan(*a, *b, label);
      EXPECT_EQ(serial_stats.workers_used, 1u) << label;
      // Workers clamp to the entry-branch count (2 implementing components
      // at the pinned client node), so 4 requested threads run as 2 workers.
      EXPECT_GT(parallel_stats.workers_used, 1u) << label;
      EXPECT_LE(parallel_stats.workers_used, 4u) << label;
    }
  }
}

TEST(PlannerParallelTest, BoundPruningDoesNotChangeThePlan) {
  for (std::uint64_t seed : {2026ull, 7ull}) {
    WaxmanWorld world(10, seed);
    for (planner::Objective objective : kObjectives) {
      planner::PlanRequest pruned = world.request(objective);
      pruned.bound_pruning = true;

      planner::PlanRequest exhaustive = world.request(objective);
      exhaustive.bound_pruning = false;

      planner::SearchStats pruned_stats, exhaustive_stats;
      auto a = world.planner->plan(pruned, world.existing, &pruned_stats);
      auto b =
          world.planner->plan(exhaustive, world.existing, &exhaustive_stats);

      const std::string label = "seed=" + std::to_string(seed) +
                                " objective=" +
                                planner::objective_name(objective);
      ASSERT_EQ(a.has_value(), b.has_value()) << label;
      if (!a.has_value()) continue;
      expect_same_plan(*a, *b, label);
      EXPECT_EQ(exhaustive_stats.pruned_by_bound, 0u) << label;
      // Pruning must make the search cheaper, never costlier.
      EXPECT_LE(pruned_stats.candidates_examined,
                exhaustive_stats.candidates_examined)
          << label;
    }
  }
}

TEST(PlannerParallelTest, ParallelBoundedEqualsSerialExhaustive) {
  // The strongest cross-check: all accelerations on vs all accelerations
  // off must still agree exactly.
  WaxmanWorld world(12, 2026);
  planner::PlanRequest fast = world.request(planner::Objective::kMinLatency);
  fast.search_threads = 4;
  fast.bound_pruning = true;

  planner::PlanRequest slow = world.request(planner::Objective::kMinLatency);
  slow.search_threads = 1;
  slow.bound_pruning = false;

  auto a = world.planner->plan(fast, world.existing);
  auto b = world.planner->plan(slow, world.existing);
  ASSERT_TRUE(a.has_value()) << a.status().to_string();
  ASSERT_TRUE(b.has_value()) << b.status().to_string();
  expect_same_plan(*a, *b, "fast-vs-slow");
}

TEST(PlannerParallelTest, BoundActuallyPrunes) {
  // On a topology large enough to have many dominated placements the bound
  // must cut a non-trivial part of the search.
  WaxmanWorld world(12, 2026);
  planner::PlanRequest request =
      world.request(planner::Objective::kMinLatency);
  planner::SearchStats stats;
  auto plan = world.planner->plan(request, world.existing, &stats);
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  EXPECT_GT(stats.pruned_by_bound, 0u);
}

TEST(PlannerParallelTest, StatsMergeAddsCountersAndReportsWorkers) {
  planner::SearchStats a;
  a.candidates_examined = 10;
  a.plans_scored = 2;
  a.pruned_by_bound = 3;
  a.workers_used = 1;
  a.rejected_condition = 4;
  a.rejected_unroutable = 1;

  planner::SearchStats b;
  b.candidates_examined = 5;
  b.plans_scored = 1;
  b.pruned_by_bound = 2;
  b.workers_used = 2;
  b.rejected_condition = 1;
  b.rejected_link_capacity = 7;

  a += b;
  EXPECT_EQ(a.candidates_examined, 15u);
  EXPECT_EQ(a.plans_scored, 3u);
  EXPECT_EQ(a.pruned_by_bound, 5u);
  EXPECT_EQ(a.workers_used, 2u);
  EXPECT_EQ(a.rejected_condition, 5u);
  EXPECT_EQ(a.rejected_unroutable, 1u);
  EXPECT_EQ(a.rejected_link_capacity, 7u);

  const std::string text = a.to_string();
  EXPECT_NE(text.find("pruned 5"), std::string::npos) << text;
  EXPECT_NE(text.find("2 worker(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("condition=5"), std::string::npos) << text;
}

TEST(PlannerParallelTest, ZeroThreadsMeansHardwareConcurrency) {
  WaxmanWorld world(8, 2026);
  planner::PlanRequest request =
      world.request(planner::Objective::kMinLatency);
  request.search_threads = 0;  // resolves to >= 1 worker
  planner::SearchStats stats;
  auto plan = world.planner->plan(request, world.existing, &stats);
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  EXPECT_GE(stats.workers_used, 1u);

  planner::PlanRequest serial = world.request(planner::Objective::kMinLatency);
  auto reference = world.planner->plan(serial, world.existing);
  ASSERT_TRUE(reference.has_value());
  expect_same_plan(*plan, *reference, "auto-threads");
}

}  // namespace
