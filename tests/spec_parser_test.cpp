// PSDL lexer/parser: round-trips of the paper's Fig. 2 constructs, error
// reporting with locations, and spec validation.
#include <gtest/gtest.h>

#include "mail/mail_spec.hpp"
#include "spec/lexer.hpp"
#include "spec/parser.hpp"

namespace psf::spec {
namespace {

// ---- lexer ------------------------------------------------------------------

TEST(LexerTest, TokenizesPunctuationAndIdentifiers) {
  auto tokens = tokenize("service X { a: 1; b = T; (c, d) -> min; }");
  ASSERT_TRUE(tokens.has_value()) << tokens.status().to_string();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdent);
  EXPECT_EQ(kinds.back(), TokenKind::kEnd);
  // Check a few structural tokens.
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kArrow),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kColon),
            kinds.end());
}

TEST(LexerTest, NumbersAndUnits) {
  auto tokens = tokenize("0.25 -3 150");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[0].float_value, 0.25);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[1].int_value, -3);
  EXPECT_EQ((*tokens)[2].int_value, 150);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = tokenize(R"("hello \"world\"\n")");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello \"world\"\n");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = tokenize("a // line comment\n# hash comment\nb");
  ASSERT_TRUE(tokens.has_value());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, end
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, UnterminatedStringReportsLocation) {
  auto tokens = tokenize("x\n  \"oops");
  ASSERT_FALSE(tokens.has_value());
  EXPECT_EQ(tokens.status().code(), util::ErrorCode::kParseError);
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = tokenize(">= <= == = ->");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kAssign);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kArrow);
}

TEST(LexerTest, InvalidCharacterFails) {
  auto tokens = tokenize("a @ b");
  ASSERT_FALSE(tokens.has_value());
  EXPECT_NE(tokens.status().message().find("'@'"), std::string::npos);
}

// ---- parser -----------------------------------------------------------------

constexpr const char* kTinyService = R"(
service Tiny {
  property Fresh { type: boolean; }
  property Level { type: interval(1, 9); }
  property Owner { type: string; }

  interface Api { properties: Fresh, Level; }
  interface Feed { }

  rule Fresh {
    (T, T) -> T;
    (any, F) -> F;
    (F, any) -> in;
  }

  component Origin {
    static;
    implements Api { Fresh = T; Level = 9; }
    conditions { node.Level >= 8; Owner == "corp"; }
    behaviors { capacity: 250; cpu_per_request: 40;
                bytes_per_request: 2 KB; code_size: 1 MB; }
  }

  data view Cache represents Origin {
    factors { Level = node.Level; }
    implements Api { Fresh = T; Level = factor.Level; }
    requires Api { Fresh = T; Level = factor.Level; }
    conditions { node.Level in (2, 7); }
    behaviors { rrf: 0.25; }
  }

  component Reader {
    transparent;
    implements Feed { }
    requires Api { Fresh = T; }
  }
}
)";

TEST(ParserTest, ParsesTinyService) {
  auto spec = parse_spec(kTinyService);
  ASSERT_TRUE(spec.has_value()) << spec.status().to_string();

  EXPECT_EQ(spec->name, "Tiny");
  ASSERT_EQ(spec->properties.size(), 3u);
  EXPECT_EQ(spec->properties[1].type, PropertyType::kInterval);
  EXPECT_EQ(spec->properties[1].interval_lo, 1);
  EXPECT_EQ(spec->properties[1].interval_hi, 9);

  const ComponentDef* origin = spec->find_component("Origin");
  ASSERT_NE(origin, nullptr);
  EXPECT_TRUE(origin->static_placement);
  EXPECT_EQ(origin->behaviors.capacity_rps, 250.0);
  EXPECT_EQ(origin->behaviors.bytes_per_request, 2048u);
  EXPECT_EQ(origin->behaviors.code_size_bytes, 1024u * 1024u);
  ASSERT_EQ(origin->conditions.size(), 2u);
  EXPECT_EQ(origin->conditions[0].op, Condition::Op::kGe);
  EXPECT_EQ(origin->conditions[1].op, Condition::Op::kEq);
  EXPECT_EQ(origin->conditions[1].value, PropertyValue::string("corp"));

  const ComponentDef* cache = spec->find_component("Cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->kind, ComponentKind::kDataView);
  EXPECT_EQ(cache->represents, "Origin");
  ASSERT_EQ(cache->factors.size(), 1u);
  EXPECT_EQ(cache->factors[0].value.kind, ValueExpr::Kind::kEnvRef);
  EXPECT_EQ(cache->behaviors.rrf, 0.25);
  ASSERT_EQ(cache->conditions.size(), 1u);
  EXPECT_EQ(cache->conditions[0].op, Condition::Op::kInRange);

  const ComponentDef* reader = spec->find_component("Reader");
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->transparent);

  // Rule with the three output kinds parsed.
  const PropertyModificationRule* rule = spec->rules.find("Fresh");
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->rows.size(), 3u);
  EXPECT_EQ(rule->rows[2].out_kind, RuleRow::OutKind::kInput);
}

struct BadSpecCase {
  std::string name;
  std::string source;
  std::string expected_fragment;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSpecCase> {};

TEST_P(ParserErrorTest, ReportsUsefully) {
  auto spec = parse_spec(GetParam().source);
  ASSERT_FALSE(spec.has_value());
  EXPECT_NE(spec.status().message().find(GetParam().expected_fragment),
            std::string::npos)
      << "message was: " << spec.status().message();
}

INSTANTIATE_TEST_SUITE_P(
    Errors, ParserErrorTest,
    ::testing::Values(
        BadSpecCase{"missing_service", "component X {}", "expected 'service'"},
        BadSpecCase{"unknown_decl", "service S { widget W {} }",
                    "unknown declaration"},
        BadSpecCase{"bad_type",
                    "service S { property P { type: float; } }",
                    "unknown property type"},
        BadSpecCase{"undeclared_interface",
                    "service S { component C { implements I {} } }",
                    "unknown interface"},
        BadSpecCase{"undeclared_property",
                    "service S { interface I {} "
                    "component C { implements I { X = 1; } } }",
                    "undeclared property"},
        BadSpecCase{"value_out_of_range",
                    "service S { property P { type: interval(1, 5); } "
                    "interface I { properties: P; } "
                    "component C { implements I { P = 9; } } }",
                    "out of range"},
        BadSpecCase{"view_of_unknown",
                    "service S { interface I {} "
                    "data view V represents Nope { implements I {} } }",
                    "unknown component"},
        BadSpecCase{"undeclared_factor",
                    "service S { property P { type: interval(1, 5); } "
                    "interface I { properties: P; } "
                    "component C { implements I { P = factor.Q; } } }",
                    "undeclared factor"},
        BadSpecCase{"rrf_range",
                    "service S { interface I {} "
                    "component C { implements I {} behaviors { rrf: 2; } } }",
                    "rrf"},
        BadSpecCase{"no_implements",
                    "service S { interface I {} component C { } }",
                    "implements no interface"},
        BadSpecCase{"duplicate_component",
                    "service S { interface I {} "
                    "component C { implements I {} } "
                    "component C { implements I {} } }",
                    "duplicate"}),
    [](const ::testing::TestParamInfo<BadSpecCase>& param_info) {
      return param_info.param.name;
    });

TEST(ParserTest, MailSpecParsesAndValidates) {
  // The production mail specification must always parse.
  auto spec = parse_spec(mail::mail_spec_source());
  ASSERT_TRUE(spec.has_value()) << spec.status().to_string();
  EXPECT_EQ(spec->name, "SecureMail");
  EXPECT_EQ(spec->components.size(), 6u);
  EXPECT_NE(spec->find_component("ViewMailServer"), nullptr);
  EXPECT_TRUE(spec->find_component("MailServer")->static_placement);
  EXPECT_TRUE(spec->find_component("Encryptor")->transparent);
  EXPECT_EQ(spec->find_component("ViewMailServer")->behaviors.rrf, 0.2);
}

TEST(ParserTest, SpecToStringReparses) {
  // to_string() is not guaranteed to be PSDL, but the structural content
  // must survive: spot-check a round trip through the object model.
  auto spec = parse_spec(kTinyService);
  ASSERT_TRUE(spec.has_value());
  const std::string dump = spec->to_string();
  EXPECT_NE(dump.find("Origin"), std::string::npos);
  EXPECT_NE(dump.find("rrf: 0.25"), std::string::npos);
  EXPECT_NE(dump.find("static;"), std::string::npos);
}

TEST(ValidateTest, InterfacePropertyMustBeDeclared) {
  ServiceSpec spec;
  spec.name = "S";
  InterfaceDef iface;
  iface.name = "I";
  iface.properties = {"Ghost"};
  spec.interfaces.push_back(iface);
  auto st = spec.validate();
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("Ghost"), std::string::npos);
}

// ---- recovering parser ------------------------------------------------------

TEST(ParseRecoverTest, CleanSpecParsesWithoutErrors) {
  ParseResult result = parse_spec_recover(mail::mail_spec_source());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.spec.name, "SecureMail");
  auto strict = parse_spec(mail::mail_spec_source());
  ASSERT_TRUE(strict.has_value());
  EXPECT_EQ(result.spec.components.size(), strict->components.size());
}

TEST(ParseRecoverTest, CollectsMultipleErrorsInOneRun) {
  // Three independent defects: an unknown property type, a stray '-' (a
  // lexical error), and the parse error it leaves behind in the rule row.
  const char* source = R"(
service S {
  property P { type: wibble; }
  property Q { type: boolean; }
  rule Q { (T, T) - T; }
  component B {
    implements J { }
  }
}
)";
  ParseResult result = parse_spec_recover(source);
  EXPECT_GE(result.errors.size(), 2u) << "got " << result.errors.size();
  // Errors arrive in source order, each with a location.
  for (std::size_t i = 0; i < result.errors.size(); ++i) {
    EXPECT_TRUE(result.errors[i].loc.valid());
    if (i > 0) {
      EXPECT_FALSE(result.errors[i].loc < result.errors[i - 1].loc);
    }
  }
  // Recovery kept the healthy declarations around the defects.
  EXPECT_NE(result.spec.find_property("Q"), nullptr);
  EXPECT_NE(result.spec.find_component("B"), nullptr);
}

TEST(ParseRecoverTest, ResyncsAtNextTopLevelKeyword) {
  const char* source = R"(
service S {
  component A {
    implements I { P = ; }
  }
  component B {
    implements I { }
  }
}
)";
  ParseResult result = parse_spec_recover(source);
  EXPECT_FALSE(result.ok());
  // A is abandoned at the defect; B after the sync point still parses.
  EXPECT_NE(result.spec.find_component("B"), nullptr);
}

TEST(ParseRecoverTest, LexicalErrorsCarryLocations) {
  ParseResult result = parse_spec_recover("service S {\n  \"unterminated\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.errors.front().loc.line, 2);
}

TEST(ParseRecoverTest, StrictParserAcceptsWhatRecoveryCallsClean) {
  // parse_spec adds validate() on top, so it may still reject; but it must
  // never fail with a *parse* error when recovery found none.
  const char* source = R"(
service S {
  property P { type: interval(1, 10); }
  interface I { properties: P; }
  component A { implements I { P = 5; } }
}
)";
  ParseResult recovered = parse_spec_recover(source);
  EXPECT_TRUE(recovered.ok());
  auto strict = parse_spec(source);
  EXPECT_TRUE(strict.has_value()) << strict.status().to_string();
}

}  // namespace
}  // namespace psf::spec
