// Property-based tests: invariants that must hold across randomized inputs.
//
//  - Planner soundness: on random Waxman topologies with randomized
//    credentials, every plan the search emits passes the independent
//    validator, and unsatisfiable outcomes never crash.
//  - Planner determinism: same inputs -> byte-identical plan.
//  - plan_many ≡ sequential plan.
//  - Simulator: event ordering invariants under random schedules.
//  - Crypto: seal/unseal round-trips and tamper detection over random data.
#include <gtest/gtest.h>

#include "crypto/cipher.hpp"
#include "mail/mail_spec.hpp"
#include "net/topology.hpp"
#include "planner/validate.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace psf {
namespace {

// Random mail-capable world: Waxman topology, node trust in [1,5], node 0
// promoted to a trust-5 home, each link secure with probability 0.6.
struct RandomWorld {
  net::Network network;
  spec::ServiceSpec spec = mail::mail_service_spec();
  std::shared_ptr<planner::CredentialMapTranslator> translator =
      mail::mail_translator();
  std::vector<planner::ExistingInstance> existing;

  explicit RandomWorld(std::uint64_t seed, std::size_t nodes = 10) {
    util::Rng rng(seed);
    net::WaxmanParams params;
    params.num_nodes = nodes;
    params.alpha = 0.5;
    network = net::generate_waxman(params, rng);
    for (net::NodeId id : network.all_nodes()) {
      network.node(id).credentials.set(
          "trust", static_cast<std::int64_t>(rng.uniform_u64(1, 5)));
      network.node(id).credentials.set("secure", true);
    }
    network.node(net::NodeId{0}).credentials.set("trust", std::int64_t{5});
    for (net::LinkId id : network.all_links()) {
      network.link(id).credentials.set("secure", rng.bernoulli(0.6));
    }

    planner::ExistingInstance home;
    home.runtime_id = 1;
    home.component = spec.find_component("MailServer");
    home.node = net::NodeId{0};
    home.effective["ServerInterface"]["Confidentiality"] =
        spec::PropertyValue::boolean(true);
    home.effective["ServerInterface"]["TrustLevel"] =
        spec::PropertyValue::integer(5);
    home.downstream_latency_s = 1e-4;
    existing.push_back(home);
  }
};

class PlannerSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerSoundness, EveryEmittedPlanValidates) {
  RandomWorld world(GetParam());
  planner::EnvironmentView env(world.network, *world.translator);
  planner::Planner planner(world.spec, env);

  util::Rng rng(GetParam() ^ 0xABCDEF);
  std::size_t satisfiable = 0;
  for (int trial = 0; trial < 8; ++trial) {
    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back(
        "TrustLevel",
        spec::PropertyValue::integer(rng.uniform_i64(2, 4) == 3 ? 4 : 2));
    request.client_node = net::NodeId{static_cast<std::uint32_t>(
        rng.uniform_u64(0, world.network.node_count() - 1))};
    request.request_rate_rps = rng.uniform(1.0, 40.0);
    request.max_depth = 5;

    auto plan = planner.plan(request, world.existing);
    if (!plan.has_value()) {
      EXPECT_EQ(plan.status().code(), util::ErrorCode::kUnsatisfiable);
      continue;
    }
    ++satisfiable;
    auto report = planner::validate_plan(world.spec, env, request, *plan,
                                         world.existing);
    EXPECT_TRUE(report.ok())
        << "seed " << GetParam() << " trial " << trial << ":\n"
        << report.to_string() << plan->to_string(world.network);
  }
  // With trust-5 home at node 0 and mostly-secure links, a reasonable
  // fraction of random requests must be satisfiable, else the generator or
  // planner regressed into rejecting everything.
  EXPECT_GT(satisfiable, 0u) << "seed " << GetParam();
}

TEST_P(PlannerSoundness, PlanningIsDeterministic) {
  RandomWorld world(GetParam());
  planner::EnvironmentView env(world.network, *world.translator);
  planner::Planner planner(world.spec, env);

  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.required_properties.emplace_back("TrustLevel",
                                           spec::PropertyValue::integer(2));
  request.client_node =
      net::NodeId{static_cast<std::uint32_t>(world.network.node_count() - 1)};
  request.max_depth = 5;

  auto a = planner.plan(request, world.existing);
  auto b = planner.plan(request, world.existing);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a.has_value()) return;
  EXPECT_EQ(a->to_string(world.network), b->to_string(world.network));
  EXPECT_EQ(a->metrics.expected_latency_s, b->metrics.expected_latency_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerSoundness,
                         ::testing::Values(1, 7, 42, 1337, 271828, 314159,
                                           20260707, 987654321));

TEST(PlanManyTest, MatchesSequentialPlanning) {
  RandomWorld world(99);
  planner::EnvironmentView env(world.network, *world.translator);
  planner::Planner planner(world.spec, env);

  std::vector<planner::PlanRequest> requests;
  for (std::uint32_t n = 0; n < world.network.node_count(); ++n) {
    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back("TrustLevel",
                                             spec::PropertyValue::integer(2));
    request.client_node = net::NodeId{n};
    request.max_depth = 5;
    requests.push_back(request);
  }

  auto parallel = planner.plan_many(requests, world.existing, 4);
  ASSERT_EQ(parallel.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto sequential = planner.plan(requests[i], world.existing);
    ASSERT_EQ(parallel[i].has_value(), sequential.has_value()) << i;
    if (sequential.has_value()) {
      EXPECT_EQ(parallel[i]->to_string(world.network),
                sequential->to_string(world.network))
          << i;
    }
  }
}

TEST(PlanManyTest, EmptyAndSingleThread) {
  RandomWorld world(5);
  planner::EnvironmentView env(world.network, *world.translator);
  planner::Planner planner(world.spec, env);
  EXPECT_TRUE(planner.plan_many({}, world.existing).empty());

  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.client_node = net::NodeId{0};
  request.max_depth = 4;
  auto results = planner.plan_many({request}, world.existing, 1);
  ASSERT_EQ(results.size(), 1u);
}

// ---- simulator properties ----------------------------------------------

TEST(SimulatorProperty, RandomSchedulesExecuteInNondecreasingTimeOrder) {
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    util::Rng rng(seed);
    sim::Simulator sim;
    std::vector<sim::Time> execution_times;
    for (int i = 0; i < 2000; ++i) {
      sim.schedule(sim::Duration::from_nanos(
                       static_cast<std::int64_t>(rng.uniform_u64(0, 1000000))),
                   [&sim, &execution_times] {
                     execution_times.push_back(sim.now());
                   });
    }
    sim.run();
    ASSERT_EQ(execution_times.size(), 2000u);
    for (std::size_t i = 1; i < execution_times.size(); ++i) {
      EXPECT_LE(execution_times[i - 1], execution_times[i]);
    }
  }
}

TEST(SimulatorProperty, NestedSchedulingPreservesCount) {
  util::Rng rng(77);
  sim::Simulator sim;
  int executed = 0;
  std::function<void(int)> spawn = [&](int budget) {
    ++executed;
    if (budget <= 0) return;
    const int children = static_cast<int>(rng.uniform_u64(0, 2));
    for (int c = 0; c < children; ++c) {
      sim.schedule(
          sim::Duration::from_micros(
              static_cast<double>(rng.uniform_u64(1, 50))),
          [&spawn, budget] { spawn(budget - 1); });
    }
  };
  sim.schedule(sim::Duration::from_micros(1), [&spawn] { spawn(12); });
  const std::size_t total = sim.run();
  EXPECT_EQ(static_cast<int>(total), executed);
  EXPECT_TRUE(sim.empty());
}

// ---- crypto properties ---------------------------------------------------

class CryptoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CryptoRoundTrip, SealUnsealIdentityAndTamperDetection) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = rng.uniform_u64(0, 4096);
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));

    const crypto::SymmetricKey key =
        crypto::derive_key(rng.next_u64(), "prop");
    const std::uint64_t nonce = rng.next_u64();
    crypto::SealedBlob blob = crypto::seal(key, nonce, data);

    std::vector<std::uint8_t> out;
    ASSERT_TRUE(crypto::unseal(key, blob, out));
    EXPECT_EQ(out, data);

    if (!blob.ciphertext.empty()) {
      // Flip one random bit: must be detected.
      const std::size_t at = rng.uniform_u64(0, blob.ciphertext.size() - 1);
      blob.ciphertext[at] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_u64(0, 7));
      EXPECT_FALSE(crypto::unseal(key, blob, out))
          << "undetected bit flip at " << at;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoRoundTrip,
                         ::testing::Values(3, 1009, 65537));

// ---- rng distribution sanity -----------------------------------------------

TEST(RngProperty, UniformIntIsRoughlyUniform) {
  util::Rng rng(555);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_u64(0, kBuckets - 1)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1) << b;
  }
}

}  // namespace
}  // namespace psf
