// Mail service edge cases: batching limits, forwarding of server-
// authoritative operations through views, malformed payloads, replica
// registration relays, wire-size helpers.
#include <gtest/gtest.h>

#include "mail/client.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/server.hpp"
#include "mail/view_server.hpp"

namespace psf::mail {
namespace {

struct MailEdgeFixture : public ::testing::Test {
  MailEdgeFixture() : runtime(sim, network) {
    net::Credentials creds;
    creds.set("trust", std::int64_t{5});
    creds.set("secure", true);
    node = network.add_node("n", 1e6, creds);

    config = std::make_shared<MailServiceConfig>();
    spec = std::make_unique<spec::ServiceSpec>(mail_service_spec());
    PSF_CHECK(register_mail_factories(runtime.factories(), config).is_ok());
  }

  runtime::RuntimeInstanceId install(const std::string& type,
                                     std::int64_t trust = 0) {
    planner::FactorBindings factors;
    if (trust > 0) {
      factors.values["TrustLevel"] = spec::PropertyValue::integer(trust);
    }
    runtime::RuntimeInstanceId out = 0;
    runtime.install(*spec->find_component(type), node, factors, node,
                    [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK(id.has_value());
                      out = *id;
                    });
    sim.run();
    return out;
  }

  runtime::Response invoke(runtime::RuntimeInstanceId target,
                           runtime::Request request) {
    runtime::Response out;
    bool done = false;
    runtime.invoke_from_node(node, target, std::move(request),
                             [&](runtime::Response r) {
                               out = std::move(r);
                               done = true;
                             });
    sim.run();
    PSF_CHECK(done);
    return out;
  }

  runtime::Request send_request(const std::string& user, std::uint64_t id) {
    auto body = std::make_shared<SendBody>();
    body->message.id = id;
    body->message.from = user;
    body->message.to = user;
    body->message.plaintext = {'m'};
    runtime::Request request;
    request.op = ops::kSend;
    request.body = body;
    request.wire_bytes = send_wire_bytes(body->message);
    return request;
  }

  sim::Simulator sim;
  net::Network network;
  runtime::SmockRuntime runtime;
  net::NodeId node;
  MailConfigPtr config;
  std::unique_ptr<spec::ServiceSpec> spec;
};

TEST_F(MailEdgeFixture, ReceiveIsCappedByConfiguredBatch) {
  config->receive_batch = 5;
  const auto server = install("MailServer");
  ASSERT_TRUE(runtime.start(server).is_ok());
  for (std::uint64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(invoke(server, send_request("popular", i)).ok);
  }

  auto body = std::make_shared<ReceiveBody>();
  body->user = "popular";
  body->max_messages = 100;  // asks for more than the server will give
  runtime::Request request;
  request.op = ops::kReceive;
  request.body = body;
  auto response = invoke(server, std::move(request));
  ASSERT_TRUE(response.ok);
  const auto* result = runtime::body_as<ReceiveResultBody>(response);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->messages.size(), 5u);
  // The *latest* messages are returned.
  EXPECT_EQ(result->messages.back().id, 20u);
  EXPECT_EQ(result->messages.front().id, 16u);
}

TEST_F(MailEdgeFixture, ReceiveForUnknownUserIsEmptyNotError) {
  const auto server = install("MailServer");
  ASSERT_TRUE(runtime.start(server).is_ok());
  auto body = std::make_shared<ReceiveBody>();
  body->user = "ghost";
  runtime::Request request;
  request.op = ops::kReceive;
  request.body = body;
  auto response = invoke(server, std::move(request));
  ASSERT_TRUE(response.ok);
  const auto* result = runtime::body_as<ReceiveResultBody>(response);
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->messages.empty());
}

TEST_F(MailEdgeFixture, UnknownOpIsRejected) {
  const auto server = install("MailServer");
  ASSERT_TRUE(runtime.start(server).is_ok());
  runtime::Request request;
  request.op = "mail.teleport";
  auto response = invoke(server, std::move(request));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown op"), std::string::npos);
}

TEST_F(MailEdgeFixture, MalformedBodiesAreRejectedNotCrashed) {
  const auto server = install("MailServer");
  ASSERT_TRUE(runtime.start(server).is_ok());
  for (const char* op : {ops::kSend, ops::kReceive, ops::kCreateAccount,
                         ops::kAddContact, ops::kGetContacts, ops::kSync,
                         ops::kRegisterReplica}) {
    runtime::Request request;
    request.op = op;  // body missing entirely
    auto response = invoke(server, std::move(request));
    EXPECT_FALSE(response.ok) << op;
  }
}

TEST_F(MailEdgeFixture, ContactOpsAreForwardedThroughViews) {
  const auto server = install("MailServer");
  const auto view = install("ViewMailServer", 4);
  ASSERT_TRUE(runtime.wire(view, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(view).is_ok());
  sim.run();

  auto contact = std::make_shared<ContactBody>();
  contact->user = "alice";
  contact->contact = "bob";
  runtime::Request add;
  add.op = ops::kAddContact;
  add.body = contact;
  ASSERT_TRUE(invoke(view, std::move(add)).ok);

  // The contact landed at the authoritative server, not in the view.
  auto* server_comp = dynamic_cast<MailServerComponent*>(
      runtime.instance(server).component.get());
  const Account* account = server_comp->find_account("alice");
  ASSERT_NE(account, nullptr);
  EXPECT_EQ(account->contacts.count("bob"), 1u);
}

TEST_F(MailEdgeFixture, ReplicaRegistrationRelaysThroughIntermediateView) {
  const auto server = install("MailServer");
  const auto mid = install("ViewMailServer", 4);
  const auto leaf = install("ViewMailServer", 2);
  ASSERT_TRUE(runtime.wire(mid, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.wire(leaf, "ServerInterface", mid).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(mid).is_ok());
  ASSERT_TRUE(runtime.start(leaf).is_ok());
  sim.run();

  // The home sees both replicas (mid registers itself; leaf's registration
  // is recorded by mid and relayed upward).
  auto* server_comp = dynamic_cast<MailServerComponent*>(
      runtime.instance(server).component.get());
  EXPECT_EQ(server_comp->directory()->replica_count(), 2u);
}

TEST_F(MailEdgeFixture, CreateAccountProvisionsKeys) {
  const auto server = install("MailServer");
  ASSERT_TRUE(runtime.start(server).is_ok());
  auto body = std::make_shared<AccountBody>();
  body->user = "newbie";
  runtime::Request request;
  request.op = ops::kCreateAccount;
  request.body = body;
  ASSERT_TRUE(invoke(server, std::move(request)).ok);
  for (std::int64_t level = 1; level <= kMaxSensitivity; ++level) {
    EXPECT_TRUE(config->keys->has_key({"newbie", level})) << level;
  }
}

TEST_F(MailEdgeFixture, WireSizeHelpers) {
  MailMessage plain;
  plain.plaintext.assign(1000, 'x');
  EXPECT_EQ(plain.body_bytes(), 1000u);
  EXPECT_EQ(send_wire_bytes(plain), 1256u);

  MailMessage sealed_msg;
  sealed_msg.sensitivity = 3;
  const auto key = crypto::derive_key(1, "k");
  sealed_msg.sealed =
      crypto::seal(key, 1, std::vector<std::uint8_t>(1000, 'x'));
  EXPECT_EQ(sealed_msg.body_bytes(), 1016u);  // +nonce/MAC overhead

  std::vector<MailMessage> batch{plain, sealed_msg};
  EXPECT_EQ(receive_result_wire_bytes(batch),
            128u + (128 + 1000) + (128 + 1016));
}

TEST_F(MailEdgeFixture, ViewStatsForwardFraction) {
  ViewServerStats stats;
  EXPECT_EQ(stats.forward_fraction(), 0.0);  // no ops yet
  stats.sends_local = 8;
  stats.receives_local = 8;
  stats.sends_forwarded = 2;
  stats.receives_forwarded = 2;
  EXPECT_DOUBLE_EQ(stats.forward_fraction(), 0.2);
}

}  // namespace
}  // namespace psf::mail
