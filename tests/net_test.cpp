#include <gtest/gtest.h>

#include "net/network.hpp"

namespace psf::net {
namespace {

Network diamond() {
  // a - b - d  (fast path through b: 10ms+10ms)
  //  \     /
  //    c      (slow: 50ms+50ms, but higher bandwidth)
  Network n;
  const NodeId a = n.add_node("a");
  const NodeId b = n.add_node("b");
  const NodeId c = n.add_node("c");
  const NodeId d = n.add_node("d");
  n.add_link(a, b, 10e6, sim::Duration::from_millis(10));
  n.add_link(b, d, 10e6, sim::Duration::from_millis(10));
  n.add_link(a, c, 100e6, sim::Duration::from_millis(50));
  n.add_link(c, d, 100e6, sim::Duration::from_millis(50));
  return n;
}

TEST(NetworkTest, NodeAndLinkAccessors) {
  Network n;
  Credentials creds;
  creds.set("trust", std::int64_t{4});
  const NodeId a = n.add_node("alpha", 2e6, creds);
  const NodeId b = n.add_node("beta");
  const LinkId l = n.add_link(a, b, 5e6, sim::Duration::from_millis(7));

  EXPECT_EQ(n.node_count(), 2u);
  EXPECT_EQ(n.link_count(), 1u);
  EXPECT_EQ(n.node(a).name, "alpha");
  EXPECT_EQ(n.node(a).cpu_capacity, 2e6);
  EXPECT_EQ(n.node(a).credentials.get_int("trust", 0), 4);
  EXPECT_EQ(n.link(l).other(a), b);
  EXPECT_EQ(n.link(l).other(b), a);
  EXPECT_EQ(n.find_node("beta"), b);
  EXPECT_FALSE(n.find_node("gamma").has_value());
}

TEST(NetworkTest, LinkBetween) {
  Network n = diamond();
  EXPECT_TRUE(n.link_between(NodeId{0}, NodeId{1}).has_value());
  EXPECT_TRUE(n.link_between(NodeId{1}, NodeId{0}).has_value());
  EXPECT_FALSE(n.link_between(NodeId{0}, NodeId{3}).has_value());
}

TEST(NetworkTest, RoutePrefersLowestLatency) {
  Network n = diamond();
  auto route = n.route(NodeId{0}, NodeId{3});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->links.size(), 2u);
  EXPECT_EQ(route->total_latency.millis(), 20.0);  // via b, not c
  EXPECT_EQ(route->bottleneck_bandwidth_bps, 10e6);
}

TEST(NetworkTest, RouteToSelfIsLocal) {
  Network n = diamond();
  auto route = n.route(NodeId{2}, NodeId{2});
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->local());
}

TEST(NetworkTest, DisconnectedRouteIsNull) {
  Network n;
  n.add_node("a");
  n.add_node("b");
  EXPECT_FALSE(n.route(NodeId{0}, NodeId{1}).has_value());
}

TEST(NetworkTest, CachedRouteMatchesRoute) {
  Network n = diamond();
  const Route* cached = n.cached_route(NodeId{0}, NodeId{3});
  auto fresh = n.route(NodeId{0}, NodeId{3});
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(cached->links, fresh->links);
  // Second call returns the same object.
  EXPECT_EQ(cached, n.cached_route(NodeId{0}, NodeId{3}));
}

TEST(NetworkTest, CachedRouteMarksDisconnectedPairs) {
  Network n;
  n.add_node("a");
  n.add_node("b");
  const Route* r = n.cached_route(NodeId{0}, NodeId{1});
  EXPECT_EQ(r->bottleneck_bandwidth_bps, 0.0);
}

TEST(NetworkTest, CacheInvalidatedByMutation) {
  Network n = diamond();
  const Route* before = n.cached_route(NodeId{0}, NodeId{3});
  EXPECT_EQ(before->total_latency.millis(), 20.0);
  // Add a direct fast link; the cache must see it.
  n.add_link(NodeId{0}, NodeId{3}, 1e6, sim::Duration::from_millis(1));
  const Route* after = n.cached_route(NodeId{0}, NodeId{3});
  EXPECT_EQ(after->total_latency.millis(), 1.0);
}

TEST(NetworkTest, CacheInvalidatedByPropertyMutation) {
  // Regression: set_link_latency / set_link_bandwidth must invalidate the
  // precomputed route table, not just structural add_link. Before the fix a
  // cached route kept steering traffic over a degraded link.
  Network n = diamond();
  n.precompute_routes();
  EXPECT_EQ(n.cached_route(NodeId{0}, NodeId{3})->total_latency.millis(),
            20.0);
  // Degrade the fast a-b edge so the c path (100 ms) wins.
  n.set_link_latency(LinkId{0}, sim::Duration::from_millis(500));
  EXPECT_EQ(n.cached_route(NodeId{0}, NodeId{3})->total_latency.millis(),
            100.0);
  // Bandwidth changes must refresh the cached bottleneck too.
  n.set_link_bandwidth(LinkId{2}, 1e6);
  EXPECT_EQ(n.cached_route(NodeId{0}, NodeId{3})->bottleneck_bandwidth_bps,
            1e6);
}

TEST(NetworkTest, DownLinksAndNodesAreUnroutable) {
  Network n = diamond();
  n.precompute_routes();
  // Kill the fast path; routing falls back to the c detour.
  n.set_link_up(LinkId{0}, false);
  EXPECT_EQ(n.cached_route(NodeId{0}, NodeId{3})->total_latency.millis(),
            100.0);
  // Kill the detour node too: no route at all.
  n.set_node_up(NodeId{2}, false);
  auto direct = n.route(NodeId{0}, NodeId{3});
  EXPECT_FALSE(direct.has_value());
  EXPECT_EQ(n.cached_route(NodeId{0}, NodeId{3})->bottleneck_bandwidth_bps,
            0.0);
  // Heal everything; the original route returns.
  n.set_link_up(LinkId{0}, true);
  n.set_node_up(NodeId{2}, true);
  EXPECT_EQ(n.cached_route(NodeId{0}, NodeId{3})->total_latency.millis(),
            20.0);
}

TEST(NetworkTest, LinkLossBoundsChecked) {
  Network n = diamond();
  n.set_link_loss(LinkId{0}, 0.25);
  EXPECT_EQ(n.link(LinkId{0}).loss, 0.25);
  n.set_link_loss(LinkId{0}, 0.0);
  EXPECT_EQ(n.link(LinkId{0}).loss, 0.0);
}

TEST(NetworkTest, TransferTimeModel) {
  Network n;
  const NodeId a = n.add_node("a");
  const NodeId b = n.add_node("b");
  const LinkId l = n.add_link(a, b, 8e6, sim::Duration::from_millis(100));
  // 1 MB over 8 Mb/s = 1 s serialization + 100 ms propagation.
  const sim::Duration t = n.link(l).transfer_time(1'000'000);
  EXPECT_NEAR(t.seconds(), 1.1, 1e-9);
}

TEST(NetworkTest, DeterministicTieBreakByHops) {
  // Two equal-latency paths: a-b-d (2 hops) vs a-d (1 hop, same latency).
  Network n;
  const NodeId a = n.add_node("a");
  const NodeId b = n.add_node("b");
  const NodeId d = n.add_node("d");
  n.add_link(a, b, 10e6, sim::Duration::from_millis(5));
  n.add_link(b, d, 10e6, sim::Duration::from_millis(5));
  n.add_link(a, d, 10e6, sim::Duration::from_millis(10));
  auto route = n.route(a, d);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->links.size(), 1u);  // fewer hops wins the tie
}

TEST(CredentialsTest, TypedAccessorsAndCoercion) {
  Credentials c;
  c.set("flag", true);
  c.set("level", std::int64_t{3});
  c.set("ratio", 2.5);
  c.set("name", std::string("abc"));

  EXPECT_TRUE(c.get_bool("flag", false));
  EXPECT_EQ(c.get_int("level", 0), 3);
  EXPECT_TRUE(c.get_bool("level", false));   // nonzero int -> true
  EXPECT_EQ(c.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(c.get_int("ratio", 0), 2);       // double -> int truncation
  EXPECT_EQ(c.get_string("name", ""), "abc");
  EXPECT_EQ(c.get_string("level", ""), "3");  // stringification
  EXPECT_EQ(c.get_int("missing", -7), -7);
  EXPECT_FALSE(c.has("missing"));
}

TEST(NetworkTest, ReservationAccounting) {
  Network n = diamond();
  Node& node = n.node(NodeId{0});
  node.cpu_reserved = 3e5;
  EXPECT_DOUBLE_EQ(node.cpu_available(), 1e6 - 3e5);
  Link& link = n.link(LinkId{0});
  link.bandwidth_reserved_bps = 4e6;
  EXPECT_DOUBLE_EQ(link.bandwidth_available_bps(), 6e6);
}

}  // namespace
}  // namespace psf::net
