// Access-path plan cache and request coalescing: warm hits replay cold
// outcomes bit-for-bit, epoch bumps invalidate, hit-time validation catches
// retired/saturated instances, and a thundering herd plans exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"
#include "planner/environment.hpp"
#include "runtime/plan_cache.hpp"
#include "trust/trust_graph.hpp"

namespace psf {
namespace {

struct PlanCacheFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  planner::PlanRequest defaults(std::int64_t trust = 4, double rate = 50.0) {
    planner::PlanRequest d;
    d.interface_name = "ClientInterface";
    d.required_properties.emplace_back("TrustLevel",
                                       spec::PropertyValue::integer(trust));
    d.request_rate_rps = rate;
    return d;
  }

  runtime::AccessOutcome bind_ok(net::NodeId node, planner::PlanRequest d) {
    auto proxy = fw->make_proxy(node, "SecureMail", d);
    util::Status status = util::internal_error("incomplete");
    proxy->bind([&status](util::Status st) { status = st; });
    fw->run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return proxy->outcome();
  }

  const runtime::PlanCacheTelemetry& telemetry() {
    return fw->server().access_telemetry();
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
};

// ---- fingerprint unit behavior --------------------------------------------

TEST(PlanFingerprintTest, RateBucketsArePowerOfTwoCeilings) {
  EXPECT_EQ(runtime::plan_rate_bucket(0.0), 0u);
  EXPECT_EQ(runtime::plan_rate_bucket(-3.0), 0u);
  EXPECT_EQ(runtime::plan_rate_bucket(1.0), 1u);
  EXPECT_EQ(runtime::plan_rate_bucket(50.0), 64u);
  EXPECT_EQ(runtime::plan_rate_bucket(64.0), 64u);
  EXPECT_EQ(runtime::plan_rate_bucket(65.0), 128u);
}

TEST(PlanFingerprintTest, PropertyOrderDoesNotSplitTheCache) {
  planner::PlanRequest a;
  a.interface_name = "I";
  a.client_node = net::NodeId{3};
  a.required_properties.emplace_back("TrustLevel",
                                     spec::PropertyValue::integer(4));
  a.required_properties.emplace_back("Encrypted",
                                     spec::PropertyValue::boolean(true));
  planner::PlanRequest b = a;
  std::swap(b.required_properties[0], b.required_properties[1]);
  EXPECT_EQ(runtime::plan_fingerprint(a), runtime::plan_fingerprint(b));

  // Rates in the same bucket share a fingerprint; different buckets split.
  a.request_rate_rps = 40.0;
  b.request_rate_rps = 60.0;
  EXPECT_EQ(runtime::plan_fingerprint(a), runtime::plan_fingerprint(b));
  b.request_rate_rps = 300.0;
  EXPECT_NE(runtime::plan_fingerprint(a), runtime::plan_fingerprint(b));

  // Search shape never affects the planner's result, so it must not split
  // the cache either.
  b = a;
  b.search_threads = 8;
  b.bound_pruning = false;
  EXPECT_EQ(runtime::plan_fingerprint(a), runtime::plan_fingerprint(b));
}

// ---- warm path -------------------------------------------------------------

TEST_F(PlanCacheFixture, WarmHitSkipsPlanningAndDeployment) {
  auto cold = bind_ok(sites.sd_client, defaults());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.search.candidates_examined, 0u);
  EXPECT_GT(cold.costs.planning.nanos(), 0);
  const std::size_t instances_after_cold = fw->runtime().instance_count();

  auto warm = bind_ok(sites.sd_client, defaults());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.coalesced);
  // Zero planner candidates examined and no new instances: the second
  // client shares the cached access path end to end.
  EXPECT_EQ(warm.search.candidates_examined, 0u);
  EXPECT_EQ(warm.costs.planning.nanos(), 0);
  EXPECT_EQ(warm.costs.deployment.nanos(), 0);
  EXPECT_EQ(fw->runtime().instance_count(), instances_after_cold);
  EXPECT_EQ(warm.entry, cold.entry);
  EXPECT_EQ(warm.instances, cold.instances);

  EXPECT_EQ(telemetry().hits, 1u);
  EXPECT_EQ(telemetry().misses, 1u);
  EXPECT_EQ(fw->server().plan_cache_size("SecureMail"), 1u);

  // Load accounting matches the cold path: two 50 rps clients on the view.
  bool found = false;
  for (const auto& inst : fw->server().existing_instances("SecureMail")) {
    if (inst.component->name == "ViewMailServer") {
      found = true;
      EXPECT_NEAR(inst.current_load_rps, 100.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PlanCacheFixture, DifferentRequestsMiss) {
  auto cold = bind_ok(sites.sd_client, defaults());
  ASSERT_FALSE(cold.cache_hit);

  // Different rate bucket: cold plan (the planner still reuses the pool).
  auto other_rate = bind_ok(sites.sd_client, defaults(4, 300.0));
  EXPECT_FALSE(other_rate.cache_hit);

  // Different client node: cold plan.
  auto other_site = bind_ok(sites.ny_client, defaults());
  EXPECT_FALSE(other_site.cache_hit);
  EXPECT_EQ(telemetry().hits, 0u);
}

// ---- equivalence (acceptance criterion) ------------------------------------

// A world identical to the fixture's, built independently so a cache-hit
// outcome can be compared against a *cold* plan computed in a universe where
// the cache never interfered.
struct World {
  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;

  World() {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    PSF_CHECK(mail::register_mail_factories(fw->runtime().factories(), config)
                  .is_ok());
    PSF_CHECK(fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator())
                  .is_ok());
  }

  runtime::AccessOutcome bind(net::NodeId node, planner::PlanRequest d) {
    auto proxy = fw->make_proxy(node, "SecureMail", d);
    util::Status status = util::internal_error("incomplete");
    proxy->bind([&status](util::Status st) { status = st; });
    fw->run();
    PSF_CHECK_MSG(status.is_ok(), status.to_string());
    return proxy->outcome();
  }
};

TEST_F(PlanCacheFixture, HitIsBitIdenticalToColdPlanUnderUnchangedEnvironment) {
  planner::PlanRequest request = defaults();
  request.interface_name = "ClientInterface";

  // Reference universe: one cold plan, no cache involvement.
  World reference;
  auto ref_cold = reference.bind(reference.sites.sd_client, request);
  const std::string ref_rendering =
      ref_cold.plan.to_string(reference.fw->network());

  // Cache universe (the fixture): cold plan, then a hit.
  auto cold = bind_ok(sites.sd_client, request);
  auto warm = bind_ok(sites.sd_client, request);
  ASSERT_TRUE(warm.cache_hit);

  // Placements + linkages of the hit are bit-identical to the cold plan of
  // the untouched universe (same placements, nodes, factors, wires, routes).
  EXPECT_EQ(warm.plan.to_string(fw->network()), ref_rendering);
  ASSERT_EQ(warm.plan.placements.size(), ref_cold.plan.placements.size());
  for (std::size_t i = 0; i < warm.plan.placements.size(); ++i) {
    EXPECT_EQ(warm.plan.placements[i].component->name,
              ref_cold.plan.placements[i].component->name);
    EXPECT_EQ(warm.plan.placements[i].node,
              ref_cold.plan.placements[i].node);
    EXPECT_EQ(warm.plan.placements[i].factors,
              ref_cold.plan.placements[i].factors);
  }
  ASSERT_EQ(warm.plan.wires.size(), ref_cold.plan.wires.size());
  for (std::size_t i = 0; i < warm.plan.wires.size(); ++i) {
    EXPECT_EQ(warm.plan.wires[i].client, ref_cold.plan.wires[i].client);
    EXPECT_EQ(warm.plan.wires[i].server, ref_cold.plan.wires[i].server);
    EXPECT_EQ(warm.plan.wires[i].interface_name,
              ref_cold.plan.wires[i].interface_name);
  }

  // After an epoch bump that changes the environment, the replan differs
  // appropriately: securing the WAN link removes the Encryptor tunnel.
  fw->enable_adaptation("SecureMail");
  auto lid =
      fw->network().link_between(sites.san_diego[0], sites.new_york[0]);
  ASSERT_TRUE(lid.has_value());
  fw->monitor().set_link_credential(*lid, "secure", true);

  auto replanned = bind_ok(sites.sd_client, request);
  EXPECT_FALSE(replanned.cache_hit);
  std::set<std::string> comps;
  for (const auto& p : replanned.plan.placements) {
    comps.insert(p.component->name);
  }
  EXPECT_TRUE(comps.count("Encryptor") == 0)
      << replanned.plan.to_string(fw->network());
  EXPECT_NE(replanned.plan.to_string(fw->network()), ref_rendering);
}

// ---- invalidation ----------------------------------------------------------

TEST_F(PlanCacheFixture, MonitorChangeAloneInvalidates) {
  // No enable_adaptation: only the Framework's attach_monitor wiring bumps
  // the epoch. The environment view is stale but the cache must not replay
  // a pre-change plan.
  auto cold = bind_ok(sites.sd_client, defaults());
  ASSERT_FALSE(cold.cache_hit);
  const std::uint64_t epoch_before =
      fw->server().environment_epoch("SecureMail");

  auto lid =
      fw->network().link_between(sites.san_diego[0], sites.new_york[0]);
  ASSERT_TRUE(lid.has_value());
  fw->monitor().set_link_bandwidth(*lid, 5e6);
  EXPECT_GT(fw->server().environment_epoch("SecureMail"), epoch_before);
  EXPECT_EQ(fw->monitor().change_count(), 1u);

  auto after = bind_ok(sites.sd_client, defaults());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_GT(after.search.candidates_examined, 0u);
  EXPECT_GE(telemetry().stale_epoch_evictions, 1u);
  EXPECT_GE(telemetry().invalidations, 1u);
  EXPECT_EQ(telemetry().hits, 0u);
}

TEST_F(PlanCacheFixture, RefreshEnvironmentInvalidates) {
  auto cold = bind_ok(sites.sd_client, defaults());
  ASSERT_FALSE(cold.cache_hit);
  ASSERT_TRUE(fw->server().refresh_environment("SecureMail").is_ok());
  auto after = bind_ok(sites.sd_client, defaults());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_GE(telemetry().epoch_bumps, 1u);
}

TEST_F(PlanCacheFixture, ForgottenInstanceIsNeverHandedOut) {
  auto cold = bind_ok(sites.sd_client, defaults());
  // Locate the shared view instance the cached plan references.
  runtime::RuntimeInstanceId view_id = 0;
  for (std::size_t i = 0; i < cold.plan.placements.size(); ++i) {
    if (cold.plan.placements[i].component->name == "ViewMailServer") {
      view_id = cold.instances[i];
    }
  }
  ASSERT_NE(view_id, 0u);

  // Redeployment retires the view: the cache entry must go with it.
  ASSERT_TRUE(fw->server().forget_instance("SecureMail", view_id).is_ok());
  EXPECT_EQ(fw->server().plan_cache_size("SecureMail"), 0u);
  EXPECT_GE(telemetry().invalidations, 1u);

  // The next identical access replans cold and deploys a fresh view (the
  // old one is no longer poolable).
  auto after = bind_ok(sites.sd_client, defaults());
  EXPECT_FALSE(after.cache_hit);
  for (std::size_t i = 0; i < after.plan.placements.size(); ++i) {
    EXPECT_NE(after.instances[i], view_id);
  }
}

TEST_F(PlanCacheFixture, ForgetInstanceEvictsEveryReferencingEntry) {
  // Two different fingerprints (different client nodes) whose plans share
  // the pooled view: one forget_instance call must evict them both, not
  // just the entry that happened to be built first.
  auto first = bind_ok(sites.sd_client, defaults());
  ASSERT_FALSE(first.cache_hit);
  auto second = bind_ok(sites.san_diego[1], defaults());
  ASSERT_FALSE(second.cache_hit);
  ASSERT_EQ(fw->server().plan_cache_size("SecureMail"), 2u);

  runtime::RuntimeInstanceId view_id = 0;
  for (std::size_t i = 0; i < first.plan.placements.size(); ++i) {
    if (first.plan.placements[i].component->name == "ViewMailServer") {
      view_id = first.instances[i];
    }
  }
  ASSERT_NE(view_id, 0u);
  // The second client's plan reuses the pooled view, so both entries
  // reference it.
  ASSERT_NE(std::find(second.instances.begin(), second.instances.end(),
                      view_id),
            second.instances.end());

  ASSERT_TRUE(fw->server().forget_instance("SecureMail", view_id).is_ok());
  EXPECT_EQ(fw->server().plan_cache_size("SecureMail"), 0u);

  auto rebound_a = bind_ok(sites.sd_client, defaults());
  auto rebound_b = bind_ok(sites.san_diego[1], defaults());
  EXPECT_FALSE(rebound_a.cache_hit);
  for (auto id : rebound_a.instances) EXPECT_NE(id, view_id);
  for (auto id : rebound_b.instances) EXPECT_NE(id, view_id);
}

TEST_F(PlanCacheFixture, MigratedAwayInstanceIsNeverHandedOut) {
  // Live migration moves the view to another node; the adaptation
  // controller's eager eviction (forget_instance) must guarantee no stale
  // cache entry ever binds a client to the migrated-away original.
  auto cold = bind_ok(sites.sd_client, defaults());
  ASSERT_FALSE(cold.cache_hit);
  runtime::RuntimeInstanceId view_id = 0;
  for (std::size_t i = 0; i < cold.plan.placements.size(); ++i) {
    if (cold.plan.placements[i].component->name == "ViewMailServer") {
      view_id = cold.instances[i];
    }
  }
  ASSERT_NE(view_id, 0u);

  // Seed the view's cache so the migration has state to move.
  config->keys->provision_user("sam", mail::kMaxSensitivity);
  auto body = std::make_shared<mail::SendBody>();
  body->message.id = 7;
  body->message.from = "sam";
  body->message.to = "sam";
  body->message.sensitivity = 2;
  body->message.plaintext = {'h', 'i'};
  runtime::Request send;
  send.op = mail::ops::kSend;
  send.body = body;
  send.wire_bytes = mail::send_wire_bytes(body->message);
  bool sent = false;
  fw->runtime().invoke_from_node(sites.sd_client, cold.entry, std::move(send),
                                 [&sent](runtime::Response r) {
                                   EXPECT_TRUE(r.ok) << r.error;
                                   sent = true;
                                 });
  fw->run();
  ASSERT_TRUE(sent);

  util::Expected<runtime::RuntimeInstanceId> moved =
      util::Expected<runtime::RuntimeInstanceId>(
          util::internal_error("pending"));
  fw->runtime().migrate(
      view_id, sites.san_diego[1], sites.mail_home,
      sim::Duration::from_millis(100),
      [&moved](util::Expected<runtime::RuntimeInstanceId> r) {
        moved = std::move(r);
      });
  fw->run();
  ASSERT_TRUE(moved.has_value()) << moved.status().to_string();
  EXPECT_EQ(fw->runtime().stats().migrations, 1u);
  EXPECT_GT(fw->runtime().stats().state_transfer_bytes, 0u);
  ASSERT_TRUE(fw->server().forget_instance("SecureMail", view_id).is_ok());
  EXPECT_EQ(fw->server().plan_cache_size("SecureMail"), 0u);

  // The old instance is drained away; a rebind must replan cold and never
  // reference the migrated-away id.
  auto rebound = bind_ok(sites.sd_client, defaults());
  EXPECT_FALSE(rebound.cache_hit);
  for (auto id : rebound.instances) {
    EXPECT_NE(id, view_id);
    EXPECT_TRUE(fw->runtime().exists(id));
  }
}

TEST_F(PlanCacheFixture, DeadEntryInstanceEvictsOnHit) {
  auto cold = bind_ok(sites.sd_client, defaults());
  // The entry is client-private and outside the pool; retiring it (as the
  // redeployment manager does after grafting) leaves the cache entry
  // pointing at a dead binding. The hit-time liveness check must catch it.
  ASSERT_TRUE(fw->runtime().uninstall(cold.entry).is_ok());

  auto after = bind_ok(sites.sd_client, defaults());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_NE(after.entry, cold.entry);
  EXPECT_TRUE(fw->runtime().exists(after.entry));
  EXPECT_EQ(telemetry().liveness_evictions, 1u);
  EXPECT_EQ(telemetry().hits, 0u);
}

TEST_F(PlanCacheFixture, SaturatedInstanceForcesColdReplan) {
  // ViewMailServer capacity is 500 rps; ten 50 rps clients fill it — one
  // cold plan plus nine cache hits.
  auto first = bind_ok(sites.sd_client, defaults());
  ASSERT_FALSE(first.cache_hit);
  for (int i = 0; i < 9; ++i) {
    auto warm = bind_ok(sites.sd_client, defaults());
    ASSERT_TRUE(warm.cache_hit) << "client " << i;
  }

  // The eleventh would oversubscribe the shared view: the hit-time capacity
  // check evicts the entry and the cold replan deploys a second view.
  auto eleventh = bind_ok(sites.sd_client, defaults());
  EXPECT_FALSE(eleventh.cache_hit);
  EXPECT_EQ(telemetry().capacity_evictions, 1u);

  std::size_t views = 0;
  for (const auto& inst : fw->server().existing_instances("SecureMail")) {
    if (inst.component->name == "ViewMailServer") {
      ++views;
      EXPECT_LE(inst.current_load_rps, 500.0 + 1e-9);
    }
  }
  EXPECT_EQ(views, 2u);

  // The replacement plan is cached in turn: the twelfth client rides it.
  auto twelfth = bind_ok(sites.sd_client, defaults());
  EXPECT_TRUE(twelfth.cache_hit);
  EXPECT_EQ(twelfth.entry, eleventh.entry);
}

// ---- coalescing ------------------------------------------------------------

TEST_F(PlanCacheFixture, ConcurrentIdenticalAccessesPlanOnce) {
  constexpr int kBurst = 8;
  planner::PlanRequest request = defaults();
  request.client_node = sites.sd_client;

  std::vector<runtime::AccessOutcome> outcomes;
  int failures = 0;
  for (int i = 0; i < kBurst; ++i) {
    fw->server().request_access(
        "SecureMail", request,
        [&](util::Expected<runtime::AccessOutcome> outcome) {
          if (outcome) {
            outcomes.push_back(std::move(outcome).value());
          } else {
            ++failures;
          }
        });
  }
  fw->run();

  ASSERT_EQ(failures, 0);
  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kBurst));
  int cold = 0, coalesced = 0;
  for (const auto& o : outcomes) {
    if (o.coalesced) {
      ++coalesced;
    } else {
      ++cold;
    }
    EXPECT_EQ(o.entry, outcomes.front().entry);
  }
  // Exactly one planner run for the whole burst.
  EXPECT_EQ(cold, 1);
  EXPECT_EQ(coalesced, kBurst - 1);
  EXPECT_EQ(telemetry().coalesced, static_cast<std::uint64_t>(kBurst - 1));
  EXPECT_EQ(telemetry().misses, 1u);

  // Every rider's load is accounted on the shared view: 8 x 50 rps.
  for (const auto& inst : fw->server().existing_instances("SecureMail")) {
    if (inst.component->name == "ViewMailServer") {
      EXPECT_NEAR(inst.current_load_rps, 400.0, 1e-9);
    }
  }
}

TEST_F(PlanCacheFixture, CrashEvictsCachedPlansMidCoalescedBurst) {
  // Warm the cache with an SD-client chain, then crash the hosting node in
  // the middle of a coalesced burst: every cached plan referencing a
  // tombstoned instance must be forget_instance-evicted eagerly (not lazily
  // at the next hit), and the followers must be served by a fresh plan that
  // avoids the dead node.
  planner::PlanRequest request = defaults();
  request.client_node = sites.sd_client;
  auto cold = bind_ok(sites.sd_client, request);
  ASSERT_FALSE(cold.cache_hit);
  ASSERT_GE(fw->server().plan_cache_size("SecureMail"), 1u);

  // Start a burst from New York (its chain reuses only the NY MailServer, so
  // the crash cannot strand it), crash mid-flight, then let the coalesced
  // followers drain.
  planner::PlanRequest survivor = defaults();
  survivor.client_node = sites.ny_client;
  std::vector<runtime::AccessOutcome> outcomes;
  int failures = 0;
  for (int i = 0; i < 4; ++i) {
    fw->server().request_access(
        "SecureMail", survivor,
        [&](util::Expected<runtime::AccessOutcome> outcome) {
          if (outcome) {
            outcomes.push_back(std::move(outcome).value());
          } else {
            ++failures;
          }
        });
  }
  fw->fail_node(sites.sd_client);
  // Eager eviction: the cached plans referencing tombstoned instances are
  // gone immediately after the failure report, before any further hit.
  EXPECT_EQ(fw->server().plan_cache_size("SecureMail"), 0u);

  fw->run();
  ASSERT_EQ(failures, 0);
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    for (const auto& p : o.plan.placements) {
      EXPECT_NE(p.node, sites.sd_client);
    }
    for (auto id : o.instances) {
      EXPECT_TRUE(fw->runtime().exists(id));
    }
  }

  // A fresh SD-site bind must replan cold (its cached plan was evicted) and
  // route around the dead node.
  auto rebound = bind_ok(sites.san_diego[1], defaults());
  EXPECT_FALSE(rebound.cache_hit);
  for (const auto& p : rebound.plan.placements) {
    EXPECT_NE(p.node, sites.sd_client);
  }
}

// ---- principal translation --------------------------------------------------

TEST_F(PlanCacheFixture, PrincipalsWithSameDerivedPropertiesShareAnEntry) {
  // The mail translator derives nothing from principals, so an anonymous
  // client and a named one fingerprint identically — the principal is
  // represented by its translated properties, not its name.
  auto cold = bind_ok(sites.sd_client, defaults());
  ASSERT_FALSE(cold.cache_hit);
  planner::PlanRequest named = defaults();
  named.principal = "alice";
  auto warm = bind_ok(sites.sd_client, named);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(PrincipalTranslationTest, TrustBackedPrincipalsAndMemoization) {
  trust::TrustGraph graph;
  graph.declare_namespace("mail", "MailCA");
  trust::TrustCredential cred;
  cred.kind = trust::CredentialKind::kAssertion;
  cred.issuer = "MailCA";
  cred.subject = "alice";
  cred.granted = trust::Role{"mail", "TrustLevel"};
  cred.value = 3;
  graph.add(cred);

  std::vector<planner::CredentialMapping> props;
  props.push_back({"TrustLevel", "TrustLevel", spec::PropertyType::kInterval,
                   spec::PropertyValue()});
  planner::TrustBackedTranslator translator(graph, "mail", props,
                                            planner::CredentialMapTranslator());

  // Delegation to a user drives the properties the planner must guarantee.
  EXPECT_EQ(translator.translate_principal("alice").get("TrustLevel"),
            spec::PropertyValue::integer(3));
  EXPECT_FALSE(
      translator.translate_principal("bob").get("TrustLevel").has_value());

  // The environment view memoizes per principal.
  net::Network network;
  network.add_node("n0");
  planner::EnvironmentView view(network, translator);
  const spec::Environment& first = view.principal_env("alice");
  const spec::Environment& second = view.principal_env("alice");
  EXPECT_EQ(&first, &second);  // same memo slot, not re-translated
  view.principal_env("bob");
  EXPECT_EQ(view.principal_cache_size(), 2u);
}

// Counts translator invocations to prove the memo short-circuits them.
struct CountingTranslator : public planner::PropertyTranslator {
  mutable int principal_calls = 0;
  spec::Environment translate_node(const net::Node&) const override {
    return {};
  }
  spec::Environment translate_link(const net::Link&) const override {
    return {};
  }
  spec::Environment translate_principal(
      const std::string& principal) const override {
    ++principal_calls;
    spec::Environment env;
    env.set("Who", spec::PropertyValue::string(principal));
    return env;
  }
};

TEST(PrincipalTranslationTest, MemoTranslatesEachPrincipalOnce) {
  net::Network network;
  network.add_node("n0");
  CountingTranslator translator;
  planner::EnvironmentView view(network, translator);
  view.principal_env("alice");
  view.principal_env("alice");
  view.principal_env("alice");
  view.principal_env("carol");
  EXPECT_EQ(translator.principal_calls, 2);
}

}  // namespace
}  // namespace psf
