// Plan validation: accepts planner output, rejects hand-corrupted plans of
// every violation class.
#include <gtest/gtest.h>

#include "mail/mail_spec.hpp"
#include "planner/validate.hpp"
#include "spec/builder.hpp"

namespace psf::planner {
namespace {

using spec::PropertyValue;

struct ValidateFixture : public ::testing::Test {
  ValidateFixture() {
    net::Credentials edge_creds;
    edge_creds.set("trust", std::int64_t{3});
    edge_creds.set("secure", true);
    edge = network.add_node("edge", 1e6, edge_creds);
    net::Credentials origin_creds;
    origin_creds.set("trust", std::int64_t{5});
    origin_creds.set("secure", true);
    origin = network.add_node("origin", 1e6, origin_creds);
    net::Credentials secure;
    secure.set("secure", true);
    network.add_link(edge, origin, 10e6, sim::Duration::from_millis(40),
                     secure);

    translator.map_node({"TrustLevel", "trust", spec::PropertyType::kInterval,
                         PropertyValue::integer(1)});
    translator.map_node({"Confidentiality", "secure",
                         spec::PropertyType::kBoolean,
                         PropertyValue::boolean(false)});
    translator.map_link({"Confidentiality", "secure",
                         spec::PropertyType::kBoolean,
                         PropertyValue::boolean(false)});

    service = spec::SpecBuilder("V")
                  .interval_property("TrustLevel", 1, 5)
                  .interface("Api", {"TrustLevel"})
                  .interface("Entry", {"TrustLevel"})
                  .component("Client")
                  .implements("Entry", {{"TrustLevel", spec::lit_int(3)}})
                  .requires_iface("Api", {{"TrustLevel", spec::lit_int(4)}})
                  .done()
                  .component("Origin")
                  .implements("Api", {{"TrustLevel", spec::lit_int(5)}})
                  .condition_ge("TrustLevel", PropertyValue::integer(5))
                  .capacity(100)
                  .done()
                  .build();

    request.interface_name = "Entry";
    request.client_node = edge;
    request.request_rate_rps = 2.0;
  }

  DeploymentPlan make_plan() {
    EnvironmentView env(network, translator);
    Planner planner(service, env);
    auto plan = planner.plan(request);
    PSF_CHECK_MSG(plan.has_value(), plan.status().to_string());
    return std::move(plan).value();
  }

  ValidationReport validate(const DeploymentPlan& plan) {
    EnvironmentView env(network, translator);
    return validate_plan(service, env, request, plan);
  }

  net::Network network;
  net::NodeId edge, origin;
  CredentialMapTranslator translator;
  spec::ServiceSpec service;
  PlanRequest request;
};

TEST_F(ValidateFixture, AcceptsPlannerOutput) {
  auto plan = make_plan();
  auto report = validate(plan);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidateFixture, DetectsEntryNotPinned) {
  auto plan = make_plan();
  plan.placements[plan.entry].node = origin;  // move the entry away
  auto report = validate(plan);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    found |= v.kind == Violation::Kind::kPolicy;
  }
  EXPECT_TRUE(found) << report.to_string();
}

TEST_F(ValidateFixture, DetectsConditionViolation) {
  auto plan = make_plan();
  // Drag the Origin onto the untrusted edge node.
  for (auto& p : plan.placements) {
    if (p.component->name == "Origin") p.node = edge;
  }
  auto report = validate(plan);
  ASSERT_FALSE(report.ok());
  bool condition = false, compatibility = false;
  for (const auto& v : report.violations) {
    condition |= v.kind == Violation::Kind::kCondition;
    compatibility |= v.kind == Violation::Kind::kCompatibility;
  }
  EXPECT_TRUE(condition) << report.to_string();
  (void)compatibility;  // moving also breaks nothing else in this spec
}

TEST_F(ValidateFixture, DetectsMissingWire) {
  auto plan = make_plan();
  plan.wires.clear();
  auto report = validate(plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kStructure);
}

TEST_F(ValidateFixture, DetectsCapacityViolation) {
  auto plan = make_plan();
  request.request_rate_rps = 500.0;  // Origin capacity is 100 rps
  auto report = validate(plan);
  ASSERT_FALSE(report.ok());
  bool capacity = false;
  for (const auto& v : report.violations) {
    capacity |= v.kind == Violation::Kind::kCapacity;
  }
  EXPECT_TRUE(capacity) << report.to_string();
}

TEST_F(ValidateFixture, DetectsIncompatibleRequirement) {
  auto plan = make_plan();
  // Demand more than the entry offers.
  request.required_properties.emplace_back("TrustLevel",
                                           PropertyValue::integer(5));
  auto report = validate(plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kCompatibility);
}

TEST_F(ValidateFixture, DetectsBrokenFactorBinding) {
  // Use the mail spec: corrupt the view's bound factor.
  spec::ServiceSpec mail = mail::mail_service_spec();
  net::Network net2;
  net::Credentials sd;
  sd.set("trust", std::int64_t{4});
  sd.set("secure", true);
  const net::NodeId client = net2.add_node("sd-0", 1e6, sd);
  net::Credentials ny;
  ny.set("trust", std::int64_t{5});
  ny.set("secure", true);
  const net::NodeId home = net2.add_node("ny-0", 1e6, ny);
  net::Credentials insecure;
  insecure.set("secure", false);
  net2.add_link(client, home, 50e6, sim::Duration::from_millis(100), insecure);

  auto mail_tr = mail::mail_translator();
  EnvironmentView env(net2, *mail_tr);

  ExistingInstance server;
  server.runtime_id = 1;
  server.component = mail.find_component("MailServer");
  server.node = home;
  server.effective["ServerInterface"]["Confidentiality"] =
      PropertyValue::boolean(true);
  server.effective["ServerInterface"]["TrustLevel"] = PropertyValue::integer(5);
  server.downstream_latency_s = 1e-4;

  PlanRequest req;
  req.interface_name = "ClientInterface";
  req.required_properties.emplace_back("TrustLevel", PropertyValue::integer(4));
  req.client_node = client;
  req.request_rate_rps = 10.0;

  Planner planner(mail, env);
  auto plan = planner.plan(req, {server});
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  ASSERT_TRUE(validate_plan(mail, env, req, *plan, {server}).ok());

  for (auto& p : plan->placements) {
    if (p.component->name == "ViewMailServer") {
      p.factors.values["TrustLevel"] = PropertyValue::integer(5);  // lie
    }
  }
  auto report = validate_plan(mail, env, req, *plan, {server});
  ASSERT_FALSE(report.ok());
  bool factor_violation = false;
  for (const auto& v : report.violations) {
    factor_violation |= v.kind == Violation::Kind::kCondition &&
                        v.detail.find("factor") != std::string::npos;
  }
  EXPECT_TRUE(factor_violation) << report.to_string();
}

TEST_F(ValidateFixture, DetectsStaticComponentCloning) {
  auto plan = make_plan();
  // Pretend the spec marks Origin static; the plan deployed it anew.
  for (auto& comp : service.components) {
    if (comp.name == "Origin") comp.static_placement = true;
  }
  auto report = validate(plan);
  ASSERT_FALSE(report.ok());
  bool policy = false;
  for (const auto& v : report.violations) {
    policy |= v.kind == Violation::Kind::kPolicy &&
              v.detail.find("static") != std::string::npos;
  }
  EXPECT_TRUE(policy) << report.to_string();
}

TEST_F(ValidateFixture, ReportFormatting) {
  auto plan = make_plan();
  EXPECT_EQ(validate(plan).to_string(), "plan valid");
  plan.wires.clear();
  const std::string text = validate(plan).to_string();
  EXPECT_NE(text.find("violation"), std::string::npos);
  EXPECT_NE(text.find("structure"), std::string::npos);
}

}  // namespace
}  // namespace psf::planner
