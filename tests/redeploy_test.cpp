// RedeploymentManager: automatic §6 adaptation — validation-triggered
// replanning, live-entry grafting, state preservation, orphan collection.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/redeploy.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"
#include "mail/view_server.hpp"
#include "planner/planner.hpp"
#include "planner/validate.hpp"

namespace psf {
namespace {

struct RedeployFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    manager = std::make_unique<core::RedeploymentManager>(*fw, "SecureMail");
  }

  planner::PlanRequest sd_request() {
    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(4));
    request.client_node = sites.sd_client;
    request.request_rate_rps = 50.0;
    return request;
  }

  runtime::AccessOutcome bind(const planner::PlanRequest& request) {
    auto proxy = fw->make_proxy(request.client_node, "SecureMail", request);
    util::Status status = util::internal_error("");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(300));
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return proxy->outcome();
  }

  std::set<std::string> live_components(net::NodeId node) {
    std::set<std::string> out;
    for (auto id : fw->runtime().instances_on(node)) {
      out.insert(fw->runtime().instance(id).def->name);
    }
    return out;
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
  std::unique_ptr<core::RedeploymentManager> manager;
};

TEST_F(RedeployFixture, ValidDeploymentStaysUntouched) {
  auto request = sd_request();
  auto outcome = bind(request);
  manager->track(outcome, request);

  // An irrelevant change (a Seattle-internal credential) keeps the SD plan
  // valid: revalidation runs but nothing redeploys.
  fw->monitor().set_node_credential(sites.seattle[1], "trust",
                                    std::int64_t{3});
  fw->run_for(sim::Duration::from_seconds(5));

  ASSERT_FALSE(manager->events().empty());
  EXPECT_EQ(manager->events().back().outcome,
            core::RedeployEvent::Outcome::kStillValid);
  EXPECT_EQ(manager->redeploy_count(), 0u);
}

TEST_F(RedeployFixture, CapacitySqueezeTriggersRedeployment) {
  auto request = sd_request();
  auto outcome = bind(request);
  const std::size_t index = manager->track(outcome, request);
  const runtime::RuntimeInstanceId entry = outcome.entry;

  // Seed the view with a cached message so we can observe state surviving.
  config->keys->provision_user("sam", mail::kMaxSensitivity);
  runtime::RuntimeInstanceId view_id = 0;
  for (const auto& inst : fw->server().existing_instances("SecureMail")) {
    if (inst.component->name == "ViewMailServer") view_id = inst.runtime_id;
  }
  ASSERT_NE(view_id, 0u);
  {
    auto body = std::make_shared<mail::SendBody>();
    body->message.id = 1;
    body->message.from = "sam";
    body->message.to = "sam";
    body->message.sensitivity = 2;
    body->message.plaintext = {'x'};
    runtime::Request send;
    send.op = mail::ops::kSend;
    send.body = body;
    send.wire_bytes = mail::send_wire_bytes(body->message);
    bool done = false;
    fw->runtime().invoke_from_node(sites.sd_client, entry, std::move(send),
                                   [&done](runtime::Response r) {
                                     EXPECT_TRUE(r.ok) << r.error;
                                     done = true;
                                   });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(30));
  }

  // The client machine shrinks: 3500 cpu units/s can still host the
  // MailClient (50 rps x 20 units = 1000) but not the co-located
  // ViewMailServer (50 rps x 60 = 3000) on top of it. The old plan is now
  // in capacity violation; the replacement keeps the entry pinned and
  // reuses the warm view.
  fw->monitor().set_node_capacity(sites.sd_client, 3.5e3);
  fw->run_for(sim::Duration::from_seconds(60));

  ASSERT_GE(manager->events().size(), 1u);
  const auto& event = manager->events().back();
  EXPECT_EQ(event.tracked_index, index);
  EXPECT_EQ(event.outcome, core::RedeployEvent::Outcome::kRedeployed)
      << event.detail;
  EXPECT_EQ(manager->redeploy_count(), 1u);
  EXPECT_NE(event.detail.find("capacity"), std::string::npos);

  // The live entry instance still answers, and the cached state survived
  // (the warm view was reused rather than rebuilt).
  {
    auto body = std::make_shared<mail::ReceiveBody>();
    body->user = "sam";
    runtime::Request recv;
    recv.op = mail::ops::kReceive;
    recv.body = body;
    recv.wire_bytes = 256;
    bool done = false;
    bool got_mail = false;
    fw->runtime().invoke_from_node(
        sites.sd_client, entry, std::move(recv),
        [&](runtime::Response r) {
          EXPECT_TRUE(r.ok) << r.error;
          const auto* result = runtime::body_as<mail::ReceiveResultBody>(r);
          got_mail = result != nullptr && !result->messages.empty();
          done = true;
        });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(30));
    EXPECT_TRUE(done);
    EXPECT_TRUE(got_mail) << "cached state should survive redeployment";
  }
  // The reused view (and, transitively, its tunnel) must still be running.
  EXPECT_TRUE(fw->runtime().exists(view_id));
}

TEST_F(RedeployFixture, UnsatisfiableChangeIsReported) {
  auto request = sd_request();
  auto outcome = bind(request);
  manager->track(outcome, request);

  // Drop trust across the entire San Diego site: no node can host the
  // trust-4 client anymore, so the request itself becomes unsatisfiable.
  for (net::NodeId n : sites.san_diego) {
    fw->monitor().set_node_credential(n, "trust", std::int64_t{2});
  }
  fw->run_for(sim::Duration::from_seconds(30));

  bool unsatisfiable_seen = false;
  for (const auto& event : manager->events()) {
    unsatisfiable_seen |=
        event.outcome == core::RedeployEvent::Outcome::kUnsatisfiable;
  }
  EXPECT_TRUE(unsatisfiable_seen);
  EXPECT_EQ(manager->redeploy_count(), 0u);
}

TEST_F(RedeployFixture, OrphanedTunnelIsCollected) {
  // An unpinned client (a batch job that may run anywhere in the branch)
  // lets the replacement plan move off the degraded node entirely, leaving
  // the old chain unreachable — the manager must retire it.
  auto request = sd_request();
  request.pin_entry_to_client = false;
  auto outcome = bind(request);
  manager->track(outcome, request);

  ASSERT_TRUE(live_components(sites.sd_client).count("ViewMailServer"));
  const std::size_t before = fw->runtime().instance_count();

  // sd-2 loses the company's trust: every old placement there is invalid,
  // and nothing trust-4 may return to it. The new chain lands on the other
  // San Diego nodes.
  fw->monitor().set_node_credential(sites.sd_client, "trust",
                                    std::int64_t{3});
  fw->run_for(sim::Duration::from_seconds(60));
  ASSERT_EQ(manager->redeploy_count(), 1u)
      << (manager->events().empty() ? "no events"
                                    : manager->events().back().detail);

  // The old view and tunnel on the degraded node are gone (the preserved
  // entry MailClient is grafted onto the new chain and stays).
  EXPECT_FALSE(live_components(sites.sd_client).count("ViewMailServer"));
  EXPECT_FALSE(live_components(sites.sd_client).count("Encryptor"));
  // A fresh chain exists elsewhere in San Diego.
  bool new_view = false;
  for (net::NodeId n : sites.san_diego) {
    if (n == sites.sd_client) continue;
    new_view |= live_components(n).count("ViewMailServer") != 0;
  }
  EXPECT_TRUE(new_view);
  // No instance leak: old chain collected as the new one arrived.
  EXPECT_LE(fw->runtime().instance_count(), before + 2);
}

// ---- repair vs cold equivalence (acceptance criterion) ----------------------

TEST_F(RedeployFixture, RepairSatisfiesColdPlanConstraintsDeterministically) {
  auto request = sd_request();
  auto outcome = bind(request);

  // Fault: the client machine shrinks below the co-located view's footprint,
  // then the environment view is refreshed so both planner paths see the
  // post-fault world.
  fw->monitor().set_node_capacity(sites.sd_client, 3.5e3);
  ASSERT_TRUE(fw->server().refresh_environment("SecureMail").is_ok());
  const spec::ServiceSpec* spec = fw->server().service_spec("SecureMail");
  const planner::EnvironmentView* env = fw->server().environment("SecureMail");
  ASSERT_NE(spec, nullptr);
  ASSERT_NE(env, nullptr);
  planner::Planner planner(*spec, *env);

  std::vector<planner::RepairViolation> violations(1);
  violations[0].kind = planner::RepairViolation::Kind::kLoadOverCapacity;
  violations[0].node = sites.sd_client;
  const auto& pool = fw->server().existing_instances("SecureMail");

  planner::RepairOutcome ro;
  auto repaired = planner.repair(request, outcome.plan, violations, pool, &ro);
  ASSERT_TRUE(repaired.has_value()) << repaired.status().to_string();

  // The incremental result satisfies exactly the constraints a cold plan
  // must: the full validator accepts it against the post-fault environment.
  EXPECT_TRUE(
      planner::validate_plan(*spec, *env, request, *repaired, pool).ok())
      << planner::validate_plan(*spec, *env, request, *repaired, pool)
             .to_string();
  auto cold = planner.plan(request, pool);
  ASSERT_TRUE(cold.has_value()) << cold.status().to_string();
  EXPECT_TRUE(planner::validate_plan(*spec, *env, request, *cold, pool).ok());

  // Repair stayed local: the violating node left the candidate set, some
  // placements broke, the rest were pinned, and no fallback was needed.
  EXPECT_FALSE(ro.fell_back_to_full);
  EXPECT_GE(ro.broken_placements, 1u);
  EXPECT_EQ(ro.surviving_placements + ro.broken_placements,
            outcome.plan.placements.size());
  for (net::NodeId n : ro.candidate_nodes) EXPECT_NE(n, sites.sd_client);
  // Only the pinned entry may remain on the squeezed node.
  for (const auto& p : repaired->placements) {
    if (p.node == sites.sd_client) {
      EXPECT_EQ(p.component->name, "MailClient");
    }
  }

  // Bit-identical under a fixed environment: a second repair with the same
  // inputs renders the same plan, byte for byte.
  planner::RepairOutcome ro2;
  auto repaired2 =
      planner.repair(request, outcome.plan, violations, pool, &ro2);
  ASSERT_TRUE(repaired2.has_value());
  EXPECT_EQ(repaired->to_string(fw->network()),
            repaired2->to_string(fw->network()));
  EXPECT_EQ(ro.candidate_nodes, ro2.candidate_nodes);
}

}  // namespace
}  // namespace psf
