#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace psf::sim {
namespace {

TEST(TimeTest, Arithmetic) {
  const Time t = Time::zero() + Duration::from_millis(5);
  EXPECT_EQ(t.nanos(), 5'000'000);
  EXPECT_DOUBLE_EQ(t.millis(), 5.0);
  EXPECT_EQ((t - Time::zero()).micros(), 5000.0);
  EXPECT_EQ(Duration::from_seconds(1).nanos(), 1'000'000'000);
  EXPECT_EQ((Duration::from_millis(2) + Duration::from_millis(3)).millis(),
            5.0);
  EXPECT_EQ((Duration::from_millis(5) * 2.0).millis(), 10.0);
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Duration::from_millis(30), [&] { order.push_back(3); });
  sim.schedule(Duration::from_millis(10), [&] { order.push_back(1); });
  sim.schedule(Duration::from_millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().millis(), 30.0);
}

TEST(SimulatorTest, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::from_millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) {
      sim.schedule(Duration::from_micros(1), recurse);
    }
  };
  sim.schedule(Duration::from_micros(1), recurse);
  EXPECT_EQ(sim.run(), 100u);
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now().micros(), 100.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(Duration::from_millis(i * 10), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_until(Time::zero() + Duration::from_millis(45)), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.now().millis(), 45.0);  // clock advanced to the deadline
  EXPECT_EQ(sim.run(), 6u);
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id =
      sim.schedule(Duration::from_millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel reports failure
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelOfUnknownIdIsRejected) {
  Simulator sim;
  // A garbage id (never issued by this simulator) must be rejected without
  // growing the tombstone table — the old resize-before-validate code
  // allocated an arbitrarily large bitmap for it.
  EXPECT_FALSE(sim.cancel(EventId{1} << 40));
  const EventId id = sim.schedule(Duration::from_millis(1), [] {});
  EXPECT_FALSE(sim.cancel(id + 1));  // not yet issued
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule(Duration::from_millis(1), [&] { ++count; });
  sim.schedule(Duration::from_millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EmptyAndPendingCounts) {
  Simulator sim;
  EXPECT_TRUE(sim.empty());
  sim.schedule(Duration::from_millis(1), [] {});
  sim.schedule(Duration::from_millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_TRUE(sim.empty());
}

TEST(PeriodicTimerTest, TicksAtPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, Duration::from_millis(10), [&] { ++ticks; });
  timer.start();
  sim.run_until(Time::zero() + Duration::from_millis(95));
  EXPECT_EQ(ticks, 9);
  timer.stop();
  sim.run();
  EXPECT_EQ(ticks, 9);  // no ticks after stop
}

TEST(PeriodicTimerTest, StopInsideTickHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, Duration::from_millis(10), [&] {});
  PeriodicTimer* tp = &timer;
  PeriodicTimer outer(sim, Duration::from_millis(10), [&] {
    if (++ticks == 3) tp->stop();
  });
  timer.start();
  outer.start();
  sim.run_until(Time::zero() + Duration::from_millis(200));
  EXPECT_GE(ticks, 3);
}

TEST(PeriodicTimerTest, DestructionCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer(sim, Duration::from_millis(10), [&] { ++ticks; });
    timer.start();
  }
  sim.run();
  EXPECT_EQ(ticks, 0);
}

TEST(SimulatorTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.schedule(Duration::from_millis(10), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(Time::zero(), [] {}), "scheduling into the past");
}

TEST(SimulatorTest, CancelCountsOutOfPendingImmediately) {
  Simulator sim;
  const EventId a = sim.schedule(Duration::from_millis(1), [] {});
  sim.schedule(Duration::from_millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.cancel(a));
  // The dead event still sits in the queue, but pending reflects the cancel
  // right away — and cancelling twice is rejected without double-counting.
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, TombstoneWindowTracksOutstandingNotTotal) {
  Simulator sim;
  // Schedule-and-run in waves: the flag window must stay bounded by the
  // number of in-flight events, not grow with every id ever issued.
  constexpr int kWaves = 64;
  constexpr int kPerWave = 32;
  for (int w = 0; w < kWaves; ++w) {
    for (int i = 0; i < kPerWave; ++i) {
      sim.schedule(Duration::from_nanos(i + 1), [] {});
    }
    EXPECT_EQ(sim.run(), static_cast<std::size_t>(kPerWave));
    // Every id retired: the watermark catches up and the window drains.
    EXPECT_EQ(sim.tombstone_window(), 0u) << "wave " << w;
  }
}

TEST(SimulatorTest, TombstoneWindowCompactsPastCancelledRuns) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule(Duration::from_nanos(i + 1), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(sim.cancel(ids[i]));
  }
  EXPECT_EQ(sim.tombstone_window(), 100u);
  sim.run();
  // Cancelled ids retire as the queue skips them, so nothing lingers.
  EXPECT_EQ(sim.tombstone_window(), 0u);
  EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace psf::sim
