// Coherence data-path overhaul: coalesced write-back, pipelined flush
// windows, rejected-flush requeue, batched directory fan-out with epoch
// aggregation and lazy dead-replica pruning — plus the write-through-
// equivalence invariant (window 1, no coalescing must reproduce the classic
// stop-and-wait byte-for-byte; DESIGN.md §coherence data path).
#include <gtest/gtest.h>

#include "coherence/directory.hpp"
#include "coherence/replica.hpp"
#include "spec/builder.hpp"

namespace psf::coherence {
namespace {

struct PayloadBody : runtime::MessageBody {
  int value = 0;
};

// Home-side component recording batch sizes and per-update payload values in
// arrival order; can be told to reject the next N sync requests.
class RecordingHome : public runtime::Component {
 public:
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override {
    if (request.op != "sync") {
      done(runtime::Response::failure("?"));
      return;
    }
    const auto* batch = runtime::body_as<UpdateBatch>(request);
    ASSERT_NE(batch, nullptr);
    if (reject_next > 0) {
      --reject_next;
      done(runtime::Response::failure("home refused the batch"));
      return;
    }
    batches.push_back(batch->updates.size());
    for (const Update& u : batch->updates) {
      const auto* p = dynamic_cast<const PayloadBody*>(u.payload.get());
      values.push_back(p == nullptr ? -1 : p->value);
    }
    runtime::Response r;
    r.wire_bytes = 64;
    done(std::move(r));
  }

  std::size_t reject_next = 0;
  std::vector<std::size_t> batches;
  std::vector<int> values;
};

class RecordingReplica : public runtime::Component {
 public:
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override {
    if (request.op != "push") {
      done(runtime::Response::failure("?"));
      return;
    }
    const auto* batch = runtime::body_as<UpdateBatch>(request);
    ASSERT_NE(batch, nullptr);
    rpcs.push_back(batch->updates.size());
    for (const Update& u : batch->updates) {
      const auto* p = dynamic_cast<const PayloadBody*>(u.payload.get());
      values.push_back(p == nullptr ? -1 : p->value);
    }
    runtime::Response r;
    r.wire_bytes = 32;
    done(std::move(r));
  }

  std::size_t updates_received() const { return values.size(); }

  std::vector<std::size_t> rpcs;  // one entry per push request
  std::vector<int> values;
};

struct PipelineFixture : public ::testing::Test {
  PipelineFixture() : runtime(sim, network) {
    a = network.add_node("a", 1e6);
    b = network.add_node("b", 1e6);
    network.add_link(a, b, 10e6, sim::Duration::from_millis(50));

    spec = std::make_unique<spec::ServiceSpec>(
        spec::SpecBuilder("CohPipe")
            .interface("I", {})
            .component("Home")
            .implements("I", {})
            .cpu_per_request(10)
            .done()
            .component("Replica")
            .implements("I", {})
            .cpu_per_request(10)
            .done()
            .build());
    PSF_CHECK(runtime.factories()
                  .register_type(
                      "Home", [] { return std::make_unique<RecordingHome>(); })
                  .is_ok());
    PSF_CHECK(runtime.factories()
                  .register_type(
                      "Replica",
                      [] { return std::make_unique<RecordingReplica>(); })
                  .is_ok());

    home_id = install("Home", b);
    replica_id = install("Replica", a);
    replica2_id = install("Replica", a);
    home = dynamic_cast<RecordingHome*>(
        runtime.instance(home_id).component.get());
    replica = dynamic_cast<RecordingReplica*>(
        runtime.instance(replica_id).component.get());
    replica2 = dynamic_cast<RecordingReplica*>(
        runtime.instance(replica2_id).component.get());
    PSF_CHECK(runtime.start(home_id).is_ok());
    PSF_CHECK(runtime.start(replica_id).is_ok());
    PSF_CHECK(runtime.start(replica2_id).is_ok());
  }

  runtime::RuntimeInstanceId install(const std::string& type,
                                     net::NodeId node) {
    runtime::RuntimeInstanceId out = 0;
    runtime.install(*spec->find_component(type), node, {}, node,
                    [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK(id.has_value());
                      out = *id;
                    });
    sim.run();
    return out;
  }

  Update make_update(const std::string& key, int value,
                     const std::string& field = "") {
    Update u;
    u.descriptor.object_key = key;
    u.descriptor.field = field;
    u.descriptor.bytes = 100;
    auto body = std::make_shared<PayloadBody>();
    body->value = value;
    u.payload = std::move(body);
    return u;
  }

  void record(ReplicaCoherence& rc, const std::string& key, int value,
              const std::string& field = "") {
    auto u = make_update(key, value, field);
    rc.record_update(u.descriptor, u.payload);
  }

  sim::Simulator sim;
  net::Network network;
  runtime::SmockRuntime runtime;
  net::NodeId a, b;
  std::unique_ptr<spec::ServiceSpec> spec;
  runtime::RuntimeInstanceId home_id = 0, replica_id = 0, replica2_id = 0;
  RecordingHome* home = nullptr;
  RecordingReplica* replica = nullptr;
  RecordingReplica* replica2 = nullptr;
};

// ---- write-through-equivalence invariant --------------------------------

// Window 1 + no coalescing must reproduce the classic stop-and-wait exactly:
// one single-update flush per recorded update, each batch costing
// 64 (envelope) + bytes + 32 (per-update framing) on the wire.
TEST_F(PipelineFixture, WriteThroughWindow1IsBitIdenticalStopAndWait) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::write_through().windowed(1));
  constexpr int kUpdates = 5;
  for (int i = 0; i < kUpdates; ++i) {
    record(rc, "k", i);
    sim.run();
  }
  EXPECT_EQ(rc.stats().flushes, 5u);
  EXPECT_EQ(rc.stats().updates_flushed, 5u);
  EXPECT_EQ(rc.stats().bytes_flushed, 5u * (64u + 100u + 32u));
  EXPECT_EQ(rc.stats().updates_coalesced, 0u);
  EXPECT_EQ(rc.stats().max_inflight, 1u);
  EXPECT_EQ(home->values, (std::vector<int>{0, 1, 2, 3, 4}));
  // An explicitly-windowed(1) policy is the default policy: same wire cost.
  EXPECT_EQ(CoherencePolicy::write_through().max_inflight_flushes, 1u);
}

// ---- coalesced write-back -----------------------------------------------

TEST_F(PipelineFixture, CoalescingMergesSameDescriptorLastWriterWins) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::none().coalescing());
  record(rc, "alice", 1, "inbox");
  record(rc, "alice", 2, "inbox");   // supersedes value 1
  record(rc, "alice", 3, "drafts");  // different field: kept separately
  record(rc, "bob", 4, "inbox");
  record(rc, "alice", 5, "inbox");   // supersedes value 2
  EXPECT_EQ(rc.pending(), 3u);
  EXPECT_EQ(rc.stats().updates_recorded, 5u);
  EXPECT_EQ(rc.stats().updates_coalesced, 2u);
  EXPECT_EQ(rc.stats().coalesced_bytes_saved, 2u * (100u + 32u));

  rc.flush();
  sim.run();
  ASSERT_EQ(home->batches.size(), 1u);
  EXPECT_EQ(home->batches[0], 3u);
  // Queue order is preserved; merged slots carry the latest payload.
  EXPECT_EQ(home->values, (std::vector<int>{5, 3, 4}));
}

TEST_F(PipelineFixture, CoalescingDoesNotReachAcrossFlushBoundaries) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::none().coalescing());
  record(rc, "alice", 1, "inbox");
  rc.flush();
  // The first batch is in flight; a same-descriptor update must not mutate
  // it — it starts a fresh pending entry instead.
  record(rc, "alice", 2, "inbox");
  EXPECT_EQ(rc.stats().updates_coalesced, 0u);
  rc.flush();  // window full: rides the next flush
  sim.run();
  rc.flush();
  sim.run();
  EXPECT_EQ(home->values, (std::vector<int>{1, 2}));
}

// ---- pipelined flush windows --------------------------------------------

TEST_F(PipelineFixture, WindowAllowsConcurrentBatchesAndPreservesOrder) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::count_based(2).windowed(2));
  record(rc, "k", 0);
  record(rc, "k", 1);  // first batch ships
  EXPECT_EQ(rc.inflight_flushes(), 1u);
  EXPECT_FALSE(rc.flushing());  // window of 2 still has room
  record(rc, "k", 2);
  record(rc, "k", 3);  // second batch ships concurrently
  EXPECT_EQ(rc.inflight_flushes(), 2u);
  EXPECT_TRUE(rc.flushing());  // now the window is full
  record(rc, "k", 4);
  record(rc, "k", 5);  // must wait for an ack
  EXPECT_EQ(rc.inflight_flushes(), 2u);
  EXPECT_EQ(rc.pending(), 2u);

  sim.run();
  EXPECT_EQ(rc.stats().flushes, 3u);
  EXPECT_EQ(rc.stats().max_inflight, 2u);
  // FIFO links: pipelined batches arrive in send order.
  EXPECT_EQ(home->values, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(rc.pending(), 0u);
}

TEST_F(PipelineFixture, Window1AccumulatesBlockedTimeWiderWindowDoesNot) {
  ReplicaCoherence stop_and_wait(runtime, replica_id, home_id, "sync",
                                 CoherencePolicy::write_through());
  record(stop_and_wait, "k", 0);
  EXPECT_TRUE(stop_and_wait.flushing());
  sim.run();
  // The 50 ms/hop link makes the ack round trip >= 100 ms of wall block.
  EXPECT_GE(stop_and_wait.stats().blocked_on_flush_ms, 100.0);

  ReplicaCoherence windowed(runtime, replica_id, home_id, "sync",
                            CoherencePolicy::write_through().windowed(4));
  record(windowed, "k", 0);
  EXPECT_FALSE(windowed.flushing());
  sim.run();
  EXPECT_EQ(windowed.stats().blocked_on_flush_ms, 0.0);
}

TEST_F(PipelineFixture, TimeBasedTimerOnEmptyQueueNeverOpensTheWindow) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::time_based(
                          sim::Duration::from_millis(100))
                          .windowed(2));
  sim.run_until(sim::Time::zero() + sim::Duration::from_seconds(1));
  EXPECT_EQ(rc.stats().flushes, 0u);
  EXPECT_EQ(rc.inflight_flushes(), 0u);
  EXPECT_FALSE(rc.flushing());
  EXPECT_EQ(rc.stats().blocked_on_flush_ms, 0.0);
}

TEST_F(PipelineFixture, ReentrantFlushFromListenerTerminates) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::none());
  int listener_calls = 0;
  rc.set_flush_listener([&] {
    ++listener_calls;
    rc.flush();  // a view draining deferred work can re-enter flush
  });
  record(rc, "k", 0);
  rc.flush();
  record(rc, "k", 1);  // lands while the first batch is in flight
  sim.run();
  // First completion re-entered flush for the second update; the second
  // completion found an empty queue and stopped.
  EXPECT_EQ(rc.stats().flushes, 2u);
  EXPECT_EQ(listener_calls, 2);
  EXPECT_EQ(home->values, (std::vector<int>{0, 1}));
  EXPECT_EQ(rc.pending(), 0u);
}

// ---- rejected-flush requeue ---------------------------------------------

TEST_F(PipelineFixture, RejectedFlushRequeuesAtFrontPreservingOrder) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::none());
  home->reject_next = 1;
  record(rc, "k", 0);
  record(rc, "k", 1);
  rc.flush();
  record(rc, "k", 2);  // arrives while the doomed batch is in flight
  sim.run();
  EXPECT_EQ(rc.stats().flushes_rejected, 1u);
  EXPECT_EQ(rc.stats().flushes_requeued, 1u);
  EXPECT_EQ(rc.stats().updates_requeued, 2u);
  EXPECT_EQ(rc.pending(), 3u);  // requeued batch sits ahead of update 2

  rc.flush();
  sim.run();
  ASSERT_EQ(home->batches.size(), 1u);
  EXPECT_EQ(home->batches[0], 3u);
  EXPECT_EQ(home->values, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(rc.stats().updates_dropped, 0u);
}

TEST_F(PipelineFixture, RetriesAreBoundedThenTheBatchIsDropped) {
  CoherencePolicy policy = CoherencePolicy::write_through();
  policy.max_flush_retries = 2;
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync", policy);
  home->reject_next = 100;  // the home never accepts
  record(rc, "k", 0);
  sim.run();
  // Initial send + 2 retries, then the update is dropped — not retried
  // forever.
  EXPECT_EQ(rc.stats().flushes, 3u);
  EXPECT_EQ(rc.stats().flushes_rejected, 3u);
  EXPECT_EQ(rc.stats().flushes_requeued, 2u);
  EXPECT_EQ(rc.stats().updates_dropped, 1u);
  EXPECT_EQ(rc.pending(), 0u);
  EXPECT_TRUE(home->values.empty());

  // The replica recovers: later updates flush normally once the home heals.
  home->reject_next = 0;
  record(rc, "k", 7);
  sim.run();
  EXPECT_EQ(home->values, (std::vector<int>{7}));
  EXPECT_EQ(rc.stats().updates_dropped, 1u);
}

// ---- batched directory fan-out ------------------------------------------

TEST_F(PipelineFixture, EpochAggregationShipsOneRpcPerReplica) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);
  dir.register_replica(replica2_id, sub);

  // Three updates in one event cascade (e.g. one relayed sync batch).
  for (int i = 0; i < 3; ++i) dir.on_update(make_update("k", i));
  EXPECT_EQ(dir.staged_updates(), 3u);
  sim.run();

  ASSERT_EQ(replica->rpcs, (std::vector<std::size_t>{3u}));
  ASSERT_EQ(replica2->rpcs, (std::vector<std::size_t>{3u}));
  EXPECT_EQ(replica->values, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(dir.stats().pushes, 2u);
  EXPECT_EQ(dir.stats().push_updates, 6u);
  // Naive fan-out would have issued 6 RPCs; batching issued 2.
  EXPECT_EQ(dir.stats().push_rpcs_saved, 4u);
  // The second replica reused the first one's immutable batch body.
  EXPECT_EQ(dir.stats().batches_shared, 1u);
  EXPECT_EQ(dir.stats().epochs, 1u);
  EXPECT_EQ(dir.staged_updates(), 0u);
}

TEST_F(PipelineFixture, LegacyAndBatchedFanOutDeliverTheSameUpdates) {
  DirectoryTuning legacy;
  legacy.batch_fanout = false;
  CoherenceDirectory naive(runtime, home_id, "push", nullptr, legacy);
  CoherenceDirectory batched(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  naive.register_replica(replica_id, sub);
  batched.register_replica(replica2_id, sub);

  for (int i = 0; i < 4; ++i) {
    naive.on_update(make_update("k", i));
    batched.on_update(make_update("k", i));
  }
  sim.run();
  // Same updates, same order — only the RPC count differs.
  EXPECT_EQ(replica->values, replica2->values);
  EXPECT_EQ(replica->values, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(naive.stats().pushes, 4u);
  EXPECT_EQ(naive.stats().push_rpcs_saved, 0u);
  EXPECT_EQ(batched.stats().pushes, 1u);
  EXPECT_EQ(batched.stats().push_rpcs_saved, 3u);
}

TEST_F(PipelineFixture, NonZeroEpochAggregatesAcrossTime) {
  DirectoryTuning tuning;
  tuning.flush_epoch = sim::Duration::from_millis(20);
  CoherenceDirectory dir(runtime, home_id, "push", nullptr, tuning);
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);

  dir.on_update(make_update("k", 0));
  sim.run_until(sim::Time::zero() + sim::Duration::from_millis(10));
  dir.on_update(make_update("k", 1));  // joins the already-open epoch
  sim.run();
  ASSERT_EQ(replica->rpcs, (std::vector<std::size_t>{2u}));
  EXPECT_EQ(dir.stats().epochs, 1u);
}

TEST_F(PipelineFixture, DeadReplicaIsPrunedLazilyOnPush) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);
  dir.register_replica(replica2_id, sub);
  ASSERT_TRUE(runtime.uninstall(replica2_id).is_ok());

  dir.on_update(make_update("k", 1));
  sim.run();
  EXPECT_EQ(dir.stats().replicas_evicted, 1u);
  EXPECT_EQ(dir.replica_count(), 1u);
  EXPECT_EQ(replica->updates_received(), 1u);
  // The evicted replica is not re-validated on later updates.
  dir.on_update(make_update("k", 2));
  sim.run();
  EXPECT_EQ(dir.stats().replicas_evicted, 1u);
  EXPECT_EQ(dir.stats().pushes, 2u);
}

TEST_F(PipelineFixture, UnregisterWhilePushInFlightIsSafe) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);

  dir.on_update(make_update("k", 1));
  dir.flush_staged();  // the push RPC leaves now
  // Unregistering while that RPC traverses the link must not affect its
  // delivery or crash when the ack comes back.
  dir.unregister_replica(replica_id);
  sim.run();
  EXPECT_EQ(dir.replica_count(), 0u);
  EXPECT_EQ(replica->updates_received(), 1u);

  dir.on_update(make_update("k", 2));
  sim.run();
  EXPECT_EQ(dir.stats().pushes, 1u);  // only the first update shipped
}

TEST_F(PipelineFixture, UnregisterWithStagedUpdatesDropsThemCleanly) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);

  dir.on_update(make_update("k", 1));
  EXPECT_EQ(dir.staged_updates(), 1u);
  // Unregistering before the epoch closes cancels the replica's pending
  // delivery — the staged update simply has nowhere to go.
  dir.unregister_replica(replica_id);
  sim.run();
  EXPECT_EQ(dir.stats().pushes, 0u);
  EXPECT_EQ(dir.staged_updates(), 0u);
  EXPECT_EQ(replica->updates_received(), 0u);
}

TEST_F(PipelineFixture, UninstallWhilePushInFlightFailsDeliveryGracefully) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);

  dir.on_update(make_update("k", 1));
  dir.flush_staged();  // the RPC leaves before the replica dies
  ASSERT_TRUE(runtime.uninstall(replica_id).is_ok());
  replica = nullptr;  // the component object is gone with the instance
  sim.run();          // delivery fails; the warn-only callback must not crash
  EXPECT_EQ(dir.stats().pushes, 1u);

  dir.on_update(make_update("k", 2));
  sim.run();
  EXPECT_EQ(dir.stats().replicas_evicted, 1u);
  EXPECT_EQ(dir.stats().pushes, 1u);  // no further RPC to the dead replica
}

}  // namespace
}  // namespace psf::coherence
