// Golden-file suite for the psflint static analyzer.
//
// For every catalog ID there are two fixtures under tests/fixtures/lint/:
// `<ID>_bad.psdl` must fire the ID and `<ID>_clean.psdl` — the same shape
// of spec with the defect repaired — must not. `multi_defect.psdl` checks
// the no-fail-fast contract: every planted defect is reported in one run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/analyzer.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "planner/environment.hpp"
#include "spec/parser.hpp"

namespace psf::analysis {
namespace {

std::filesystem::path fixture_dir() { return PSF_LINT_FIXTURE_DIR; }

// The catalog is shared with detlint (DET*); psflint's golden fixtures
// cover the PSF-prefixed subset.
bool psf_id(const DiagnosticInfo& info) {
  return std::string_view(info.id).substr(0, 3) == "PSF";
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "cannot open " << path;
  std::ostringstream oss;
  oss << file.rdbuf();
  return oss.str();
}

TEST(PsflintGolden, EveryCatalogIdHasBadAndCleanFixture) {
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (!psf_id(info)) continue;
    const auto bad = fixture_dir() / (std::string(info.id) + "_bad.psdl");
    const auto clean = fixture_dir() / (std::string(info.id) + "_clean.psdl");
    EXPECT_TRUE(std::filesystem::exists(bad)) << bad;
    EXPECT_TRUE(std::filesystem::exists(clean)) << clean;
  }
}

TEST(PsflintGolden, BadFixtureFiresItsId) {
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (!psf_id(info)) continue;
    const auto path = fixture_dir() / (std::string(info.id) + "_bad.psdl");
    const LintResult result = lint_source(read_file(path));
    EXPECT_TRUE(result.diagnostics.has(info.id))
        << path << " does not fire " << info.id << ":\n"
        << result.diagnostics.render_text();
  }
}

TEST(PsflintGolden, CleanFixtureDoesNotFireItsId) {
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (!psf_id(info)) continue;
    const auto path = fixture_dir() / (std::string(info.id) + "_clean.psdl");
    const LintResult result = lint_source(read_file(path));
    EXPECT_FALSE(result.diagnostics.has(info.id))
        << path << " unexpectedly fires " << info.id << ":\n"
        << result.diagnostics.render_text();
    // Repaired fixtures are also free of *other* error-level findings —
    // only the pair's own warning/note IDs may remain.
    EXPECT_FALSE(result.diagnostics.has_errors())
        << path << ":\n"
        << result.diagnostics.render_text();
  }
}

TEST(PsflintGolden, MultiDefectSpecReportsEveryPlantedId) {
  const LintResult result =
      lint_source(read_file(fixture_dir() / "multi_defect.psdl"));
  for (const char* id :
       {"PSF002", "PSF008", "PSF010", "PSF020", "PSF032", "PSF040"}) {
    EXPECT_TRUE(result.diagnostics.has(id))
        << id << " missing:\n"
        << result.diagnostics.render_text();
  }
  EXPECT_TRUE(result.diagnostics.has_errors());
}

TEST(PsflintGolden, FindingsAreOrderedBySourceLocation) {
  const LintResult result =
      lint_source(read_file(fixture_dir() / "multi_defect.psdl"));
  ASSERT_GT(result.diagnostics.size(), 1u);
  const auto& all = result.diagnostics.all();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i].loc < all[i - 1].loc);
  }
}

// The analyzer's error set subsumes ServiceSpec::validate(): a spec with no
// error-level findings must also pass validate().
TEST(PsflintGolden, ErrorFreeSpecsPassValidate) {
  for (const auto& entry : std::filesystem::directory_iterator(fixture_dir())) {
    if (entry.path().extension() != ".psdl") continue;
    const LintResult result = lint_source(read_file(entry.path()));
    if (result.diagnostics.has_errors()) continue;
    spec::ParseResult reparsed = spec::parse_spec_recover(read_file(entry.path()));
    EXPECT_TRUE(reparsed.spec.validate().is_ok())
        << entry.path() << " lints error-free but fails validate()";
  }
}

TEST(PsflintAnalyze, BuiltInSpecsAreErrorClean) {
  // These flow through Framework::register_service and must survive the
  // pre-flight. SecureMail keeps one deliberate warning (PSF006: the 'User'
  // property is declared for credential translation but unused in linkages).
  const LintResult mail = lint_source(mail::mail_spec_source());
  EXPECT_FALSE(mail.diagnostics.has_errors())
      << mail.diagnostics.render_text();
  EXPECT_TRUE(mail.diagnostics.has("PSF006"));
}

TEST(PsflintAnalyze, CatalogIdsAreUniqueAndAscending) {
  std::set<std::string> seen;
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    EXPECT_TRUE(seen.insert(info.id).second) << "duplicate " << info.id;
  }
}

// The Framework rejects error-level specs before any planner or runtime
// work, with the full diagnostic list attached to the status message.
TEST(PsflintPreflight, FrameworkRejectsErrorSpecWithDiagnostics) {
  net::Network network;
  network.add_node("home");
  core::Framework fw(std::move(network));

  // Contradictory conditions pass validate() (so psdl_check would accept
  // this spec) but are a planner dead-end the analyzer proves statically.
  const char* source = R"(
service Doomed {
  property P { type: interval(1, 10); }
  interface I { properties: P; }
  component A {
    implements I { P = 5; }
    conditions { node.P >= 5; node.P <= 3; }
    behaviors { code_size: 10 KB; }
  }
}
)";
  auto parsed = spec::parse_spec(source);
  ASSERT_TRUE(parsed.has_value()) << parsed.status().to_string();
  ASSERT_TRUE(parsed->validate().is_ok());

  runtime::ServiceRegistration registration;
  registration.spec = std::move(parsed).value();
  registration.code_origin = net::NodeId{0};
  auto st = fw.register_service(
      std::move(registration),
      std::make_shared<planner::CredentialMapTranslator>());
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kFailedPrecondition);
  EXPECT_NE(st.to_string().find("PSF031"), std::string::npos)
      << st.to_string();
}

TEST(PsflintPreflight, FrameworkAcceptsWarningOnlySpec) {
  net::Network network;
  network.add_node("home");
  core::Framework fw(std::move(network));

  // An unused property is a warning (PSF006), not an error: registration
  // must go through.
  const char* source = R"(
service Fine {
  property P { type: interval(1, 10); }
  property Unused { type: boolean; }
  interface I { properties: P; }
  component A {
    implements I { P = 5; }
    behaviors { code_size: 10 KB; }
  }
}
)";
  auto parsed = spec::parse_spec(source);
  ASSERT_TRUE(parsed.has_value()) << parsed.status().to_string();
  runtime::ServiceRegistration registration;
  registration.spec = std::move(parsed).value();
  registration.code_origin = net::NodeId{0};
  auto st = fw.register_service(
      std::move(registration),
      std::make_shared<planner::CredentialMapTranslator>());
  EXPECT_TRUE(st.is_ok()) << st.to_string();
}

TEST(PsflintJson, RendersWellFormedSummary) {
  const LintResult result =
      lint_source(read_file(fixture_dir() / "PSF010_bad.psdl"));
  const std::string json = result.diagnostics.render_json("x.psdl");
  EXPECT_NE(json.find("\"file\": \"x.psdl\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\": \"PSF010\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counts\""), std::string::npos) << json;
}

}  // namespace
}  // namespace psf::analysis
