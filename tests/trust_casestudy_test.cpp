// The §6 vision end-to-end: the Fig. 6 case study driven entirely by the
// trust-management substrate. Node trust levels come from dRBAC-style
// credentials (NYU's MailCA asserting its own sites, a cross-domain
// delegation granting the Seattle partner a weaker trust level), and
// credential revocation flows through to planning.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "trust/trust_graph.hpp"

namespace psf {
namespace {

struct TrustCaseStudy : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    // Strip the static trust credentials: trust must come from the graph.
    for (net::NodeId id : network.all_nodes()) {
      network.node(id).credentials.set("trust", std::int64_t{0});
    }

    graph.declare_namespace("mail", "MailCA");
    graph.declare_namespace("partner", "PartnerCA");
    const trust::Role trust_role{"mail", "TrustLevel"};
    const trust::Role member{"partner", "Member"};

    auto assert_trust = [&](const std::string& node, std::int64_t level) {
      trust::TrustCredential c;
      c.kind = trust::CredentialKind::kAssertion;
      c.issuer = "MailCA";
      c.subject = node;
      c.granted = trust_role;
      c.value = level;
      return graph.add(c);
    };
    for (net::NodeId n : sites.new_york) {
      assert_trust(network.node(n).name, 5);
    }
    for (net::NodeId n : sites.san_diego) {
      assert_trust(network.node(n).name, 4);
    }
    // Seattle: partner membership + a cross-domain delegation worth trust 2.
    for (net::NodeId n : sites.seattle) {
      trust::TrustCredential c;
      c.kind = trust::CredentialKind::kAssertion;
      c.issuer = "PartnerCA";
      c.subject = network.node(n).name;
      c.granted = member;
      membership_ids.push_back(graph.add(c));
    }
    {
      trust::TrustCredential d;
      d.kind = trust::CredentialKind::kDelegation;
      d.issuer = "MailCA";
      d.granted = trust_role;
      d.via = member;
      d.value = 2;
      graph.add(d);
    }

    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);

    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());

    // Trust-backed node translation; links keep the credential map.
    planner::CredentialMapTranslator link_fallback;
    link_fallback.map_link({"Confidentiality", "secure",
                            spec::PropertyType::kBoolean,
                            spec::PropertyValue::boolean(false)});
    auto translator = std::make_shared<planner::TrustBackedTranslator>(
        graph, "mail",
        std::vector<planner::CredentialMapping>{
            {"TrustLevel", "TrustLevel", spec::PropertyType::kInterval,
             spec::PropertyValue::integer(1)},
            // Node confidentiality stays credential-free here: all sites
            // are physically secure in the case study.
            {"Confidentiality", "Confidentiality",
             spec::PropertyType::kBoolean, spec::PropertyValue::boolean(true)}},
        link_fallback);

    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   translator);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  util::Expected<runtime::AccessOutcome> try_bind(net::NodeId node,
                                                  std::int64_t trust) {
    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(trust));
    defaults.request_rate_rps = 50.0;
    auto proxy = fw->make_proxy(node, "SecureMail", defaults);
    util::Status status = util::internal_error("incomplete");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(300));
    if (!status.is_ok()) return status;
    return proxy->outcome();
  }

  core::CaseStudySites sites;
  trust::TrustGraph graph;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
  std::vector<std::uint64_t> membership_ids;
};

TEST_F(TrustCaseStudy, GraphDrivenEnvironmentMatchesFig5Trust) {
  const auto* env = fw->server().environment("SecureMail");
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->node_env(sites.mail_home).get("TrustLevel"),
            spec::PropertyValue::integer(5));
  EXPECT_EQ(env->node_env(sites.sd_client).get("TrustLevel"),
            spec::PropertyValue::integer(4));
  EXPECT_EQ(env->node_env(sites.sea_client).get("TrustLevel"),
            spec::PropertyValue::integer(2));
}

TEST_F(TrustCaseStudy, Fig6DeploymentsEmergeFromCredentials) {
  auto sd = try_bind(sites.sd_client, 4);
  ASSERT_TRUE(sd.has_value()) << sd.status().to_string();
  std::set<std::string> sd_components;
  for (const auto& p : sd->plan.placements) {
    sd_components.insert(p.component->name);
  }
  EXPECT_TRUE(sd_components.count("ViewMailServer"));
  EXPECT_TRUE(sd_components.count("Encryptor"));

  auto sea = try_bind(sites.sea_client, 2);
  ASSERT_TRUE(sea.has_value()) << sea.status().to_string();
  EXPECT_EQ(fw->runtime().instance(sea->entry).def->name, "ViewMailClient");
}

TEST_F(TrustCaseStudy, RevokingPartnerMembershipCutsSeattleOff) {
  // Seattle works while the membership credentials are live...
  ASSERT_TRUE(try_bind(sites.sea_client, 2).has_value());

  // ...until the partnership ends: PartnerCA's membership assertions are
  // revoked, the derived mail.TrustLevel=2 evaporates, and after an
  // environment refresh Seattle cannot host even the restricted client.
  for (std::uint64_t id : membership_ids) {
    ASSERT_TRUE(graph.revoke(id).is_ok());
  }
  ASSERT_TRUE(fw->server().refresh_environment("SecureMail").is_ok());

  auto after = try_bind(sites.sea_client, 2);
  ASSERT_FALSE(after.has_value());
  EXPECT_EQ(after.status().code(), util::ErrorCode::kUnsatisfiable);

  // San Diego (directly asserted, not delegation-derived) is unaffected.
  EXPECT_TRUE(try_bind(sites.sd_client, 4).has_value());
}

TEST_F(TrustCaseStudy, RevocationObserverCanDriveRefreshAutomatically) {
  // Wire the trust graph's revocation stream into the framework: the §6
  // "continuous monitoring of credential validity".
  int refreshes = 0;
  graph.add_revocation_observer([this, &refreshes](const trust::TrustCredential&) {
    ASSERT_TRUE(fw->server().refresh_environment("SecureMail").is_ok());
    ++refreshes;
  });
  ASSERT_TRUE(graph.revoke(membership_ids[0]).is_ok());
  EXPECT_EQ(refreshes, 1);
  // That node (and only that node) lost its trust level.
  const auto* env = fw->server().environment("SecureMail");
  EXPECT_EQ(env->node_env(sites.seattle[0]).get("TrustLevel"),
            spec::PropertyValue::integer(1));  // translator default
  EXPECT_EQ(env->node_env(sites.seattle[1]).get("TrustLevel"),
            spec::PropertyValue::integer(2));
}

}  // namespace
}  // namespace psf
