// Fault handling (the §3.2 integration the paper defers to future work):
// node crashes tear down hosted instances, lease-based failure detection —
// not an oracle notification — discovers the loss, the reusable pool
// quarantines the dead, later clients plan around the loss, and tracked
// deployments report unrecoverable bindings.
//
// Every scenario crashes nodes with crash_node (silent: instances vanish,
// the node drops off the network, nobody is told). Discovery happens only
// through missed lease renewals at the LookupService, which fire the same
// monitor observer chain an explicit report would.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/redeploy.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"

namespace psf {
namespace {

struct FailoverFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    fw->enable_adaptation("SecureMail");
    // After register_service (it drains the simulator); the lease timers
    // run forever, so tests below only use bounded run_* calls.
    lease = &fw->enable_failure_detection(params);
  }

  util::Expected<runtime::AccessOutcome> try_bind(net::NodeId node) {
    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(4));
    request.client_node = node;
    request.request_rate_rps = 50.0;
    auto proxy = fw->make_proxy(node, "SecureMail", request);
    util::Status status = util::internal_error("incomplete");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(300));
    if (!status.is_ok()) return status;
    return proxy->outcome();
  }

  // Crashes `node` silently and waits for the lease sweep to notice.
  void crash_and_detect(net::NodeId node) {
    const std::size_t before = lease->expirations().size();
    fw->crash_node(node);
    const bool detected = fw->run_until_condition(
        [&]() { return lease->expirations().size() > before; },
        sim::Duration::from_seconds(30));
    ASSERT_TRUE(detected) << "lease for " << fw->network().node(node).name
                          << " never expired";
    EXPECT_EQ(lease->expirations().back().node, node);
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
  runtime::LeaseParams params;  // defaults: 500ms heartbeat, 1500ms grace
  runtime::LeaseManager* lease = nullptr;
};

TEST_F(FailoverFixture, CrashTearsDownHostedInstances) {
  auto outcome = try_bind(sites.sd_client);
  ASSERT_TRUE(outcome.has_value());
  const std::size_t on_node =
      fw->runtime().instances_on(sites.sd_client).size();
  ASSERT_GE(on_node, 3u);  // MailClient + ViewMailServer + Encryptor

  auto lost = fw->crash_node(sites.sd_client);
  EXPECT_EQ(lost.size(), on_node);
  EXPECT_TRUE(fw->runtime().instances_on(sites.sd_client).empty());
  for (auto id : lost) {
    EXPECT_FALSE(fw->runtime().exists(id));
  }
}

TEST_F(FailoverFixture, LeaseExpiryDetectsSilentCrash) {
  ASSERT_TRUE(try_bind(sites.sd_client).has_value());
  crash_and_detect(sites.sd_client);

  // Detection latency bound from ISSUE acceptance: at most twice the lease
  // duration (heartbeat + grace), measured from the crash instant.
  const double bound_ms = 2.0 * lease->lease_duration().millis();
  util::SampleSet latency = lease->detection_latency_ms();
  ASSERT_GT(latency.count(), 0u);
  EXPECT_LE(latency.max(), bound_ms);
}

TEST_F(FailoverFixture, PoolQuarantinesDeadInstances) {
  auto outcome = try_bind(sites.sd_client);
  ASSERT_TRUE(outcome.has_value());
  const std::size_t pool_before =
      fw->server().existing_instances("SecureMail").size();
  ASSERT_GE(pool_before, 2u);  // MailServer + shared SD components

  crash_and_detect(sites.sd_client);  // expiry refresh quarantines

  const auto& pool = fw->server().existing_instances("SecureMail");
  EXPECT_LT(pool.size(), pool_before);
  for (const auto& inst : pool) {
    EXPECT_TRUE(fw->runtime().exists(inst.runtime_id));
    EXPECT_NE(inst.node, sites.sd_client);
  }
}

TEST_F(FailoverFixture, NextClientPlansAroundTheCrash) {
  ASSERT_TRUE(try_bind(sites.sd_client).has_value());
  crash_and_detect(sites.sd_client);

  // A client on a surviving San Diego node gets a complete fresh chain (the
  // dead components are not referenced).
  auto outcome = try_bind(sites.san_diego[1]);
  ASSERT_TRUE(outcome.has_value()) << outcome.status().to_string();
  for (const auto& p : outcome->plan.placements) {
    EXPECT_NE(p.node, sites.sd_client);
  }
  for (auto id : outcome->instances) {
    EXPECT_TRUE(fw->runtime().exists(id));
  }

  // And the new deployment serves mail.
  config->keys->provision_user("survivor", mail::kMaxSensitivity);
  auto body = std::make_shared<mail::SendBody>();
  body->message.id = 1;
  body->message.from = "survivor";
  body->message.to = "survivor";
  body->message.sensitivity = 2;
  body->message.plaintext = {'o', 'k'};
  runtime::Request request;
  request.op = mail::ops::kSend;
  request.body = body;
  request.wire_bytes = mail::send_wire_bytes(body->message);
  bool ok = false;
  fw->runtime().invoke_from_node(sites.san_diego[1], outcome->entry,
                                 std::move(request),
                                 [&ok](runtime::Response r) { ok = r.ok; });
  fw->run_until_condition([&ok]() { return ok; },
                          sim::Duration::from_seconds(30));
  EXPECT_TRUE(ok);
}

TEST_F(FailoverFixture, ManagerReportsLostEntryAsUnrecoverable) {
  auto outcome = try_bind(sites.sd_client);
  ASSERT_TRUE(outcome.has_value());
  core::RedeploymentManager manager(*fw, "SecureMail");
  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.required_properties.emplace_back("TrustLevel",
                                           spec::PropertyValue::integer(4));
  request.client_node = sites.sd_client;
  request.request_rate_rps = 50.0;
  manager.track(*outcome, request);

  // The crash takes the client's own entry with it: the binding cannot be
  // preserved, which the manager must surface rather than silently "fix".
  // With the client node physically gone the replan is unsatisfiable (no
  // node can host the entry); a partial failure would read as kFailed.
  crash_and_detect(sites.sd_client);
  fw->run_for(sim::Duration::from_seconds(10));

  ASSERT_FALSE(manager.events().empty());
  bool unrecoverable_seen = false;
  for (const auto& event : manager.events()) {
    unrecoverable_seen |=
        event.outcome == core::RedeployEvent::Outcome::kFailed ||
        event.outcome == core::RedeployEvent::Outcome::kUnsatisfiable;
  }
  EXPECT_TRUE(unrecoverable_seen);
  EXPECT_EQ(manager.redeploy_count(), 0u);
}

TEST_F(FailoverFixture, PartitionHealFiresExactlyOneExpiryAndOneRecovery) {
  // A partitioned node's lease expires (indistinguishable from a crash);
  // healing the cut lets a late renewal reactivate it. The observer chain
  // must see exactly ONE failure report and the manager exactly ONE
  // recovery — no double-firing from renewals racing the expiry sweep.
  std::size_t failure_events = 0;
  fw->monitor().subscribe([&](const runtime::NetworkMonitor::ChangeEvent& e) {
    if (e.kind == runtime::NetworkMonitor::ChangeKind::kNodeFailure &&
        e.node == sites.sd_client) {
      ++failure_events;
    }
  });

  std::vector<net::NodeId> others;
  for (net::NodeId n : fw->network().all_nodes()) {
    if (!(n == sites.sd_client)) others.push_back(n);
  }
  const std::vector<net::LinkId> cut =
      fw->monitor().partition({sites.sd_client}, others);
  ASSERT_FALSE(cut.empty());

  const bool expired = fw->run_until_condition(
      [&]() { return !lease->lease_active(sites.sd_client); },
      sim::Duration::from_seconds(30));
  ASSERT_TRUE(expired);
  EXPECT_EQ(failure_events, 1u);

  for (net::LinkId l : cut) fw->monitor().heal_link(l);
  const bool recovered = fw->run_until_condition(
      [&]() { return lease->lease_active(sites.sd_client); },
      sim::Duration::from_seconds(30));
  ASSERT_TRUE(recovered);
  EXPECT_EQ(lease->recoveries(), 1u);

  // Steady state after the heal: no further expiries, no further
  // recoveries — one partition, one expiry, one recovery, done.
  fw->run_for(sim::Duration::from_seconds(10));
  EXPECT_EQ(failure_events, 1u);
  EXPECT_EQ(lease->recoveries(), 1u);
  EXPECT_TRUE(lease->lease_active(sites.sd_client));
  std::size_t node_expiries = 0;
  for (const auto& e : lease->expirations()) {
    if (e.node == sites.sd_client) ++node_expiries;
  }
  EXPECT_EQ(node_expiries, 1u);
}

TEST_F(FailoverFixture, StaleHeartbeatCannotReviveACrashedNode) {
  // The race: a renewal is IN FLIGHT on a slow link when its node crashes.
  // Store-and-forward delivers it after the lease has already expired; an
  // unguarded registry would renew the lease, report a phantom recovery,
  // and then fire a SECOND expiry for the same crash. The registry must
  // drop renewals from nodes it can see are down.
  std::size_t failure_events = 0;
  fw->monitor().subscribe([&](const runtime::NetworkMonitor::ChangeEvent& e) {
    if (e.kind == runtime::NetworkMonitor::ChangeKind::kNodeFailure &&
        e.node == sites.sd_client) {
      ++failure_events;
    }
  });
  fw->run_for(sim::Duration::from_seconds(2));  // settle into steady renewal

  // Stretch EVERY access link of the client beyond the lease duration (a
  // single slowed link would just reroute), then crash the node the instant
  // its next renewal is on the wire.
  std::size_t slowed = 0;
  for (std::uint32_t l = 0; l < fw->network().link_count(); ++l) {
    const net::LinkId lid{l};
    const net::Link& link = fw->network().link(lid);
    if (link.a == sites.sd_client || link.b == sites.sd_client) {
      fw->monitor().set_link_latency(lid, sim::Duration::from_millis(2500));
      ++slowed;
    }
  }
  ASSERT_GT(slowed, 0u);
  const std::uint64_t sent_before = lease->heartbeats_sent();
  ASSERT_TRUE(fw->run_until_condition(
      [&]() { return lease->heartbeats_sent() > sent_before; },
      sim::Duration::from_seconds(2)));
  fw->crash_node(sites.sd_client);

  // 10s covers the in-flight delivery (2.5s), the expiry, and — were the
  // bug present — the phantom recovery plus its second expiry.
  fw->run_for(sim::Duration::from_seconds(10));
  EXPECT_FALSE(lease->lease_active(sites.sd_client));
  EXPECT_EQ(failure_events, 1u);
  EXPECT_EQ(lease->recoveries(), 0u);
  std::size_t node_expiries = 0;
  for (const auto& e : lease->expirations()) {
    if (e.node == sites.sd_client) ++node_expiries;
  }
  EXPECT_EQ(node_expiries, 1u);
}

TEST_F(FailoverFixture, CrashOfEmptyNodeIsHarmless) {
  crash_and_detect(sites.seattle[1]);
  EXPECT_TRUE(fw->runtime().instances_on(sites.seattle[1]).empty());
  // Service still fully functional.
  EXPECT_TRUE(try_bind(sites.sd_client).has_value());
}

}  // namespace
}  // namespace psf
