#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/small_fn.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace psf::util {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(RngTest, UniformSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_u64(9, 9), 9u);
  EXPECT_EQ(rng.uniform_i64(-4, -4), -4);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanApproximatesInverseRate) {
  Rng rng(123);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.exponential(4.0);
  EXPECT_NEAR(total / n, 0.25, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(9);
  Rng child = parent.fork();
  // Child should not replay the parent's stream.
  Rng parent_copy(9);
  parent_copy.fork();
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

// ---- strings ----------------------------------------------------------------

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\na b\n"), "a b");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(StringsTest, Formatting) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_duration_us(500), "500.0 us");
  EXPECT_EQ(format_duration_us(2500), "2.50 ms");
  EXPECT_EQ(format_duration_us(3.2e6), "3.200 s");
}

// ---- status / expected ------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = unsatisfiable("no mapping");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kUnsatisfiable);
  EXPECT_EQ(st.to_string(), "unsatisfiable: no mapping");
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e = 5;
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 5);
  EXPECT_TRUE(e.status().is_ok());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e = not_found("missing");
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::string> e = std::string("payload");
  std::string s = std::move(e).value();
  EXPECT_EQ(s, "payload");
}

// ---- stats ------------------------------------------------------------------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
}

TEST(StatsTest, PercentileAfterMoreSamples) {
  SampleSet s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
  s.add(20.0);  // re-sorts lazily
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
}

// ---- thread pool --------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ManyTasksComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

// ---- SmallFn ---------------------------------------------------------------

TEST(SmallFnTest, InlineCaptureAvoidsHeapFallback) {
  SmallFn::reset_counters();
  const std::uint64_t base = SmallFn::constructed_count();
  int hits = 0;
  std::uint64_t a = 1, b = 2, c = 3;  // 24-byte capture + int* fits inline
  SmallFn fn([&hits, a, b, c] { hits += static_cast<int>(a + b + c); });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(hits, 6);
  EXPECT_EQ(SmallFn::constructed_count() - base, 1u);
  EXPECT_EQ(SmallFn::heap_fallback_count(), 0u);
}

TEST(SmallFnTest, OversizedCaptureFallsBackToHeapOnce) {
  SmallFn::reset_counters();
  struct Big {
    unsigned char bytes[SmallFn::kInlineBytes + 8] = {};
  } big;
  big.bytes[0] = 7;
  int seen = 0;
  SmallFn fn([big, &seen] { seen = big.bytes[0]; });
  EXPECT_EQ(SmallFn::heap_fallback_count(), 1u);
  // Moving a heap-backed SmallFn steals the pointer — no second fallback.
  SmallFn moved(std::move(fn));
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(SmallFn::heap_fallback_count(), 1u);
  EXPECT_EQ(SmallFn::constructed_count(), 1u);  // moves don't count
}

TEST(SmallFnTest, MoveRelocatesInlineStateAndEmptiesSource) {
  auto owner = std::make_shared<int>(41);
  SmallFn fn([owner] { ++*owner; });
  EXPECT_EQ(owner.use_count(), 2);
  SmallFn moved(std::move(fn));
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(owner.use_count(), 2);  // relocated, not copied
  moved();
  EXPECT_EQ(*owner, 42);
  SmallFn assigned;
  assigned = std::move(moved);
  assigned();
  EXPECT_EQ(*owner, 43);
  assigned = SmallFn([] {});  // overwrite destroys the old capture
  EXPECT_EQ(owner.use_count(), 1);
}

TEST(SmallFnTest, CallingEmptyFnDies) {
  SmallFn empty;
  EXPECT_DEATH(empty(), "empty SmallFn");
}

// ---- SlabPool --------------------------------------------------------------

TEST(SlabPoolTest, RecyclesStorageWithoutNewBlocks) {
  struct Node {
    explicit Node(int v) : value(v) {}
    int value;
  };
  SlabPool<Node> pool(/*block_items=*/4);
  // Churn far more objects than one block holds, but never more than 4 live
  // at once: a single slab must cover the whole run.
  std::vector<Node*> live;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 4; ++i) live.push_back(pool.create(round * 4 + i));
    for (Node* n : live) pool.destroy(n);
    live.clear();
  }
  const auto& stats = pool.stats();
  EXPECT_EQ(stats.created, 400u);
  EXPECT_EQ(stats.blocks, 1u);           // one allocator call total
  EXPECT_EQ(stats.recycled, 400u - 4u);  // all but the first batch reused
}

TEST(SlabPoolTest, CrossPoolDestroyFeedsReceiverFreelist) {
  struct Msg {
    std::uint64_t payload = 0;
  };
  SlabPool<Msg> sender(8);
  SlabPool<Msg> receiver(8);
  // Mailbox pattern: sender allocates, receiver destroys and reuses.
  Msg* m = sender.create();
  m->payload = 99;
  receiver.destroy(m);
  Msg* again = receiver.create();
  EXPECT_EQ(static_cast<void*>(again), static_cast<void*>(m));
  EXPECT_EQ(receiver.stats().recycled, 1u);
  EXPECT_EQ(receiver.stats().blocks, 0u);  // never allocated a slab itself
  receiver.destroy(again);
}

}  // namespace
}  // namespace psf::util
