// Planner tests: the three §3.3 constraint classes, factor binding,
// transparent pass-through, objectives, and reuse of existing instances —
// on small synthetic services where the right answer is obvious.
#include <gtest/gtest.h>

#include "planner/planner.hpp"
#include "spec/builder.hpp"

namespace psf {
namespace {

using planner::CredentialMapTranslator;
using planner::EnvironmentView;
using planner::Objective;
using planner::Planner;
using planner::PlanRequest;
using spec::PropertyValue;

// Two-node world: "edge" (client side) and "origin" (server side), joined by
// one configurable link.
struct TwoNodeWorld {
  net::Network network;
  net::NodeId edge;
  net::NodeId origin;
  net::LinkId link;

  explicit TwoNodeWorld(double bandwidth_bps = 10e6,
                        sim::Duration latency = sim::Duration::from_millis(50),
                        bool secure = true) {
    net::Credentials edge_creds;
    edge_creds.set("trust", std::int64_t{3});
    edge_creds.set("secure", true);
    edge = network.add_node("edge", 1e6, edge_creds);

    net::Credentials origin_creds;
    origin_creds.set("trust", std::int64_t{5});
    origin_creds.set("secure", true);
    origin = network.add_node("origin", 1e6, origin_creds);

    net::Credentials link_creds;
    link_creds.set("secure", secure);
    link = network.add_link(edge, origin, bandwidth_bps, latency, link_creds);
  }
};

CredentialMapTranslator standard_translator() {
  CredentialMapTranslator t;
  t.map_node({"TrustLevel", "trust", spec::PropertyType::kInterval,
              PropertyValue::integer(1)});
  t.map_node({"Confidentiality", "secure", spec::PropertyType::kBoolean,
              PropertyValue::boolean(false)});
  t.map_link({"Confidentiality", "secure", spec::PropertyType::kBoolean,
              PropertyValue::boolean(false)});
  return t;
}

// Client -> Origin, no views: the simplest linkage.
spec::ServiceSpec direct_spec() {
  return spec::SpecBuilder("Direct")
      .boolean_property("Confidentiality")
      .interval_property("TrustLevel", 1, 5)
      .interface("Api", {"Confidentiality", "TrustLevel"})
      .interface("Entry", {"Confidentiality", "TrustLevel"})
      .confidentiality_rule("Confidentiality")
      .component("Client")
      .implements("Entry", {{"TrustLevel", spec::lit_int(3)}})
      .requires_iface("Api", {{"TrustLevel", spec::lit_int(2)}})
      .cpu_per_request(10)
      .done()
      .component("Origin")
      .implements("Api", {{"Confidentiality", spec::lit_bool(true)},
                          {"TrustLevel", spec::lit_int(5)}})
      // Pinned by trust to the "origin" node so the link is always crossed.
      .condition_ge("TrustLevel", PropertyValue::integer(5))
      .capacity(100)
      .cpu_per_request(50)
      .done()
      .build();
}

TEST(PlannerTest, PlansDirectChain) {
  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec spec = direct_spec();
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  request.request_rate_rps = 1.0;

  auto plan = planner.plan(request);
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  EXPECT_EQ(plan->placements.size(), 2u);
  EXPECT_EQ(plan->entry_placement().component->name, "Client");
  EXPECT_EQ(plan->entry_placement().node, world.edge);
  EXPECT_EQ(plan->wires.size(), 1u);
  EXPECT_GT(plan->metrics.expected_latency_s, 0.0);
}

TEST(PlannerTest, EntryPinnedToClientNode) {
  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec spec = direct_spec();
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.origin;
  auto plan = planner.plan(request);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->entry_placement().node, world.origin);
}

TEST(PlannerTest, UnknownInterfaceIsNotFound) {
  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec spec = direct_spec();
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "NoSuchInterface";
  request.client_node = world.edge;
  auto plan = planner.plan(request);
  ASSERT_FALSE(plan.has_value());
  EXPECT_EQ(plan.status().code(), util::ErrorCode::kNotFound);
}

TEST(PlannerTest, ConditionBlocksUntrustedNode) {
  // Origin demands trust >= 5; only the "origin" node qualifies, and when
  // that requirement rises above every node the plan is unsatisfiable.
  auto make = [](std::int64_t required_trust) {
    return spec::SpecBuilder("Cond")
        .interval_property("TrustLevel", 1, 9)
        .interface("Api", {"TrustLevel"})
        .interface("Entry", {"TrustLevel"})
        .component("Client")
        .implements("Entry", {})
        .requires_iface("Api", {})
        .done()
        .component("Origin")
        .implements("Api", {{"TrustLevel", spec::lit_int(5)}})
        .condition_ge("TrustLevel", PropertyValue::integer(required_trust))
        .done()
        .build();
  };

  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;

  {
    spec::ServiceSpec spec = make(5);
    Planner planner(spec, env);
    auto plan = planner.plan(request);
    ASSERT_TRUE(plan.has_value());
    // The server must have landed on the trusted node.
    ASSERT_EQ(plan->placements.size(), 2u);
    EXPECT_EQ(plan->placements[1].node, world.origin);
  }
  {
    spec::ServiceSpec spec = make(6);  // nobody has trust 6
    Planner planner(spec, env);
    auto plan = planner.plan(request);
    ASSERT_FALSE(plan.has_value());
    EXPECT_EQ(plan.status().code(), util::ErrorCode::kUnsatisfiable);
  }
}

TEST(PlannerTest, ConfidentialityRuleRejectsInsecureLink) {
  // Client requires Confidentiality=T of Api; the only implementer sits
  // across an insecure link, so the requirement degrades to F and planning
  // fails. (No encryptor exists in this spec.)
  spec::ServiceSpec spec =
      spec::SpecBuilder("Conf")
          .boolean_property("Confidentiality")
          .interface("Api", {"Confidentiality"})
          .interface("Entry", {"Confidentiality"})
          .confidentiality_rule("Confidentiality")
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api",
                          {{"Confidentiality", spec::lit_bool(true)}})
          .done()
          .component("Origin")
          .implements("Api", {{"Confidentiality", spec::lit_bool(true)}})
          // Pin the origin away from the client so the link is crossed.
          .condition_ge("TrustLevel", PropertyValue::integer(5))
          .done()
          .interval_property("TrustLevel", 1, 5)
          .build();

  PlanRequest request;
  request.interface_name = "Entry";

  {
    TwoNodeWorld world(10e6, sim::Duration::from_millis(50), /*secure=*/true);
    auto translator = standard_translator();
    EnvironmentView env(world.network, translator);
    Planner planner(spec, env);
    request.client_node = world.edge;
    EXPECT_TRUE(planner.plan(request).has_value());
  }
  {
    TwoNodeWorld world(10e6, sim::Duration::from_millis(50),
                       /*secure=*/false);
    auto translator = standard_translator();
    EnvironmentView env(world.network, translator);
    Planner planner(spec, env);
    request.client_node = world.edge;
    auto plan = planner.plan(request);
    ASSERT_FALSE(plan.has_value());
    EXPECT_EQ(plan.status().code(), util::ErrorCode::kUnsatisfiable);
  }
}

TEST(PlannerTest, TransparentComponentRestoresConfidentiality) {
  // Same as above but with a transparent Encryptor/Decryptor pair in the
  // spec: the insecure link becomes crossable inside the tunnel.
  spec::ServiceSpec spec =
      spec::SpecBuilder("Tunnel")
          .boolean_property("Confidentiality")
          .interval_property("TrustLevel", 1, 5)
          .interface("Api", {"Confidentiality", "TrustLevel"})
          .interface("Entry", {"Confidentiality"})
          .interface("Tunnel", {"Confidentiality", "TrustLevel"})
          .confidentiality_rule("Confidentiality")
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {{"Confidentiality", spec::lit_bool(true)},
                                  {"TrustLevel", spec::lit_int(4)}})
          .done()
          .component("Origin")
          .implements("Api", {{"Confidentiality", spec::lit_bool(true)},
                              {"TrustLevel", spec::lit_int(5)}})
          .condition_ge("TrustLevel", PropertyValue::integer(5))
          .done()
          .component("Enc")
          .transparent()
          .implements("Api", {{"Confidentiality", spec::lit_bool(true)}})
          .requires_iface("Tunnel", {})
          .done()
          .component("Dec")
          .transparent()
          .implements("Tunnel", {})
          .requires_iface("Api", {{"Confidentiality", spec::lit_bool(true)}})
          .done()
          .build();

  TwoNodeWorld world(10e6, sim::Duration::from_millis(50), /*secure=*/false);
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  auto plan = planner.plan(request);
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();

  // Client -> Enc -> Dec -> Origin, with Enc on the edge and Dec with the
  // origin (the only arrangement whose plaintext segments stay secure).
  ASSERT_EQ(plan->placements.size(), 4u);
  std::map<std::string, std::string> where;
  for (const auto& p : plan->placements) {
    where[p.component->name] = world.network.node(p.node).name;
  }
  EXPECT_EQ(where["Client"], "edge");
  EXPECT_EQ(where["Enc"], "edge");
  EXPECT_EQ(where["Dec"], "origin");
  EXPECT_EQ(where["Origin"], "origin");

  // Pass-through: the Enc placement's effective Api must carry the origin's
  // TrustLevel=5.
  for (const auto& p : plan->placements) {
    if (p.component->name != "Enc") continue;
    auto it = p.effective.find("Api");
    ASSERT_NE(it, p.effective.end());
    auto trust = it->second.find("TrustLevel");
    ASSERT_NE(trust, it->second.end());
    EXPECT_EQ(trust->second, PropertyValue::integer(5));
  }
}

TEST(PlannerTest, FactorBindingConfiguresView) {
  // A view whose Quality factor binds from the node env; the client demands
  // Quality >= 3, the edge node offers 3.
  spec::ServiceSpec spec =
      spec::SpecBuilder("Factors")
          .interval_property("Quality", 1, 5)
          .interface("Api", {"Quality"})
          .interface("Entry", {"Quality"})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {{"Quality", spec::lit_int(3)}})
          .done()
          .component("Origin")
          .implements("Api", {{"Quality", spec::lit_int(5)}})
          .condition_ge("Quality", PropertyValue::integer(5))
          .done()
          .data_view("CacheView", "Origin")
          .factor("Quality", spec::node_ref("Quality"))
          .implements("Api", {{"Quality", spec::factor_ref("Quality")}})
          .requires_iface("Api", {{"Quality", spec::factor_ref("Quality")}})
          .rrf(0.1)
          .done()
          .build();

  // Map node trust into "Quality".
  CredentialMapTranslator translator;
  translator.map_node({"Quality", "trust", spec::PropertyType::kInterval,
                       PropertyValue::integer(1)});

  // Slow link makes the cache view worthwhile.
  TwoNodeWorld world(1e6, sim::Duration::from_millis(200));
  EnvironmentView env(world.network, translator);
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  auto plan = planner.plan(request);
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();

  bool found_view = false;
  for (const auto& p : plan->placements) {
    if (p.component->name != "CacheView") continue;
    found_view = true;
    EXPECT_EQ(p.node, world.edge);
    auto bound = p.factors.values.find("Quality");
    ASSERT_NE(bound, p.factors.values.end());
    EXPECT_EQ(bound->second, PropertyValue::integer(3));
  }
  EXPECT_TRUE(found_view)
      << "min-latency planning should cache before the slow link:\n"
      << plan->to_string(world.network);
}

TEST(PlannerTest, ReusesExistingInstanceWhenCheaper) {
  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec spec = direct_spec();
  Planner planner(spec, env);

  planner::ExistingInstance existing;
  existing.runtime_id = 42;
  existing.component = spec.find_component("Origin");
  existing.node = world.origin;
  existing.effective["Api"]["Confidentiality"] = PropertyValue::boolean(true);
  existing.effective["Api"]["TrustLevel"] = PropertyValue::integer(5);
  existing.downstream_latency_s = 50e-6;
  existing.current_load_rps = 10.0;

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  auto plan = planner.plan(request, {existing});
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->placements.size(), 2u);
  EXPECT_TRUE(plan->placements[1].reuse_existing);
  EXPECT_EQ(plan->placements[1].existing_runtime_id, 42u);
  EXPECT_EQ(plan->metrics.reused_components, 1u);
  EXPECT_EQ(plan->metrics.new_components, 1u);
}

TEST(PlannerTest, CapacityExhaustionFallsBackToNewInstance) {
  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec spec = direct_spec();
  Planner planner(spec, env);

  planner::ExistingInstance existing;
  existing.runtime_id = 42;
  existing.component = spec.find_component("Origin");
  existing.node = world.origin;
  existing.effective["Api"]["Confidentiality"] = PropertyValue::boolean(true);
  existing.effective["Api"]["TrustLevel"] = PropertyValue::integer(5);
  existing.current_load_rps = 99.5;  // capacity is 100

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  request.request_rate_rps = 5.0;  // would overflow the existing instance
  auto plan = planner.plan(request, {existing});
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->placements.size(), 2u);
  EXPECT_FALSE(plan->placements[1].reuse_existing);
}

TEST(PlannerTest, StaticComponentRequiresPreplacedInstance) {
  spec::ServiceSpec spec =
      spec::SpecBuilder("Static")
          .interval_property("TrustLevel", 1, 5)
          .interface("Api", {"TrustLevel"})
          .interface("Entry", {"TrustLevel"})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {})
          .done()
          .component("Origin")
          .static_placement()
          .implements("Api", {{"TrustLevel", spec::lit_int(5)}})
          .done()
          .build();

  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;

  // Without a pre-placed Origin, unsatisfiable.
  auto plan = planner.plan(request);
  ASSERT_FALSE(plan.has_value());
  EXPECT_EQ(plan.status().code(), util::ErrorCode::kUnsatisfiable);

  // With one, the plan binds to it.
  planner::ExistingInstance existing;
  existing.runtime_id = 7;
  existing.component = spec.find_component("Origin");
  existing.node = world.origin;
  existing.effective["Api"]["TrustLevel"] = PropertyValue::integer(5);
  auto plan2 = planner.plan(request, {existing});
  ASSERT_TRUE(plan2.has_value());
  EXPECT_TRUE(plan2->placements[1].reuse_existing);
}

TEST(PlannerTest, LinkBandwidthConstraintRejectsOverload) {
  // A 9600-baud link cannot carry the requested rate.
  TwoNodeWorld world(/*bandwidth_bps=*/9600.0);
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec spec = direct_spec();
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  request.request_rate_rps = 100.0;  // 100 * (1024+1024)*8 bits >> 9600
  auto plan = planner.plan(request);
  ASSERT_FALSE(plan.has_value());
  EXPECT_EQ(plan.status().code(), util::ErrorCode::kUnsatisfiable);
}

TEST(PlannerTest, PlanRendersToDot) {
  TwoNodeWorld world;
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  spec::ServiceSpec spec = direct_spec();
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  auto plan = planner.plan(request);
  ASSERT_TRUE(plan.has_value());

  const std::string dot = plan->to_dot(world.network);
  EXPECT_NE(dot.find("digraph deployment"), std::string::npos);
  EXPECT_NE(dot.find("cluster_"), std::string::npos);
  EXPECT_NE(dot.find("Client"), std::string::npos);
  EXPECT_NE(dot.find("Origin"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Balanced braces (cheap well-formedness proxy).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(PlannerTest, MinCostObjectivePrefersFewerComponents) {
  // With the cache view available and a slow link, min-latency deploys the
  // view but min-deployment-cost connects directly.
  spec::ServiceSpec spec =
      spec::SpecBuilder("Obj")
          .interval_property("TrustLevel", 1, 5)
          .interface("Api", {"TrustLevel"})
          .interface("Entry", {"TrustLevel"})
          .component("Client")
          .implements("Entry", {})
          .requires_iface("Api", {})
          .done()
          .component("Origin")
          .implements("Api", {{"TrustLevel", spec::lit_int(5)}})
          .condition_ge("TrustLevel", PropertyValue::integer(5))
          .done()
          .data_view("CacheView", "Origin")
          .implements("Api", {{"TrustLevel", spec::lit_int(3)}})
          .requires_iface("Api", {})
          .rrf(0.1)
          .code_size(1024 * 1024)
          .done()
          .build();

  TwoNodeWorld world(2e6, sim::Duration::from_millis(300));
  auto translator = standard_translator();
  EnvironmentView env(world.network, translator);
  Planner planner(spec, env);

  PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = world.edge;
  request.code_origin = world.origin;

  request.objective = Objective::kMinLatency;
  auto latency_plan = planner.plan(request);
  ASSERT_TRUE(latency_plan.has_value());

  request.objective = Objective::kMinDeploymentCost;
  auto cost_plan = planner.plan(request);
  ASSERT_TRUE(cost_plan.has_value());

  EXPECT_GT(latency_plan->placements.size(), cost_plan->placements.size());
  EXPECT_LT(latency_plan->metrics.expected_latency_s,
            cost_plan->metrics.expected_latency_s);
}

}  // namespace
}  // namespace psf
