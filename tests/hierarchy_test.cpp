// Hierarchical anytime planner: shared graph partitioning, the quotient
// cluster index and its admissible bounds, hierarchical-vs-flat optimality
// on small topologies, anytime deadline behavior, the chain-DP fast path,
// lazy route-row materialization, and the runtime's background improver.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "planner/cluster.hpp"
#include "planner/hierarchy.hpp"
#include "planner/planner.hpp"
#include "spec/builder.hpp"

namespace {

using namespace psf;

net::Network waxman(std::size_t num_nodes, std::uint64_t seed) {
  net::WaxmanParams params;
  params.num_nodes = num_nodes;
  util::Rng rng(seed);
  return net::generate_waxman(params, rng);
}

// The mail service on a seeded Waxman topology with the planner_test trust
// pattern: node 0 is the trusted home, everyone else cycles trust 2..4.
struct WaxmanWorld {
  net::Network network;
  spec::ServiceSpec spec;
  std::shared_ptr<planner::CredentialMapTranslator> translator;
  std::unique_ptr<planner::EnvironmentView> env;
  std::unique_ptr<planner::Planner> planner;
  std::vector<planner::ExistingInstance> existing;

  WaxmanWorld(std::size_t num_nodes, std::uint64_t seed) {
    network = waxman(num_nodes, seed);
    for (net::NodeId id : network.all_nodes()) {
      network.node(id).credentials.set(
          "trust", static_cast<std::int64_t>(2 + id.value % 3));
      network.node(id).credentials.set("secure", true);
    }
    network.node(net::NodeId{0}).credentials.set("trust", std::int64_t{5});
    for (net::LinkId id : network.all_links()) {
      network.link(id).credentials.set("secure", (id.value % 3) != 0);
    }

    spec = mail::mail_service_spec();
    translator = mail::mail_translator();
    env = std::make_unique<planner::EnvironmentView>(network, *translator);
    planner = std::make_unique<planner::Planner>(spec, *env);

    planner::ExistingInstance home;
    home.runtime_id = 1;
    home.component = spec.find_component("MailServer");
    home.node = net::NodeId{0};
    home.effective["ServerInterface"]["Confidentiality"] =
        spec::PropertyValue::boolean(true);
    home.effective["ServerInterface"]["TrustLevel"] =
        spec::PropertyValue::integer(5);
    home.downstream_latency_s = 1e-4;
    existing.push_back(home);
  }

  planner::PlanRequest request(planner::Objective objective) const {
    planner::PlanRequest req;
    req.interface_name = "ClientInterface";
    req.required_properties.emplace_back("TrustLevel",
                                         spec::PropertyValue::integer(2));
    req.client_node =
        net::NodeId{static_cast<std::uint32_t>(network.node_count() - 1)};
    req.max_depth = 4;
    req.objective = objective;
    return req;
  }
};

std::string describe_plan(const planner::DeploymentPlan& plan) {
  std::ostringstream oss;
  oss << "entry=" << plan.entry << "\n";
  for (const planner::Placement& p : plan.placements) {
    oss << p.component->name << "@" << p.node.value << " reuse="
        << p.reuse_existing << "\n";
  }
  return oss.str();
}

// ---- Shared graph partitioning ---------------------------------------------

TEST(PartitionGraphTest, CoversEveryNodeWithinCapacity) {
  const net::Network network = waxman(64, 11);
  const std::size_t parts = 8;
  const net::GraphPartition part = net::partition_graph(network, parts);

  ASSERT_EQ(part.part_of_node.size(), network.node_count());
  ASSERT_EQ(part.num_parts, parts);
  ASSERT_EQ(part.part_sizes.size(), parts);

  const std::size_t capacity =
      (network.node_count() + parts - 1) / parts;
  std::size_t total = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    EXPECT_LE(part.part_sizes[p], capacity) << "part " << p;
    total += part.part_sizes[p];
  }
  EXPECT_EQ(total, network.node_count());
  for (net::NodeId id : network.all_nodes()) {
    ASSERT_LT(part.part_of(id), parts);
  }
}

TEST(PartitionGraphTest, DeterministicAndCutStatsConsistent) {
  const net::Network network = waxman(48, 7);
  const net::GraphPartition a = net::partition_graph(network, 6);
  const net::GraphPartition b = net::partition_graph(network, 6);
  EXPECT_EQ(a.part_of_node, b.part_of_node);
  EXPECT_EQ(a.cut_links, b.cut_links);
  EXPECT_EQ(a.min_cut_latency_ns, b.min_cut_latency_ns);

  // Recompute the cut from scratch and compare.
  std::size_t cut = 0;
  std::int64_t min_latency = std::numeric_limits<std::int64_t>::max();
  for (net::LinkId id : network.all_links()) {
    const net::Link& link = network.link(id);
    if (a.part_of(link.a) == a.part_of(link.b)) continue;
    ++cut;
    min_latency = std::min(min_latency, link.latency.nanos());
  }
  EXPECT_EQ(a.cut_links, cut);
  EXPECT_EQ(a.min_cut_latency_ns, min_latency);
}

TEST(PartitionGraphTest, SimRegionWrapperAgrees) {
  // sim::partition_network is now a thin wrapper; both views of the same
  // partition must agree exactly.
  const net::Network network = waxman(40, 3);
  const net::GraphPartition part = net::partition_graph(network, 5);
  for (net::NodeId id : network.all_nodes()) {
    ASSERT_EQ(part.part_of(id), part.part_of_node[id.value]);
  }
}

// ---- ClusterIndex ----------------------------------------------------------

TEST(ClusterIndexTest, BorderNodesAreExactlyCutEndpoints) {
  const net::Network network = waxman(64, 21);
  const planner::ClusterIndex index(network, 8);

  std::vector<std::vector<net::NodeId>> expected(index.num_clusters());
  for (net::LinkId id : network.all_links()) {
    const net::Link& link = network.link(id);
    const auto ca = index.cluster_of(link.a);
    const auto cb = index.cluster_of(link.b);
    if (ca == cb) continue;
    expected[ca].push_back(link.a);
    expected[cb].push_back(link.b);
  }
  for (std::size_t c = 0; c < index.num_clusters(); ++c) {
    std::sort(expected[c].begin(), expected[c].end());
    expected[c].erase(std::unique(expected[c].begin(), expected[c].end()),
                      expected[c].end());
    EXPECT_EQ(index.border_nodes(c), expected[c]) << "cluster " << c;
  }
}

TEST(ClusterIndexTest, QuotientBoundsAreAdmissible) {
  const net::Network network = waxman(64, 21);
  const planner::ClusterIndex index(network, 8);

  // For every node pair, the quotient latency lower bound must not exceed
  // the true shortest-route latency, and the bandwidth upper bound must not
  // be below the route's real bottleneck — otherwise hierarchical pruning
  // could discard optimal plans.
  for (net::NodeId u : network.all_nodes()) {
    for (net::NodeId v : network.all_nodes()) {
      const auto cu = index.cluster_of(u);
      const auto cv = index.cluster_of(v);
      if (cu == cv) continue;
      const net::Route* route = network.cached_route(u, v);
      ASSERT_NE(route, nullptr);
      EXPECT_LE(index.latency_lb_s(cu, cv),
                route->total_latency.seconds() + 1e-12)
          << u.value << " -> " << v.value;
      EXPECT_GE(index.bandwidth_ub_bps(cu, cv),
                route->bottleneck_bandwidth_bps - 1e-6)
          << u.value << " -> " << v.value;
    }
  }
}

TEST(ClusterIndexTest, MembersPartitionTheTopology) {
  const net::Network network = waxman(50, 5);
  const planner::ClusterIndex index(network, 0 /* unused */ + 7);
  std::vector<bool> seen(network.node_count(), false);
  for (std::size_t c = 0; c < index.num_clusters(); ++c) {
    for (net::NodeId id : index.members(c)) {
      EXPECT_EQ(index.cluster_of(id), c);
      EXPECT_FALSE(seen[id.value]) << "node in two clusters";
      seen[id.value] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(ClusterIndexTest, DefaultClusterCountIsSqrtish) {
  EXPECT_EQ(planner::ClusterIndex::default_cluster_count(0), 1u);
  EXPECT_EQ(planner::ClusterIndex::default_cluster_count(1), 1u);
  EXPECT_EQ(planner::ClusterIndex::default_cluster_count(4), 2u);
  EXPECT_EQ(planner::ClusterIndex::default_cluster_count(100), 10u);
  EXPECT_EQ(planner::ClusterIndex::default_cluster_count(1000), 32u);
}

// ---- Refinement schedule ---------------------------------------------------

TEST(HierarchyScheduleTest, ClientClusterFirstWithZeroBound) {
  WaxmanWorld world(64, 21);
  const planner::ClusterIndex index(world.network, 8);
  const planner::PlanRequest request =
      world.request(planner::Objective::kMinLatency);
  const auto refinements = planner::build_refinements(
      index, world.spec, request, world.existing);

  ASSERT_EQ(refinements.size(), index.num_clusters());
  EXPECT_EQ(refinements[0].cluster, index.cluster_of(request.client_node));
  EXPECT_EQ(refinements[0].lower_bound, 0.0);
  for (std::size_t r = 2; r < refinements.size(); ++r) {
    EXPECT_LE(refinements[r - 1].lower_bound, refinements[r].lower_bound);
  }
  // Every refinement carries the fixed nodes: client + existing instances.
  for (const auto& ref : refinements) {
    EXPECT_TRUE(std::binary_search(ref.candidates.begin(),
                                   ref.candidates.end(),
                                   request.client_node));
    EXPECT_TRUE(std::binary_search(ref.candidates.begin(),
                                   ref.candidates.end(), net::NodeId{0}));
  }
  // And all candidate sets together cover the topology.
  std::vector<bool> covered(world.network.node_count(), false);
  for (const auto& ref : refinements) {
    for (net::NodeId id : ref.candidates) covered[id.value] = true;
  }
  EXPECT_TRUE(
      std::all_of(covered.begin(), covered.end(), [](bool b) { return b; }));
}

TEST(HierarchyScheduleTest, DiscountFloorUsesDepthAndMinRrf) {
  spec::ServiceSpec spec =
      spec::SpecBuilder("Chain")
          .interface("Api", {})
          .interface("Store", {})
          .component("Front")
              .implements("Api")
              .requires_iface("Store")
              .rrf(0.5)
              .done()
          .component("Back").implements("Store").done()
          .build();
  planner::PlanRequest request;
  request.max_depth = 3;
  // floor = min_rrf^(depth-1) = 0.5^2
  EXPECT_NEAR(planner::discount_floor(spec, request), 0.25, 1e-12);
  request.max_depth = 1;
  EXPECT_NEAR(planner::discount_floor(spec, request), 1.0, 1e-12);
}

// ---- Hierarchical search vs flat -------------------------------------------

TEST(HierarchicalSearchTest, MatchesFlatOptimalityOnSmallTopologies) {
  for (std::uint64_t seed : {2026ull, 7ull, 99ull}) {
    WaxmanWorld world(16, seed);
    for (planner::Objective objective :
         {planner::Objective::kMinLatency,
          planner::Objective::kMinDeploymentCost}) {
      planner::PlanRequest flat = world.request(objective);
      flat.search_mode = planner::SearchMode::kFlat;

      planner::PlanRequest hier = world.request(objective);
      hier.search_mode = planner::SearchMode::kHierarchical;
      hier.cluster_count = 4;

      planner::SearchStats flat_stats, hier_stats;
      auto a = world.planner->plan(flat, world.existing, &flat_stats);
      auto b = world.planner->plan(hier, world.existing, &hier_stats);

      const std::string label = "seed=" + std::to_string(seed) +
                                " objective=" +
                                planner::objective_name(objective);
      ASSERT_EQ(a.has_value(), b.has_value()) << label;
      if (!a.has_value()) continue;
      EXPECT_FALSE(flat_stats.used_hierarchy) << label;
      EXPECT_TRUE(hier_stats.used_hierarchy) << label;
      EXPECT_GE(hier_stats.clusters_total, 2u) << label;

      const double fa =
          planner::plan_primary_score(objective, a->metrics);
      const double fb =
          planner::plan_primary_score(objective, b->metrics);
      // Hierarchical search is exact within its restricted plan space, so
      // it can never beat flat; the gap gate is the bench's 5% bound.
      EXPECT_GE(fb, fa - 1e-12) << label;
      EXPECT_LE(fb, fa + 0.05 * std::max(1e-9, std::abs(fa))) << label;
    }
  }
}

TEST(HierarchicalSearchTest, DeterministicAcrossWorkerCounts) {
  WaxmanWorld world(72, 13);  // above the auto threshold
  planner::PlanRequest serial =
      world.request(planner::Objective::kMinLatency);
  serial.search_threads = 1;

  planner::PlanRequest parallel = serial;
  parallel.search_threads = 4;

  planner::SearchStats serial_stats, parallel_stats;
  auto a = world.planner->plan(serial, world.existing, &serial_stats);
  auto b = world.planner->plan(parallel, world.existing, &parallel_stats);
  ASSERT_TRUE(a.has_value()) << a.status().to_string();
  ASSERT_TRUE(b.has_value()) << b.status().to_string();
  EXPECT_TRUE(serial_stats.used_hierarchy);  // kAuto picked hierarchy
  EXPECT_TRUE(parallel_stats.used_hierarchy);
  EXPECT_EQ(describe_plan(*a), describe_plan(*b));
  EXPECT_EQ(a->metrics.expected_latency_s, b->metrics.expected_latency_s);
}

TEST(HierarchicalSearchTest, AutoThresholdSelectsMode) {
  WaxmanWorld small(16, 2026);
  planner::SearchStats stats;
  auto plan = small.planner->plan(
      small.request(planner::Objective::kMinLatency), small.existing, &stats);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(stats.used_hierarchy);

  WaxmanWorld large(72, 2026);
  auto plan2 = large.planner->plan(
      large.request(planner::Objective::kMinLatency), large.existing, &stats);
  ASSERT_TRUE(plan2.has_value());
  EXPECT_TRUE(stats.used_hierarchy);
}

// ---- Anytime deadline ------------------------------------------------------

TEST(AnytimeTest, DeadlineReturnsValidIncumbentAndNeverBeatsFullSearch) {
  WaxmanWorld world(32, 17);
  planner::PlanRequest full = world.request(planner::Objective::kMinLatency);
  full.search_mode = planner::SearchMode::kFlat;

  planner::PlanRequest truncated = full;
  truncated.deadline_budget = 1e-9;  // expires immediately after incumbent

  planner::SearchStats full_stats, truncated_stats;
  auto best = world.planner->plan(full, world.existing, &full_stats);
  auto incumbent =
      world.planner->plan(truncated, world.existing, &truncated_stats);

  ASSERT_TRUE(best.has_value()) << best.status().to_string();
  // The deadline never causes empty-handed returns: the search keeps going
  // until a first incumbent exists.
  ASSERT_TRUE(incumbent.has_value()) << incumbent.status().to_string();
  EXPECT_FALSE(full_stats.deadline_hit);
  EXPECT_TRUE(truncated_stats.deadline_hit);
  EXPECT_LE(truncated_stats.candidates_examined,
            full_stats.candidates_examined);
  // Anytime monotonicity endpoint: the full search is at least as good.
  EXPECT_LE(best->metrics.expected_latency_s,
            incumbent->metrics.expected_latency_s + 1e-12);
}

TEST(AnytimeTest, ZeroBudgetMeansNoDeadline) {
  WaxmanWorld world(16, 17);
  planner::PlanRequest request =
      world.request(planner::Objective::kMinLatency);
  request.deadline_budget = 0.0;
  planner::SearchStats stats;
  auto plan = world.planner->plan(request, world.existing, &stats);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(stats.deadline_hit);
}

// ---- Chain-DP fast path ----------------------------------------------------

// A view-free two-component chain the DP models exactly.
spec::ServiceSpec chain_spec() {
  return spec::SpecBuilder("ChainSvc")
      .interface("Api", {})
      .interface("Store", {})
      .component("Front")
          .implements("Api")
          .requires_iface("Store")
          .rrf(0.6)
          .cpu_per_request(200.0)
          .message_bytes(2048, 8192)
          .code_size(64 * 1024)
          .done()
      .component("Back")
          .implements("Store")
          .cpu_per_request(500.0)
          .message_bytes(1024, 4096)
          .code_size(128 * 1024)
          .done()
      .build();
}

net::Network path_network(std::size_t n) {
  net::Network network;
  for (std::size_t i = 0; i < n; ++i) {
    network.add_node("n" + std::to_string(i), 1e6);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // Varied latencies/bandwidths so placement actually matters.
    network.add_link(net::NodeId{static_cast<std::uint32_t>(i)},
                     net::NodeId{static_cast<std::uint32_t>(i + 1)}, 50e6,
                     sim::Duration::from_micros(100 + 150 * (i % 3)));
  }
  return network;
}

TEST(ChainDpTest, FastPathMatchesFlatSearchOnPaths) {
  const spec::ServiceSpec spec = chain_spec();
  auto translator = std::make_shared<planner::CredentialMapTranslator>();
  for (std::size_t n : {4u, 6u, 8u}) {
    const net::Network network = path_network(n);
    planner::EnvironmentView env(network, *translator);
    planner::Planner planner(spec, env);

    planner::PlanRequest dp;
    dp.interface_name = "Api";
    dp.client_node = net::NodeId{0};
    dp.request_rate_rps = 10.0;
    dp.max_depth = 3;

    planner::PlanRequest search = dp;
    search.chain_dp = false;
    search.search_mode = planner::SearchMode::kFlat;

    planner::SearchStats dp_stats, search_stats;
    auto a = planner.plan(dp, {}, &dp_stats);
    auto b = planner.plan(search, {}, &search_stats);
    ASSERT_TRUE(a.has_value()) << a.status().to_string();
    ASSERT_TRUE(b.has_value()) << b.status().to_string();
    EXPECT_TRUE(dp_stats.used_chain_dp) << "n=" << n;
    EXPECT_FALSE(search_stats.used_chain_dp) << "n=" << n;
    EXPECT_NEAR(a->metrics.expected_latency_s, b->metrics.expected_latency_s,
                1e-9)
        << "n=" << n;
    ASSERT_EQ(a->placements.size(), b->placements.size()) << "n=" << n;
    EXPECT_EQ(a->placements[0].node, net::NodeId{0});
  }
}

TEST(ChainDpTest, IneligibleRequestsFallThroughToSearch) {
  const spec::ServiceSpec spec = chain_spec();
  auto translator = std::make_shared<planner::CredentialMapTranslator>();
  const net::Network network = path_network(6);
  planner::EnvironmentView env(network, *translator);
  planner::Planner planner(spec, env);

  planner::PlanRequest base;
  base.interface_name = "Api";
  base.client_node = net::NodeId{0};
  base.request_rate_rps = 10.0;
  base.max_depth = 3;

  // Client in the middle of the path: not an endpoint — not a chain walk.
  planner::PlanRequest middle = base;
  middle.client_node = net::NodeId{3};
  planner::SearchStats stats;
  auto plan = planner.plan(middle, {}, &stats);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(stats.used_chain_dp);

  // Wrong objective.
  planner::PlanRequest cost = base;
  cost.objective = planner::Objective::kMinDeploymentCost;
  plan = planner.plan(cost, {}, &stats);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(stats.used_chain_dp);

  // The mail spec (views + factors) on a path never takes the DP.
  WaxmanWorld world(10, 2026);
  planner::SearchStats mail_stats;
  auto mail_plan = world.planner->plan(
      world.request(planner::Objective::kMinLatency), world.existing,
      &mail_stats);
  ASSERT_TRUE(mail_plan.has_value());
  EXPECT_FALSE(mail_stats.used_chain_dp);
}

// ---- Lazy route rows -------------------------------------------------------

TEST(LazyRouteRowTest, RowsMaterializePerSourceOnDemand) {
  net::Network network = waxman(24, 9);
  EXPECT_EQ(network.route_rows_materialized(), 0u);

  const net::Route* r = network.cached_route(net::NodeId{3}, net::NodeId{17});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(network.route_rows_materialized(), 1u);

  // Same source, different target: no new row.
  network.cached_route(net::NodeId{3}, net::NodeId{5});
  EXPECT_EQ(network.route_rows_materialized(), 1u);

  network.cached_route(net::NodeId{4}, net::NodeId{5});
  EXPECT_EQ(network.route_rows_materialized(), 2u);

  network.precompute_routes();
  EXPECT_EQ(network.route_rows_materialized(), network.node_count());

  // Topology mutation invalidates every row.
  network.set_node_up(net::NodeId{7}, false);
  EXPECT_EQ(network.route_rows_materialized(), 0u);
  const net::Route* after =
      network.cached_route(net::NodeId{3}, net::NodeId{17});
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(network.route_rows_materialized(), 1u);
}

TEST(LazyRouteRowTest, CachedRowsMatchDirectRouting) {
  net::Network network = waxman(24, 9);
  for (net::NodeId from : network.all_nodes()) {
    for (net::NodeId to : network.all_nodes()) {
      const net::Route* cached = network.cached_route(from, to);
      ASSERT_NE(cached, nullptr);
      const std::optional<net::Route> direct = network.route(from, to);
      ASSERT_TRUE(direct.has_value());
      EXPECT_EQ(cached->total_latency.nanos(), direct->total_latency.nanos())
          << from.value << "->" << to.value;
      EXPECT_EQ(cached->links.size(), direct->links.size());
    }
  }
}

TEST(LazyRouteRowTest, ConcurrentReadersAreSafe) {
  // Exercised under TSan by tools/check.sh --planner: many threads fault in
  // overlapping rows concurrently; every returned route must be correct.
  net::Network network = waxman(32, 29);
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> mismatches{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&network, &mismatches, t] {
      for (std::uint32_t from = 0; from < network.node_count(); ++from) {
        const std::uint32_t source =
            (from + static_cast<std::uint32_t>(t) * 7) %
            static_cast<std::uint32_t>(network.node_count());
        const net::Route* r = network.cached_route(
            net::NodeId{source},
            net::NodeId{(source + 1) %
                        static_cast<std::uint32_t>(network.node_count())});
        if (r == nullptr) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(network.route_rows_materialized(), network.node_count());
}

// ---- Runtime anytime improver ----------------------------------------------

struct AnytimeFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = waxman(48, 41);
    for (net::NodeId id : network.all_nodes()) {
      network.node(id).credentials.set(
          "trust", static_cast<std::int64_t>(2 + id.value % 3));
      network.node(id).credentials.set("secure", true);
    }
    network.node(net::NodeId{0}).credentials.set("trust", std::int64_t{5});
    for (net::LinkId id : network.all_links()) {
      network.link(id).credentials.set("secure", true);
    }
    fw = std::make_unique<core::Framework>(std::move(network));
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto registration = mail::mail_registration(net::NodeId{0});
    registration.anytime_deadline_s = 1e-9;  // truncate at first incumbent
    auto st =
        fw->register_service(std::move(registration), mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  planner::PlanRequest defaults() {
    planner::PlanRequest d;
    d.interface_name = "ClientInterface";
    d.required_properties.emplace_back("TrustLevel",
                                       spec::PropertyValue::integer(2));
    d.request_rate_rps = 20.0;
    d.client_node = net::NodeId{47};
    d.search_mode = planner::SearchMode::kFlat;
    return d;
  }

  runtime::AccessOutcome access() {
    runtime::AccessOutcome out;
    bool done = false;
    fw->server().request_access(
        "SecureMail", defaults(),
        [&](util::Expected<runtime::AccessOutcome> result) {
          ASSERT_TRUE(result.has_value()) << result.status().to_string();
          out = std::move(result).value();
          done = true;
        });
    fw->run();
    EXPECT_TRUE(done);
    return out;
  }

  std::size_t drain() {
    bool drained = false;
    fw->server().drain_improvements([&] { drained = true; });
    fw->run();
    EXPECT_TRUE(drained);
    return fw->server().pending_improvements();
  }

  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
};

TEST_F(AnytimeFixture, TruncatedAccessEnqueuesImprovementJob) {
  const runtime::AccessOutcome out = access();
  EXPECT_TRUE(out.search.deadline_hit);
  EXPECT_FALSE(out.cache_hit);
  EXPECT_EQ(fw->server().pending_improvements(), 1u);
  EXPECT_EQ(fw->server().anytime_telemetry().jobs_enqueued, 1u);
}

TEST_F(AnytimeFixture, DrainImprovesOrConfirmsAndStaysMonotonic) {
  const runtime::AccessOutcome truncated = access();
  ASSERT_TRUE(truncated.search.deadline_hit);
  ASSERT_EQ(drain(), 0u);

  const runtime::AnytimeTelemetry& t = fw->server().anytime_telemetry();
  EXPECT_EQ(t.improved_swaps + t.no_better, 1u);
  EXPECT_EQ(t.nonmonotonic_refused, 0u);
  EXPECT_EQ(t.discarded_stale, 0u);

  // A later identical client binds the (possibly swapped) cached plan, and
  // its score is never worse than the truncated incumbent's.
  const runtime::AccessOutcome warm = access();
  EXPECT_TRUE(warm.cache_hit);
  const double truncated_score = planner::plan_primary_score(
      planner::Objective::kMinLatency, truncated.plan.metrics);
  const double warm_score = planner::plan_primary_score(
      planner::Objective::kMinLatency, warm.plan.metrics);
  EXPECT_LE(warm_score, truncated_score + 1e-12);
  if (t.improved_swaps == 1) {
    EXPECT_LT(warm_score, truncated_score);
    ASSERT_EQ(t.swap_primary_scores.size(), 1u);
    EXPECT_NEAR(t.swap_primary_scores[0], warm_score, 1e-12);
  }
}

TEST_F(AnytimeFixture, EpochBumpDiscardsStaleImprovements) {
  access();
  ASSERT_EQ(fw->server().pending_improvements(), 1u);

  // The environment changes before the improver runs: the job must be
  // discarded, never deployed over the new world.
  fw->server().invalidate_cached_plans();
  ASSERT_EQ(drain(), 0u);
  const runtime::AnytimeTelemetry& t = fw->server().anytime_telemetry();
  EXPECT_EQ(t.discarded_stale, 1u);
  EXPECT_EQ(t.improved_swaps, 0u);

  // Zero stale binds: the next identical access is cold (epoch moved), and
  // it re-enqueues its own improvement under the new epoch.
  const runtime::AccessOutcome second = access();
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(fw->server().pending_improvements(), 1u);
  ASSERT_EQ(drain(), 0u);
  EXPECT_EQ(t.nonmonotonic_refused, 0u);
  // One discarded job (stale epoch) + one resolved job (swap or confirm).
  EXPECT_EQ(t.discarded_stale, 1u);
  EXPECT_EQ(t.improved_swaps + t.no_better, 1u);
}

}  // namespace
