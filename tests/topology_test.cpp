// Topology generators: connectivity, determinism, parameter plausibility.
#include <gtest/gtest.h>

#include <queue>

#include "net/topology.hpp"

namespace psf::net {
namespace {

// BFS connectivity check.
bool connected(const Network& n) {
  if (n.node_count() == 0) return true;
  std::vector<bool> seen(n.node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(NodeId{0});
  seen[0] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop();
    for (LinkId lid : n.links_of(cur)) {
      NodeId next = n.link(lid).other(cur);
      if (!seen[next.value]) {
        seen[next.value] = true;
        ++count;
        frontier.push(next);
      }
    }
  }
  return count == n.node_count();
}

struct GeneratorCase {
  std::string name;
  std::function<Network(std::uint64_t seed)> make;
};

class TopologyParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TopologyParamTest, WaxmanConnectedAndSized) {
  const auto [size, seed] = GetParam();
  WaxmanParams params;
  params.num_nodes = size;
  util::Rng rng(seed);
  Network n = generate_waxman(params, rng);
  EXPECT_EQ(n.node_count(), size);
  EXPECT_TRUE(connected(n));
  EXPECT_GE(n.link_count(), size - 1);  // at least a spanning structure
}

TEST_P(TopologyParamTest, BarabasiAlbertConnectedAndSized) {
  const auto [size, seed] = GetParam();
  if (size < 3) GTEST_SKIP();
  BarabasiAlbertParams params;
  params.num_nodes = size;
  params.links_per_new_node = 2;
  util::Rng rng(seed);
  Network n = generate_barabasi_albert(params, rng);
  EXPECT_EQ(n.node_count(), size);
  EXPECT_TRUE(connected(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopologyParamTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 20, 60),
                       ::testing::Values<std::uint64_t>(1, 42, 20260707)));

TEST(TopologyTest, WaxmanDeterministicForSeed) {
  WaxmanParams params;
  params.num_nodes = 30;
  util::Rng rng1(77), rng2(77);
  Network a = generate_waxman(params, rng1);
  Network b = generate_waxman(params, rng2);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (LinkId lid : a.all_links()) {
    EXPECT_EQ(a.link(lid).a, b.link(lid).a);
    EXPECT_EQ(a.link(lid).b, b.link(lid).b);
    EXPECT_EQ(a.link(lid).bandwidth_bps, b.link(lid).bandwidth_bps);
  }
}

TEST(TopologyTest, WaxmanResourceRangesRespected) {
  WaxmanParams params;
  params.num_nodes = 40;
  params.min_bandwidth_bps = 5e6;
  params.max_bandwidth_bps = 6e6;
  params.min_cpu = 1e5;
  params.max_cpu = 2e5;
  util::Rng rng(3);
  Network n = generate_waxman(params, rng);
  for (NodeId id : n.all_nodes()) {
    EXPECT_GE(n.node(id).cpu_capacity, 1e5);
    EXPECT_LE(n.node(id).cpu_capacity, 2e5);
  }
  for (LinkId id : n.all_links()) {
    EXPECT_GE(n.link(id).bandwidth_bps, 5e6);
    EXPECT_LE(n.link(id).bandwidth_bps, 6e6);
  }
}

TEST(TopologyTest, BarabasiAlbertSkewsDegree) {
  BarabasiAlbertParams params;
  params.num_nodes = 200;
  params.links_per_new_node = 2;
  util::Rng rng(11);
  Network n = generate_barabasi_albert(params, rng);

  std::size_t max_degree = 0;
  double total_degree = 0;
  for (NodeId id : n.all_nodes()) {
    max_degree = std::max(max_degree, n.links_of(id).size());
    total_degree += static_cast<double>(n.links_of(id).size());
  }
  const double avg = total_degree / static_cast<double>(n.node_count());
  // Preferential attachment produces hubs far above the average degree.
  EXPECT_GT(static_cast<double>(max_degree), 4.0 * avg);
}

TEST(TopologyTest, HierarchicalComposesSites) {
  HierarchicalParams params;
  params.as_level.num_nodes = 4;
  params.router_level.num_nodes = 5;
  util::Rng rng(5);
  Network n = generate_hierarchical(params, rng);
  EXPECT_EQ(n.node_count(), 20u);
  EXPECT_TRUE(connected(n));
  // Every node carries its AS id as a credential.
  for (NodeId id : n.all_nodes()) {
    EXPECT_TRUE(n.node(id).credentials.has("as"));
  }
}

}  // namespace
}  // namespace psf::net
