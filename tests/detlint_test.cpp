// Golden-file and unit suite for detlint, the C++ determinism linter.
//
// Mirrors psflint_test's contract: every DET catalog ID has a `_bad`
// fixture that fires it exactly once and a `_clean` repaired twin that
// stays error-free; plus unit coverage for the scanner, the suppression
// directives, the baseline ledger, and the shared diagnostics engine's
// JSON shape across both emitters.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/detlint/baseline.hpp"
#include "analysis/detlint/cxx_lexer.hpp"
#include "analysis/detlint/detlint.hpp"

namespace psf::analysis::det {
namespace {

std::filesystem::path fixture_dir() { return PSF_DETLINT_FIXTURE_DIR; }

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "cannot open " << path;
  std::ostringstream oss;
  oss << file.rdbuf();
  return oss.str();
}

bool det_id(const DiagnosticInfo& info) {
  return std::string_view(info.id).substr(0, 3) == "DET";
}

std::size_t count_id(const DiagnosticList& diags, std::string_view id) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags.all()) {
    if (d.id == id) ++n;
  }
  return n;
}

CxxLintResult lint(std::string_view source,
                   std::string_view path = "src/sample.cpp") {
  return lint_cxx_source(path, source);
}

// ---- scanner ------------------------------------------------------------

TEST(CxxLexer, StringsCommentsAndPreprocessorProduceNoIdentTokens) {
  const CxxScan scan = scan_cxx(
      "#include <ctime>\n"
      "// time( in a comment\n"
      "const char* s = \"time(now) rand()\";\n"
      "char c = 't';\n");
  for (const CxxToken& tok : scan.tokens) {
    if (tok.kind != TokKind::kIdent) continue;
    // Identifiers from the #include line are flagged as preprocessor
    // tokens; words inside strings/comments never become tokens at all.
    if (tok.text == "ctime" || tok.text == "include") {
      EXPECT_TRUE(tok.preproc) << tok.text;
    }
    EXPECT_NE(tok.text, "rand");
    EXPECT_NE(tok.text, "time");
  }
  ASSERT_EQ(scan.comments.size(), 1u);
  EXPECT_TRUE(scan.comments[0].own_line);
}

TEST(CxxLexer, RawStringsAndDigitSeparatorsScanAsSingleLiterals) {
  const CxxScan scan = scan_cxx(
      "auto r = R\"(rand() \"quoted\" time())\";\n"
      "int n = 1'000'000;\n");
  std::size_t strings = 0;
  for (const CxxToken& tok : scan.tokens) {
    if (tok.kind == TokKind::kString) ++strings;
    EXPECT_FALSE(tok.kind == TokKind::kIdent && tok.text == "rand");
  }
  EXPECT_EQ(strings, 1u);
}

TEST(CxxLexer, TracksLocationsAcrossMultilineConstructs) {
  const CxxScan scan = scan_cxx("/* a\nb */\nint x;\n");
  ASSERT_FALSE(scan.tokens.empty());
  EXPECT_EQ(scan.tokens[0].loc.line, 3);
  EXPECT_EQ(scan.tokens[0].text, "int");
}

// ---- golden fixtures ----------------------------------------------------

TEST(DetlintGolden, EveryDetIdHasBadAndCleanFixture) {
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (!det_id(info)) continue;
    const auto bad = fixture_dir() / (std::string(info.id) + "_bad.cpp");
    const auto clean = fixture_dir() / (std::string(info.id) + "_clean.cpp");
    EXPECT_TRUE(std::filesystem::exists(bad)) << bad;
    EXPECT_TRUE(std::filesystem::exists(clean)) << clean;
  }
}

TEST(DetlintGolden, BadFixtureFiresItsIdExactlyOnce) {
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (!det_id(info)) continue;
    const auto path = fixture_dir() / (std::string(info.id) + "_bad.cpp");
    const CxxLintResult result = lint(read_file(path));
    EXPECT_EQ(count_id(result.diagnostics, info.id), 1u)
        << path << ":\n"
        << result.diagnostics.render_text();
  }
}

TEST(DetlintGolden, CleanFixtureDoesNotFireItsIdAndHasNoErrors) {
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (!det_id(info)) continue;
    const auto path = fixture_dir() / (std::string(info.id) + "_clean.cpp");
    const CxxLintResult result = lint(read_file(path));
    EXPECT_EQ(count_id(result.diagnostics, info.id), 0u)
        << path << ":\n"
        << result.diagnostics.render_text();
    EXPECT_FALSE(result.diagnostics.has_errors())
        << path << ":\n"
        << result.diagnostics.render_text();
  }
}

TEST(DetlintGolden, CleanFileIsEntirelyClean) {
  const CxxLintResult result = lint(read_file(fixture_dir() / "clean.cpp"));
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.render_text();
  EXPECT_EQ(result.suppressed, 0u);
}

TEST(DetlintGolden, MultiDefectFileReportsEveryPlantedIdInOrder) {
  const CxxLintResult result =
      lint(read_file(fixture_dir() / "multi_defect.cpp"));
  for (const char* id : {"DET002", "DET004", "DET011", "DET020", "DET021"}) {
    EXPECT_TRUE(result.diagnostics.has(id))
        << id << " missing:\n"
        << result.diagnostics.render_text();
  }
  const auto& all = result.diagnostics.all();
  ASSERT_GT(all.size(), 1u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i].loc < all[i - 1].loc);
  }
}

// ---- directives ---------------------------------------------------------

TEST(DetlintDirectives, TrailingAllowSuppressesSameLineFinding) {
  const CxxLintResult result = lint(
      "auto t = std::chrono::steady_clock::now();  "
      "// detlint:allow(DET004 telemetry wall-clock)\n");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.render_text();
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(DetlintDirectives, OwnLineAllowCoversTheNextLineOnly) {
  const CxxLintResult covered = lint(
      "// detlint:allow(DET002 replaying a recorded trace)\n"
      "int x = rand();\n");
  EXPECT_TRUE(covered.diagnostics.empty());

  const CxxLintResult gap = lint(
      "// detlint:allow(DET002 replaying a recorded trace)\n"
      "int y = 0;\n"
      "int x = rand();\n");
  EXPECT_TRUE(gap.diagnostics.has("DET002"));
  EXPECT_TRUE(gap.diagnostics.has("DET030"));  // the allow went unused
}

TEST(DetlintDirectives, IndentedOwnLineAllowStillCoversTheNextLine) {
  // Indentation must not demote a comment to "trailing": an allow inside a
  // function body is almost always preceded by whitespace.
  const CxxLintResult result = lint(
      "void f() {\n"
      "    // detlint:allow(DET002 replaying a recorded trace)\n"
      "    int x = rand();\n"
      "}\n");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.render_text();
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(DetlintDirectives, IndentedPreprocessorLineIsStillPreprocessor) {
  const CxxLintResult result = lint(
      "#ifdef PSF_TRACE\n"
      "  #include <ctime>\n"
      "#endif\n");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.render_text();
}

TEST(DetlintDirectives, AllowFileCoversEveryInstanceInTheFile) {
  const CxxLintResult result = lint(
      "// detlint:allow-file(DET004 bench measures wall-clock on purpose)\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.render_text();
  EXPECT_EQ(result.suppressed, 2u);
}

TEST(DetlintDirectives, MissingReasonIsMalformed) {
  const CxxLintResult result = lint("// detlint:allow(DET004)\n");
  EXPECT_EQ(count_id(result.diagnostics, "DET031"), 1u)
      << result.diagnostics.render_text();
}

TEST(DetlintDirectives, UnknownIdIsMalformed) {
  const CxxLintResult result =
      lint("// detlint:allow(PSF001 wrong catalog family)\n");
  EXPECT_EQ(count_id(result.diagnostics, "DET031"), 1u);
}

TEST(DetlintDirectives, OrderedOutputPragmaGatesDet010) {
  const std::string body =
      "#include <unordered_map>\n"
      "void emit(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& e : m) { (void)e; }\n"
      "}\n";
  EXPECT_FALSE(lint(body).diagnostics.has("DET010"));
  const CxxLintResult tagged =
      lint("// detlint:ordered-output\n" + body);
  EXPECT_EQ(count_id(tagged.diagnostics, "DET010"), 1u)
      << tagged.diagnostics.render_text();
}

TEST(DetlintChecks, UtilRngPathIsClockExempt) {
  const std::string body =
      "#include <random>\n"
      "unsigned seed() { std::random_device rd; return rd(); }\n";
  EXPECT_TRUE(lint(body, "src/util/rng.cpp").diagnostics.empty());
  EXPECT_TRUE(lint(body, "src/planner/planner.cpp").diagnostics.has("DET001"));
}

TEST(DetlintChecks, MemberAndForeignNamespaceCallsDoNotFire) {
  const CxxLintResult result = lint(
      "struct Sim { double time() const; };\n"
      "double f(const Sim& s) { return s.time(); }\n"
      "namespace detail { long time(int); }\n"
      "long g() { return detail::time(0); }\n");
  EXPECT_FALSE(result.diagnostics.has("DET003"))
      << result.diagnostics.render_text();
}

TEST(DetlintChecks, IsDeterministicAcrossRuns) {
  const std::string source = read_file(fixture_dir() / "multi_defect.cpp");
  const std::string a =
      lint(source).diagnostics.render_json("multi_defect.cpp");
  const std::string b =
      lint(source).diagnostics.render_json("multi_defect.cpp");
  EXPECT_EQ(a, b);
}

// ---- baseline -----------------------------------------------------------

TEST(DetlintBaseline, MatchedFindingIsDroppedAndCounted) {
  const std::string source = "int x = rand();\n";
  const CxxLintResult first = lint(source, "src/legacy.cpp");
  ASSERT_EQ(first.surviving.size(), 1u);

  Baseline baseline;
  baseline.add(first.surviving[0]);
  CxxLintOptions options;
  options.baseline = &baseline;
  const CxxLintResult second =
      lint_cxx_source("src/legacy.cpp", source, options);
  EXPECT_TRUE(second.diagnostics.empty());
  EXPECT_EQ(second.baselined, 1u);
  EXPECT_TRUE(baseline.unmatched().empty());
}

TEST(DetlintBaseline, PathSuffixMatchesAbsoluteInvocation) {
  const std::string source = "int x = rand();\n";
  const BaselineEntry entry = lint(source, "src/legacy.cpp").surviving[0];
  Baseline baseline;
  baseline.add(entry);
  CxxLintOptions options;
  options.baseline = &baseline;
  EXPECT_EQ(lint_cxx_source("/repo/src/legacy.cpp", source, options)
                .baselined,
            1u);
  // ...but not a mere substring of another file name.
  Baseline again;
  again.add(entry);
  options.baseline = &again;
  EXPECT_EQ(
      lint_cxx_source("xsrc/legacy.cpp", source, options).baselined, 0u);
}

TEST(DetlintBaseline, FingerprintTracksLineContentNotLineNumber) {
  const CxxLintResult orig = lint("int x = rand();\n", "src/legacy.cpp");
  Baseline baseline;
  baseline.add(orig.surviving[0]);
  CxxLintOptions options;
  options.baseline = &baseline;
  // Code added above the finding: still matched.
  EXPECT_EQ(lint_cxx_source("src/legacy.cpp",
                            "void unrelated();\nint x = rand();\n", options)
                .baselined,
            1u);
  // The flagged line itself changed: a fresh finding, not baselined.
  Baseline again;
  again.add(orig.surviving[0]);
  options.baseline = &again;
  const CxxLintResult changed =
      lint_cxx_source("src/legacy.cpp", "int y = rand();\n", options);
  EXPECT_EQ(changed.baselined, 0u);
  EXPECT_TRUE(changed.diagnostics.has("DET002"));
  EXPECT_EQ(again.unmatched().size(), 1u);  // now stale
}

TEST(DetlintBaseline, CountAwareMatchingAbsorbsExactlyN) {
  const std::string source = "int a = rand();\nint b = rand();\n";
  const CxxLintResult both = lint(source, "src/legacy.cpp");
  ASSERT_EQ(both.surviving.size(), 2u);
  Baseline baseline;
  baseline.add(both.surviving[0]);  // ledger only ONE of the two
  CxxLintOptions options;
  options.baseline = &baseline;
  const CxxLintResult result =
      lint_cxx_source("src/legacy.cpp", source, options);
  EXPECT_EQ(result.baselined, 1u);
  EXPECT_EQ(count_id(result.diagnostics, "DET002"), 1u);
}

TEST(DetlintBaseline, RenderParseRoundTrip) {
  std::vector<BaselineEntry> entries = {
      {"DET011", 0x0123456789abcdefull, "src/planner/planner.cpp"},
      {"DET020", 0xfedcba9876543210ull, "src/util/small_fn.hpp"},
  };
  std::vector<std::string> errors;
  Baseline parsed = Baseline::parse(Baseline::render(entries), &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(
      parsed.consume("DET011", "src/planner/planner.cpp",
                     0x0123456789abcdefull));
  EXPECT_FALSE(
      parsed.consume("DET011", "src/planner/planner.cpp",
                     0x0123456789abcdefull));
}

TEST(DetlintBaseline, MalformedLinesAreReportedAndSkipped) {
  std::vector<std::string> errors;
  Baseline parsed =
      Baseline::parse("DET011 nothex src/x.cpp\nDET020\n", &errors);
  EXPECT_EQ(parsed.size(), 0u);
  EXPECT_EQ(errors.size(), 2u);
}

// ---- shared diagnostics engine: JSON shape across both emitters ---------

// Asserts the stable schema both CI consumers parse: a `file` string, a
// `diagnostics` array whose entries carry id/severity/line/column/message
// in order, and a `counts` object with all three severities.
void expect_diag_json_shape(const std::string& json) {
  const char* keys[] = {"{\"file\": ",      "\"diagnostics\": [",
                        "\"counts\": ",     "\"error\": ",
                        "\"warning\": ",    "\"note\": "};
  std::size_t pos = 0;
  for (const char* key : keys) {
    const std::size_t found = json.find(key, pos);
    ASSERT_NE(found, std::string::npos) << key << " missing in: " << json;
    pos = found;
  }
  const std::size_t array_start = json.find("\"diagnostics\": [");
  std::size_t entry = json.find('{', array_start + 1);
  ASSERT_NE(entry, std::string::npos) << json;
  while (entry != std::string::npos && entry < json.find("\"counts\"")) {
    std::size_t cursor = entry;
    for (const char* key : {"\"id\": ", "\"severity\": ", "\"line\": ",
                            "\"column\": ", "\"message\": "}) {
      const std::size_t found = json.find(key, cursor);
      ASSERT_NE(found, std::string::npos)
          << key << " missing in entry: " << json;
      cursor = found;
    }
    entry = json.find('{', json.find('}', cursor));
  }
}

TEST(DiagnosticsJson, DetlintEmitterMatchesSchema) {
  const CxxLintResult result =
      lint(read_file(fixture_dir() / "multi_defect.cpp"));
  ASSERT_FALSE(result.diagnostics.empty());
  expect_diag_json_shape(result.diagnostics.render_json("multi_defect.cpp"));
}

TEST(DiagnosticsJson, PsflintEmitterMatchesSchema) {
  const LintResult result = lint_source("service Broken {");
  ASSERT_FALSE(result.diagnostics.empty());
  expect_diag_json_shape(result.diagnostics.render_json("broken.psdl"));
}

TEST(DiagnosticsJson, EscapesMessageContent) {
  DiagnosticList list;
  Diagnostic d;
  d.id = "DET001";
  d.severity = Severity::kError;
  d.message = "quote \" backslash \\ tab \t";
  list.add(d);
  const std::string json = list.render_json("f.cpp");
  EXPECT_NE(json.find("quote \\\" backslash \\\\ tab \\t"),
            std::string::npos)
      << json;
}

// ---- catalog ------------------------------------------------------------

TEST(DetlintCatalog, DetIdsAreRegisteredWithStableSeverities) {
  EXPECT_EQ(find_diagnostic("DET001")->severity, Severity::kError);
  EXPECT_EQ(find_diagnostic("DET011")->severity, Severity::kWarning);
  EXPECT_EQ(find_diagnostic("DET030")->severity, Severity::kWarning);
  EXPECT_EQ(find_diagnostic("DET031")->severity, Severity::kError);
  std::size_t det_count = 0;
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (det_id(info)) ++det_count;
  }
  EXPECT_EQ(det_count, 13u);
}

}  // namespace
}  // namespace psf::analysis::det
