// Generic proxy / generic server: the Fig. 1 timeline — registration,
// lookup, proxy download, access planning, deployment, transparent
// generic→specific proxy swap, and instance reuse across clients.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"

namespace psf {
namespace {

struct GenericFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
  }

  void register_mail() {
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  planner::PlanRequest defaults(std::int64_t trust = 4) {
    planner::PlanRequest d;
    d.interface_name = "ClientInterface";
    d.required_properties.emplace_back("TrustLevel",
                                       spec::PropertyValue::integer(trust));
    d.request_rate_rps = 50.0;
    return d;
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
};

TEST_F(GenericFixture, RegistrationDeploysInitialPlacements) {
  register_mail();
  // The MailServer runs at its home node.
  auto instances = fw->runtime().instances_on(sites.mail_home);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(fw->runtime().instance(instances[0]).def->name, "MailServer");
  EXPECT_TRUE(fw->runtime().instance(instances[0]).started);
  // And is advertised.
  EXPECT_NE(fw->lookup().find("SecureMail"), nullptr);
  EXPECT_EQ(fw->server().existing_instances("SecureMail").size(), 1u);
}

TEST_F(GenericFixture, DuplicateRegistrationRejected) {
  register_mail();
  util::Status st = util::Status::ok();
  fw->server().register_service(mail::mail_registration(sites.mail_home),
                                mail::mail_translator(),
                                [&st](util::Status s) { st = s; });
  fw->run();
  EXPECT_EQ(st.code(), util::ErrorCode::kAlreadyExists);
}

TEST_F(GenericFixture, RegistrationValidatesSpec) {
  auto registration = mail::mail_registration(sites.mail_home);
  registration.spec.components.clear();  // break it: views represent nothing
  registration.spec.name = "Broken";
  util::Status st = util::Status::ok();
  fw->server().register_service(std::move(registration),
                                mail::mail_translator(),
                                [&st](util::Status s) { st = s; });
  fw->run();
  EXPECT_FALSE(st.is_ok());
}

TEST_F(GenericFixture, UnknownServiceAccessFails) {
  register_mail();
  auto proxy = fw->make_proxy(sites.ny_client, "NoSuchService", defaults());
  util::Status st = util::Status::ok();
  proxy->bind([&st](util::Status s) { st = s; });
  fw->run();
  EXPECT_EQ(st.code(), util::ErrorCode::kNotFound);
}

TEST_F(GenericFixture, InvokeAutoBindsAndDelivers) {
  register_mail();
  auto proxy = fw->make_proxy(sites.ny_client, "SecureMail", defaults());
  EXPECT_FALSE(proxy->bound());

  config->keys->provision_user("alice", mail::kMaxSensitivity);
  auto body = std::make_shared<mail::SendBody>();
  body->message.id = 1;
  body->message.from = "alice";
  body->message.to = "alice";
  body->message.plaintext = {'h', 'i'};
  runtime::Request request;
  request.op = mail::ops::kSend;
  request.body = body;
  request.wire_bytes = mail::send_wire_bytes(body->message);

  bool ok = false;
  proxy->invoke(std::move(request), [&](runtime::Response response) {
    EXPECT_TRUE(response.ok) << response.error;
    ok = true;
  });
  fw->run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(proxy->bound());
  // The entry instance is a MailClient on the client's node.
  const auto& outcome = proxy->outcome();
  EXPECT_EQ(fw->runtime().instance(outcome.entry).def->name, "MailClient");
  EXPECT_EQ(fw->runtime().instance(outcome.entry).node, sites.ny_client);
}

TEST_F(GenericFixture, ConcurrentBindsJoin) {
  register_mail();
  auto proxy = fw->make_proxy(sites.ny_client, "SecureMail", defaults());
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    proxy->bind([&completions](util::Status st) {
      EXPECT_TRUE(st.is_ok());
      ++completions;
    });
  }
  fw->run();
  EXPECT_EQ(completions, 3);
  // A bind after completion returns immediately.
  bool again = false;
  proxy->bind([&again](util::Status st) {
    EXPECT_TRUE(st.is_ok());
    again = true;
  });
  EXPECT_TRUE(again);
}

TEST_F(GenericFixture, SecondClientReusesSharedComponents) {
  register_mail();
  auto p1 = fw->make_proxy(sites.sd_client, "SecureMail", defaults());
  util::Status s1 = util::internal_error("");
  p1->bind([&s1](util::Status st) { s1 = st; });
  fw->run();
  ASSERT_TRUE(s1.is_ok()) << s1.to_string();
  const std::size_t after_first = fw->runtime().instance_count();

  // A different rate bucket keeps this a *cold* plan (an identical request
  // would be served from the plan cache — covered by plan_cache_test).
  auto d2 = defaults();
  d2.request_rate_rps = 150.0;
  auto p2 = fw->make_proxy(sites.sd_client, "SecureMail", d2);
  util::Status s2 = util::internal_error("");
  p2->bind([&s2](util::Status st) { s2 = st; });
  fw->run();
  ASSERT_TRUE(s2.is_ok()) << s2.to_string();
  const std::size_t after_second = fw->runtime().instance_count();

  // The second San Diego client gets only a private MailClient and binds to
  // the existing view (whose downstream tunnel is already wired, so the new
  // plan contains exactly two placements).
  EXPECT_FALSE(p2->outcome().cache_hit);
  EXPECT_EQ(after_second, after_first + 1)
      << p2->outcome().plan.to_string(fw->network());
  EXPECT_EQ(p2->outcome().plan.placements.size(), 2u);
  EXPECT_EQ(p2->outcome().plan.metrics.reused_components, 1u);

  // Load accounting on the shared view reflects both clients.
  bool found = false;
  for (const auto& inst : fw->server().existing_instances("SecureMail")) {
    if (inst.component->name == "ViewMailServer") {
      found = true;
      EXPECT_NEAR(inst.current_load_rps, 200.0, 1e-9);  // 50 + 150 rps
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(GenericFixture, PlanningCostChargedAtServerHost) {
  register_mail();
  auto proxy = fw->make_proxy(sites.sd_client, "SecureMail", defaults());
  util::Status st = util::internal_error("");
  proxy->bind([&st](util::Status s) { st = s; });
  fw->run();
  ASSERT_TRUE(st.is_ok());
  EXPECT_GT(proxy->outcome().costs.planning.nanos(), 0);
  EXPECT_GT(proxy->outcome().costs.planning_wall_seconds, 0.0);
  EXPECT_GT(proxy->outcome().costs.lookup.nanos(), 0);
}

TEST_F(GenericFixture, RefreshEnvironmentPicksUpNetworkChanges) {
  register_mail();
  // Initially Seattle nodes have trust 2; raise one to 4 and refresh — the
  // environment view the planner sees must change.
  const auto* env_before = fw->server().environment("SecureMail");
  ASSERT_NE(env_before, nullptr);
  EXPECT_EQ(env_before->node_env(sites.sea_client).get("TrustLevel"),
            spec::PropertyValue::integer(2));

  fw->monitor().set_node_credential(sites.sea_client, "trust",
                                    std::int64_t{4});
  ASSERT_TRUE(fw->server().refresh_environment("SecureMail").is_ok());
  const auto* env_after = fw->server().environment("SecureMail");
  EXPECT_EQ(env_after->node_env(sites.sea_client).get("TrustLevel"),
            spec::PropertyValue::integer(4));
}

}  // namespace
}  // namespace psf
