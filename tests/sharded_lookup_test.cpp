// Sharded lookup: rendezvous ownership, home-shard routing with
// peer-to-peer forwarding, server-independent handles, minimal re-homing on
// membership change, and the plan-cache epoch integration.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "net/network.hpp"
#include "runtime/sharded_lookup.hpp"

namespace psf {
namespace {

using runtime::LookupHandle;
using runtime::LookupResolution;
using runtime::ServiceAdvertisement;
using runtime::ShardedLookupService;

// Line topology 0 - 1 - 2 - 3 with increasing latencies, so each node has
// an unambiguous nearest shard.
net::Network line_network() {
  net::Network network;
  for (int i = 0; i < 4; ++i) {
    network.add_node("n" + std::to_string(i), 1e6);
  }
  network.add_link(net::NodeId{0}, net::NodeId{1}, 100e6,
                   sim::Duration::from_millis(1));
  network.add_link(net::NodeId{1}, net::NodeId{2}, 100e6,
                   sim::Duration::from_millis(2));
  network.add_link(net::NodeId{2}, net::NodeId{3}, 100e6,
                   sim::Duration::from_millis(4));
  return network;
}

ServiceAdvertisement ad_for(const std::string& name) {
  ServiceAdvertisement ad;
  ad.service_name = name;
  ad.server_host = net::NodeId{0};
  return ad;
}

TEST(ShardedLookupTest, RegistersOnOwnerAndResolvesFromAnywhere) {
  net::Network network = line_network();
  ShardedLookupService sharded(network, {net::NodeId{0}, net::NodeId{3}});
  ASSERT_TRUE(sharded.register_service(ad_for("SecureMail")));

  const std::size_t owner = sharded.owner_shard("SecureMail");
  EXPECT_EQ(sharded.shard(owner).size(), 1u);
  EXPECT_EQ(sharded.shard(1 - owner).size(), 0u);

  for (std::uint32_t node = 0; node < 4; ++node) {
    LookupResolution res = sharded.resolve("SecureMail", net::NodeId{node});
    ASSERT_TRUE(res.found()) << "node " << node;
    EXPECT_EQ(res.holder_shard, owner);
    EXPECT_EQ(res.ad->service_name, "SecureMail");
    // Either answered locally (home == owner) or via exactly one forward.
    EXPECT_EQ(res.forwards(), res.home_shard == owner ? 0u : 1u);
  }
}

TEST(ShardedLookupTest, HomeShardIsNearestByLatency) {
  net::Network network = line_network();
  ShardedLookupService sharded(network, {net::NodeId{0}, net::NodeId{3}});
  // Nodes 0-2 are closer to the shard at node 0 (0/1/3 ms vs 7/6/4 ms);
  // only node 3 itself homes on the shard it hosts.
  EXPECT_EQ(sharded.home_shard(net::NodeId{0}), 0u);
  EXPECT_EQ(sharded.home_shard(net::NodeId{1}), 0u);
  EXPECT_EQ(sharded.home_shard(net::NodeId{2}), 0u);  // 3ms vs 4ms
  EXPECT_EQ(sharded.home_shard(net::NodeId{3}), 1u);
}

TEST(ShardedLookupTest, HandleSurvivesMembershipChange) {
  net::Network network = line_network();
  ShardedLookupService sharded(network, {net::NodeId{0}});
  ASSERT_TRUE(sharded.register_service(ad_for("SecureMail")));
  const LookupHandle handle = ShardedLookupService::handle_for("SecureMail");
  ASSERT_TRUE(handle.valid());
  ASSERT_TRUE(sharded.resolve(handle, net::NodeId{2}).found());

  sharded.add_shard(net::NodeId{3});
  sharded.add_shard(net::NodeId{1});

  // Same opaque handle, regardless of where the service now lives.
  LookupResolution res = sharded.resolve(handle, net::NodeId{2});
  ASSERT_TRUE(res.found());
  EXPECT_EQ(res.ad->service_name, "SecureMail");
  EXPECT_EQ(res.holder_shard, sharded.owner_shard("SecureMail"));
}

TEST(ShardedLookupTest, AddShardRehomesOnlyAMinority) {
  net::Network network = line_network();
  ShardedLookupService sharded(network,
                               {net::NodeId{0}, net::NodeId{1},
                                net::NodeId{2}});
  constexpr int kServices = 200;
  for (int i = 0; i < kServices; ++i) {
    ASSERT_TRUE(sharded.register_service(ad_for("svc" + std::to_string(i))));
  }
  std::vector<std::size_t> owner_before(kServices);
  for (int i = 0; i < kServices; ++i) {
    owner_before[i] = sharded.owner_shard("svc" + std::to_string(i));
  }

  sharded.add_shard(net::NodeId{3});

  int moved = 0;
  for (int i = 0; i < kServices; ++i) {
    const std::size_t owner = sharded.owner_shard("svc" + std::to_string(i));
    if (owner != owner_before[i]) {
      ++moved;
      // Rendezvous property: a service only ever moves TO the new shard.
      EXPECT_EQ(owner, 3u);
    }
    // Every service still resolves after the change.
    EXPECT_TRUE(sharded.resolve("svc" + std::to_string(i), net::NodeId{1})
                    .found());
  }
  EXPECT_EQ(static_cast<std::uint64_t>(moved),
            sharded.stats().rehomed_services);
  // Expect roughly 1/4 to move; fail only on gross violations (over half).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kServices / 2);
}

TEST(ShardedLookupTest, MembershipListenerFires) {
  net::Network network = line_network();
  ShardedLookupService sharded(network, {net::NodeId{0}});
  int fired = 0;
  sharded.on_membership_change([&fired] { ++fired; });
  sharded.add_shard(net::NodeId{1});
  sharded.add_shard(net::NodeId{2});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sharded.stats().membership_changes, 2u);
}

TEST(ShardedLookupTest, UnknownServiceProbesAllShardsAndFails) {
  net::Network network = line_network();
  ShardedLookupService sharded(network,
                               {net::NodeId{0}, net::NodeId{1},
                                net::NodeId{3}});
  LookupResolution res = sharded.resolve("nope", net::NodeId{2});
  EXPECT_FALSE(res.found());
  EXPECT_EQ(res.probe_path.size(), 3u);
}

// ---- Framework integration -------------------------------------------------

// Fig. 5 world with the registry sharded across sites; the SecureMail
// service registers through shard 0 as always.
struct ShardedCaseStudy : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.server_node = sites.new_york[0];
    options.lookup_shard_hosts = shard_hosts();
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  virtual std::vector<net::NodeId> shard_hosts() {
    return {sites.new_york[0], sites.san_diego[0], sites.seattle[0]};
  }

  util::Status bind_at(runtime::GenericProxy& proxy) {
    util::Status status = util::internal_error("pending");
    proxy.bind([&status](util::Status st) { status = st; });
    fw->simulator().run();
    return status;
  }

  planner::PlanRequest defaults() const {
    planner::PlanRequest d;
    d.interface_name = "ClientInterface";
    d.required_properties.emplace_back("TrustLevel",
                                       spec::PropertyValue::integer(4));
    d.request_rate_rps = 50.0;
    return d;
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  std::shared_ptr<mail::MailServiceConfig> config;
};

TEST_F(ShardedCaseStudy, ShardedProxyBindsViaHomeShard) {
  auto proxy =
      fw->make_sharded_proxy(sites.sd_client, "SecureMail", defaults());
  const util::Status st = bind_at(*proxy);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(proxy->bound());
  EXPECT_TRUE(proxy->lookup_handle().valid());
  const auto& stats = fw->sharded_lookup().stats();
  EXPECT_GE(stats.resolves, 1u);
  // The San Diego client's home shard is its site's; SecureMail registered
  // on shard 0 (New York), so resolution involved forwarding unless the
  // rendezvous owner happens to be the home shard.
  EXPECT_EQ(stats.home_hits + stats.forwards >= stats.resolves, true);
}

TEST_F(ShardedCaseStudy, ShardRebindAfterMembershipChange) {
  auto first =
      fw->make_sharded_proxy(sites.sd_client, "SecureMail", defaults());
  ASSERT_TRUE(bind_at(*first).is_ok());
  const std::uint64_t epoch_before =
      fw->server().environment_epoch("SecureMail");

  // Growing the shard set bumps the service's environment epoch, so cached
  // access paths resolved under the old membership are not replayed.
  fw->sharded_lookup().add_shard(sites.new_york[1]);
  EXPECT_GT(fw->server().environment_epoch("SecureMail"), epoch_before);

  // A fresh proxy still binds — resolution forwards to wherever the
  // service now lives — and the access path is re-planned, not replayed.
  auto second =
      fw->make_sharded_proxy(sites.sd_client, "SecureMail", defaults());
  const util::Status st = bind_at(*second);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(second->bound());
  EXPECT_FALSE(second->outcome().cache_hit);
  // The old proxy's handle still resolves (server-independent).
  EXPECT_TRUE(fw->sharded_lookup()
                  .resolve(first->lookup_handle(), sites.sd_client)
                  .found());
}

}  // namespace
}  // namespace psf
