// Repaired: the counter is atomic.
#include <atomic>

int next_ticket() {
  static std::atomic<int> counter{0};
  return counter.fetch_add(1) + 1;
}
