// Nested acquisition with no stated order invites deadlock.
#include <mutex>

std::mutex account_mu;
std::mutex ledger_mu;

void transfer() {
  std::lock_guard<std::mutex> hold_account(account_mu);
  std::lock_guard<std::mutex> hold_ledger(ledger_mu);
}
