// Repaired: keyed on the session's stable numeric id.
#include <cstdint>
#include <map>

std::map<std::uint64_t, int> session_rank;
