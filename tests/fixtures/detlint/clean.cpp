// A file that follows every determinism and concurrency rule.
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "util/rng.hpp"

std::mutex table_mu;
std::map<std::uint64_t, int> table;

int sample(psf::util::Rng& rng) {
  std::lock_guard<std::mutex> hold(table_mu);
  static std::atomic<std::uint64_t> calls{0};
  calls.fetch_add(1);
  return static_cast<int>(rng.next_u64() % 10);
}

void run_worker() {
  std::thread worker([] {});
  worker.join();
}
