// Hashing an address: the value changes with every process layout.
#include <cstddef>
#include <functional>

struct Session {};

std::size_t session_key(Session* s) {
  return std::hash<Session*>{}(s);
}
