// A bare lock() leaks the mutex on every early return and throw.
#include <mutex>

std::mutex mu;

void touch() {
  mu.lock();
}
