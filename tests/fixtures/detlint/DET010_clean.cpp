// detlint:ordered-output — this file renders the merged event trace.
#include <map>
#include <string>

void emit_trace(const std::map<int, std::string>& by_id) {
  for (const auto& entry : by_id) {
    (void)entry;
  }
}
