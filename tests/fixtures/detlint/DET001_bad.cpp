// Seeds from hardware entropy: a different plan trace every run.
#include <random>

unsigned seed_source() {
  std::random_device entropy;
  return entropy();
}
