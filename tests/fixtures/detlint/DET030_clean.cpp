// The allow matches a real finding on the next line.
#include <chrono>

void tick() {
  // detlint:allow(DET004 latency probe reads the host clock)
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}
