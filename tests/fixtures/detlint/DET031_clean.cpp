// detlint:ordered-output — a well-formed directive parses silently.
void noop() {}
