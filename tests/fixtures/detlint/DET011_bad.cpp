// Pointer keys order by address: iteration differs run to run.
#include <map>

struct Session {};

std::map<Session*, int> session_rank;
