// Repaired: simulated time comes from the simulator.
#include "sim/time.hpp"

psf::sim::Time window_start(psf::sim::Time now) {
  return now;
}
