// detlint:ordered-output — this file renders the merged event trace.
#include <string>
#include <unordered_map>

void emit_trace(const std::unordered_map<int, std::string>& by_id) {
  for (const auto& entry : by_id) {
    (void)entry;
  }
}
