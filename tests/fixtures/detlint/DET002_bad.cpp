// Hidden global RNG state: replay depends on every prior call site.
int roll_die() {
  return rand() % 6 + 1;
}
