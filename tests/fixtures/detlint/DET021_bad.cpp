// A detached thread cannot be joined before results are read.
#include <thread>

void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}
