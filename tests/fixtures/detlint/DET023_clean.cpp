// Repaired: both mutexes taken atomically by one scoped_lock.
#include <mutex>

std::mutex account_mu;
std::mutex ledger_mu;

void transfer() {
  std::scoped_lock both(account_mu, ledger_mu);
}
