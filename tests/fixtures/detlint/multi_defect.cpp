// Several planted defects: detlint reports all of them in one run.
#include <chrono>
#include <map>
#include <thread>

struct Node {};

std::map<Node*, int> rank_by_node;

int jitter() {
  return rand() % 100;
}

auto stamp() {
  return std::chrono::system_clock::now();
}

int bump() {
  static int hits = 0;
  return ++hits;
}

void spawn() {
  std::thread worker([] {});
  worker.detach();
}
