// Repaired: the owner keeps the handle and joins it.
#include <thread>

void run_and_wait() {
  std::thread worker([] {});
  worker.join();
}
