// Wall-clock read: simulated runs replay at a different wall time.
#include <ctime>

long run_stamp() {
  return time(nullptr);
}
