// Repaired: hash the stable id the session already carries.
#include <cstddef>
#include <cstdint>
#include <functional>

std::size_t session_key(std::uint64_t session_id) {
  return std::hash<std::uint64_t>{}(session_id);
}
