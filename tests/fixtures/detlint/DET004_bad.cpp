// std::chrono clock on a simulated path: not replayable.
#include <chrono>

auto window_start() {
  return std::chrono::steady_clock::now();
}
