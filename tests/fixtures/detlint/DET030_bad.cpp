// The clock read this allow once covered is gone; the allow remains.
void tick() {
  // detlint:allow(DET004 latency probe reads the host clock)
  int simulated_only = 0;
  (void)simulated_only;
}
