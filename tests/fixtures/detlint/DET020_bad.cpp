// Unsynchronized shared state: racing workers see torn updates.
int next_ticket() {
  static int counter = 0;
  return ++counter;
}
