// Repaired: the simulation clock is the only time source.
#include "sim/time.hpp"

double run_stamp(psf::sim::Time now) {
  return now.seconds();
}
