// Repaired: an explicitly seeded generator is passed in.
#include "util/rng.hpp"

int roll_die(psf::util::Rng& rng) {
  return static_cast<int>(rng.next_u64() % 6) + 1;
}
