// Repaired: RAII guard releases on every path.
#include <mutex>

std::mutex mu;

void touch() {
  std::lock_guard<std::mutex> hold(mu);
}
