// Suppressing an ID that does not exist: the typo hides nothing.
void noop() {
  // detlint:allow(DET999 mistyped id)
}
