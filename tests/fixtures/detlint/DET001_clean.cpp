// Repaired: the seed flows in from the run configuration.
#include "util/rng.hpp"

unsigned seed_source(psf::util::Rng& rng) {
  return static_cast<unsigned>(rng.next_u64());
}
