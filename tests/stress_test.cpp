// Stress and failure injection: the runtime and coherence layers under
// storms, churn, and mid-flight component removal. These tests assert
// liveness (every callback fires exactly once) and conservation invariants
// rather than exact values.
#include <gtest/gtest.h>

#include "coherence/replica.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/server.hpp"
#include "mail/view_server.hpp"
#include "runtime/smock.hpp"
#include "spec/builder.hpp"
#include "util/rng.hpp"

namespace psf {
namespace {

class SinkComponent : public runtime::Component {
 public:
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override {
    ++handled;
    if (request.op == "relay") {
      runtime::Request inner = request;
      inner.op = "sink";
      call("Down", std::move(inner), std::move(done));
      return;
    }
    runtime::Response response;
    response.wire_bytes = 128;
    done(std::move(response));
  }
  int handled = 0;
};

struct StressFixture : public ::testing::Test {
  StressFixture() : runtime(sim, network) {
    // A 4-node diamond with modest links so contention is real.
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(network.add_node("n" + std::to_string(i), 1e6));
    }
    network.add_link(nodes[0], nodes[1], 10e6, sim::Duration::from_millis(5));
    network.add_link(nodes[1], nodes[3], 10e6, sim::Duration::from_millis(5));
    network.add_link(nodes[0], nodes[2], 10e6, sim::Duration::from_millis(9));
    network.add_link(nodes[2], nodes[3], 10e6, sim::Duration::from_millis(9));

    service = std::make_unique<spec::ServiceSpec>(
        spec::SpecBuilder("Stress")
            .interface("Api", {})
            .component("Sink")
            .implements("Api", {})
            .cpu_per_request(50)
            .done()
            .build());
    PSF_CHECK(runtime.factories()
                  .register_type("Sink",
                                 [] { return std::make_unique<SinkComponent>(); })
                  .is_ok());
  }

  runtime::RuntimeInstanceId install(net::NodeId node) {
    runtime::RuntimeInstanceId out = 0;
    runtime.install(*service->find_component("Sink"), node, {}, node,
                    [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK(id.has_value());
                      out = *id;
                    });
    sim.run();
    PSF_CHECK(runtime.start(out).is_ok());
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  runtime::SmockRuntime runtime;
  std::vector<net::NodeId> nodes;
  std::unique_ptr<spec::ServiceSpec> service;
};

TEST_F(StressFixture, TenThousandConcurrentRequestsAllComplete) {
  const auto target = install(nodes[3]);
  util::Rng rng(42);
  int completed = 0;
  constexpr int kRequests = 10000;
  for (int i = 0; i < kRequests; ++i) {
    runtime::Request request;
    request.op = "sink";
    request.wire_bytes = 200 + rng.uniform_u64(0, 2000);
    const net::NodeId from = nodes[rng.uniform_u64(0, 2)];
    sim.schedule(sim::Duration::from_micros(
                     static_cast<double>(rng.uniform_u64(0, 1000000))),
                 [this, from, target, request, &completed]() {
                   runtime.invoke_from_node(from, target, request,
                                            [&completed](runtime::Response r) {
                                              EXPECT_TRUE(r.ok);
                                              ++completed;
                                            });
                 });
  }
  sim.run();
  EXPECT_EQ(completed, kRequests);
  EXPECT_EQ(runtime.instance(target).stats.requests_handled,
            static_cast<std::uint64_t>(kRequests));
  // Conservation: every request crossed the network at least once.
  EXPECT_GE(runtime.stats().messages_sent,
            static_cast<std::uint64_t>(kRequests));
}

TEST_F(StressFixture, UninstallMidFlightFailsCleanly) {
  const auto front = install(nodes[0]);
  const auto back = install(nodes[3]);
  ASSERT_TRUE(runtime.wire(front, "Down", back).is_ok());

  int ok = 0, failed = 0;
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    runtime::Request request;
    request.op = "relay";
    request.wire_bytes = 1000;
    sim.schedule(sim::Duration::from_millis(static_cast<double>(i)),
                 [this, front, request, &ok, &failed]() {
                   runtime.invoke_from_node(nodes[0], front, request,
                                            [&](runtime::Response r) {
                                              (r.ok ? ok : failed)++;
                                            });
                 });
  }
  // Kill the backend mid-storm.
  sim.schedule(sim::Duration::from_millis(100),
               [this, back]() { PSF_CHECK(runtime.uninstall(back).is_ok()); });
  sim.run();
  // Liveness: every request got *an* answer.
  EXPECT_EQ(ok + failed, kRequests);
  EXPECT_GT(ok, 0);
  EXPECT_GT(failed, 0);
}

TEST_F(StressFixture, InstallUninstallChurn) {
  util::Rng rng(7);
  std::vector<runtime::RuntimeInstanceId> live;
  for (int round = 0; round < 200; ++round) {
    if (live.empty() || rng.bernoulli(0.6)) {
      live.push_back(install(nodes[rng.uniform_u64(0, 3)]));
    } else {
      const std::size_t victim = rng.uniform_u64(0, live.size() - 1);
      ASSERT_TRUE(runtime.uninstall(live[victim]).is_ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  sim.run();
  EXPECT_EQ(runtime.instance_count(), live.size());
  // The survivors still serve.
  if (!live.empty()) {
    bool ok = false;
    runtime::Request request;
    request.op = "sink";
    runtime.invoke_from_node(nodes[0], live.front(), std::move(request),
                             [&ok](runtime::Response r) { ok = r.ok; });
    sim.run();
    EXPECT_TRUE(ok);
  }
}

// ---- mail/coherence storms ------------------------------------------------

struct MailStorm : public ::testing::Test {
  MailStorm() : runtime(sim, network) {
    net::Credentials edge_creds;
    edge_creds.set("trust", std::int64_t{4});
    edge_creds.set("secure", true);
    edge = network.add_node("edge", 1e6, edge_creds);
    net::Credentials home_creds;
    home_creds.set("trust", std::int64_t{5});
    home_creds.set("secure", true);
    home = network.add_node("home", 1e6, home_creds);
    network.add_link(edge, home, 5e6, sim::Duration::from_millis(80));

    config = std::make_shared<mail::MailServiceConfig>();
    config->view_policy = coherence::CoherencePolicy::count_based(10);
    spec = std::make_unique<spec::ServiceSpec>(mail::mail_service_spec());
    PSF_CHECK(mail::register_mail_factories(runtime.factories(), config)
                  .is_ok());

    server = install("MailServer", home, 0);
    view = install("ViewMailServer", edge, 4);
    PSF_CHECK(runtime.wire(view, "ServerInterface", server).is_ok());
    PSF_CHECK(runtime.start(server).is_ok());
    PSF_CHECK(runtime.start(view).is_ok());
    sim.run();
  }

  runtime::RuntimeInstanceId install(const std::string& type, net::NodeId node,
                                     std::int64_t trust) {
    planner::FactorBindings factors;
    if (trust > 0) {
      factors.values["TrustLevel"] = spec::PropertyValue::integer(trust);
    }
    runtime::RuntimeInstanceId out = 0;
    runtime.install(*spec->find_component(type), node, factors, node,
                    [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK(id.has_value());
                      out = *id;
                    });
    sim.run();
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  runtime::SmockRuntime runtime;
  net::NodeId edge, home;
  mail::MailConfigPtr config;
  std::unique_ptr<spec::ServiceSpec> spec;
  runtime::RuntimeInstanceId server = 0, view = 0;
};

TEST_F(MailStorm, NoMailLostAcrossCountBasedSyncs) {
  config->keys->provision_user("storm", mail::kMaxSensitivity);
  constexpr int kSends = 500;
  int acked = 0;
  util::Rng rng(99);
  for (int i = 0; i < kSends; ++i) {
    auto body = std::make_shared<mail::SendBody>();
    body->message.id = static_cast<std::uint64_t>(i + 1);
    body->message.from = "storm";
    body->message.to = "storm";
    body->message.sensitivity = 2;
    body->message.plaintext = {static_cast<std::uint8_t>(i)};
    runtime::Request request;
    request.op = mail::ops::kSend;
    request.body = body;
    request.wire_bytes = mail::send_wire_bytes(body->message);
    sim.schedule(sim::Duration::from_micros(
                     static_cast<double>(rng.uniform_u64(0, 3000000))),
                 [this, request, &acked]() {
                   runtime.invoke_from_node(edge, view, request,
                                            [&acked](runtime::Response r) {
                                              EXPECT_TRUE(r.ok) << r.error;
                                              ++acked;
                                            });
                 });
  }
  sim.run();
  EXPECT_EQ(acked, kSends);

  // Flush the residue and check conservation: view cache has all messages;
  // home has everything that was propagated; cache + home-pending add up.
  auto* view_comp = dynamic_cast<mail::ViewMailServerComponent*>(
      runtime.instance(view).component.get());
  auto* server_comp = dynamic_cast<mail::MailServerComponent*>(
      runtime.instance(server).component.get());
  view_comp->replica_coherence()->flush();
  sim.run();
  EXPECT_EQ(view_comp->cached_inbox_size("storm"),
            static_cast<std::size_t>(kSends));
  EXPECT_EQ(server_comp->inbox_size("storm"),
            static_cast<std::size_t>(kSends));
  EXPECT_EQ(view_comp->replica_coherence()->pending(), 0u);
}

TEST_F(MailStorm, FlushStormWithConcurrentReceivesStaysConsistent) {
  config->keys->provision_user("mixed", mail::kMaxSensitivity);
  util::Rng rng(5);
  int sends_acked = 0, receives_acked = 0;
  constexpr int kOps = 400;
  for (int i = 0; i < kOps; ++i) {
    const bool is_send = i % 4 != 0;
    sim.schedule(
        sim::Duration::from_micros(
            static_cast<double>(rng.uniform_u64(0, 2000000))),
        [this, i, is_send, &sends_acked, &receives_acked]() {
          if (is_send) {
            auto body = std::make_shared<mail::SendBody>();
            body->message.id = static_cast<std::uint64_t>(i + 1);
            body->message.from = "mixed";
            body->message.to = "mixed";
            body->message.sensitivity = 2;
            body->message.plaintext = {1};
            runtime::Request request;
            request.op = mail::ops::kSend;
            request.body = body;
            request.wire_bytes = mail::send_wire_bytes(body->message);
            runtime.invoke_from_node(edge, view, std::move(request),
                                     [&sends_acked](runtime::Response r) {
                                       EXPECT_TRUE(r.ok) << r.error;
                                       ++sends_acked;
                                     });
          } else {
            auto body = std::make_shared<mail::ReceiveBody>();
            body->user = "mixed";
            runtime::Request request;
            request.op = mail::ops::kReceive;
            request.body = body;
            request.wire_bytes = 256;
            runtime.invoke_from_node(edge, view, std::move(request),
                                     [&receives_acked](runtime::Response r) {
                                       EXPECT_TRUE(r.ok) << r.error;
                                       ++receives_acked;
                                     });
          }
        });
  }
  sim.run();
  EXPECT_EQ(sends_acked + receives_acked, kOps);
  // Nothing deadlocked in the defer/drain path.
  EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace psf
