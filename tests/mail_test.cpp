// Mail service components: end-to-end send/receive with encryption, view
// caching and trust enforcement, client view restrictions, tunnel integrity.
#include <gtest/gtest.h>

#include "mail/client.hpp"
#include "mail/crypto_components.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/server.hpp"
#include "mail/view_server.hpp"

namespace psf::mail {
namespace {

// Hand-built world: client node (trust 4) -- insecure WAN -- home (trust 5).
struct MailFixture : public ::testing::Test {
  MailFixture() : runtime(sim, network) {
    net::Credentials edge_creds;
    edge_creds.set("trust", std::int64_t{4});
    edge_creds.set("secure", true);
    edge = network.add_node("edge", 1e6, edge_creds);

    net::Credentials home_creds;
    home_creds.set("trust", std::int64_t{5});
    home_creds.set("secure", true);
    home = network.add_node("home", 1e6, home_creds);

    net::Credentials insecure;
    insecure.set("secure", false);
    network.add_link(edge, home, 10e6, sim::Duration::from_millis(50),
                     insecure);

    config = std::make_shared<MailServiceConfig>();
    spec = std::make_unique<spec::ServiceSpec>(mail_service_spec());
    PSF_CHECK(register_mail_factories(runtime.factories(), config).is_ok());
  }

  runtime::RuntimeInstanceId install(const std::string& type, net::NodeId node,
                                     std::int64_t trust_factor = 0) {
    planner::FactorBindings factors;
    if (trust_factor > 0) {
      factors.values["TrustLevel"] = spec::PropertyValue::integer(trust_factor);
    }
    runtime::RuntimeInstanceId out = 0;
    runtime.install(*spec->find_component(type), node, factors, node,
                    [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK_MSG(id.has_value(), id.status().to_string());
                      out = *id;
                    });
    sim.run();
    return out;
  }

  runtime::Request send_request(const std::string& from, const std::string& to,
                                std::int64_t sensitivity,
                                const std::string& text = "hello") {
    auto body = std::make_shared<SendBody>();
    body->message.id = next_id++;
    body->message.from = from;
    body->message.to = to;
    body->message.sensitivity = sensitivity;
    body->message.plaintext.assign(text.begin(), text.end());
    runtime::Request request;
    request.op = ops::kSend;
    request.body = body;
    request.wire_bytes = send_wire_bytes(body->message);
    request.principal = from;
    return request;
  }

  runtime::Request receive_request(const std::string& user,
                                   bool include_high = false) {
    auto body = std::make_shared<ReceiveBody>();
    body->user = user;
    body->include_high_sensitivity = include_high;
    runtime::Request request;
    request.op = ops::kReceive;
    request.body = body;
    request.wire_bytes = 256;
    return request;
  }

  runtime::Response invoke(net::NodeId from, runtime::RuntimeInstanceId target,
                           runtime::Request request) {
    runtime::Response out;
    bool done = false;
    runtime.invoke_from_node(from, target, std::move(request),
                             [&](runtime::Response response) {
                               out = std::move(response);
                               done = true;
                             });
    sim.run();
    PSF_CHECK(done);
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  runtime::SmockRuntime runtime;
  net::NodeId edge, home;
  MailConfigPtr config;
  std::unique_ptr<spec::ServiceSpec> spec;
  std::uint64_t next_id = 1;
};

TEST_F(MailFixture, ServerStoresAndServesPlainMail) {
  const auto server = install("MailServer", home);
  ASSERT_TRUE(runtime.start(server).is_ok());
  config->keys->provision_user("alice", kMaxSensitivity);

  auto r = invoke(home, server, send_request("alice", "bob", 0));
  ASSERT_TRUE(r.ok) << r.error;

  auto* comp = dynamic_cast<MailServerComponent*>(
      runtime.instance(server).component.get());
  ASSERT_NE(comp, nullptr);
  EXPECT_EQ(comp->inbox_size("bob"), 1u);
  EXPECT_EQ(comp->mail_stats().sends, 1u);

  auto recv = invoke(home, server, receive_request("bob"));
  ASSERT_TRUE(recv.ok);
  const auto* result = runtime::body_as<ReceiveResultBody>(recv);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->messages.size(), 1u);
  EXPECT_EQ(result->messages[0].from, "alice");
  EXPECT_EQ(std::string(result->messages[0].plaintext.begin(),
                        result->messages[0].plaintext.end()),
            "hello");
}

TEST_F(MailFixture, FullClientServerEncryptionRoundTrip) {
  // MailClient@edge -> Encryptor@edge -> Decryptor@home -> MailServer@home.
  const auto server = install("MailServer", home);
  const auto decryptor = install("Decryptor", home);
  const auto encryptor = install("Encryptor", edge);
  const auto client = install("MailClient", edge);
  ASSERT_TRUE(runtime.wire(decryptor, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.wire(encryptor, "DecryptorInterface", decryptor).is_ok());
  ASSERT_TRUE(runtime.wire(client, "ServerInterface", encryptor).is_ok());
  for (auto id : {server, decryptor, encryptor, client}) {
    ASSERT_TRUE(runtime.start(id).is_ok());
  }
  config->keys->provision_user("alice", kMaxSensitivity);
  config->keys->provision_user("bob", kMaxSensitivity);

  // Sensitivity-3 mail: sealed by the client, re-sealed by the server for
  // the recipient, unsealed by the recipient's client.
  auto sent = invoke(edge, client, send_request("alice", "bob", 3, "secret!"));
  ASSERT_TRUE(sent.ok) << sent.error;

  auto* server_comp = dynamic_cast<MailServerComponent*>(
      runtime.instance(server).component.get());
  ASSERT_EQ(server_comp->inbox_size("bob"), 1u);
  // Stored sealed, not in plaintext.
  const Account* bob = server_comp->find_account("bob");
  ASSERT_TRUE(bob->inbox.messages[0].sealed.has_value());
  EXPECT_TRUE(bob->inbox.messages[0].plaintext.empty());

  auto recv = invoke(edge, client, receive_request("bob"));
  ASSERT_TRUE(recv.ok) << recv.error;
  const auto* result = runtime::body_as<ReceiveResultBody>(recv);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->messages.size(), 1u);
  EXPECT_EQ(std::string(result->messages[0].plaintext.begin(),
                        result->messages[0].plaintext.end()),
            "secret!");

  auto* client_comp = dynamic_cast<MailClientComponent*>(
      runtime.instance(client).component.get());
  EXPECT_EQ(client_comp->client_stats().messages_decrypted, 1u);
  EXPECT_EQ(client_comp->client_stats().mac_failures, 0u);

  auto* enc = dynamic_cast<EncryptorComponent*>(
      runtime.instance(encryptor).component.get());
  EXPECT_GE(enc->tunnel_stats().requests_sealed, 2u);
  EXPECT_EQ(enc->tunnel_stats().mac_failures, 0u);
}

TEST_F(MailFixture, ViewCachesLowSensitivityAndForwardsHigh) {
  const auto server = install("MailServer", home);
  const auto view = install("ViewMailServer", edge, /*trust=*/4);
  ASSERT_TRUE(runtime.wire(view, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(view).is_ok());
  sim.run();  // replica registration
  config->keys->provision_user("alice", kMaxSensitivity);

  auto* view_comp = dynamic_cast<ViewMailServerComponent*>(
      runtime.instance(view).component.get());
  auto* server_comp = dynamic_cast<MailServerComponent*>(
      runtime.instance(server).component.get());
  EXPECT_EQ(view_comp->trust_level(), 4);

  // Low sensitivity: absorbed by the view, not yet at the server (policy is
  // none by default — no propagation until an explicit flush).
  auto low = invoke(edge, view, send_request("alice", "alice", 2));
  ASSERT_TRUE(low.ok);
  EXPECT_EQ(view_comp->view_stats().sends_local, 1u);
  EXPECT_EQ(view_comp->cached_inbox_size("alice"), 1u);
  EXPECT_EQ(server_comp->inbox_size("alice"), 0u);

  // Sensitivity 5 > trust 4: forwarded to the home, never cached.
  auto high = invoke(edge, view, send_request("alice", "alice", 5));
  ASSERT_TRUE(high.ok);
  EXPECT_EQ(view_comp->view_stats().sends_forwarded, 1u);
  EXPECT_EQ(view_comp->cached_inbox_size("alice"), 1u);
  EXPECT_EQ(server_comp->inbox_size("alice"), 1u);

  // Receives: normal ones served locally, high-sensitivity ones forwarded.
  auto local_recv = invoke(edge, view, receive_request("alice"));
  ASSERT_TRUE(local_recv.ok);
  EXPECT_EQ(view_comp->view_stats().receives_local, 1u);
  auto remote_recv = invoke(edge, view, receive_request("alice", true));
  ASSERT_TRUE(remote_recv.ok);
  EXPECT_EQ(view_comp->view_stats().receives_forwarded, 1u);

  // Flush propagates the cached send to the home.
  view_comp->replica_coherence()->flush();
  sim.run();
  EXPECT_EQ(server_comp->inbox_size("alice"), 2u);
  EXPECT_EQ(server_comp->mail_stats().sync_updates_applied, 1u);
}

TEST_F(MailFixture, ViewNeverHoldsKeysAboveItsTrust) {
  const auto server = install("MailServer", home);
  const auto view = install("ViewMailServer", edge, /*trust=*/2);
  ASSERT_TRUE(runtime.wire(view, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(view).is_ok());
  sim.run();
  config->keys->provision_user("alice", kMaxSensitivity);

  auto* view_comp = dynamic_cast<ViewMailServerComponent*>(
      runtime.instance(view).component.get());

  // Sensitivity 3 > trust 2: forwarded, not cached.
  auto r = invoke(edge, view, send_request("alice", "alice", 3));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(view_comp->cached_inbox_size("alice"), 0u);
  EXPECT_EQ(view_comp->view_stats().sends_forwarded, 1u);
}

TEST_F(MailFixture, ViewClientRejectsAddressBookOps) {
  const auto server = install("MailServer", home);
  const auto vclient = install("ViewMailClient", edge);
  ASSERT_TRUE(runtime.wire(vclient, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(vclient).is_ok());

  auto body = std::make_shared<ContactBody>();
  body->user = "alice";
  body->contact = "bob";
  runtime::Request request;
  request.op = ops::kAddContact;
  request.body = body;
  auto r = invoke(edge, vclient, std::move(request));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not available"), std::string::npos);

  auto* comp = dynamic_cast<ViewMailClientComponent*>(
      runtime.instance(vclient).component.get());
  EXPECT_EQ(comp->client_stats().rejected_ops, 1u);
}

TEST_F(MailFixture, FullClientSupportsAddressBook) {
  const auto server = install("MailServer", home);
  const auto client = install("MailClient", edge);
  ASSERT_TRUE(runtime.wire(client, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(client).is_ok());

  auto contact = std::make_shared<ContactBody>();
  contact->user = "alice";
  contact->contact = "bob";
  runtime::Request add;
  add.op = ops::kAddContact;
  add.body = contact;
  ASSERT_TRUE(invoke(edge, client, std::move(add)).ok);

  auto who = std::make_shared<AccountBody>();
  who->user = "alice";
  runtime::Request get;
  get.op = ops::kGetContacts;
  get.body = who;
  auto r = invoke(edge, client, std::move(get));
  ASSERT_TRUE(r.ok);
  const auto* contacts = runtime::body_as<ContactsResultBody>(r);
  ASSERT_NE(contacts, nullptr);
  EXPECT_EQ(contacts->contacts, (std::set<std::string>{"bob"}));
}

TEST_F(MailFixture, DecryptorRejectsPlainTraffic) {
  const auto server = install("MailServer", home);
  const auto decryptor = install("Decryptor", home);
  ASSERT_TRUE(runtime.wire(decryptor, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(decryptor).is_ok());
  config->keys->provision_user("alice", kMaxSensitivity);

  auto r = invoke(home, decryptor, send_request("alice", "bob", 0));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("sealed tunnel traffic"), std::string::npos);
}

TEST_F(MailFixture, TunnelDetectsTamperedEnvelope) {
  const crypto::SymmetricKey key = tunnel_key(*config);
  auto image = tunnel_image(100, 1);
  crypto::SealedBlob blob = crypto::seal(key, 1, image);
  blob.ciphertext[0] ^= 0xFF;
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(crypto::unseal(key, blob, out));
}

TEST_F(MailFixture, ServerReencryptsForRecipient) {
  const auto server = install("MailServer", home);
  ASSERT_TRUE(runtime.start(server).is_ok());
  config->keys->provision_user("alice", kMaxSensitivity);
  config->keys->provision_user("bob", kMaxSensitivity);

  // Pre-sealed by sender.
  auto body = std::make_shared<SendBody>();
  body->message.id = 9;
  body->message.from = "alice";
  body->message.to = "bob";
  body->message.sensitivity = 4;
  const std::string text = "for bob only";
  const auto key = config->keys->key({"alice", 4}).value();
  body->message.sealed = crypto::seal(
      key, 9, std::vector<std::uint8_t>(text.begin(), text.end()));
  body->message.key_owner = "alice";
  runtime::Request request;
  request.op = ops::kSend;
  request.body = body;
  request.wire_bytes = send_wire_bytes(body->message);
  ASSERT_TRUE(invoke(home, server, std::move(request)).ok);

  auto recv = invoke(home, server, receive_request("bob"));
  ASSERT_TRUE(recv.ok);
  const auto* result = runtime::body_as<ReceiveResultBody>(recv);
  ASSERT_EQ(result->messages.size(), 1u);
  const MailMessage& m = result->messages[0];
  EXPECT_EQ(m.key_owner, "bob");  // re-sealed under the recipient's key
  ASSERT_TRUE(m.sealed.has_value());
  std::vector<std::uint8_t> plain;
  ASSERT_TRUE(crypto::unseal(config->keys->key({"bob", 4}).value(), *m.sealed,
                             plain));
  EXPECT_EQ(std::string(plain.begin(), plain.end()), text);

  auto* comp = dynamic_cast<MailServerComponent*>(
      runtime.instance(server).component.get());
  EXPECT_EQ(comp->mail_stats().reencryptions, 1u);
}

TEST_F(MailFixture, HierarchicalViewChainRelaysSyncs) {
  // view2(trust 2)@edge -> view4(trust 4)@edge -> server@home; a flush from
  // view2 must land in view4's cache and be relayed onward to the server by
  // view4's own coherence.
  const auto server = install("MailServer", home);
  const auto view4 = install("ViewMailServer", edge, 4);
  const auto view2 = install("ViewMailServer", edge, 2);
  ASSERT_TRUE(runtime.wire(view4, "ServerInterface", server).is_ok());
  ASSERT_TRUE(runtime.wire(view2, "ServerInterface", view4).is_ok());
  ASSERT_TRUE(runtime.start(server).is_ok());
  ASSERT_TRUE(runtime.start(view4).is_ok());
  ASSERT_TRUE(runtime.start(view2).is_ok());
  sim.run();
  config->keys->provision_user("alice", kMaxSensitivity);

  auto* v2 = dynamic_cast<ViewMailServerComponent*>(
      runtime.instance(view2).component.get());
  auto* v4 = dynamic_cast<ViewMailServerComponent*>(
      runtime.instance(view4).component.get());
  auto* srv = dynamic_cast<MailServerComponent*>(
      runtime.instance(server).component.get());

  ASSERT_TRUE(invoke(edge, view2, send_request("alice", "alice", 1)).ok);
  EXPECT_EQ(v2->cached_inbox_size("alice"), 1u);
  EXPECT_EQ(v4->cached_inbox_size("alice"), 0u);

  v2->replica_coherence()->flush();
  sim.run();
  EXPECT_EQ(v4->cached_inbox_size("alice"), 1u);
  EXPECT_EQ(v4->view_stats().syncs_relayed, 1u);
  EXPECT_EQ(srv->inbox_size("alice"), 0u);  // not yet propagated upward

  v4->replica_coherence()->flush();
  sim.run();
  EXPECT_EQ(srv->inbox_size("alice"), 1u);
}

}  // namespace
}  // namespace psf::mail
