// Reproduction of the paper's Fig. 6: the deployments the framework
// generates for clients in New York, San Diego, and Seattle on the Fig. 5
// topology must match the published ones exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"

namespace psf {
namespace {

struct CaseStudyFixture : public ::testing::Test {
  void SetUp() override {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);

    config = std::make_shared<mail::MailServiceConfig>();
    ASSERT_TRUE(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  // Binds a proxy for a client at `node` requesting trust level `trust`.
  runtime::AccessOutcome bind(net::NodeId node, std::int64_t trust) {
    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(trust));
    defaults.request_rate_rps = 50.0;

    auto proxy = fw->make_proxy(node, "SecureMail", defaults);
    util::Status status = util::internal_error("incomplete");
    proxy->bind([&status](util::Status st) { status = st; });
    fw->simulator().run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return proxy->outcome();
  }

  // component name -> site prefix of its hosting node ("ny"/"sd"/"sea").
  std::multimap<std::string, std::string> layout(
      const planner::DeploymentPlan& plan) {
    std::multimap<std::string, std::string> out;
    for (const auto& p : plan.placements) {
      const std::string& node = fw->network().node(p.node).name;
      out.emplace(p.component->name, node.substr(0, node.find('-')));
    }
    return out;
  }

  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;
};

TEST_F(CaseStudyFixture, NewYorkClientConnectsDirectly) {
  auto outcome = bind(sites.ny_client, 4);
  auto where = layout(outcome.plan);

  // Fig. 6: "Client requests in New York result in the deployment of a
  // MailClient component, which connects directly to the MailServer."
  EXPECT_EQ(outcome.plan.placements.size(), 2u)
      << outcome.plan.to_string(fw->network());
  EXPECT_EQ(where.count("MailClient"), 1u);
  EXPECT_EQ(where.find("MailClient")->second, "ny");
  EXPECT_EQ(where.count("MailServer"), 1u);
  EXPECT_EQ(where.count("ViewMailServer"), 0u);
  EXPECT_EQ(where.count("Encryptor"), 0u);
}

TEST_F(CaseStudyFixture, SanDiegoClientGetsCachedEncryptedChain) {
  auto outcome = bind(sites.sd_client, 4);
  auto where = layout(outcome.plan);

  // Fig. 6: MailClient + ViewMailServer + Encryptor in San Diego, a
  // Decryptor in New York, terminating at the MailServer.
  EXPECT_EQ(where.count("MailClient"), 1u);
  EXPECT_EQ(where.find("MailClient")->second, "sd");
  ASSERT_EQ(where.count("ViewMailServer"), 1u)
      << outcome.plan.to_string(fw->network());
  EXPECT_EQ(where.find("ViewMailServer")->second, "sd");
  ASSERT_EQ(where.count("Encryptor"), 1u);
  EXPECT_EQ(where.find("Encryptor")->second, "sd");
  ASSERT_EQ(where.count("Decryptor"), 1u);
  EXPECT_EQ(where.find("Decryptor")->second, "ny");
  EXPECT_EQ(where.count("MailServer"), 1u);

  // The ViewMailServer's trust factor bound to San Diego's level (4).
  for (const auto& p : outcome.plan.placements) {
    if (p.component->name != "ViewMailServer") continue;
    auto it = p.factors.values.find("TrustLevel");
    ASSERT_NE(it, p.factors.values.end());
    EXPECT_EQ(it->second, spec::PropertyValue::integer(4));
  }
}

TEST_F(CaseStudyFixture, SeattleClientChainsThroughSanDiego) {
  // Deployments happen in the paper's order: San Diego first (its view then
  // exists), then Seattle.
  bind(sites.sd_client, 4);
  auto outcome = bind(sites.sea_client, 2);
  auto where = layout(outcome.plan);

  // Fig. 6: ViewMailClient + ViewMailServer (lower trust) in Seattle,
  // linked through an Encryptor/Decryptor pair to the *San Diego*
  // ViewMailServer rather than to New York.
  EXPECT_EQ(where.count("MailClient"), 0u)
      << outcome.plan.to_string(fw->network());
  ASSERT_EQ(where.count("ViewMailClient"), 1u);
  EXPECT_EQ(where.find("ViewMailClient")->second, "sea");

  std::set<std::string> view_sites;
  for (auto [it, end] = where.equal_range("ViewMailServer"); it != end; ++it) {
    view_sites.insert(it->second);
  }
  EXPECT_TRUE(view_sites.count("sea"))
      << outcome.plan.to_string(fw->network());
  EXPECT_TRUE(view_sites.count("sd"));

  // The San Diego view is reused, not redeployed.
  bool reused_sd_view = false;
  for (const auto& p : outcome.plan.placements) {
    if (p.component->name == "ViewMailServer" && p.reuse_existing) {
      reused_sd_view = true;
    }
  }
  EXPECT_TRUE(reused_sd_view) << outcome.plan.to_string(fw->network());

  // No direct path to New York: the MailServer is not part of this plan.
  EXPECT_EQ(where.count("MailServer"), 0u)
      << outcome.plan.to_string(fw->network());

  // Seattle view factored to trust level 2.
  for (const auto& p : outcome.plan.placements) {
    if (p.component->name != "ViewMailServer" || p.reuse_existing) continue;
    auto it = p.factors.values.find("TrustLevel");
    ASSERT_NE(it, p.factors.values.end());
    EXPECT_EQ(it->second, spec::PropertyValue::integer(2));
  }
}

TEST_F(CaseStudyFixture, SeattleCannotGetFullClient) {
  // A Seattle user demanding the full-trust client interface cannot be
  // served: no Seattle node may host MailClient.
  planner::PlanRequest defaults;
  defaults.interface_name = "ClientInterface";
  defaults.required_properties.emplace_back("TrustLevel",
                                            spec::PropertyValue::integer(4));
  auto proxy = fw->make_proxy(sites.sea_client, "SecureMail", defaults);
  util::Status status = util::Status::ok();
  proxy->bind([&status](util::Status st) { status = st; });
  fw->simulator().run();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), util::ErrorCode::kUnsatisfiable);
}

TEST_F(CaseStudyFixture, OneTimeCostsAreReported) {
  auto outcome = bind(sites.sd_client, 4);
  // Lookup, planning and deployment all take nonzero simulated time; code
  // for four components crosses the WAN so deployment dominates.
  EXPECT_GT(outcome.costs.lookup.nanos(), 0);
  EXPECT_GT(outcome.costs.planning.nanos(), 0);
  EXPECT_GT(outcome.costs.deployment.nanos(), 0);
  EXPECT_GT(outcome.costs.total().seconds(), 0.1);
  EXPECT_LT(outcome.costs.total().seconds(), 60.0);
}

}  // namespace
}  // namespace psf
