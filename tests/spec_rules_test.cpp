// Property modification rules (paper Fig. 4), including the confidentiality
// table and the extended output kinds (in / env / min).
#include <gtest/gtest.h>

#include "spec/builder.hpp"
#include "spec/rules.hpp"

namespace psf::spec {
namespace {

PropertyValue T() { return PropertyValue::boolean(true); }
PropertyValue F() { return PropertyValue::boolean(false); }

PropertyModificationRule confidentiality_rule() {
  PropertyModificationRule r;
  r.property = "Confidentiality";
  r.rows.push_back({RulePattern::lit(T()), RulePattern::lit(T()),
                    RuleRow::OutKind::kLiteral, T()});
  r.rows.push_back({RulePattern::lit(F()), RulePattern::wildcard(),
                    RuleRow::OutKind::kLiteral, F()});
  r.rows.push_back({RulePattern::wildcard(), RulePattern::lit(F()),
                    RuleRow::OutKind::kLiteral, F()});
  return r;
}

struct RuleCase {
  PropertyValue in;
  PropertyValue env;
  PropertyValue out;
};

class ConfidentialityTable : public ::testing::TestWithParam<RuleCase> {};

TEST_P(ConfidentialityTable, MatchesFig4) {
  const RuleCase& c = GetParam();
  EXPECT_EQ(confidentiality_rule().apply(c.in, c.env), c.out)
      << "(" << c.in.to_string() << ", " << c.env.to_string() << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Fig4, ConfidentialityTable,
    ::testing::Values(RuleCase{T(), T(), T()},  // secure env preserves T
                      RuleCase{T(), F(), F()},  // insecure env degrades
                      RuleCase{F(), T(), F()},  // F stays F
                      RuleCase{F(), F(), F()},
                      // Unset env: no row matches a T input -> identity.
                      RuleCase{T(), PropertyValue(), T()},
                      RuleCase{F(), PropertyValue(), F()}));

TEST(RulesTest, FirstMatchingRowWins) {
  PropertyModificationRule r;
  r.property = "P";
  r.rows.push_back({RulePattern::wildcard(), RulePattern::wildcard(),
                    RuleRow::OutKind::kLiteral, PropertyValue::integer(1)});
  r.rows.push_back({RulePattern::wildcard(), RulePattern::wildcard(),
                    RuleRow::OutKind::kLiteral, PropertyValue::integer(2)});
  EXPECT_EQ(r.apply(PropertyValue::integer(9), PropertyValue()),
            PropertyValue::integer(1));
}

TEST(RulesTest, OutputKinds) {
  PropertyModificationRule r;
  r.property = "Q";
  r.rows.push_back({RulePattern::lit(PropertyValue::integer(1)),
                    RulePattern::wildcard(), RuleRow::OutKind::kInput, {}});
  r.rows.push_back({RulePattern::lit(PropertyValue::integer(2)),
                    RulePattern::wildcard(), RuleRow::OutKind::kEnvValue, {}});
  r.rows.push_back({RulePattern::wildcard(), RulePattern::wildcard(),
                    RuleRow::OutKind::kMin, {}});

  const PropertyValue env = PropertyValue::integer(7);
  EXPECT_EQ(r.apply(PropertyValue::integer(1), env), PropertyValue::integer(1));
  EXPECT_EQ(r.apply(PropertyValue::integer(2), env), PropertyValue::integer(7));
  EXPECT_EQ(r.apply(PropertyValue::integer(9), env), PropertyValue::integer(7));
  EXPECT_EQ(r.apply(PropertyValue::integer(5), env), PropertyValue::integer(5));
}

TEST(RulesTest, NoMatchingRowIsIdentity) {
  PropertyModificationRule r;
  r.property = "P";
  r.rows.push_back({RulePattern::lit(PropertyValue::integer(1)),
                    RulePattern::lit(PropertyValue::integer(1)),
                    RuleRow::OutKind::kLiteral, PropertyValue::integer(0)});
  EXPECT_EQ(r.apply(PropertyValue::integer(5), PropertyValue::integer(5)),
            PropertyValue::integer(5));
}

TEST(RuleSetTest, LookupAndApply) {
  RuleSet rules;
  rules.add(confidentiality_rule());
  EXPECT_NE(rules.find("Confidentiality"), nullptr);
  EXPECT_EQ(rules.find("Other"), nullptr);
  // Property without a rule: identity.
  EXPECT_EQ(rules.apply("Other", PropertyValue::integer(3), F()),
            PropertyValue::integer(3));
  EXPECT_EQ(rules.apply("Confidentiality", T(), F()), F());
}

TEST(RuleSetTest, BuilderConfidentialityHelperMatchesFig4) {
  ServiceSpec spec = SpecBuilder("R")
                         .boolean_property("Conf")
                         .interface("I", {"Conf"})
                         .confidentiality_rule("Conf")
                         .component("C")
                         .implements("I", {})
                         .done()
                         .build();
  EXPECT_EQ(spec.rules.apply("Conf", T(), T()), T());
  EXPECT_EQ(spec.rules.apply("Conf", T(), F()), F());
  EXPECT_EQ(spec.rules.apply("Conf", F(), T()), F());
}

TEST(RulesTest, ChainedApplicationDegradesMonotonically) {
  // Crossing secure, insecure, secure: once degraded, never restored.
  const auto rule = confidentiality_rule();
  PropertyValue v = T();
  v = rule.apply(v, T());
  EXPECT_EQ(v, T());
  v = rule.apply(v, F());
  EXPECT_EQ(v, F());
  v = rule.apply(v, T());
  EXPECT_EQ(v, F());
}

}  // namespace
}  // namespace psf::spec
