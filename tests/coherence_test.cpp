// Coherence layer: policies (write-through, count, time, none), flush
// batching/coalescing, blocking semantics, directory conflict pushes.
#include <gtest/gtest.h>

#include "coherence/directory.hpp"
#include "coherence/replica.hpp"
#include "spec/builder.hpp"

namespace psf::coherence {
namespace {

struct PayloadBody : runtime::MessageBody {
  int value = 0;
};

// Home-side component that records received sync batches and pushes.
class RecordingHome : public runtime::Component {
 public:
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override {
    if (request.op == "sync") {
      const auto* batch = runtime::body_as<UpdateBatch>(request);
      ASSERT_NE(batch, nullptr);
      batches.push_back(batch->updates.size());
      total_updates += batch->updates.size();
      runtime::Response r;
      r.wire_bytes = 64;
      done(std::move(r));
    } else {
      done(runtime::Response::failure("?"));
    }
  }

  std::vector<std::size_t> batches;
  std::size_t total_updates = 0;
};

class RecordingReplica : public runtime::Component {
 public:
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override {
    if (request.op == "push") {
      const auto* batch = runtime::body_as<UpdateBatch>(request);
      ASSERT_NE(batch, nullptr);
      pushes += batch->updates.size();
      runtime::Response r;
      r.wire_bytes = 32;
      done(std::move(r));
    } else {
      done(runtime::Response::failure("?"));
    }
  }

  std::size_t pushes = 0;
};

struct CoherenceFixture : public ::testing::Test {
  CoherenceFixture() : runtime(sim, network) {
    a = network.add_node("a", 1e6);
    b = network.add_node("b", 1e6);
    network.add_link(a, b, 10e6, sim::Duration::from_millis(50));

    spec = std::make_unique<spec::ServiceSpec>(
        spec::SpecBuilder("Coh")
            .interface("I", {})
            .component("Home")
            .implements("I", {})
            .cpu_per_request(10)
            .done()
            .component("Replica")
            .implements("I", {})
            .cpu_per_request(10)
            .done()
            .build());
    PSF_CHECK(runtime.factories()
                  .register_type("Home",
                                 [] { return std::make_unique<RecordingHome>(); })
                  .is_ok());
    PSF_CHECK(
        runtime.factories()
            .register_type(
                "Replica",
                [] { return std::make_unique<RecordingReplica>(); })
            .is_ok());

    home_id = install("Home", b);
    replica_id = install("Replica", a);
    home = dynamic_cast<RecordingHome*>(
        runtime.instance(home_id).component.get());
    replica = dynamic_cast<RecordingReplica*>(
        runtime.instance(replica_id).component.get());
    PSF_CHECK(runtime.start(home_id).is_ok());
    PSF_CHECK(runtime.start(replica_id).is_ok());
  }

  runtime::RuntimeInstanceId install(const std::string& type,
                                     net::NodeId node) {
    runtime::RuntimeInstanceId out = 0;
    runtime.install(*spec->find_component(type), node, {}, node,
                    [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK(id.has_value());
                      out = *id;
                    });
    sim.run();
    return out;
  }

  Update make_update(const std::string& key, int value) {
    Update u;
    u.descriptor.object_key = key;
    u.descriptor.bytes = 100;
    auto body = std::make_shared<PayloadBody>();
    body->value = value;
    u.payload = std::move(body);
    return u;
  }

  sim::Simulator sim;
  net::Network network;
  runtime::SmockRuntime runtime;
  net::NodeId a, b;
  std::unique_ptr<spec::ServiceSpec> spec;
  runtime::RuntimeInstanceId home_id = 0, replica_id = 0;
  RecordingHome* home = nullptr;
  RecordingReplica* replica = nullptr;
};

TEST_F(CoherenceFixture, WriteThroughFlushesEveryUpdate) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::write_through());
  for (int i = 0; i < 3; ++i) {
    auto u = make_update("k", i);
    rc.record_update(u.descriptor, u.payload);
    sim.run();
  }
  EXPECT_EQ(home->batches.size(), 3u);
  EXPECT_EQ(home->total_updates, 3u);
  EXPECT_EQ(rc.pending(), 0u);
  EXPECT_EQ(rc.stats().flushes, 3u);
}

TEST_F(CoherenceFixture, CountBasedFlushesAtThreshold) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::count_based(5));
  for (int i = 0; i < 4; ++i) {
    auto u = make_update("k", i);
    rc.record_update(u.descriptor, u.payload);
  }
  sim.run();
  EXPECT_TRUE(home->batches.empty());
  EXPECT_EQ(rc.pending(), 4u);

  auto u = make_update("k", 4);
  rc.record_update(u.descriptor, u.payload);
  sim.run();
  ASSERT_EQ(home->batches.size(), 1u);
  EXPECT_EQ(home->batches[0], 5u);
  EXPECT_EQ(rc.pending(), 0u);
}

TEST_F(CoherenceFixture, UpdatesDuringFlushCoalesceIntoNextBatch) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::count_based(2));
  // Two updates trigger a flush; while it is in flight (100+ ms RTT), two
  // more arrive — they must ship in the follow-up batch, not be lost.
  for (int i = 0; i < 2; ++i) {
    auto u = make_update("k", i);
    rc.record_update(u.descriptor, u.payload);
  }
  EXPECT_TRUE(rc.flushing());
  for (int i = 2; i < 4; ++i) {
    auto u = make_update("k", i);
    rc.record_update(u.descriptor, u.payload);
  }
  sim.run();
  EXPECT_EQ(home->total_updates, 4u);
  ASSERT_EQ(home->batches.size(), 2u);
  EXPECT_EQ(home->batches[0], 2u);
  EXPECT_EQ(home->batches[1], 2u);
}

TEST_F(CoherenceFixture, TimeBasedFlushesPeriodically) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::time_based(
                          sim::Duration::from_millis(500)));
  auto u = make_update("k", 1);
  rc.record_update(u.descriptor, u.payload);
  // Nothing before the period elapses.
  sim.run_until(sim::Time::zero() + sim::Duration::from_millis(499));
  EXPECT_TRUE(home->batches.empty());
  sim.run_until(sim::Time::zero() + sim::Duration::from_millis(800));
  EXPECT_EQ(home->batches.size(), 1u);
  // Empty periods do not flush.
  sim.run_until(sim::Time::zero() + sim::Duration::from_millis(2000));
  EXPECT_EQ(home->batches.size(), 1u);
}

TEST_F(CoherenceFixture, NonePolicyOnlyFlushesExplicitly) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::none());
  for (int i = 0; i < 10; ++i) {
    auto u = make_update("k", i);
    rc.record_update(u.descriptor, u.payload);
  }
  sim.run();
  EXPECT_TRUE(home->batches.empty());
  EXPECT_EQ(rc.pending(), 10u);

  bool acked = false;
  rc.flush([&] { acked = true; });
  sim.run();
  EXPECT_TRUE(acked);
  ASSERT_EQ(home->batches.size(), 1u);
  EXPECT_EQ(home->batches[0], 10u);
}

TEST_F(CoherenceFixture, EmptyFlushInvokesCallbackImmediately) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::none());
  bool acked = false;
  rc.flush([&] { acked = true; });
  EXPECT_TRUE(acked);
  EXPECT_EQ(rc.stats().flushes, 0u);
}

TEST_F(CoherenceFixture, FlushListenerFiresAfterCompletion) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::write_through());
  int listener_calls = 0;
  rc.set_flush_listener([&] { ++listener_calls; });
  auto u = make_update("k", 1);
  rc.record_update(u.descriptor, u.payload);
  EXPECT_EQ(listener_calls, 0);  // in flight
  sim.run();
  EXPECT_EQ(listener_calls, 1);
}

TEST_F(CoherenceFixture, StatsTrackVolume) {
  ReplicaCoherence rc(runtime, replica_id, home_id, "sync",
                      CoherencePolicy::count_based(3));
  for (int i = 0; i < 7; ++i) {
    auto u = make_update("k", i);
    rc.record_update(u.descriptor, u.payload);
    sim.run();
  }
  EXPECT_EQ(rc.stats().updates_recorded, 7u);
  EXPECT_EQ(rc.stats().flushes, 2u);
  EXPECT_EQ(rc.stats().updates_flushed, 6u);
  EXPECT_GT(rc.stats().bytes_flushed, 0u);
  EXPECT_EQ(rc.pending(), 1u);
}

// ---- directory ---------------------------------------------------------

TEST_F(CoherenceFixture, DirectoryPushesToConflictingReplicas) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.object_keys = {"alice"};
  dir.register_replica(replica_id, sub);

  dir.on_update(make_update("alice", 1));
  sim.run();
  EXPECT_EQ(replica->pushes, 1u);

  // Non-subscribed key: no push.
  dir.on_update(make_update("bob", 2));
  sim.run();
  EXPECT_EQ(replica->pushes, 1u);
}

TEST_F(CoherenceFixture, DirectorySkipsOrigin) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);

  dir.on_update(make_update("alice", 1), /*origin=*/replica_id);
  sim.run();
  EXPECT_EQ(replica->pushes, 0u);  // the writer is not re-notified
}

TEST_F(CoherenceFixture, DirectorySubscribeExpandsSubscription) {
  CoherenceDirectory dir(runtime, home_id, "push");
  dir.register_replica(replica_id, {});
  dir.on_update(make_update("carol", 1));
  sim.run();
  EXPECT_EQ(replica->pushes, 0u);
  dir.subscribe(replica_id, "carol");
  dir.on_update(make_update("carol", 2));
  sim.run();
  EXPECT_EQ(replica->pushes, 1u);
}

TEST_F(CoherenceFixture, DirectoryToleratesDeadReplicas) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);
  ASSERT_TRUE(runtime.uninstall(replica_id).is_ok());
  dir.on_update(make_update("x", 1));  // must not crash
  sim.run();
  EXPECT_EQ(dir.stats().pushes, 0u);
}

TEST_F(CoherenceFixture, UnregisterStopsPushes) {
  CoherenceDirectory dir(runtime, home_id, "push");
  ViewSubscription sub;
  sub.wildcard = true;
  dir.register_replica(replica_id, sub);
  dir.unregister_replica(replica_id);
  dir.on_update(make_update("x", 1));
  sim.run();
  EXPECT_EQ(replica->pushes, 0u);
}

TEST(ConflictMapTest, DefaultOverlapSemantics) {
  ConflictMap map;
  ViewSubscription sub;
  sub.object_keys = {"a", "b"};
  EXPECT_TRUE(map.conflicts({"a", "", 0}, sub));
  EXPECT_FALSE(map.conflicts({"c", "", 0}, sub));
  ViewSubscription wildcard;
  wildcard.wildcard = true;
  EXPECT_TRUE(map.conflicts({"anything", "", 0}, wildcard));
}

TEST(PolicyTest, ToString) {
  EXPECT_EQ(CoherencePolicy::none().to_string(), "none");
  EXPECT_EQ(CoherencePolicy::write_through().to_string(), "write-through");
  EXPECT_EQ(CoherencePolicy::count_based(500).to_string(),
            "count-based(500)");
  EXPECT_EQ(CoherencePolicy::time_based(sim::Duration::from_millis(250))
                .to_string(),
            "time-based(250ms)");
}

}  // namespace
}  // namespace psf::coherence
