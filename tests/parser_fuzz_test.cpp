// Parser robustness ("fuzz-lite"): randomized mutations of valid PSDL must
// never crash the lexer/parser — every input either parses or yields a
// clean kParseError/kInvalidArgument status.
#include <gtest/gtest.h>

#include "mail/mail_spec.hpp"
#include "spec/parser.hpp"
#include "util/rng.hpp"

namespace psf::spec {
namespace {

// Mutation operators over source text.
std::string mutate(const std::string& source, util::Rng& rng) {
  std::string out = source;
  const int op = static_cast<int>(rng.uniform_u64(0, 5));
  if (out.empty()) return out;
  const std::size_t at = rng.uniform_u64(0, out.size() - 1);
  switch (op) {
    case 0:  // delete a span
      out.erase(at, rng.uniform_u64(1, 20));
      break;
    case 1:  // duplicate a span
      out.insert(at, out.substr(at, rng.uniform_u64(1, 20)));
      break;
    case 2:  // flip a character
      out[at] = static_cast<char>(rng.uniform_u64(32, 126));
      break;
    case 3:  // inject structural noise
      out.insert(at, std::vector<std::string>{
                         "{", "}", ";;", "->", "(((", "\"", "property",
                         "requires", "0xFF", "-", ">=", ".."}[rng.uniform_u64(
                     0, 11)]);
      break;
    case 4:  // truncate
      out.resize(at);
      break;
    case 5:  // swap two spans
      if (out.size() > 40) {
        const std::size_t a = rng.uniform_u64(0, out.size() - 21);
        const std::size_t b = rng.uniform_u64(0, out.size() - 21);
        std::string sa = out.substr(a, 10), sb = out.substr(b, 10);
        out.replace(a, 10, sb);
        out.replace(b, 10, sa);
      }
      break;
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedMailSpecNeverCrashes) {
  util::Rng rng(GetParam());
  std::string base = mail::mail_spec_source();
  int parsed_ok = 0, parse_errors = 0;
  for (int trial = 0; trial < 500; ++trial) {
    // Occasionally stack mutations for deeper corruption.
    std::string candidate = base;
    const int rounds = 1 + static_cast<int>(rng.uniform_u64(0, 3));
    for (int r = 0; r < rounds; ++r) candidate = mutate(candidate, rng);

    auto spec = parse_spec(candidate);
    if (spec.has_value()) {
      ++parsed_ok;
      // Anything that parses must also validate (parse_spec validates) and
      // re-serialize without aborting.
      EXPECT_TRUE(spec->validate().is_ok());
    } else {
      ++parse_errors;
      const auto code = spec.status().code();
      EXPECT_TRUE(code == util::ErrorCode::kParseError ||
                  code == util::ErrorCode::kInvalidArgument ||
                  code == util::ErrorCode::kAlreadyExists)
          << spec.status().to_string();
      EXPECT_FALSE(spec.status().message().empty());
    }
  }
  // Sanity on the distribution: mutations should mostly break the spec but
  // sometimes leave it intact (e.g. mutating inside a comment).
  EXPECT_GT(parse_errors, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ParserFuzzEdge, PathologicalInputs) {
  // Hand-picked nasties: each must return an error, not crash.
  const char* inputs[] = {
      "",
      "service",
      "service {",
      "service S {",
      "service S { } trailing",
      "service S { property P { type: interval(5, 1); } }",
      "service S { rule X { (T, T) -> }",
      "service S { component C { implements } }",
      "service S { interface I {} component C { implements I {} "
      "behaviors { rrf: } } }",
      "\"unterminated",
      "service S { interface I { properties: ; } }",
      "service \xff\xfe {}",
  };
  for (const char* input : inputs) {
    auto spec = parse_spec(input);
    EXPECT_FALSE(spec.has_value()) << "'" << input << "' parsed?!";
  }
}

TEST(ParserFuzzEdge, DeeplyNestedNoise) {
  // A long run of braces must not blow the stack or hang.
  std::string input = "service S { interface I {} component C { implements I ";
  for (int i = 0; i < 5000; ++i) input += "{";
  auto spec = parse_spec(input);
  EXPECT_FALSE(spec.has_value());
}

TEST(ParserFuzzEdge, VeryLongIdentifiersAndNumbers) {
  const std::string long_ident(100000, 'a');
  auto s1 = parse_spec("service " + long_ident + " { }");
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->name.size(), 100000u);

  auto s2 = parse_spec(
      "service S { property P { type: interval(1, 9223372036854775807); } "
      "interface I { properties: P; } component C { implements I {} } }");
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->properties[0].interval_hi, INT64_MAX);
}

// The recovering parser must agree with the strict one on every mutated
// input: strict success implies zero recovered errors, and any recovered
// error implies strict failure. (Recovery additionally keeps going, so it
// may report more than the one error strict stops at.)
TEST(ParserFuzzTest, RecoveringParserAgreesWithStrictParser) {
  util::Rng rng(20260805);
  const std::string base = mail::mail_spec_source();
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_u64(0, 2));
    for (int m = 0; m < mutations; ++m) mutated = mutate(mutated, rng);

    ParseResult recovered = parse_spec_recover(mutated);
    auto strict = parse_spec(mutated);
    if (strict.has_value()) {
      EXPECT_TRUE(recovered.ok())
          << "strict parsed but recovery reported "
          << recovered.errors.size() << " error(s); input:\n"
          << mutated;
    }
    if (!recovered.ok()) {
      EXPECT_FALSE(strict.has_value()) << mutated;
      for (const ParseError& e : recovered.errors) {
        EXPECT_FALSE(e.message.empty());
      }
    }
  }
}

}  // namespace
}  // namespace psf::spec
