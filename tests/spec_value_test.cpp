// Property value semantics: the partial order driving §3.3's compatibility
// check ("implemented must be a superset of required").
#include <gtest/gtest.h>

#include "spec/model.hpp"
#include "spec/value.hpp"

namespace psf::spec {
namespace {

TEST(PropertyValueTest, KindPredicates) {
  EXPECT_FALSE(PropertyValue().is_set());
  EXPECT_TRUE(PropertyValue::boolean(true).is_bool());
  EXPECT_TRUE(PropertyValue::integer(3).is_int());
  EXPECT_TRUE(PropertyValue::string("x").is_string());
}

struct SatisfyCase {
  PropertyValue offered;
  PropertyValue required;
  bool expected;
};

class SatisfiesTest : public ::testing::TestWithParam<SatisfyCase> {};

TEST_P(SatisfiesTest, Holds) {
  const SatisfyCase& c = GetParam();
  EXPECT_EQ(c.offered.satisfies(c.required), c.expected)
      << c.offered.to_string() << " vs required " << c.required.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Table, SatisfiesTest,
    ::testing::Values(
        // Booleans: T >= F.
        SatisfyCase{PropertyValue::boolean(true), PropertyValue::boolean(true),
                    true},
        SatisfyCase{PropertyValue::boolean(true),
                    PropertyValue::boolean(false), true},
        SatisfyCase{PropertyValue::boolean(false),
                    PropertyValue::boolean(true), false},
        SatisfyCase{PropertyValue::boolean(false),
                    PropertyValue::boolean(false), true},
        // Integers: numeric order.
        SatisfyCase{PropertyValue::integer(5), PropertyValue::integer(4),
                    true},
        SatisfyCase{PropertyValue::integer(4), PropertyValue::integer(4),
                    true},
        SatisfyCase{PropertyValue::integer(3), PropertyValue::integer(4),
                    false},
        // Strings: equality only.
        SatisfyCase{PropertyValue::string("a"), PropertyValue::string("a"),
                    true},
        SatisfyCase{PropertyValue::string("a"), PropertyValue::string("b"),
                    false},
        // Unset requirement is always satisfied; unset offer never is.
        SatisfyCase{PropertyValue::integer(1), PropertyValue(), true},
        SatisfyCase{PropertyValue(), PropertyValue::integer(1), false},
        SatisfyCase{PropertyValue(), PropertyValue(), true},
        // Kind mismatches never satisfy.
        SatisfyCase{PropertyValue::integer(1), PropertyValue::boolean(true),
                    false},
        SatisfyCase{PropertyValue::boolean(true), PropertyValue::string("T"),
                    false}));

TEST(PropertyValueTest, MinOf) {
  EXPECT_EQ(PropertyValue::min_of(PropertyValue::integer(3),
                                  PropertyValue::integer(5)),
            PropertyValue::integer(3));
  EXPECT_EQ(PropertyValue::min_of(PropertyValue::boolean(true),
                                  PropertyValue::boolean(false)),
            PropertyValue::boolean(false));
  EXPECT_EQ(PropertyValue::min_of(PropertyValue::string("x"),
                                  PropertyValue::string("x")),
            PropertyValue::string("x"));
  // Mismatched strings and kinds collapse to unset.
  EXPECT_FALSE(PropertyValue::min_of(PropertyValue::string("x"),
                                     PropertyValue::string("y"))
                   .is_set());
  EXPECT_FALSE(PropertyValue::min_of(PropertyValue::integer(1),
                                     PropertyValue::boolean(true))
                   .is_set());
  // Unset is the identity.
  EXPECT_EQ(PropertyValue::min_of(PropertyValue(), PropertyValue::integer(9)),
            PropertyValue::integer(9));
}

TEST(PropertyValueTest, ToString) {
  EXPECT_EQ(PropertyValue::boolean(true).to_string(), "T");
  EXPECT_EQ(PropertyValue::boolean(false).to_string(), "F");
  EXPECT_EQ(PropertyValue::integer(-3).to_string(), "-3");
  EXPECT_EQ(PropertyValue::string("hi").to_string(), "\"hi\"");
  EXPECT_EQ(PropertyValue().to_string(), "<unset>");
}

TEST(PropertyDefTest, AdmitsTypeAndRange) {
  PropertyDef interval;
  interval.type = PropertyType::kInterval;
  interval.interval_lo = 1;
  interval.interval_hi = 5;
  EXPECT_TRUE(interval.admits(PropertyValue::integer(1)));
  EXPECT_TRUE(interval.admits(PropertyValue::integer(5)));
  EXPECT_FALSE(interval.admits(PropertyValue::integer(0)));
  EXPECT_FALSE(interval.admits(PropertyValue::integer(6)));
  EXPECT_FALSE(interval.admits(PropertyValue::boolean(true)));
  EXPECT_TRUE(interval.admits(PropertyValue()));  // unset always admitted

  PropertyDef boolean;
  boolean.type = PropertyType::kBoolean;
  EXPECT_TRUE(boolean.admits(PropertyValue::boolean(false)));
  EXPECT_FALSE(boolean.admits(PropertyValue::integer(1)));

  PropertyDef str;
  str.type = PropertyType::kString;
  EXPECT_TRUE(str.admits(PropertyValue::string("s")));
  EXPECT_FALSE(str.admits(PropertyValue::integer(1)));
}

TEST(ConditionTest, Operators) {
  Environment env;
  env.set("TrustLevel", PropertyValue::integer(3));
  env.set("User", PropertyValue::string("Alice"));

  Condition eq;
  eq.property = "User";
  eq.op = Condition::Op::kEq;
  eq.value = PropertyValue::string("Alice");
  EXPECT_TRUE(eq.holds(env));
  eq.value = PropertyValue::string("Bob");
  EXPECT_FALSE(eq.holds(env));

  Condition ge;
  ge.property = "TrustLevel";
  ge.op = Condition::Op::kGe;
  ge.value = PropertyValue::integer(3);
  EXPECT_TRUE(ge.holds(env));
  ge.value = PropertyValue::integer(4);
  EXPECT_FALSE(ge.holds(env));

  Condition le;
  le.property = "TrustLevel";
  le.op = Condition::Op::kLe;
  le.value = PropertyValue::integer(3);
  EXPECT_TRUE(le.holds(env));
  le.value = PropertyValue::integer(2);
  EXPECT_FALSE(le.holds(env));

  Condition range;
  range.property = "TrustLevel";
  range.op = Condition::Op::kInRange;
  range.range_lo = 1;
  range.range_hi = 3;
  EXPECT_TRUE(range.holds(env));
  range.range_hi = 2;
  EXPECT_FALSE(range.holds(env));
}

TEST(ConditionTest, MissingPropertyFailsClosed) {
  Environment env;
  Condition cond;
  cond.property = "TrustLevel";
  cond.op = Condition::Op::kGe;
  cond.value = PropertyValue::integer(1);
  EXPECT_FALSE(cond.holds(env));
}

TEST(EnvironmentTest, SetAndGet) {
  Environment env;
  EXPECT_FALSE(env.get("x").has_value());
  env.set("x", PropertyValue::integer(1));
  ASSERT_TRUE(env.get("x").has_value());
  EXPECT_EQ(*env.get("x"), PropertyValue::integer(1));
  env.set("x", PropertyValue::integer(2));  // overwrite
  EXPECT_EQ(*env.get("x"), PropertyValue::integer(2));
}

}  // namespace
}  // namespace psf::spec
