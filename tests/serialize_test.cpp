// PSDL serializer: canonical-form round trips for the built-in specs and
// randomized programmatically built specs.
#include <gtest/gtest.h>

#include "mail/mail_spec.hpp"
#include "spec/builder.hpp"
#include "spec/parser.hpp"
#include "spec/serialize.hpp"
#include "util/rng.hpp"

namespace psf::spec {
namespace {

// parse(serialize(s)) must be structurally identical to s.
void expect_round_trip(const ServiceSpec& original) {
  const std::string text = serialize_spec(original);
  auto reparsed = parse_spec(text);
  ASSERT_TRUE(reparsed.has_value())
      << reparsed.status().to_string() << "\nserialized form was:\n"
      << text;
  EXPECT_TRUE(specs_equal(original, *reparsed))
      << "original:\n"
      << text << "\nreparsed:\n"
      << serialize_spec(*reparsed);
}

TEST(SerializeTest, MailSpecRoundTrips) {
  expect_round_trip(mail::mail_service_spec());
}

TEST(SerializeTest, RoundTripPreservesAllFieldKinds) {
  ServiceSpec spec =
      SpecBuilder("Everything")
          .boolean_property("Flag")
          .interval_property("Level", -3, 12)
          .string_property("Owner")
          .interface("Wide", {"Flag", "Level", "Owner"})
          .interface("Bare", {})
          .confidentiality_rule("Flag")
          .component("Root")
          .static_placement()
          .implements("Wide", {{"Flag", lit_bool(true)},
                               {"Level", lit_int(12)},
                               {"Owner", lit_string("ops team")}})
          .condition_eq("Owner", PropertyValue::string("ops team"))
          .condition_in_range("Level", 2, 9)
          .capacity(123.5)
          .cpu_per_request(7.25)
          .message_bytes(100, 20000)
          .code_size(777)
          .done()
          .data_view("Cache", "Root")
          .factor("Level", node_ref("Level"))
          .implements("Wide", {{"Flag", lit_bool(false)},
                               {"Level", factor_ref("Level")},
                               {"Owner", ValueExpr::any()}})
          .requires_iface("Wide", {{"Level", factor_ref("Level")}})
          .condition_ge("Level", PropertyValue::integer(3))
          .rrf(0.125)
          .done()
          .component("Passthrough")
          .transparent()
          .implements("Bare", {})
          .requires_iface("Wide", {})
          .done()
          .build();
  expect_round_trip(spec);
}

TEST(SerializeTest, RuleOutputKindsRoundTrip) {
  ServiceSpec spec = SpecBuilder("Rules")
                         .interval_property("Q", 0, 100)
                         .interface("I", {"Q"})
                         .component("C")
                         .implements("I", {})
                         .done()
                         .build();
  PropertyModificationRule rule;
  rule.property = "Q";
  rule.rows.push_back({RulePattern::lit(PropertyValue::integer(1)),
                       RulePattern::wildcard(), RuleRow::OutKind::kInput,
                       {}});
  rule.rows.push_back({RulePattern::wildcard(),
                       RulePattern::lit(PropertyValue::integer(2)),
                       RuleRow::OutKind::kEnvValue,
                       {}});
  rule.rows.push_back({RulePattern::wildcard(), RulePattern::wildcard(),
                       RuleRow::OutKind::kMin,
                       {}});
  rule.rows.push_back({RulePattern::lit(PropertyValue::integer(9)),
                       RulePattern::lit(PropertyValue::integer(9)),
                       RuleRow::OutKind::kLiteral,
                       PropertyValue::integer(0)});
  spec.rules.add(std::move(rule));
  expect_round_trip(spec);
}

TEST(SerializeTest, SpecsEqualDetectsDifferences) {
  ServiceSpec a = mail::mail_service_spec();
  ServiceSpec b = mail::mail_service_spec();
  EXPECT_TRUE(specs_equal(a, b));
  b.components[0].behaviors.rrf = 0.37;
  EXPECT_FALSE(specs_equal(a, b));
}

TEST(SerializeTest, RandomizedSpecsRoundTrip) {
  util::Rng rng(20260707);
  for (int trial = 0; trial < 20; ++trial) {
    SpecBuilder builder("Rand" + std::to_string(trial));
    builder.interval_property("P", 0, 50);
    builder.boolean_property("B");
    builder.interface("I", {"P", "B"});

    const int comps = 1 + static_cast<int>(rng.uniform_u64(0, 3));
    for (int c = 0; c < comps; ++c) {
      auto cb = builder.component("C" + std::to_string(c));
      cb.implements(
          "I", {{"P", lit_int(rng.uniform_i64(0, 50))},
                {"B", lit_bool(rng.bernoulli(0.5))}});
      if (c > 0 && rng.bernoulli(0.5)) {
        cb.requires_iface("I", {{"P", lit_int(rng.uniform_i64(0, 50))}});
      }
      if (rng.bernoulli(0.3)) {
        cb.condition_in_range("P", rng.uniform_i64(0, 10),
                              rng.uniform_i64(11, 50));
      }
      cb.rrf(static_cast<double>(rng.uniform_u64(0, 100)) / 100.0);
      cb.cpu_per_request(rng.uniform(1.0, 500.0));
      cb.done();
    }
    expect_round_trip(builder.build());
  }
}

}  // namespace
}  // namespace psf::spec
