// core module units: case-study world invariants, Framework helpers,
// WorkloadClient mechanics, scenario metadata.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "core/redeploy.hpp"
#include "core/scenarios.hpp"
#include "core/workload.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/server.hpp"

namespace psf::core {
namespace {

TEST(CaseStudyNetworkTest, MatchesFig5Parameters) {
  CaseStudySites sites;
  net::Network network = case_study_network(&sites);

  ASSERT_EQ(sites.new_york.size(), 3u);
  ASSERT_EQ(sites.san_diego.size(), 3u);
  ASSERT_EQ(sites.seattle.size(), 3u);
  EXPECT_EQ(network.node_count(), 9u);
  // 3 intra-site meshes of 3 links + 3 WAN links.
  EXPECT_EQ(network.link_count(), 12u);

  // Trust ladder.
  EXPECT_EQ(network.node(sites.new_york[0]).credentials.get_int("trust", 0),
            5);
  EXPECT_EQ(network.node(sites.san_diego[0]).credentials.get_int("trust", 0),
            4);
  EXPECT_EQ(network.node(sites.seattle[0]).credentials.get_int("trust", 0),
            2);

  // WAN parameters (Fig. 5).
  auto check_link = [&](net::NodeId a, net::NodeId b, double bw, double ms) {
    auto lid = network.link_between(a, b);
    ASSERT_TRUE(lid.has_value());
    EXPECT_EQ(network.link(*lid).bandwidth_bps, bw);
    EXPECT_EQ(network.link(*lid).latency.millis(), ms);
    EXPECT_FALSE(network.link(*lid).credentials.get_bool("secure", true));
  };
  check_link(sites.san_diego[0], sites.new_york[0], 50e6, 100);
  check_link(sites.seattle[0], sites.san_diego[0], 20e6, 200);
  check_link(sites.seattle[0], sites.new_york[0], 8e6, 400);

  // Intra-site links are secure and fast.
  auto intra = network.link_between(sites.new_york[0], sites.new_york[1]);
  ASSERT_TRUE(intra.has_value());
  EXPECT_TRUE(network.link(*intra).credentials.get_bool("secure", false));
  EXPECT_EQ(network.link(*intra).bandwidth_bps, 100e6);

  // Special nodes are inside their sites and distinct.
  EXPECT_NE(sites.mail_home, sites.ny_client);
}

TEST(CaseStudyNetworkTest, SeattleRoutesViaSanDiegoAreCheaperThanDirect) {
  // The premise behind the paper's Seattle deployment: going through San
  // Diego (200 + 100 ms) still beats the direct 400 ms pipe only for
  // cached traffic — but the raw shortest path Seattle->NY picks the
  // direct 400 ms link over 300 ms via SD? No: Dijkstra minimizes latency,
  // so it must route via San Diego (300 ms total).
  CaseStudySites sites;
  net::Network network = case_study_network(&sites);
  auto route = network.route(sites.seattle[0], sites.new_york[0]);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->total_latency.millis(), 300.0);
  EXPECT_EQ(route->links.size(), 2u);
}

TEST(FrameworkTest, RunUntilConditionStopsOnPredicate) {
  CaseStudySites sites;
  Framework fw(case_study_network(&sites));
  int fired = 0;
  fw.simulator().schedule(sim::Duration::from_seconds(1), [&] { fired = 1; });
  fw.simulator().schedule(sim::Duration::from_seconds(100),
                          [&] { fired = 2; });
  EXPECT_TRUE(fw.run_until_condition([&] { return fired == 1; },
                                     sim::Duration::from_seconds(10)));
  EXPECT_EQ(fired, 1);
  // Deadline respected when the predicate never holds.
  EXPECT_FALSE(fw.run_until_condition([&] { return fired == 99; },
                                      sim::Duration::from_seconds(5)));
}

TEST(ScenarioMetaTest, NamesAndKinds) {
  EXPECT_STREQ(scenario_name(Scenario::kDF), "DF");
  EXPECT_STREQ(scenario_name(Scenario::kSS1000), "SS1000");
  EXPECT_TRUE(scenario_is_dynamic(Scenario::kDS500));
  EXPECT_FALSE(scenario_is_dynamic(Scenario::kSS));
  EXPECT_EQ(std::size(kAllScenarios), 9u);
}

TEST(RedeployMetaTest, OutcomeNames) {
  EXPECT_STREQ(redeploy_outcome_name(RedeployEvent::Outcome::kStillValid),
               "still-valid");
  EXPECT_STREQ(redeploy_outcome_name(RedeployEvent::Outcome::kRedeployed),
               "redeployed");
  EXPECT_STREQ(redeploy_outcome_name(RedeployEvent::Outcome::kUnsatisfiable),
               "unsatisfiable");
  EXPECT_STREQ(redeploy_outcome_name(RedeployEvent::Outcome::kFailed),
               "failed");
}

// ---- WorkloadClient against a bare MailServer ------------------------------

struct WorkloadFixture : public ::testing::Test {
  WorkloadFixture() : runtime(sim, network) {
    net::Credentials creds;
    creds.set("trust", std::int64_t{5});
    creds.set("secure", true);
    node = network.add_node("n", 1e6, creds);

    config = std::make_shared<mail::MailServiceConfig>();
    spec = std::make_unique<spec::ServiceSpec>(mail::mail_service_spec());
    PSF_CHECK(mail::register_mail_factories(runtime.factories(), config)
                  .is_ok());
    runtime.install(*spec->find_component("MailServer"), node, {}, node,
                    [this](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK(id.has_value());
                      server = *id;
                    });
    sim.run();
    PSF_CHECK(runtime.start(server).is_ok());
    // The entry component: a MailClient performs the client-side sealing of
    // sensitive bodies, exactly as in a planned deployment.
    runtime.install(*spec->find_component("MailClient"), node, {}, node,
                    [this](util::Expected<runtime::RuntimeInstanceId> id) {
                      PSF_CHECK(id.has_value());
                      client = *id;
                    });
    sim.run();
    PSF_CHECK(runtime.wire(client, "ServerInterface", server).is_ok());
    PSF_CHECK(runtime.start(client).is_ok());
  }

  WorkloadClient::Transport transport() {
    return [this](runtime::Request request, runtime::ResponseCallback done) {
      runtime.invoke_from_node(node, client, std::move(request),
                               std::move(done));
    };
  }

  sim::Simulator sim;
  net::Network network;
  runtime::SmockRuntime runtime;
  net::NodeId node;
  mail::MailConfigPtr config;
  std::unique_ptr<spec::ServiceSpec> spec;
  runtime::RuntimeInstanceId server = 0;
  runtime::RuntimeInstanceId client = 0;
};

TEST_F(WorkloadFixture, CompletesConfiguredOperationCounts) {
  WorkloadParams params;
  params.sends = 30;
  params.receives = 3;
  WorkloadClient wl(runtime, "wl-user", config, transport(), params);
  wl.start();
  sim.run();
  ASSERT_TRUE(wl.finished());
  EXPECT_EQ(wl.stats().sends_ok, 30u);
  EXPECT_EQ(wl.stats().receives_ok, 3u);
  EXPECT_EQ(wl.stats().sends_failed, 0u);
  EXPECT_EQ(wl.send_latency_ms().count(), 30u);
  EXPECT_EQ(wl.stats().plaintext_mismatches, 0u);
  EXPECT_GT(wl.stats().messages_received, 0u);
}

TEST_F(WorkloadFixture, HighSensitivitySendsAreSealedEndToEnd) {
  WorkloadParams params;
  params.sends = 10;
  params.receives = 2;
  params.high_send_every = 2;  // half the sends at sensitivity 5
  WorkloadClient wl(runtime, "sealed-user", config, transport(), params);
  wl.start();
  sim.run();
  ASSERT_TRUE(wl.finished());
  EXPECT_EQ(wl.stats().sends_ok, 10u);

  auto* comp = dynamic_cast<mail::MailServerComponent*>(
      runtime.instance(server).component.get());
  ASSERT_NE(comp, nullptr);
  const mail::Account* account = comp->find_account("sealed-user");
  ASSERT_NE(account, nullptr);
  std::size_t sealed = 0;
  for (const auto& m : account->inbox.messages) {
    if (m.sealed.has_value()) ++sealed;
  }
  EXPECT_EQ(sealed, 10u);  // every send had sensitivity > 0 (2 or 5)
}

TEST_F(WorkloadFixture, ZeroReceivesConfiguration) {
  WorkloadParams params;
  params.sends = 5;
  params.receives = 0;
  WorkloadClient wl(runtime, "wr-user", config, transport(), params);
  wl.start();
  sim.run();
  ASSERT_TRUE(wl.finished());
  EXPECT_EQ(wl.stats().sends_ok, 5u);
  EXPECT_EQ(wl.stats().receives_ok, 0u);
}

TEST_F(WorkloadFixture, ThinkTimePacesTheRun) {
  WorkloadParams params;
  params.sends = 10;
  params.receives = 0;
  params.think = sim::Duration::from_millis(100);
  WorkloadClient wl(runtime, "paced-user", config, transport(), params);
  wl.start();
  sim.run();
  // 10 ops, each preceded by 100 ms of think time: at least 1 s elapsed.
  EXPECT_GE(sim.now().seconds(), 1.0);
}

}  // namespace
}  // namespace psf::core
