// Linkage enumeration (paper §3.3 step 1 / Fig. 3).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mail/mail_spec.hpp"
#include "planner/linkage.hpp"
#include "spec/builder.hpp"

namespace psf::planner {
namespace {

TEST(LinkageTest, SingleComponentNoRequires) {
  spec::ServiceSpec s = spec::SpecBuilder("S")
                            .interface("I", {})
                            .component("C")
                            .implements("I", {})
                            .done()
                            .build();
  auto trees = enumerate_linkages(s, "I");
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].size(), 1u);
  EXPECT_TRUE(trees[0].is_chain());
  EXPECT_EQ(trees[0].to_string(), "C");
}

TEST(LinkageTest, AlternativeImplementersYieldAlternativeTrees) {
  spec::ServiceSpec s = spec::SpecBuilder("S")
                            .interface("I", {})
                            .component("A")
                            .implements("I", {})
                            .done()
                            .component("B")
                            .implements("I", {})
                            .done()
                            .build();
  auto trees = enumerate_linkages(s, "I");
  auto names = describe_linkages(trees);
  EXPECT_EQ(names, (std::vector<std::string>{"A", "B"}));
}

TEST(LinkageTest, UnsatisfiableRequirementPrunesComponent) {
  spec::ServiceSpec s = spec::SpecBuilder("S")
                            .interface("I", {})
                            .interface("Missing", {})
                            .component("A")
                            .implements("I", {})
                            .requires_iface("Missing", {})
                            .done()
                            .component("B")
                            .implements("I", {})
                            .done()
                            .build();
  auto trees = enumerate_linkages(s, "I");
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].to_string(), "B");
}

TEST(LinkageTest, CrossProductOverMultipleRequires) {
  spec::ServiceSpec s = spec::SpecBuilder("S")
                            .interface("Root", {})
                            .interface("L", {})
                            .interface("R", {})
                            .component("Top")
                            .implements("Root", {})
                            .requires_iface("L", {})
                            .requires_iface("R", {})
                            .done()
                            .component("L1")
                            .implements("L", {})
                            .done()
                            .component("L2")
                            .implements("L", {})
                            .done()
                            .component("R1")
                            .implements("R", {})
                            .done()
                            .build();
  auto trees = enumerate_linkages(s, "Root");
  EXPECT_EQ(trees.size(), 2u);  // {L1,L2} x {R1}
  for (const auto& t : trees) {
    EXPECT_FALSE(t.is_chain());
    EXPECT_EQ(t.size(), 3u);
  }
}

TEST(LinkageTest, RecursiveViewBoundedByDepth) {
  // V implements and requires the same interface: unbounded chains without
  // the depth cap.
  spec::ServiceSpec s = spec::SpecBuilder("S")
                            .interface("I", {})
                            .component("Base")
                            .implements("I", {})
                            .done()
                            .data_view("V", "Base")
                            .implements("I", {})
                            .requires_iface("I", {})
                            .done()
                            .build();
  LinkageOptions options;
  options.max_depth = 4;
  auto trees = enumerate_linkages(s, "I", options);
  // Chains: Base, V->Base, V->V->Base, V->V->V->Base.
  auto names = describe_linkages(trees);
  std::set<std::string> set(names.begin(), names.end());
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.count("Base"));
  EXPECT_TRUE(set.count("V -> V -> V -> Base"));
  for (const auto& t : trees) {
    EXPECT_LE(t.size(), 4u);
  }
}

TEST(LinkageTest, MaxTreesCapRespected) {
  spec::ServiceSpec s = spec::SpecBuilder("S")
                            .interface("I", {})
                            .component("Base")
                            .implements("I", {})
                            .done()
                            .data_view("V", "Base")
                            .implements("I", {})
                            .requires_iface("I", {})
                            .done()
                            .build();
  LinkageOptions options;
  options.max_depth = 12;
  options.max_trees = 5;
  auto trees = enumerate_linkages(s, "I", options);
  EXPECT_LE(trees.size(), 5u);
}

TEST(LinkageTest, MailServiceChainsMatchFig3) {
  // Fig. 3: any path from MailClient or ViewMailClient to MailServer —
  // possibly through ViewMailServer chains and Encryptor/Decryptor pairs.
  spec::ServiceSpec s = mail::mail_service_spec();
  LinkageOptions options;
  options.max_depth = 6;
  auto trees = enumerate_linkages(s, "ClientInterface", options);
  ASSERT_FALSE(trees.empty());

  const std::vector<std::string> descriptions = describe_linkages(trees);
  std::set<std::string> chains(descriptions.begin(), descriptions.end());

  // The canonical paper chains must all be present.
  EXPECT_TRUE(chains.count("MailClient -> MailServer"));
  EXPECT_TRUE(chains.count("ViewMailClient -> MailServer"));
  EXPECT_TRUE(chains.count("MailClient -> ViewMailServer -> MailServer"));
  EXPECT_TRUE(chains.count(
      "MailClient -> Encryptor -> Decryptor -> MailServer"));
  EXPECT_TRUE(chains.count(
      "MailClient -> ViewMailServer -> Encryptor -> Decryptor -> "
      "MailServer"));
  EXPECT_TRUE(chains.count(
      "ViewMailClient -> ViewMailServer -> ViewMailServer -> MailServer"));

  // Every tree is a chain here (mail components require at most one
  // interface), starts at a client, and ends at the MailServer.
  for (const auto& t : trees) {
    EXPECT_TRUE(t.is_chain());
    auto chain = t.as_chain();
    EXPECT_TRUE(chain.front()->name == "MailClient" ||
                chain.front()->name == "ViewMailClient");
    EXPECT_EQ(chain.back()->name, "MailServer");
    // Encryptor is always immediately followed by Decryptor.
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i]->name == "Encryptor") {
        ASSERT_LT(i + 1, chain.size());
        EXPECT_EQ(chain[i + 1]->name, "Decryptor");
      }
    }
  }
}

TEST(LinkageTest, AsChainRejectsNonChains) {
  spec::ServiceSpec s = spec::SpecBuilder("S")
                            .interface("Root", {})
                            .interface("L", {})
                            .interface("R", {})
                            .component("Top")
                            .implements("Root", {})
                            .requires_iface("L", {})
                            .requires_iface("R", {})
                            .done()
                            .component("L1")
                            .implements("L", {})
                            .done()
                            .component("R1")
                            .implements("R", {})
                            .done()
                            .build();
  auto trees = enumerate_linkages(s, "Root");
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_FALSE(trees[0].is_chain());
  EXPECT_DEATH(trees[0].as_chain(), "non-chain");
}

}  // namespace
}  // namespace psf::planner
