// A QoS-property service: the paper stresses (§3.3) that property
// modification rules are "generally applicable to properties other than
// just security, e.g. QoS properties such as delivered video frame rate".
//
// This example builds a small video service around exactly that property:
//
//   - FrameRate degrades across links with a `min(in, env)` rule (a thin
//     pipe caps the deliverable rate);
//   - a motion-Interpolator component reconstructs 30 fps from a 12 fps
//     thinned stream, so the planner inserts it on the *client side* of a
//     slow link — the same mechanism that places a Decryptor behind an
//     insecure link in the mail study;
//   - when even the thinned stream cannot cross the pipe, the request is
//     unsatisfiable and the client negotiates its requirement down.
//
// Run: ./build/examples/media_service
#include <cstdio>
#include <memory>

#include "core/framework.hpp"
#include "planner/environment.hpp"
#include "spec/parser.hpp"

using namespace psf;

namespace {

constexpr const char* kSpecSource = R"(
service StreamCast {
  property FrameRate { type: interval(1, 60); }

  interface ViewPort { }
  interface Stream { properties: FrameRate; }

  // The pipe caps the deliverable frame rate: min(in, env).
  rule FrameRate {
    (any, any) -> min;
  }

  component Player {
    implements ViewPort { }
    requires Stream { FrameRate = 30; }
    behaviors { cpu_per_request: 15; bytes_per_request: 256;
                bytes_per_response: 16 KB; code_size: 40 KB; }
  }

  component Source {
    static;
    implements Stream { FrameRate = 60; }
    behaviors { capacity: 500; cpu_per_request: 60;
                bytes_per_request: 256; bytes_per_response: 64 KB; }
  }

  // Reconstructs full-rate video from a thinned stream (frame
  // interpolation): offers 30 fps while only needing 12 upstream. Its
  // output is full-rate video, so it is no cheaper to ship than the
  // original — only the *rate* constraint motivates deploying it.
  component Interpolator {
    implements Stream { FrameRate = 30; }
    requires Stream { FrameRate = 12; }
    behaviors { cpu_per_request: 120; bytes_per_request: 256;
                bytes_per_response: 64 KB; code_size: 150 KB; }
  }
}
)";

class DemoComponent : public runtime::Component {
 public:
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override {
    runtime::Request copy;
    copy.op = request.op;
    copy.wire_bytes = request.wire_bytes;
    call("Stream", std::move(copy), [done](runtime::Response response) {
      if (!response.ok) {
        runtime::Response answer;
        answer.wire_bytes = 16 * 1024;
        done(std::move(answer));
        return;
      }
      done(std::move(response));
    });
  }
};

// Builds a studio--cdn-edge world whose WAN link advertises `fps_cap`.
struct World {
  std::unique_ptr<core::Framework> fw;
  net::NodeId studio, edge;

  explicit World(std::int64_t wan_fps_cap) {
    net::Network network;
    net::Credentials studio_creds;
    studio_creds.set("fps_cap", std::int64_t{60});
    studio = network.add_node("studio", 4e6, studio_creds);
    net::Credentials edge_creds;
    edge_creds.set("fps_cap", std::int64_t{60});
    edge = network.add_node("cdn-edge", 2e6, edge_creds);
    net::Credentials wan;
    wan.set("fps_cap", wan_fps_cap);
    network.add_link(studio, edge, 20e6, sim::Duration::from_millis(80), wan);

    fw = std::make_unique<core::Framework>(std::move(network));
    for (const char* type : {"Player", "Source", "Interpolator"}) {
      PSF_CHECK(fw->runtime()
                    .factories()
                    .register_type(
                        type, [] { return std::make_unique<DemoComponent>(); })
                    .is_ok());
    }
    auto parsed = spec::parse_spec(kSpecSource);
    PSF_CHECK_MSG(parsed.has_value(), parsed.status().to_string());
    runtime::ServiceRegistration registration;
    registration.spec = std::move(parsed).value();
    registration.code_origin = studio;
    registration.initial_placements.push_back(
        runtime::InitialPlacement{"Source", studio, {}});
    auto translator = std::make_shared<planner::CredentialMapTranslator>();
    translator->map_node({"FrameRate", "fps_cap",
                          spec::PropertyType::kInterval,
                          spec::PropertyValue::integer(60)});
    translator->map_link({"FrameRate", "fps_cap",
                          spec::PropertyType::kInterval,
                          spec::PropertyValue::integer(60)});
    PSF_CHECK(fw->register_service(std::move(registration), translator)
                  .is_ok());
  }

  // Plans for a viewer at the edge demanding `fps`; prints the outcome.
  bool plan_viewer(std::int64_t fps) {
    planner::PlanRequest wants;
    wants.interface_name = "ViewPort";
    wants.request_rate_rps = 5.0;
    // The Player's own requirement is fixed in the spec; the *client's*
    // requirement arrives via the requested properties of ViewPort — here
    // ViewPort is property-free, so negotiation happens by choosing the
    // entry component; the interesting constraint is the Player->Stream
    // edge. (A richer spec would add a quality property to ViewPort.)
    (void)fps;
    auto proxy = fw->make_proxy(edge, "StreamCast", wants);
    util::Status status = util::internal_error("");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(300));
    if (!status.is_ok()) {
      std::printf("  no feasible deployment: %s\n\n",
                  status.message().c_str());
      return false;
    }
    std::printf("%s\n", proxy->outcome().plan.to_string(fw->network()).c_str());
    return true;
  }
};

}  // namespace

int main() {
  std::printf("=== fast WAN (fps_cap 60): direct streaming ===\n");
  {
    World world(60);
    PSF_CHECK(world.plan_viewer(30));
  }

  std::printf("=== thin WAN (fps_cap 12): the planner inserts an "
              "Interpolator at the edge ===\n");
  {
    World world(12);
    PSF_CHECK(world.plan_viewer(30));
  }

  std::printf("=== starved WAN (fps_cap 8): even the thinned stream cannot "
              "cross ===\n");
  {
    World world(8);
    const bool satisfied = world.plan_viewer(30);
    PSF_CHECK(!satisfied);
    std::printf("  (a production client would now renegotiate its QoS "
                "expectations, as the mail demo does with TrustLevel)\n");
  }
  return 0;
}
