// Quickstart: the smallest useful partitionable service.
//
// A two-component service — a pre-placed Origin and a deployable CacheView —
// is described in PSDL, registered with the framework, and accessed from an
// edge node behind a slow link. The planner decides, from the declarative
// spec alone, whether the client should connect directly or get a cache
// deployed next to it.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/framework.hpp"
#include "spec/parser.hpp"

using namespace psf;

namespace {

// 1. Describe the service: interfaces, properties, components, behaviors.
constexpr const char* kSpecSource = R"(
service QuickCache {
  property Quality { type: interval(1, 10); }

  interface Api { properties: Quality; }
  interface Entry { }

  component Client {
    implements Entry { }
    requires Api { Quality = 5; }
    behaviors { cpu_per_request: 10; bytes_per_request: 512;
                bytes_per_response: 4096; code_size: 20 KB; }
  }

  component Origin {
    static;  // pre-placed by the operator; the planner never clones it
    implements Api { Quality = 10; }
    behaviors { capacity: 1000; cpu_per_request: 80;
                bytes_per_request: 512; bytes_per_response: 4096; }
  }

  data view CacheView represents Origin {
    factors { Quality = node.Quality; }
    implements Api { Quality = factor.Quality; }
    requires Api { Quality = factor.Quality; }
    behaviors { rrf: 0.1; cpu_per_request: 30; bytes_per_request: 512;
                bytes_per_response: 4096; code_size: 60 KB; }
  }
}
)";

// A trivial runtime component good enough for the demo: answers everything.
class DemoComponent : public runtime::Component {
 public:
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override {
    // A real component would dispatch on request.op; forward downstream if
    // wired, otherwise answer directly.
    runtime::Request copy;
    copy.op = request.op;
    copy.wire_bytes = request.wire_bytes;
    call("Api", std::move(copy), [done](runtime::Response response) {
      if (!response.ok) {
        // No downstream wire: we are the origin — answer.
        runtime::Response answer;
        answer.wire_bytes = 4096;
        done(std::move(answer));
        return;
      }
      done(std::move(response));
    });
  }
};

}  // namespace

int main() {
  // 2. Build the network: an origin site and an edge site, slow WAN between.
  net::Network network;
  net::Credentials dc;
  dc.set("Quality", std::int64_t{10});
  const net::NodeId origin_node = network.add_node("datacenter", 2e6, dc);
  net::Credentials edge_creds;
  edge_creds.set("Quality", std::int64_t{6});
  const net::NodeId edge_node = network.add_node("edge", 1e6, edge_creds);
  network.add_link(origin_node, edge_node, 5e6,
                   sim::Duration::from_millis(120));

  core::Framework fw(std::move(network));

  // 3. Register component factories (the C++ stand-in for mobile code).
  for (const char* type : {"Client", "Origin", "CacheView"}) {
    PSF_CHECK(fw.runtime()
                  .factories()
                  .register_type(type,
                                 [] { return std::make_unique<DemoComponent>(); })
                  .is_ok());
  }

  // 4. Register the service: parse the spec, pre-place the Origin.
  auto parsed = spec::parse_spec(kSpecSource);
  PSF_CHECK_MSG(parsed.has_value(), parsed.status().to_string());

  runtime::ServiceRegistration registration;
  registration.spec = std::move(parsed).value();
  registration.code_origin = origin_node;
  registration.initial_placements.push_back(
      runtime::InitialPlacement{"Origin", origin_node, {}});

  // Credentials translate 1:1 here: the node credential "Quality" is the
  // service property "Quality".
  auto translator = std::make_shared<planner::CredentialMapTranslator>();
  translator->map_node({"Quality", "Quality", spec::PropertyType::kInterval,
                        spec::PropertyValue::integer(1)});

  auto st = fw.register_service(std::move(registration), translator);
  PSF_CHECK_MSG(st.is_ok(), st.to_string());
  std::printf("registered QuickCache; Origin pre-placed at 'datacenter'\n");

  // 5. A client at the edge asks for the Entry interface. The generic proxy
  // looks the service up, the planner maps components to nodes, the
  // deployment engine installs and wires them.
  planner::PlanRequest wants;
  wants.interface_name = "Entry";
  wants.request_rate_rps = 20.0;

  auto proxy = fw.make_proxy(edge_node, "QuickCache", wants);
  proxy->bind([](util::Status status) {
    PSF_CHECK_MSG(status.is_ok(), status.to_string());
  });
  fw.run();

  const auto& outcome = proxy->outcome();
  std::printf("\nplanner chose:\n%s",
              outcome.plan.to_string(fw.network()).c_str());
  std::printf("one-time costs: lookup %.1f ms, planning %.1f ms, deployment "
              "%.1f ms\n",
              outcome.costs.lookup.millis(), outcome.costs.planning.millis(),
              outcome.costs.deployment.millis());

  // 6. Use the service.
  runtime::Request request;
  request.op = "get";
  request.wire_bytes = 512;
  proxy->invoke(std::move(request), [&fw](runtime::Response response) {
    std::printf("\nfirst request completed at t=%.2f ms (ok=%d)\n",
                fw.simulator().now().millis(), response.ok ? 1 : 0);
  });
  fw.run();
  return 0;
}
