// The paper's §4 case study, end to end: three sites, one security-sensitive
// mail service, three very different automatically generated deployments —
// then actual mail flowing through them (sealed, cached, synced).
//
// Run: ./build/examples/mail_demo
#include <cstdio>
#include <memory>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"
#include "mail/view_server.hpp"
#include "util/strings.hpp"

using namespace psf;

namespace {

runtime::Request make_send(std::uint64_t id, const std::string& from,
                           const std::string& to, std::int64_t sensitivity,
                           const std::string& text) {
  auto body = std::make_shared<mail::SendBody>();
  body->message.id = id;
  body->message.from = from;
  body->message.to = to;
  body->message.subject = "demo";
  body->message.sensitivity = sensitivity;
  body->message.plaintext.assign(text.begin(), text.end());
  runtime::Request request;
  request.op = mail::ops::kSend;
  request.body = body;
  request.wire_bytes = mail::send_wire_bytes(body->message);
  request.principal = from;
  return request;
}

runtime::Request make_receive(const std::string& user, bool include_high) {
  auto body = std::make_shared<mail::ReceiveBody>();
  body->user = user;
  body->include_high_sensitivity = include_high;
  runtime::Request request;
  request.op = mail::ops::kReceive;
  request.body = body;
  request.wire_bytes = 256;
  request.principal = user;
  return request;
}

}  // namespace

int main() {
  // The Fig. 5 world: New York (trust 5, mail home), San Diego branch
  // (trust 4), Seattle partner org (trust 2); insecure slow WAN links.
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);

  auto config = std::make_shared<mail::MailServiceConfig>();
  config->view_policy =
      coherence::CoherencePolicy::time_based(sim::Duration::from_millis(1000));
  PSF_CHECK(
      mail::register_mail_factories(fw.runtime().factories(), config).is_ok());
  PSF_CHECK(fw.register_service(mail::mail_registration(sites.mail_home),
                                mail::mail_translator())
                .is_ok());
  std::printf("SecureMail registered; primary MailServer at %s\n\n",
              fw.network().node(sites.mail_home).name.c_str());

  // --- three clients, three sites, three different deployments ------------
  struct Client {
    const char* label;
    net::NodeId node;
    std::int64_t preferred_trust;
    std::string user;
    std::unique_ptr<runtime::GenericProxy> proxy;
  };
  Client clients[] = {
      {"New York HQ", sites.ny_client, 4, "nadia", nullptr},
      {"San Diego branch", sites.sd_client, 4, "sam", nullptr},
      {"Seattle partner", sites.sea_client, 4, "skye", nullptr},
  };

  for (Client& c : clients) {
    // Clients negotiate down: ask for the full-featured trust-4 client and
    // fall back to the restricted trust-2 view when the environment cannot
    // host it (this is Seattle's fate).
    for (std::int64_t trust : {c.preferred_trust, std::int64_t{2}}) {
      planner::PlanRequest wants;
      wants.interface_name = "ClientInterface";
      wants.required_properties.emplace_back(
          "TrustLevel", spec::PropertyValue::integer(trust));
      wants.request_rate_rps = 50.0;
      auto proxy = fw.make_proxy(c.node, "SecureMail", wants);
      util::Status status = util::internal_error("");
      bool done = false;
      proxy->bind([&](util::Status st) {
        status = st;
        done = true;
      });
      fw.run_until_condition([&done]() { return done; },
                             sim::Duration::from_seconds(300));
      if (status.is_ok()) {
        std::printf("-- %s (negotiated TrustLevel %lld) --\n%s\n", c.label,
                    static_cast<long long>(trust),
                    proxy->outcome().plan.to_string(fw.network()).c_str());
        c.proxy = std::move(proxy);
        break;
      }
      std::printf("-- %s: TrustLevel %lld unsatisfiable (%s); degrading --\n",
                  c.label, static_cast<long long>(trust),
                  status.message().c_str());
    }
    PSF_CHECK_MSG(c.proxy != nullptr, "no deployment possible");
  }

  // --- mail actually flows -------------------------------------------------
  std::printf("=== exchanging mail ===\n");
  for (Client& c : clients) {
    config->keys->provision_user(c.user, mail::kMaxSensitivity);
  }

  std::uint64_t next_id = 1;
  for (Client& c : clients) {
    // Everyone mails themselves twice: one routine note, one level-5 secret
    // (which no branch/partner cache may store).
    for (std::int64_t level : {std::int64_t{2}, std::int64_t{5}}) {
      c.proxy->invoke(
          make_send(next_id++, c.user, c.user, level,
                    level > 2 ? "the secret plans" : "lunch at noon?"),
          [&fw, &c, level](runtime::Response response) {
            std::printf("[t=%8.2f ms] %-16s send (sensitivity %lld): %s\n",
                        fw.simulator().now().millis(), c.user.c_str(),
                        static_cast<long long>(level),
                        response.ok ? "ok" : response.error.c_str());
          });
    }
  }
  fw.run_for(sim::Duration::from_seconds(5));

  for (Client& c : clients) {
    c.proxy->invoke(
        make_receive(c.user, /*include_high=*/true),
        [&fw, &c](runtime::Response response) {
          const auto* result =
              runtime::body_as<mail::ReceiveResultBody>(response);
          std::printf("[t=%8.2f ms] %-16s receive: %zu message(s)\n",
                      fw.simulator().now().millis(), c.user.c_str(),
                      result != nullptr ? result->messages.size() : 0);
          if (result != nullptr) {
            for (const auto& m : result->messages) {
              std::printf("    #%llu from %s (sensitivity %lld): \"%s\"\n",
                          static_cast<unsigned long long>(m.id),
                          m.from.c_str(),
                          static_cast<long long>(m.sensitivity),
                          std::string(m.plaintext.begin(), m.plaintext.end())
                              .c_str());
            }
          }
        });
    fw.run_for(sim::Duration::from_seconds(5));
  }

  // --- inspect what the caches did ------------------------------------------
  std::printf("\n=== view replica statistics ===\n");
  for (const auto& inst : fw.server().existing_instances("SecureMail")) {
    if (inst.component->name != "ViewMailServer") continue;
    auto* view = dynamic_cast<mail::ViewMailServerComponent*>(
        fw.runtime().instance(inst.runtime_id).component.get());
    if (view == nullptr) continue;
    const auto& vs = view->view_stats();
    std::printf("  ViewMailServer@%s (trust %lld): local sends %llu, "
                "forwarded sends %llu, local receives %llu, forwarded "
                "receives %llu, observed forward fraction %.2f (spec RRF "
                "0.2)\n",
                fw.network().node(inst.node).name.c_str(),
                static_cast<long long>(view->trust_level()),
                static_cast<unsigned long long>(vs.sends_local),
                static_cast<unsigned long long>(vs.sends_forwarded),
                static_cast<unsigned long long>(vs.receives_local),
                static_cast<unsigned long long>(vs.receives_forwarded),
                vs.forward_fraction());
  }
  std::printf("\ndone at simulated t=%.2f s; %llu messages crossed the "
              "network (%s)\n",
              fw.simulator().now().seconds(),
              static_cast<unsigned long long>(fw.runtime().stats().messages_sent),
              util::format_bytes(
                  static_cast<double>(fw.runtime().stats().bytes_transferred))
                  .c_str());
  return 0;
}
