// §6 future work, implemented: adapting a deployment to *changing* network
// properties. A San Diego mail deployment initially needs an encrypted
// tunnel; when operations brings up a VPN (the WAN link becomes secure),
// the network monitor event re-translates the planner's environment, a
// replan drops the Encryptor/Decryptor pair — and the stateful
// ViewMailServer is *reused*, so its cached mail survives the
// reconfiguration (the paper's "service redeployment needs to preserve
// state compatibility").
//
// Run: ./build/examples/adaptive_redeploy
#include <cstdio>
#include <memory>
#include <set>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"
#include "mail/view_server.hpp"

using namespace psf;

namespace {

runtime::AccessOutcome bind_client(core::Framework& fw, net::NodeId node) {
  planner::PlanRequest wants;
  wants.interface_name = "ClientInterface";
  wants.required_properties.emplace_back("TrustLevel",
                                         spec::PropertyValue::integer(4));
  wants.request_rate_rps = 50.0;
  auto proxy = fw.make_proxy(node, "SecureMail", wants);
  util::Status status = util::internal_error("");
  bool done = false;
  proxy->bind([&](util::Status st) {
    status = st;
    done = true;
  });
  fw.run_until_condition([&done]() { return done; },
                         sim::Duration::from_seconds(300));
  PSF_CHECK_MSG(status.is_ok(), status.to_string());
  return proxy->outcome();
}

std::set<std::string> component_names(const planner::DeploymentPlan& plan) {
  std::set<std::string> out;
  for (const auto& p : plan.placements) out.insert(p.component->name);
  return out;
}

}  // namespace

int main() {
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);

  auto config = std::make_shared<mail::MailServiceConfig>();
  PSF_CHECK(
      mail::register_mail_factories(fw.runtime().factories(), config).is_ok());
  PSF_CHECK(fw.register_service(mail::mail_registration(sites.mail_home),
                                mail::mail_translator())
                .is_ok());

  // The §6 wiring: monitor events re-translate the service's environment.
  fw.enable_adaptation("SecureMail");

  // --- phase 1: insecure WAN, tunnel required -----------------------------
  std::printf("=== phase 1: insecure WAN ===\n");
  auto before = bind_client(fw, sites.sd_client);
  std::printf("%s\n", before.plan.to_string(fw.network()).c_str());
  PSF_CHECK(component_names(before.plan).count("Encryptor") == 1);

  // Put some state into the San Diego view so we can observe it surviving.
  runtime::RuntimeInstanceId view_id = 0;
  for (const auto& inst : fw.server().existing_instances("SecureMail")) {
    if (inst.component->name == "ViewMailServer") view_id = inst.runtime_id;
  }
  PSF_CHECK(view_id != 0);
  {
    config->keys->provision_user("sam", mail::kMaxSensitivity);
    auto body = std::make_shared<mail::SendBody>();
    body->message.id = 1;
    body->message.from = "sam";
    body->message.to = "sam";
    body->message.sensitivity = 2;
    body->message.plaintext = {'h', 'i'};
    runtime::Request request;
    request.op = mail::ops::kSend;
    request.body = body;
    request.wire_bytes = mail::send_wire_bytes(body->message);
    bool done = false;
    fw.runtime().invoke_from_node(sites.sd_client, before.entry,
                                  std::move(request),
                                  [&done](runtime::Response response) {
                                    PSF_CHECK_MSG(response.ok, response.error);
                                    done = true;
                                  });
    fw.run_until_condition([&done]() { return done; },
                           sim::Duration::from_seconds(30));
  }
  auto* view = dynamic_cast<mail::ViewMailServerComponent*>(
      fw.runtime().instance(view_id).component.get());
  std::printf("view cache before change: %zu message(s) for sam\n\n",
              view->cached_inbox_size("sam"));

  // --- phase 2: ops deploys a VPN at t+60s ---------------------------------
  std::printf("=== phase 2: the SD<->NY link becomes secure (VPN) ===\n");
  auto lid = fw.network().link_between(sites.san_diego[0], sites.new_york[0]);
  PSF_CHECK(lid.has_value());
  fw.monitor().schedule_change(sim::Duration::from_seconds(60),
                               [lid](runtime::NetworkMonitor& monitor) {
                                 monitor.set_link_credential(*lid, "secure",
                                                             true);
                               });
  fw.run_for(sim::Duration::from_seconds(61));

  // --- phase 3: replanning after the change ------------------------------
  std::printf("=== phase 3: a new client plans against the fresh "
              "environment ===\n");
  auto after = bind_client(fw, sites.sd_client);
  std::printf("%s\n", after.plan.to_string(fw.network()).c_str());

  const auto names = component_names(after.plan);
  PSF_CHECK_MSG(names.count("Encryptor") == 0 && names.count("Decryptor") == 0,
                "tunnel should be gone after securing the link");

  bool reused_view = false;
  for (const auto& p : after.plan.placements) {
    if (p.component->name == "ViewMailServer" && p.reuse_existing) {
      reused_view = true;
    }
  }
  PSF_CHECK_MSG(reused_view, "the stateful view must be reused, not rebuilt");
  std::printf("tunnel components dropped; stateful ViewMailServer reused — "
              "cache still holds %zu message(s) for sam\n",
              view->cached_inbox_size("sam"));

  // --- phase 4: garbage-collect the now-orphaned tunnel --------------------
  // The old client still runs through E/D (they keep working over the now-
  // secure link). A production framework would migrate it; here we show the
  // runtime can rewire the *old* entry directly to the view and retire the
  // tunnel, completing the incremental redeployment.
  std::printf("\n=== phase 4: rewire the old client and retire the tunnel "
              "===\n");
  runtime::RuntimeInstanceId old_enc = 0, old_dec = 0;
  for (const auto& p : before.plan.placements) {
    // Resolve the runtime ids of the tunnel components from phase 1 by
    // asking the runtime what lives where.
    (void)p;
  }
  for (auto id : fw.runtime().instances_on(sites.sd_client)) {
    if (fw.runtime().instance(id).def->name == "Encryptor") old_enc = id;
  }
  for (auto id : fw.runtime().instances_on(sites.mail_home)) {
    if (fw.runtime().instance(id).def->name == "Decryptor") old_dec = id;
  }
  PSF_CHECK(old_enc != 0 && old_dec != 0);

  // The view currently forwards through the encryptor; point it straight at
  // the MailServer.
  runtime::RuntimeInstanceId mail_server = 0;
  for (const auto& inst : fw.server().existing_instances("SecureMail")) {
    if (inst.component->name == "MailServer") mail_server = inst.runtime_id;
  }
  PSF_CHECK(fw.runtime().wire(view_id, "ServerInterface", mail_server).is_ok());
  PSF_CHECK(fw.runtime().uninstall(old_enc).is_ok());
  PSF_CHECK(fw.runtime().uninstall(old_dec).is_ok());

  // Prove the rewired path works end to end.
  {
    auto body = std::make_shared<mail::ReceiveBody>();
    body->user = "sam";
    runtime::Request request;
    request.op = mail::ops::kReceive;
    request.body = body;
    request.wire_bytes = 256;
    bool done = false;
    fw.runtime().invoke_from_node(
        sites.sd_client, before.entry, std::move(request),
        [&done](runtime::Response response) {
          PSF_CHECK_MSG(response.ok, response.error);
          const auto* result =
              runtime::body_as<mail::ReceiveResultBody>(response);
          PSF_CHECK(result != nullptr && !result->messages.empty());
          std::printf("old client receives over the rewired path: %zu "
                      "message(s), state intact\n",
                      result->messages.size());
          done = true;
        });
    fw.run_until_condition([&done]() { return done; },
                           sim::Duration::from_seconds(30));
  }

  std::printf("\nadaptive redeployment complete at t=%.1f s\n",
              fw.simulator().now().seconds());
  return 0;
}
