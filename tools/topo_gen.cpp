// topo_gen — generate a BRITE-style topology and dump it as Graphviz DOT
// (or as the framework's plain-text form).
//
//   topo_gen --model waxman --nodes 20 --seed 42          # DOT to stdout
//   topo_gen --model ba --nodes 50 --format text
//   topo_gen --model hier --nodes 4 --routers 5
//   topo_gen --case-study                                 # the Fig. 5 world
//
// Pipe through `dot -Tpng` to visualize.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/case_study.hpp"
#include "net/topology.hpp"

namespace {

void dump_dot(const psf::net::Network& network) {
  std::printf("graph topology {\n  overlap=false;\n  splines=true;\n");
  for (psf::net::NodeId id : network.all_nodes()) {
    const psf::net::Node& n = network.node(id);
    std::printf("  n%u [label=\"%s\\ncpu=%.1fM\", pos=\"%.0f,%.0f\"];\n",
                id.value, n.name.c_str(), n.cpu_capacity / 1e6, n.x, n.y);
  }
  for (psf::net::LinkId id : network.all_links()) {
    const psf::net::Link& l = network.link(id);
    const bool secure = l.credentials.get_bool("secure", false);
    std::printf("  n%u -- n%u [label=\"%.0fms/%.0fMb\"%s];\n", l.a.value,
                l.b.value, l.latency.millis(), l.bandwidth_bps / 1e6,
                secure ? "" : ", style=dashed, color=red");
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "waxman";
  std::string format = "dot";
  std::size_t nodes = 20;
  std::size_t routers = 5;
  std::uint64_t seed = 42;
  bool case_study = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "topo_gen: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      model = next();
    } else if (arg == "--nodes") {
      nodes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--routers") {
      routers = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--case-study") {
      case_study = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: topo_gen [--model waxman|ba|hier] [--nodes N] "
                  "[--routers R] [--seed S] [--format dot|text] "
                  "[--case-study]\n");
      return 0;
    } else {
      std::fprintf(stderr, "topo_gen: unknown flag '%s'\n", arg.c_str());
      return 1;
    }
  }

  psf::net::Network network;
  psf::util::Rng rng(seed);
  if (case_study) {
    psf::core::CaseStudySites sites;
    network = psf::core::case_study_network(&sites);
  } else if (model == "waxman") {
    psf::net::WaxmanParams params;
    params.num_nodes = nodes;
    network = psf::net::generate_waxman(params, rng);
  } else if (model == "ba") {
    psf::net::BarabasiAlbertParams params;
    params.num_nodes = nodes;
    network = psf::net::generate_barabasi_albert(params, rng);
  } else if (model == "hier") {
    psf::net::HierarchicalParams params;
    params.as_level.num_nodes = nodes;
    params.router_level.num_nodes = routers;
    network = psf::net::generate_hierarchical(params, rng);
  } else {
    std::fprintf(stderr, "topo_gen: unknown model '%s'\n", model.c_str());
    return 1;
  }

  if (format == "dot") {
    dump_dot(network);
  } else {
    std::printf("%s", network.to_string().c_str());
  }
  return 0;
}
