// detlint — determinism & concurrency-discipline lint for the C++ tree.
//
//   detlint src tools bench            # lint files and/or directories
//   detlint --json src                 # one JSON object per flagged file
//   detlint --explain DET004           # describe one diagnostic ID
//   detlint --list                     # print the DET catalog
//   detlint --baseline FILE ...        # tolerate ledgered findings
//   detlint --no-baseline ...          # ignore .detlint-baseline in cwd
//   detlint --write-baseline FILE ...  # ledger today's findings, exit 0
//
// Directory arguments recurse over *.cpp/*.cc/*.hpp/*.h/*.hh in sorted
// order (the tool that polices determinism is itself deterministic).
// Without --baseline/--no-baseline, a `.detlint-baseline` in the working
// directory is loaded automatically — that is how the repo-root
// invocation in the acceptance gate stays quiet about ledgered legacy
// findings while failing on new ones.
//
// Exit status mirrors psflint: 0 clean (or notes only, or everything
// suppressed/baselined), 1 warnings, 2 errors (also CLI/IO misuse).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/detlint/detlint.hpp"

namespace {

namespace fs = std::filesystem;
using psf::analysis::DiagnosticInfo;
using psf::analysis::Severity;
using psf::analysis::det::Baseline;
using psf::analysis::det::BaselineEntry;

constexpr char kUsage[] =
    "usage: detlint [options] <file|dir>...\n"
    "  --json               emit findings as JSON (one object per file with\n"
    "                       findings, then a summary object)\n"
    "  --allow-warnings     exit 0 when only warnings/notes were found\n"
    "  --baseline <file>    tolerate findings ledgered in <file>\n"
    "  --no-baseline        do not auto-load ./.detlint-baseline\n"
    "  --write-baseline <f> write current findings to <f> and exit 0\n"
    "  --explain <ID>       describe a diagnostic ID and exit\n"
    "  --list               print the DET diagnostic catalog and exit\n";

constexpr const char* kExtensions[] = {".cpp", ".cc", ".hpp", ".h", ".hh"};

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  for (const char* candidate : kExtensions) {
    if (ext == candidate) return true;
  }
  return false;
}

int explain(const std::string& id) {
  const DiagnosticInfo* info = psf::analysis::find_diagnostic(id);
  if (info == nullptr) {
    std::fprintf(stderr, "detlint: unknown diagnostic ID '%s'\n", id.c_str());
    return 2;
  }
  std::printf("%s (%s): %s\n", info->id,
              psf::analysis::severity_name(info->severity), info->title);
  std::printf("See docs/ANALYSIS.md, \"DET diagnostic catalog\", for an "
              "example, the fix, and the suppression workflow.\n");
  return 0;
}

void list_catalog() {
  for (const DiagnosticInfo& info : psf::analysis::diagnostic_catalog()) {
    if (std::string_view(info.id).substr(0, 3) != "DET") continue;
    std::printf("%s  %-7s  %s\n", info.id,
                psf::analysis::severity_name(info.severity), info.title);
  }
}

// Expands file/directory arguments into a sorted, deduplicated file list.
bool collect_inputs(const std::vector<std::string>& args,
                    std::vector<std::string>* files) {
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (fs::recursive_directory_iterator it(arg, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files->push_back(it->path().generic_string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "detlint: error walking '%s': %s\n", arg.c_str(),
                     ec.message().c_str());
        return false;
      }
    } else if (fs::is_regular_file(arg, ec)) {
      files->push_back(fs::path(arg).generic_string());
    } else {
      std::fprintf(stderr, "detlint: cannot open '%s'\n", arg.c_str());
      return false;
    }
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream oss;
  oss << file.rdbuf();
  *out = oss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool json = false;
  bool allow_warnings = false;
  bool no_baseline = false;
  std::string baseline_path;
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--allow-warnings") {
      allow_warnings = true;
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--list") {
      list_catalog();
      return 0;
    } else if (arg == "--explain" && i + 1 < argc) {
      return explain(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (paths.empty()) {
    std::fprintf(stderr, "detlint: no input\n%s", kUsage);
    return 2;
  }

  Baseline baseline;
  if (!write_baseline_path.empty()) {
    no_baseline = true;  // a fresh ledger records everything
  }
  if (baseline_path.empty() && !no_baseline &&
      fs::exists(".detlint-baseline")) {
    baseline_path = ".detlint-baseline";
  }
  if (!baseline_path.empty() && !no_baseline) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::fprintf(stderr, "detlint: cannot open baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<std::string> errors;
    baseline = Baseline::parse(text, &errors);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "detlint: %s: %s\n", baseline_path.c_str(),
                   error.c_str());
    }
    if (!errors.empty()) return 2;
  }

  std::vector<std::string> files;
  if (!collect_inputs(paths, &files)) return 2;
  if (files.empty()) {
    std::fprintf(stderr, "detlint: no lintable files under the given paths\n");
    return 2;
  }

  psf::analysis::det::CxxLintOptions options;
  options.baseline = baseline.empty() ? nullptr : &baseline;

  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  std::size_t counts[3] = {0, 0, 0};
  std::vector<BaselineEntry> all_surviving;
  for (const std::string& file : files) {
    std::string source;
    if (!read_file(file, &source)) {
      std::fprintf(stderr, "detlint: cannot open '%s'\n", file.c_str());
      return 2;
    }
    psf::analysis::det::CxxLintResult result =
        psf::analysis::det::lint_cxx_source(file, source, options);
    suppressed += result.suppressed;
    baselined += result.baselined;
    for (const psf::analysis::Diagnostic& d : result.diagnostics.all()) {
      ++counts[static_cast<int>(d.severity)];
    }
    all_surviving.insert(all_surviving.end(), result.surviving.begin(),
                         result.surviving.end());
    if (!result.diagnostics.empty()) {
      if (json) {
        std::printf("%s\n", result.diagnostics.render_json(file).c_str());
      } else {
        std::printf("%s", result.diagnostics.render_text(file).c_str());
      }
    }
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write '%s'\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << Baseline::render(all_surviving);
    std::printf("detlint: wrote %zu finding(s) to %s\n", all_surviving.size(),
                write_baseline_path.c_str());
    return 0;
  }

  const std::vector<BaselineEntry> stale = baseline.unmatched();
  if (json) {
    std::printf(
        "{\"files_scanned\": %zu, \"counts\": {\"error\": %zu, \"warning\": "
        "%zu, \"note\": %zu}, \"suppressed\": %zu, \"baselined\": %zu, "
        "\"stale_baseline\": %zu}\n",
        files.size(), counts[2], counts[1], counts[0], suppressed, baselined,
        stale.size());
  } else {
    std::printf(
        "detlint: %zu file(s): %zu error(s), %zu warning(s), %zu note(s); "
        "%zu suppressed, %zu baselined\n",
        files.size(), counts[2], counts[1], counts[0], suppressed, baselined);
    for (const BaselineEntry& entry : stale) {
      std::printf("detlint: stale baseline entry (fixed? remove it): %s %s\n",
                  entry.id.c_str(), entry.path.c_str());
    }
  }

  if (counts[2] > 0) return 2;
  if (counts[1] > 0) return allow_warnings ? 0 : 1;
  return 0;
}
