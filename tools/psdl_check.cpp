// psdl_check — validate a PSDL service description and summarize it.
//
//   psdl_check service.psdl        # parse + validate a file
//   psdl_check --mail              # check the built-in mail spec
//   psdl_check --chains Iface      # also enumerate linkages for Iface
//   psdl_check --canon file.psdl   # emit the canonical (serialized) form
//   cat spec.psdl | psdl_check -   # read from stdin
//
// Exit status: 0 on a valid spec, 1 on any parse/validation error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "mail/mail_spec.hpp"
#include "planner/linkage.hpp"
#include "spec/parser.hpp"
#include "spec/serialize.hpp"

namespace {

void summarize(const psf::spec::ServiceSpec& spec) {
  std::printf("service %s: %zu properties, %zu interfaces, %zu components, "
              "%zu modification rule(s)\n",
              spec.name.c_str(), spec.properties.size(),
              spec.interfaces.size(), spec.components.size(),
              spec.rules.all().size());
  for (const auto& comp : spec.components) {
    std::printf("  %-9s %-18s implements:", comp.is_view() ? "view" : "component",
                comp.name.c_str());
    for (const auto& decl : comp.implements) {
      std::printf(" %s", decl.interface_name.c_str());
    }
    if (!comp.requires_.empty()) {
      std::printf("  requires:");
      for (const auto& decl : comp.requires_) {
        std::printf(" %s", decl.interface_name.c_str());
      }
    }
    if (comp.transparent) std::printf("  [transparent]");
    if (comp.static_placement) std::printf("  [static]");
    if (comp.behaviors.rrf < 1.0) std::printf("  rrf=%.2f", comp.behaviors.rrf);
    std::printf("\n");
  }
}

void print_chains(const psf::spec::ServiceSpec& spec,
                  const std::string& iface) {
  psf::planner::LinkageOptions options;
  auto trees = psf::planner::enumerate_linkages(spec, iface, options);
  std::printf("\n%zu valid linkage(s) for interface '%s':\n", trees.size(),
              iface.c_str());
  for (const auto& t : trees) std::printf("  %s\n", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  std::string chains_iface;
  std::string input_label = "<stdin>";
  bool canonical = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mail") {
      source = psf::mail::mail_spec_source();
      input_label = "<built-in mail spec>";
    } else if (arg == "--chains" && i + 1 < argc) {
      chains_iface = argv[++i];
    } else if (arg == "--canon") {
      canonical = true;
    } else if (arg == "-") {
      std::ostringstream oss;
      oss << std::cin.rdbuf();
      source = oss.str();
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: psdl_check [file.psdl | - | --mail] "
                  "[--chains Interface]\n");
      return 0;
    } else {
      std::ifstream file(arg);
      if (!file) {
        std::fprintf(stderr, "psdl_check: cannot open '%s'\n", arg.c_str());
        return 1;
      }
      std::ostringstream oss;
      oss << file.rdbuf();
      source = oss.str();
      input_label = arg;
    }
  }

  if (source.empty()) {
    std::fprintf(stderr,
                 "psdl_check: no input (try --mail or a filename)\n");
    return 1;
  }

  auto spec = psf::spec::parse_spec(source);
  if (!spec.has_value()) {
    std::fprintf(stderr, "psdl_check: %s: %s\n", input_label.c_str(),
                 spec.status().to_string().c_str());
    return 1;
  }
  if (canonical) {
    std::printf("%s", psf::spec::serialize_spec(*spec).c_str());
    return 0;
  }
  std::printf("%s: OK\n", input_label.c_str());
  summarize(*spec);
  if (!chains_iface.empty()) print_chains(*spec, chains_iface);
  return 0;
}
