#!/usr/bin/env bash
# Repo check driver: the tier-1 build + test cycle, then a ThreadSanitizer
# build that exercises the parallel branch-and-bound planner.
#
#   tools/check.sh            # standard build + full ctest + TSan planner test
#   tools/check.sh --no-tsan  # standard build + full ctest only
#
# Run from the repo root. Build trees: build/ (standard), build-tsan/.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
RUN_TSAN=1
if [[ "${1:-}" == "--no-tsan" ]]; then
  RUN_TSAN=0
fi

echo "== standard build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1 tests =="
(cd build && ctest --output-on-failure -j "${JOBS}")

if [[ "${RUN_TSAN}" == 1 ]]; then
  echo "== ThreadSanitizer build (parallel planner) =="
  cmake -B build-tsan -S . -DPSF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target planner_parallel_test
  ./build-tsan/tests/planner_parallel_test
fi

echo "== all checks passed =="
