#!/usr/bin/env bash
# Repo check driver: the tier-1 build + test cycle, then a ThreadSanitizer
# build that exercises the parallel branch-and-bound planner.
#
#   tools/check.sh            # standard build + tier-1 ctest + TSan planner test
#   tools/check.sh --no-tsan  # standard build + tier-1 ctest only
#   tools/check.sh --asan     # also: AddressSanitizer build running the
#                             # plan-cache / generic-server suites
#   tools/check.sh --stress   # also: long-running suites (ctest -L stress)
#   tools/check.sh --coherence # only: the coherence smoke suite
#                             # (build + ctest -L coherence, via the
#                             # coherence_smoke target)
#   tools/check.sh --lint     # only: build psflint + detlint and run the
#                             # lint-labeled tests (examples + fixtures stay
#                             # clean, src/tools/bench free of non-baselined
#                             # determinism findings)
#   tools/check.sh --ubsan    # also: UndefinedBehaviorSanitizer build
#                             # running the tier-1 suite
#   tools/check.sh --chaos    # only: the robustness suite (build + ctest
#                             # -L chaos + the chaos_sweep bench gates)
#   tools/check.sh --adapt    # only: the adaptation suite (build + ctest
#                             # -L adapt + the adaptation_sweep bench gates
#                             # + a TSan run of the controller tests)
#   tools/check.sh --megascale # only: the parallel-engine suite (build +
#                             # ctest -L megascale + the megascale bench
#                             # smoke gates + a TSan run of the engine tests)
#   tools/check.sh --planner  # only: the planner suite (build + ctest -L
#                             # planner + the planner_scaling bench smoke
#                             # gates + a TSan run of the parallel search
#                             # and hierarchical refinement paths)
#   tools/check.sh --tidy     # also: clang-tidy (see .clang-tidy) over the
#                             # analysis layer and tools; skipped with a
#                             # notice when clang-tidy is not installed
#
# Tests are labeled in tests/CMakeLists.txt: "tier1" is the fast default
# suite; "stress" marks the randomized/fuzz soak tests; "lint" marks the
# psflint gate over in-tree PSDL specs.
#
# Run from the repo root. Build trees: build/ (standard), build-tsan/,
# build-asan/.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
# PSF_WERROR=1 in the environment (the CI build job sets it) configures the
# standard build with -Werror so the -Wall/-Wextra/-Wshadow set is enforced.
WERROR_FLAG=""
if [[ "${PSF_WERROR:-0}" == 1 ]]; then
  WERROR_FLAG="-DPSF_WERROR=ON"
fi
RUN_TSAN=1
RUN_ASAN=0
RUN_UBSAN=0
RUN_STRESS=0
RUN_TIDY=0
COHERENCE_ONLY=0
LINT_ONLY=0
CHAOS_ONLY=0
ADAPT_ONLY=0
MEGASCALE_ONLY=0
PLANNER_ONLY=0
for arg in "$@"; do
  case "${arg}" in
    --no-tsan) RUN_TSAN=0 ;;
    --asan) RUN_ASAN=1 ;;
    --ubsan) RUN_UBSAN=1 ;;
    --stress) RUN_STRESS=1 ;;
    --tidy) RUN_TIDY=1 ;;
    --coherence) COHERENCE_ONLY=1 ;;
    --lint) LINT_ONLY=1 ;;
    --chaos) CHAOS_ONLY=1 ;;
    --adapt) ADAPT_ONLY=1 ;;
    --megascale) MEGASCALE_ONLY=1 ;;
    --planner) PLANNER_ONLY=1 ;;
    *) echo "unknown option: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${LINT_ONLY}" == 1 ]]; then
  echo "== psflint (spec lint) + detlint (C++ determinism lint) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target psflint psflint_test \
    detlint detlint_test
  (cd build && ctest --output-on-failure -L lint)
  echo "== detlint over src/ tools/ bench/ =="
  ./build/tools/detlint src tools bench
  echo "== lint passed =="
  exit 0
fi

if [[ "${CHAOS_ONLY}" == 1 ]]; then
  echo "== chaos suite (fault injection + lease detection + retry) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target failover_test chaos_test chaos_sweep
  (cd build && ctest --output-on-failure -L chaos)
  echo "== chaos_sweep acceptance gates =="
  ./build/bench/chaos_sweep
  echo "== chaos suite passed =="
  exit 0
fi

if [[ "${ADAPT_ONLY}" == 1 ]]; then
  echo "== adaptation suite (controller + repair + migration + cache) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target \
    adaptation_controller_test redeploy_test plan_cache_test failover_test \
    adaptation_sweep
  (cd build && ctest --output-on-failure -L adapt)
  echo "== adaptation_sweep acceptance gates =="
  ./build/bench/adaptation_sweep
  echo "== TSan build (adaptation controller) =="
  cmake -B build-tsan -S . -DPSF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target adaptation_controller_test
  ./build-tsan/tests/adaptation_controller_test
  echo "== adaptation suite passed =="
  exit 0
fi

if [[ "${MEGASCALE_ONLY}" == 1 ]]; then
  echo "== megascale suite (region-parallel engine + sharded lookup) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" \
    --target parallel_sim_test sharded_lookup_test megascale
  (cd build && ctest --output-on-failure -L megascale)
  echo "== TSan build (parallel engine) =="
  cmake -B build-tsan -S . -DPSF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target parallel_sim_test
  ./build-tsan/tests/parallel_sim_test
  echo "== megascale suite passed =="
  exit 0
fi

if [[ "${PLANNER_ONLY}" == 1 ]]; then
  echo "== planner suite (hierarchical search + chain DP + anytime) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target \
    planner_test planner_parallel_test dp_chain_test hierarchy_test \
    planner_scaling
  (cd build && ctest --output-on-failure -L planner)
  echo "== TSan build (parallel refinement + route-row cache) =="
  cmake -B build-tsan -S . -DPSF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" \
    --target planner_parallel_test hierarchy_test
  ./build-tsan/tests/planner_parallel_test
  ./build-tsan/tests/hierarchy_test
  echo "== planner suite passed =="
  exit 0
fi

if [[ "${COHERENCE_ONLY}" == 1 ]]; then
  echo "== coherence smoke =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target coherence_smoke
  echo "== coherence smoke passed =="
  exit 0
fi

echo "== standard build =="
cmake -B build -S . ${WERROR_FLAG} >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1 tests =="
(cd build && ctest --output-on-failure -j "${JOBS}" -L tier1)

if [[ "${RUN_STRESS}" == 1 ]]; then
  echo "== stress tests =="
  (cd build && ctest --output-on-failure -j "${JOBS}" -L stress)
fi

if [[ "${RUN_TSAN}" == 1 ]]; then
  echo "== ThreadSanitizer build (parallel planner + parallel engine) =="
  cmake -B build-tsan -S . -DPSF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" \
    --target planner_parallel_test hierarchy_test parallel_sim_test
  ./build-tsan/tests/planner_parallel_test
  ./build-tsan/tests/hierarchy_test
  ./build-tsan/tests/parallel_sim_test
fi

if [[ "${RUN_TIDY}" == 1 ]]; then
  echo "== clang-tidy =="
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    # The new-code surface this repo holds to the .clang-tidy profile; the
    # older layers migrate as they are touched.
    clang-tidy -p build --quiet \
      src/analysis/*.cpp src/spec/lexer.cpp src/spec/parser.cpp \
      tools/psflint.cpp
  else
    echo "clang-tidy not installed; skipping (config: .clang-tidy)"
  fi
fi

if [[ "${RUN_UBSAN}" == 1 ]]; then
  echo "== UndefinedBehaviorSanitizer build (tier-1 suite) =="
  cmake -B build-ubsan -S . -DPSF_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "${JOBS}"
  (cd build-ubsan && ctest --output-on-failure -j "${JOBS}" -L tier1)
fi

if [[ "${RUN_ASAN}" == 1 ]]; then
  echo "== AddressSanitizer build (plan cache + generic server) =="
  cmake -B build-asan -S . -DPSF_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" \
    --target plan_cache_test generic_test telemetry_test
  ./build-asan/tests/plan_cache_test
  ./build-asan/tests/generic_test
  ./build-asan/tests/telemetry_test
fi

echo "== all checks passed =="
