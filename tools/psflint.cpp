// psflint — static analyzer for PSDL service descriptions.
//
//   psflint service.psdl            # lint one file (repeatable)
//   psflint --mail                  # lint the built-in mail spec
//   cat spec.psdl | psflint -       # read from stdin
//   psflint --json file.psdl        # machine-readable findings
//   psflint --explain PSF030        # describe one diagnostic ID
//   psflint --list                  # print the whole catalog
//   psflint --allow-warnings ...    # exit 0 unless errors are present
//
// Unlike psdl_check (first error only), psflint recovers from parse errors
// and reports every finding of every analysis pass in one run. Exit status
// is keyed to the worst severity across all inputs: 0 clean (or notes
// only), 1 warnings, 2 errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"
#include "mail/mail_spec.hpp"

namespace {

constexpr char kUsage[] =
    "usage: psflint [options] [file.psdl | - | --mail]...\n"
    "  --json             emit findings as JSON (one object per input)\n"
    "  --allow-warnings   exit 0 when only warnings/notes were found\n"
    "  --explain <ID>     describe a diagnostic ID and exit\n"
    "  --list             print the diagnostic catalog and exit\n";

struct Input {
  std::string label;
  std::string source;
};

int explain(const std::string& id) {
  const psf::analysis::DiagnosticInfo* info =
      psf::analysis::find_diagnostic(id);
  if (info == nullptr) {
    std::fprintf(stderr, "psflint: unknown diagnostic ID '%s'\n", id.c_str());
    return 2;
  }
  std::printf("%s (%s): %s\n", info->id,
              psf::analysis::severity_name(info->severity), info->title);
  std::printf("See docs/PSDL.md, \"Diagnostic catalog\", for an example and "
              "a fix.\n");
  return 0;
}

void list_catalog() {
  // The catalog is shared with detlint; list only the PSF (spec) family
  // here — `detlint --list` prints the DET one.
  for (const psf::analysis::DiagnosticInfo& info :
       psf::analysis::diagnostic_catalog()) {
    if (std::string_view(info.id).substr(0, 3) != "PSF") continue;
    std::printf("%s  %-7s  %s\n", info.id,
                psf::analysis::severity_name(info.severity), info.title);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Input> inputs;
  bool json = false;
  bool allow_warnings = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--allow-warnings") {
      allow_warnings = true;
    } else if (arg == "--list") {
      list_catalog();
      return 0;
    } else if (arg == "--explain" && i + 1 < argc) {
      return explain(argv[++i]);
    } else if (arg == "--mail") {
      inputs.push_back({"<built-in mail spec>", psf::mail::mail_spec_source()});
    } else if (arg == "-") {
      std::ostringstream oss;
      oss << std::cin.rdbuf();
      inputs.push_back({"<stdin>", oss.str()});
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "psflint: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else {
      std::ifstream file(arg);
      if (!file) {
        std::fprintf(stderr, "psflint: cannot open '%s'\n", arg.c_str());
        return 2;
      }
      std::ostringstream oss;
      oss << file.rdbuf();
      inputs.push_back({arg, oss.str()});
    }
  }

  if (inputs.empty()) {
    std::fprintf(stderr, "psflint: no input\n%s", kUsage);
    return 2;
  }

  psf::analysis::Severity worst = psf::analysis::Severity::kNote;
  bool any_findings = false;
  for (const Input& input : inputs) {
    psf::analysis::LintResult result =
        psf::analysis::lint_source(input.source);
    if (json) {
      std::printf("%s\n",
                  result.diagnostics.render_json(input.label).c_str());
    } else if (result.diagnostics.empty()) {
      std::printf("%s: clean\n", input.label.c_str());
    } else {
      std::printf("%s", result.diagnostics.render_text(input.label).c_str());
    }
    for (const psf::analysis::Diagnostic& d : result.diagnostics.all()) {
      any_findings = true;
      if (static_cast<int>(d.severity) > static_cast<int>(worst)) {
        worst = d.severity;
      }
    }
  }

  if (worst == psf::analysis::Severity::kError) return 2;
  if (any_findings && worst == psf::analysis::Severity::kWarning) {
    return allow_warnings ? 0 : 1;
  }
  return 0;
}
