
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/dp_chain.cpp" "src/planner/CMakeFiles/psf_planner.dir/dp_chain.cpp.o" "gcc" "src/planner/CMakeFiles/psf_planner.dir/dp_chain.cpp.o.d"
  "/root/repo/src/planner/environment.cpp" "src/planner/CMakeFiles/psf_planner.dir/environment.cpp.o" "gcc" "src/planner/CMakeFiles/psf_planner.dir/environment.cpp.o.d"
  "/root/repo/src/planner/linkage.cpp" "src/planner/CMakeFiles/psf_planner.dir/linkage.cpp.o" "gcc" "src/planner/CMakeFiles/psf_planner.dir/linkage.cpp.o.d"
  "/root/repo/src/planner/plan.cpp" "src/planner/CMakeFiles/psf_planner.dir/plan.cpp.o" "gcc" "src/planner/CMakeFiles/psf_planner.dir/plan.cpp.o.d"
  "/root/repo/src/planner/planner.cpp" "src/planner/CMakeFiles/psf_planner.dir/planner.cpp.o" "gcc" "src/planner/CMakeFiles/psf_planner.dir/planner.cpp.o.d"
  "/root/repo/src/planner/validate.cpp" "src/planner/CMakeFiles/psf_planner.dir/validate.cpp.o" "gcc" "src/planner/CMakeFiles/psf_planner.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/spec/CMakeFiles/psf_spec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/psf_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trust/CMakeFiles/psf_trust.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/psf_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/psf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
