file(REMOVE_RECURSE
  "libpsf_planner.a"
)
