file(REMOVE_RECURSE
  "CMakeFiles/psf_planner.dir/dp_chain.cpp.o"
  "CMakeFiles/psf_planner.dir/dp_chain.cpp.o.d"
  "CMakeFiles/psf_planner.dir/environment.cpp.o"
  "CMakeFiles/psf_planner.dir/environment.cpp.o.d"
  "CMakeFiles/psf_planner.dir/linkage.cpp.o"
  "CMakeFiles/psf_planner.dir/linkage.cpp.o.d"
  "CMakeFiles/psf_planner.dir/plan.cpp.o"
  "CMakeFiles/psf_planner.dir/plan.cpp.o.d"
  "CMakeFiles/psf_planner.dir/planner.cpp.o"
  "CMakeFiles/psf_planner.dir/planner.cpp.o.d"
  "CMakeFiles/psf_planner.dir/validate.cpp.o"
  "CMakeFiles/psf_planner.dir/validate.cpp.o.d"
  "libpsf_planner.a"
  "libpsf_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
