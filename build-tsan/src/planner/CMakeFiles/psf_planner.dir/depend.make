# Empty dependencies file for psf_planner.
# This may be replaced when dependencies are built.
