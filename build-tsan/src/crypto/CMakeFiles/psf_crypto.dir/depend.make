# Empty dependencies file for psf_crypto.
# This may be replaced when dependencies are built.
