file(REMOVE_RECURSE
  "CMakeFiles/psf_crypto.dir/cipher.cpp.o"
  "CMakeFiles/psf_crypto.dir/cipher.cpp.o.d"
  "CMakeFiles/psf_crypto.dir/keystore.cpp.o"
  "CMakeFiles/psf_crypto.dir/keystore.cpp.o.d"
  "libpsf_crypto.a"
  "libpsf_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
