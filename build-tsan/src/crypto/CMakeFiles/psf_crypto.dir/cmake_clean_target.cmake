file(REMOVE_RECURSE
  "libpsf_crypto.a"
)
