file(REMOVE_RECURSE
  "CMakeFiles/psf_trust.dir/trust_graph.cpp.o"
  "CMakeFiles/psf_trust.dir/trust_graph.cpp.o.d"
  "libpsf_trust.a"
  "libpsf_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
