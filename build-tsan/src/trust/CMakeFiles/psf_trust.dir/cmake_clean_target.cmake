file(REMOVE_RECURSE
  "libpsf_trust.a"
)
