# Empty dependencies file for psf_trust.
# This may be replaced when dependencies are built.
