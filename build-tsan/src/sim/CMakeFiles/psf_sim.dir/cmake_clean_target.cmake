file(REMOVE_RECURSE
  "libpsf_sim.a"
)
