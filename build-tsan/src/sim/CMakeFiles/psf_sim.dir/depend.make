# Empty dependencies file for psf_sim.
# This may be replaced when dependencies are built.
