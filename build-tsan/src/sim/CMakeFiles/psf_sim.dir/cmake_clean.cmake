file(REMOVE_RECURSE
  "CMakeFiles/psf_sim.dir/time.cpp.o"
  "CMakeFiles/psf_sim.dir/time.cpp.o.d"
  "libpsf_sim.a"
  "libpsf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
