file(REMOVE_RECURSE
  "CMakeFiles/psf_coherence.dir/directory.cpp.o"
  "CMakeFiles/psf_coherence.dir/directory.cpp.o.d"
  "CMakeFiles/psf_coherence.dir/policy.cpp.o"
  "CMakeFiles/psf_coherence.dir/policy.cpp.o.d"
  "CMakeFiles/psf_coherence.dir/replica.cpp.o"
  "CMakeFiles/psf_coherence.dir/replica.cpp.o.d"
  "libpsf_coherence.a"
  "libpsf_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
