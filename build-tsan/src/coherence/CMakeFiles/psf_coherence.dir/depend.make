# Empty dependencies file for psf_coherence.
# This may be replaced when dependencies are built.
