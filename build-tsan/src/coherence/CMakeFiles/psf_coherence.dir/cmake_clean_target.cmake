file(REMOVE_RECURSE
  "libpsf_coherence.a"
)
