file(REMOVE_RECURSE
  "libpsf_runtime.a"
)
