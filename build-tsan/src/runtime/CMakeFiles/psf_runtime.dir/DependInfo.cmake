
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/deployment.cpp" "src/runtime/CMakeFiles/psf_runtime.dir/deployment.cpp.o" "gcc" "src/runtime/CMakeFiles/psf_runtime.dir/deployment.cpp.o.d"
  "/root/repo/src/runtime/generic.cpp" "src/runtime/CMakeFiles/psf_runtime.dir/generic.cpp.o" "gcc" "src/runtime/CMakeFiles/psf_runtime.dir/generic.cpp.o.d"
  "/root/repo/src/runtime/lookup.cpp" "src/runtime/CMakeFiles/psf_runtime.dir/lookup.cpp.o" "gcc" "src/runtime/CMakeFiles/psf_runtime.dir/lookup.cpp.o.d"
  "/root/repo/src/runtime/monitor.cpp" "src/runtime/CMakeFiles/psf_runtime.dir/monitor.cpp.o" "gcc" "src/runtime/CMakeFiles/psf_runtime.dir/monitor.cpp.o.d"
  "/root/repo/src/runtime/smock.cpp" "src/runtime/CMakeFiles/psf_runtime.dir/smock.cpp.o" "gcc" "src/runtime/CMakeFiles/psf_runtime.dir/smock.cpp.o.d"
  "/root/repo/src/runtime/telemetry.cpp" "src/runtime/CMakeFiles/psf_runtime.dir/telemetry.cpp.o" "gcc" "src/runtime/CMakeFiles/psf_runtime.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/planner/CMakeFiles/psf_planner.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/psf_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/psf_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/spec/CMakeFiles/psf_spec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/psf_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trust/CMakeFiles/psf_trust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
