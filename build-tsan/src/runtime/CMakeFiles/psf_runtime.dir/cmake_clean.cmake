file(REMOVE_RECURSE
  "CMakeFiles/psf_runtime.dir/deployment.cpp.o"
  "CMakeFiles/psf_runtime.dir/deployment.cpp.o.d"
  "CMakeFiles/psf_runtime.dir/generic.cpp.o"
  "CMakeFiles/psf_runtime.dir/generic.cpp.o.d"
  "CMakeFiles/psf_runtime.dir/lookup.cpp.o"
  "CMakeFiles/psf_runtime.dir/lookup.cpp.o.d"
  "CMakeFiles/psf_runtime.dir/monitor.cpp.o"
  "CMakeFiles/psf_runtime.dir/monitor.cpp.o.d"
  "CMakeFiles/psf_runtime.dir/smock.cpp.o"
  "CMakeFiles/psf_runtime.dir/smock.cpp.o.d"
  "CMakeFiles/psf_runtime.dir/telemetry.cpp.o"
  "CMakeFiles/psf_runtime.dir/telemetry.cpp.o.d"
  "libpsf_runtime.a"
  "libpsf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
