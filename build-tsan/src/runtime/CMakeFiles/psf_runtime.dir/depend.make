# Empty dependencies file for psf_runtime.
# This may be replaced when dependencies are built.
