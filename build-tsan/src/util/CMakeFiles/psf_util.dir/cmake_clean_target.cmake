file(REMOVE_RECURSE
  "libpsf_util.a"
)
