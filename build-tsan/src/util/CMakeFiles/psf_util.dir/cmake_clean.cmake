file(REMOVE_RECURSE
  "CMakeFiles/psf_util.dir/logging.cpp.o"
  "CMakeFiles/psf_util.dir/logging.cpp.o.d"
  "CMakeFiles/psf_util.dir/rng.cpp.o"
  "CMakeFiles/psf_util.dir/rng.cpp.o.d"
  "CMakeFiles/psf_util.dir/strings.cpp.o"
  "CMakeFiles/psf_util.dir/strings.cpp.o.d"
  "CMakeFiles/psf_util.dir/thread_pool.cpp.o"
  "CMakeFiles/psf_util.dir/thread_pool.cpp.o.d"
  "libpsf_util.a"
  "libpsf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
