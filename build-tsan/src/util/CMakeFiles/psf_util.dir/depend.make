# Empty dependencies file for psf_util.
# This may be replaced when dependencies are built.
