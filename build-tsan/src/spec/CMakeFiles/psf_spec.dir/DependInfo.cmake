
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/lexer.cpp" "src/spec/CMakeFiles/psf_spec.dir/lexer.cpp.o" "gcc" "src/spec/CMakeFiles/psf_spec.dir/lexer.cpp.o.d"
  "/root/repo/src/spec/model.cpp" "src/spec/CMakeFiles/psf_spec.dir/model.cpp.o" "gcc" "src/spec/CMakeFiles/psf_spec.dir/model.cpp.o.d"
  "/root/repo/src/spec/parser.cpp" "src/spec/CMakeFiles/psf_spec.dir/parser.cpp.o" "gcc" "src/spec/CMakeFiles/psf_spec.dir/parser.cpp.o.d"
  "/root/repo/src/spec/rules.cpp" "src/spec/CMakeFiles/psf_spec.dir/rules.cpp.o" "gcc" "src/spec/CMakeFiles/psf_spec.dir/rules.cpp.o.d"
  "/root/repo/src/spec/serialize.cpp" "src/spec/CMakeFiles/psf_spec.dir/serialize.cpp.o" "gcc" "src/spec/CMakeFiles/psf_spec.dir/serialize.cpp.o.d"
  "/root/repo/src/spec/value.cpp" "src/spec/CMakeFiles/psf_spec.dir/value.cpp.o" "gcc" "src/spec/CMakeFiles/psf_spec.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/psf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
