file(REMOVE_RECURSE
  "libpsf_spec.a"
)
