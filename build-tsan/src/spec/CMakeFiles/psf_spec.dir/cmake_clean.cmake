file(REMOVE_RECURSE
  "CMakeFiles/psf_spec.dir/lexer.cpp.o"
  "CMakeFiles/psf_spec.dir/lexer.cpp.o.d"
  "CMakeFiles/psf_spec.dir/model.cpp.o"
  "CMakeFiles/psf_spec.dir/model.cpp.o.d"
  "CMakeFiles/psf_spec.dir/parser.cpp.o"
  "CMakeFiles/psf_spec.dir/parser.cpp.o.d"
  "CMakeFiles/psf_spec.dir/rules.cpp.o"
  "CMakeFiles/psf_spec.dir/rules.cpp.o.d"
  "CMakeFiles/psf_spec.dir/serialize.cpp.o"
  "CMakeFiles/psf_spec.dir/serialize.cpp.o.d"
  "CMakeFiles/psf_spec.dir/value.cpp.o"
  "CMakeFiles/psf_spec.dir/value.cpp.o.d"
  "libpsf_spec.a"
  "libpsf_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
