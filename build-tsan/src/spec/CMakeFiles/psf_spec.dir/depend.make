# Empty dependencies file for psf_spec.
# This may be replaced when dependencies are built.
