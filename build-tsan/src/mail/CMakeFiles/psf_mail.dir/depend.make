# Empty dependencies file for psf_mail.
# This may be replaced when dependencies are built.
