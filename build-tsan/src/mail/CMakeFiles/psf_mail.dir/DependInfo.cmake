
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mail/client.cpp" "src/mail/CMakeFiles/psf_mail.dir/client.cpp.o" "gcc" "src/mail/CMakeFiles/psf_mail.dir/client.cpp.o.d"
  "/root/repo/src/mail/crypto_components.cpp" "src/mail/CMakeFiles/psf_mail.dir/crypto_components.cpp.o" "gcc" "src/mail/CMakeFiles/psf_mail.dir/crypto_components.cpp.o.d"
  "/root/repo/src/mail/mail_spec.cpp" "src/mail/CMakeFiles/psf_mail.dir/mail_spec.cpp.o" "gcc" "src/mail/CMakeFiles/psf_mail.dir/mail_spec.cpp.o.d"
  "/root/repo/src/mail/registration.cpp" "src/mail/CMakeFiles/psf_mail.dir/registration.cpp.o" "gcc" "src/mail/CMakeFiles/psf_mail.dir/registration.cpp.o.d"
  "/root/repo/src/mail/server.cpp" "src/mail/CMakeFiles/psf_mail.dir/server.cpp.o" "gcc" "src/mail/CMakeFiles/psf_mail.dir/server.cpp.o.d"
  "/root/repo/src/mail/types.cpp" "src/mail/CMakeFiles/psf_mail.dir/types.cpp.o" "gcc" "src/mail/CMakeFiles/psf_mail.dir/types.cpp.o.d"
  "/root/repo/src/mail/view_server.cpp" "src/mail/CMakeFiles/psf_mail.dir/view_server.cpp.o" "gcc" "src/mail/CMakeFiles/psf_mail.dir/view_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/runtime/CMakeFiles/psf_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/coherence/CMakeFiles/psf_coherence.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/psf_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/spec/CMakeFiles/psf_spec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/psf_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/planner/CMakeFiles/psf_planner.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trust/CMakeFiles/psf_trust.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/psf_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/psf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
