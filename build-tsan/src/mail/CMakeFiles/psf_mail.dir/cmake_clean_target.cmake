file(REMOVE_RECURSE
  "libpsf_mail.a"
)
