file(REMOVE_RECURSE
  "CMakeFiles/psf_mail.dir/client.cpp.o"
  "CMakeFiles/psf_mail.dir/client.cpp.o.d"
  "CMakeFiles/psf_mail.dir/crypto_components.cpp.o"
  "CMakeFiles/psf_mail.dir/crypto_components.cpp.o.d"
  "CMakeFiles/psf_mail.dir/mail_spec.cpp.o"
  "CMakeFiles/psf_mail.dir/mail_spec.cpp.o.d"
  "CMakeFiles/psf_mail.dir/registration.cpp.o"
  "CMakeFiles/psf_mail.dir/registration.cpp.o.d"
  "CMakeFiles/psf_mail.dir/server.cpp.o"
  "CMakeFiles/psf_mail.dir/server.cpp.o.d"
  "CMakeFiles/psf_mail.dir/types.cpp.o"
  "CMakeFiles/psf_mail.dir/types.cpp.o.d"
  "CMakeFiles/psf_mail.dir/view_server.cpp.o"
  "CMakeFiles/psf_mail.dir/view_server.cpp.o.d"
  "libpsf_mail.a"
  "libpsf_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
