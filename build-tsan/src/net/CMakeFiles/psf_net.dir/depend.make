# Empty dependencies file for psf_net.
# This may be replaced when dependencies are built.
