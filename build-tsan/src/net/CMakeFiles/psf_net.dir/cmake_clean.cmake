file(REMOVE_RECURSE
  "CMakeFiles/psf_net.dir/credential.cpp.o"
  "CMakeFiles/psf_net.dir/credential.cpp.o.d"
  "CMakeFiles/psf_net.dir/network.cpp.o"
  "CMakeFiles/psf_net.dir/network.cpp.o.d"
  "CMakeFiles/psf_net.dir/topology.cpp.o"
  "CMakeFiles/psf_net.dir/topology.cpp.o.d"
  "libpsf_net.a"
  "libpsf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
