file(REMOVE_RECURSE
  "libpsf_net.a"
)
