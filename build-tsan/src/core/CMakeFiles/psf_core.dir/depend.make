# Empty dependencies file for psf_core.
# This may be replaced when dependencies are built.
