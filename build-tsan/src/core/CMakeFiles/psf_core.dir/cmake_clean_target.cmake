file(REMOVE_RECURSE
  "libpsf_core.a"
)
