file(REMOVE_RECURSE
  "CMakeFiles/psf_core.dir/case_study.cpp.o"
  "CMakeFiles/psf_core.dir/case_study.cpp.o.d"
  "CMakeFiles/psf_core.dir/framework.cpp.o"
  "CMakeFiles/psf_core.dir/framework.cpp.o.d"
  "CMakeFiles/psf_core.dir/redeploy.cpp.o"
  "CMakeFiles/psf_core.dir/redeploy.cpp.o.d"
  "CMakeFiles/psf_core.dir/scenarios.cpp.o"
  "CMakeFiles/psf_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/psf_core.dir/workload.cpp.o"
  "CMakeFiles/psf_core.dir/workload.cpp.o.d"
  "libpsf_core.a"
  "libpsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
