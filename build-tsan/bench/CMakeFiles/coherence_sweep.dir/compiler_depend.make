# Empty compiler generated dependencies file for coherence_sweep.
# This may be replaced when dependencies are built.
