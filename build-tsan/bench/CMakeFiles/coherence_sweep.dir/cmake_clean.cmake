file(REMOVE_RECURSE
  "CMakeFiles/coherence_sweep.dir/coherence_sweep.cpp.o"
  "CMakeFiles/coherence_sweep.dir/coherence_sweep.cpp.o.d"
  "coherence_sweep"
  "coherence_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
