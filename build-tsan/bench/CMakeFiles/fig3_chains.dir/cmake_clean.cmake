file(REMOVE_RECURSE
  "CMakeFiles/fig3_chains.dir/fig3_chains.cpp.o"
  "CMakeFiles/fig3_chains.dir/fig3_chains.cpp.o.d"
  "fig3_chains"
  "fig3_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
