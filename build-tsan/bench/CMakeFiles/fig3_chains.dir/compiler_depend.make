# Empty compiler generated dependencies file for fig3_chains.
# This may be replaced when dependencies are built.
