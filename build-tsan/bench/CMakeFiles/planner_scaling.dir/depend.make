# Empty dependencies file for planner_scaling.
# This may be replaced when dependencies are built.
