file(REMOVE_RECURSE
  "CMakeFiles/planner_scaling.dir/planner_scaling.cpp.o"
  "CMakeFiles/planner_scaling.dir/planner_scaling.cpp.o.d"
  "planner_scaling"
  "planner_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
