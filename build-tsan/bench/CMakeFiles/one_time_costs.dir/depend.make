# Empty dependencies file for one_time_costs.
# This may be replaced when dependencies are built.
