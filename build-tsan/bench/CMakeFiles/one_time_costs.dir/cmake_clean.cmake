file(REMOVE_RECURSE
  "CMakeFiles/one_time_costs.dir/one_time_costs.cpp.o"
  "CMakeFiles/one_time_costs.dir/one_time_costs.cpp.o.d"
  "one_time_costs"
  "one_time_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_time_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
