
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/one_time_costs.cpp" "bench/CMakeFiles/one_time_costs.dir/one_time_costs.cpp.o" "gcc" "bench/CMakeFiles/one_time_costs.dir/one_time_costs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/psf_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mail/CMakeFiles/psf_mail.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/coherence/CMakeFiles/psf_coherence.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/psf_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/planner/CMakeFiles/psf_planner.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trust/CMakeFiles/psf_trust.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/psf_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/spec/CMakeFiles/psf_spec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/psf_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/psf_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/psf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
