# Empty compiler generated dependencies file for rrf_crossover.
# This may be replaced when dependencies are built.
