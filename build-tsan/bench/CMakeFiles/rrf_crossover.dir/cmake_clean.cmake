file(REMOVE_RECURSE
  "CMakeFiles/rrf_crossover.dir/rrf_crossover.cpp.o"
  "CMakeFiles/rrf_crossover.dir/rrf_crossover.cpp.o.d"
  "rrf_crossover"
  "rrf_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrf_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
