file(REMOVE_RECURSE
  "CMakeFiles/fig6_deployments.dir/fig6_deployments.cpp.o"
  "CMakeFiles/fig6_deployments.dir/fig6_deployments.cpp.o.d"
  "fig6_deployments"
  "fig6_deployments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
