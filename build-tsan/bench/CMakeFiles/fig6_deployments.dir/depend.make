# Empty dependencies file for fig6_deployments.
# This may be replaced when dependencies are built.
