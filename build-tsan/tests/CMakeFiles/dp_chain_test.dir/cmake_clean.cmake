file(REMOVE_RECURSE
  "CMakeFiles/dp_chain_test.dir/dp_chain_test.cpp.o"
  "CMakeFiles/dp_chain_test.dir/dp_chain_test.cpp.o.d"
  "dp_chain_test"
  "dp_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
