# Empty compiler generated dependencies file for generic_edge_test.
# This may be replaced when dependencies are built.
