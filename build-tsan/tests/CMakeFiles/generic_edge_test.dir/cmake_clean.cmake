file(REMOVE_RECURSE
  "CMakeFiles/generic_edge_test.dir/generic_edge_test.cpp.o"
  "CMakeFiles/generic_edge_test.dir/generic_edge_test.cpp.o.d"
  "generic_edge_test"
  "generic_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
