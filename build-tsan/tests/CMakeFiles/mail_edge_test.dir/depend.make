# Empty dependencies file for mail_edge_test.
# This may be replaced when dependencies are built.
