file(REMOVE_RECURSE
  "CMakeFiles/mail_edge_test.dir/mail_edge_test.cpp.o"
  "CMakeFiles/mail_edge_test.dir/mail_edge_test.cpp.o.d"
  "mail_edge_test"
  "mail_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
