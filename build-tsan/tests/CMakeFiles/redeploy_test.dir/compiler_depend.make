# Empty compiler generated dependencies file for redeploy_test.
# This may be replaced when dependencies are built.
