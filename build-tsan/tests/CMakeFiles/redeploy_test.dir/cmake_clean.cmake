file(REMOVE_RECURSE
  "CMakeFiles/redeploy_test.dir/redeploy_test.cpp.o"
  "CMakeFiles/redeploy_test.dir/redeploy_test.cpp.o.d"
  "redeploy_test"
  "redeploy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redeploy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
