# Empty dependencies file for spec_rules_test.
# This may be replaced when dependencies are built.
