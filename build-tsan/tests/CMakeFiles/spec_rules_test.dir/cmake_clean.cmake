file(REMOVE_RECURSE
  "CMakeFiles/spec_rules_test.dir/spec_rules_test.cpp.o"
  "CMakeFiles/spec_rules_test.dir/spec_rules_test.cpp.o.d"
  "spec_rules_test"
  "spec_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
