# Empty compiler generated dependencies file for spec_value_test.
# This may be replaced when dependencies are built.
