file(REMOVE_RECURSE
  "CMakeFiles/spec_value_test.dir/spec_value_test.cpp.o"
  "CMakeFiles/spec_value_test.dir/spec_value_test.cpp.o.d"
  "spec_value_test"
  "spec_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
