# Empty dependencies file for planner_parallel_test.
# This may be replaced when dependencies are built.
