file(REMOVE_RECURSE
  "CMakeFiles/planner_parallel_test.dir/planner_parallel_test.cpp.o"
  "CMakeFiles/planner_parallel_test.dir/planner_parallel_test.cpp.o.d"
  "planner_parallel_test"
  "planner_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
