file(REMOVE_RECURSE
  "CMakeFiles/generic_test.dir/generic_test.cpp.o"
  "CMakeFiles/generic_test.dir/generic_test.cpp.o.d"
  "generic_test"
  "generic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
