# Empty dependencies file for generic_test.
# This may be replaced when dependencies are built.
