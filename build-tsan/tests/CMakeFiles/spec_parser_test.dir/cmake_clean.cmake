file(REMOVE_RECURSE
  "CMakeFiles/spec_parser_test.dir/spec_parser_test.cpp.o"
  "CMakeFiles/spec_parser_test.dir/spec_parser_test.cpp.o.d"
  "spec_parser_test"
  "spec_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
