# Empty compiler generated dependencies file for trust_casestudy_test.
# This may be replaced when dependencies are built.
