file(REMOVE_RECURSE
  "CMakeFiles/trust_casestudy_test.dir/trust_casestudy_test.cpp.o"
  "CMakeFiles/trust_casestudy_test.dir/trust_casestudy_test.cpp.o.d"
  "trust_casestudy_test"
  "trust_casestudy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_casestudy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
