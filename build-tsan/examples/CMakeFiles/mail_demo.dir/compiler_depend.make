# Empty compiler generated dependencies file for mail_demo.
# This may be replaced when dependencies are built.
