file(REMOVE_RECURSE
  "CMakeFiles/mail_demo.dir/mail_demo.cpp.o"
  "CMakeFiles/mail_demo.dir/mail_demo.cpp.o.d"
  "mail_demo"
  "mail_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
