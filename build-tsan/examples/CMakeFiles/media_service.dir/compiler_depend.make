# Empty compiler generated dependencies file for media_service.
# This may be replaced when dependencies are built.
