file(REMOVE_RECURSE
  "CMakeFiles/media_service.dir/media_service.cpp.o"
  "CMakeFiles/media_service.dir/media_service.cpp.o.d"
  "media_service"
  "media_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
