file(REMOVE_RECURSE
  "CMakeFiles/adaptive_redeploy.dir/adaptive_redeploy.cpp.o"
  "CMakeFiles/adaptive_redeploy.dir/adaptive_redeploy.cpp.o.d"
  "adaptive_redeploy"
  "adaptive_redeploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_redeploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
