# Empty dependencies file for adaptive_redeploy.
# This may be replaced when dependencies are built.
