file(REMOVE_RECURSE
  "CMakeFiles/psdl_check.dir/psdl_check.cpp.o"
  "CMakeFiles/psdl_check.dir/psdl_check.cpp.o.d"
  "psdl_check"
  "psdl_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdl_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
