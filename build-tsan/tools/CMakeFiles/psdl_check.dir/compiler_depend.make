# Empty compiler generated dependencies file for psdl_check.
# This may be replaced when dependencies are built.
