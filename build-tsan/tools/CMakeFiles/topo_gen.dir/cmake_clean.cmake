file(REMOVE_RECURSE
  "CMakeFiles/topo_gen.dir/topo_gen.cpp.o"
  "CMakeFiles/topo_gen.dir/topo_gen.cpp.o.d"
  "topo_gen"
  "topo_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
