# Empty dependencies file for topo_gen.
# This may be replaced when dependencies are built.
