// Deterministic random number generation.
//
// Every stochastic element of the framework (topology generation, workload
// arrival jitter, planner tie-breaking) draws from an explicitly seeded
// xoshiro256** instance so experiments are bit-reproducible across runs and
// machines. std::mt19937 is avoided because distribution implementations
// differ across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace psf::util {

// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEF1234ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive. Uses rejection sampling to avoid
  // modulo bias (matters for small ranges drawn many times).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    PSF_CHECK(lo <= hi);
    const std::uint64_t range = hi - lo;
    if (range == std::numeric_limits<std::uint64_t>::max()) {
      return next_u64();
    }
    const std::uint64_t bound = range + 1;
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + v % bound;
  }

  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) {
    PSF_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    PSF_CHECK(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  bool bernoulli(double p) { return next_double() < p; }

  // Exponential with given rate (mean 1/rate); used for Poisson arrivals.
  double exponential(double rate);

  // Derive an independent stream (e.g. one per simulated client).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace psf::util
