// Minimal leveled, thread-safe logger.
//
// Log lines go to stderr so bench stdout stays machine-parseable. The level
// is process-global; benches default it to kWarn to keep output clean.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace psf::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);
const char* log_level_name(LogLevel level);

namespace detail {
void log_write(LogLevel level, const std::string& line);
}  // namespace detail

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << log_level_name(level) << " " << base << ":" << line
            << "] ";
  }
  ~LogMessage() { detail::log_write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace psf::util

#define PSF_LOG(level)                                                 \
  if (::psf::util::LogLevel::level < ::psf::util::log_level()) {       \
  } else                                                               \
    ::psf::util::LogMessage(::psf::util::LogLevel::level, __FILE__,    \
                            __LINE__)                                  \
        .stream()

#define PSF_TRACE() PSF_LOG(kTrace)
#define PSF_DEBUG() PSF_LOG(kDebug)
#define PSF_INFO() PSF_LOG(kInfo)
#define PSF_WARN() PSF_LOG(kWarn)
#define PSF_ERROR() PSF_LOG(kError)
