// Small-buffer-optimized move-only callable for the event hot path.
//
// std::function heap-allocates any capture larger than its tiny internal
// buffer (16 bytes on libstdc++), which at megascale means one malloc per
// scheduled event. SmallFn inlines captures up to kInlineBytes — sized so
// every hot-path closure in the simulator and the parallel engine fits —
// and falls back to the heap only for oversized captures (the cold
// install/bind paths). Global counters expose the fallback rate so benches
// can gate on allocator traffic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace psf::util {

class SmallFn {
 public:
  // Large enough for the simulator's hop-walker and timer closures
  // (shared_ptr + a couple of words) and the megascale per-request closures.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule() call site
    using D = std::decay_t<F>;
    counters().constructed.fetch_add(1, std::memory_order_relaxed);
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      destroy_ = [](void* p) { static_cast<D*>(p)->~D(); };
      relocate_ = [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      };
    } else {
      counters().heap_fallbacks.fetch_add(1, std::memory_order_relaxed);
      heap_ = new D(std::forward<F>(fn));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      destroy_ = [](void* p) { delete static_cast<D*>(p); };
      relocate_ = nullptr;  // heap targets move by pointer steal
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() {
    PSF_CHECK_MSG(invoke_ != nullptr, "calling an empty SmallFn");
    invoke_(target());
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  // ---- allocator telemetry (process-wide, relaxed counters) ---------------
  // constructed: SmallFns built from a callable (moves don't count).
  // heap_fallbacks: the subset whose capture exceeded kInlineBytes.
  static std::uint64_t constructed_count() {
    return counters().constructed.load(std::memory_order_relaxed);
  }
  static std::uint64_t heap_fallback_count() {
    return counters().heap_fallbacks.load(std::memory_order_relaxed);
  }
  static void reset_counters() {
    counters().constructed.store(0, std::memory_order_relaxed);
    counters().heap_fallbacks.store(0, std::memory_order_relaxed);
  }

 private:
  struct Counters {
    std::atomic<std::uint64_t> constructed{0};
    std::atomic<std::uint64_t> heap_fallbacks{0};
  };
  static Counters& counters() {
    // detlint:allow(DET020 Counters holds only std::atomic fields)
    static Counters c;
    return c;
  }

  void* target() { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  void reset() {
    if (invoke_ != nullptr) destroy_(target());
    heap_ = nullptr;
    invoke_ = nullptr;
    destroy_ = nullptr;
    relocate_ = nullptr;
  }

  void move_from(SmallFn& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    relocate_ = other.relocate_;
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;  // pointer steal
    } else if (other.invoke_ != nullptr) {
      other.relocate_(buf_, other.buf_);
    }
    other.heap_ = nullptr;
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
};

}  // namespace psf::util
