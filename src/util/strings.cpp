#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace psf::util {

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string format_duration_us(double micros) {
  char buf[64];
  if (micros < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f us", micros);
  } else if (micros < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", micros / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", micros / 1e6);
  }
  return buf;
}

}  // namespace psf::util
