#include "util/thread_pool.hpp"

#include <algorithm>

namespace psf::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  PSF_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t num_blocks = std::min(count, workers_.size() * 4);
  const std::size_t block = (count + num_blocks - 1) / num_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(count, begin + block);
    if (begin >= end) break;
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace psf::util
