// Fixed-size thread pool used to parallelize the planner's exhaustive
// mapping search across top-level placement choices.
//
// Design notes (CP.* of the C++ Core Guidelines):
//  - tasks are plain std::function<void()>; results travel through futures
//    created by the caller, so the pool itself holds no shared mutable state
//    beyond the queue;
//  - shutdown joins all threads in the destructor (RAII), so a pool can be
//    created on the stack around a parallel phase.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace psf::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      PSF_CHECK_MSG(!stopping_, "submit() after shutdown");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // Runs fn(i) for i in [0, count) across the pool and blocks until all
  // iterations complete. Iterations are distributed in contiguous blocks to
  // keep per-task overhead low.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // A sensible default: hardware concurrency, at least 1.
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace psf::util
