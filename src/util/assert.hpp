// Runtime check macros used across the framework.
//
// PSF_CHECK is active in all build types: internal invariants of the
// simulator and planner are cheap relative to the work they guard, and a
// violated invariant would silently corrupt an experiment.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace psf::util {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& message) {
  std::fprintf(stderr, "PSF_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace psf::util

#define PSF_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::psf::util::check_failed(__FILE__, __LINE__, #expr, "");      \
    }                                                                \
  } while (false)

#define PSF_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream psf_check_oss_;                             \
      psf_check_oss_ << msg;                                         \
      ::psf::util::check_failed(__FILE__, __LINE__, #expr,           \
                                psf_check_oss_.str());               \
    }                                                                \
  } while (false)

#define PSF_UNREACHABLE(msg) \
  ::psf::util::check_failed(__FILE__, __LINE__, "unreachable", msg)
