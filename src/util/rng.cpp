#include "util/rng.hpp"

#include <cmath>

namespace psf::util {

double Rng::exponential(double rate) {
  PSF_CHECK(rate > 0.0);
  // Avoid log(0): next_double() is in [0, 1), so 1 - u is in (0, 1].
  const double u = next_double();
  return -std::log(1.0 - u) / rate;
}

}  // namespace psf::util
