// Slab arena with freelist recycling for fixed-size objects.
//
// The parallel simulation engine churns through millions of short-lived
// event and mailbox records; allocating each one individually would make
// malloc the bottleneck (and a contention point across region workers).
// SlabPool hands out objects carved from large blocks and recycles released
// storage through an intrusive freelist, so steady-state operation performs
// zero allocator calls.
//
// Concurrency: a pool is single-owner — only one thread may call
// create()/destroy() at a time (the parallel engine gives each region its
// own pool and only that region's worker touches it within a phase).
// Objects MAY be released into a different pool than the one that created
// them (mailbox nodes migrate between regions); block storage is owned by
// the creating pool, so pools that exchange objects must share a lifetime —
// the engine owns all of them and destroys them together.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace psf::util {

template <typename T>
class SlabPool {
 public:
  struct Stats {
    std::uint64_t created = 0;    // objects handed out
    std::uint64_t recycled = 0;   // of those, served from the freelist
    std::uint64_t blocks = 0;     // actual allocator calls (one per slab)
  };

  explicit SlabPool(std::size_t block_items = 256)
      : block_items_(block_items) {
    PSF_CHECK(block_items_ > 0);
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Destroying the pool frees its blocks. Objects still live in any pool's
  // blocks must have been destroyed (or be trivially destructible) by now;
  // freelist entries pointing into other pools' blocks are never touched.
  ~SlabPool() = default;

  template <typename... Args>
  T* create(Args&&... args) {
    Slot* slot = free_;
    if (slot != nullptr) {
      free_ = slot->next;
      ++stats_.recycled;
    } else {
      if (blocks_.empty() || next_in_block_ >= block_items_) {
        blocks_.push_back(std::make_unique<Slot[]>(block_items_));
        next_in_block_ = 0;
        ++stats_.blocks;
      }
      slot = &blocks_.back()[next_in_block_++];
    }
    ++stats_.created;
    return ::new (static_cast<void*>(&slot->storage)) T(
        std::forward<Args>(args)...);
  }

  // Destroys *obj and recycles its storage through THIS pool's freelist.
  // obj may have been created by a different pool (see header comment).
  void destroy(T* obj) {
    obj->~T();
    Slot* slot = reinterpret_cast<Slot*>(obj);
    slot->next = free_;
    free_ = slot;
  }

  const Stats& stats() const { return stats_; }

 private:
  union Slot {
    Slot() {}
    ~Slot() {}
    alignas(T) unsigned char storage[sizeof(T)];
    Slot* next;
  };

  std::size_t block_items_;
  std::size_t next_in_block_ = 0;
  Slot* free_ = nullptr;
  std::vector<std::unique_ptr<Slot[]>> blocks_;
  Stats stats_;
};

}  // namespace psf::util
