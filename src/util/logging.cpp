#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace psf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_write_mutex;
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void log_write(LogLevel /*level*/, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace psf::util
