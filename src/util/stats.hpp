// Online statistics accumulator (Welford) and simple histogram, used by the
// benches to report mean/percentile latencies.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/assert.hpp"

namespace psf::util {

// Numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains samples for exact percentiles; fine at experiment scale
// (hundreds of thousands of samples).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    stats_.add(x);
  }

  std::size_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }

  // p in [0, 100]; nearest-rank percentile.
  double percentile(double p) {
    PSF_CHECK(p >= 0.0 && p <= 100.0);
    PSF_CHECK(!samples_.empty());
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  RunningStats stats_;
  bool sorted_ = true;
};

}  // namespace psf::util
