// Small string utilities shared by the PSDL parser and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace psf::util {

std::string trim(std::string_view s);
std::vector<std::string> split(std::string_view s, char delim);
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);
std::string to_lower(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Formats a byte count / duration for humans ("1.5 MB", "230 us").
std::string format_bytes(double bytes);
std::string format_duration_us(double micros);

}  // namespace psf::util
