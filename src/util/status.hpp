// Lightweight Status / Expected types for recoverable errors.
//
// The framework distinguishes programming errors (PSF_CHECK) from expected
// failures such as "no feasible deployment exists" or "parse error at line
// 12"; the latter travel through these types.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace psf::util {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnsatisfiable,   // planner: no deployment satisfies the constraints
  kParseError,      // PSDL parser
  kCapacityExceeded,
  kPermissionDenied,
  kInternal,
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnsatisfiable: return "unsatisfiable";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kCapacityExceeded: return "capacity_exceeded";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status already_exists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status unsatisfiable(std::string msg) {
  return Status(ErrorCode::kUnsatisfiable, std::move(msg));
}
inline Status parse_error(std::string msg) {
  return Status(ErrorCode::kParseError, std::move(msg));
}
inline Status capacity_exceeded(std::string msg) {
  return Status(ErrorCode::kCapacityExceeded, std::move(msg));
}
inline Status permission_denied(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// Expected<T>: either a value or a Status. Minimal std::expected stand-in
// (the toolchain's libstdc++ predates <expected>).
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Status status) : data_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    PSF_CHECK_MSG(!std::get<Status>(data_).is_ok(),
                  "Expected constructed from OK status");
  }

  bool has_value() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    PSF_CHECK_MSG(has_value(), status().to_string());
    return std::get<T>(data_);
  }
  T& value() & {
    PSF_CHECK_MSG(has_value(), status().to_string());
    return std::get<T>(data_);
  }
  T&& value() && {
    PSF_CHECK_MSG(has_value(), status().to_string());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (has_value()) return Status::ok();
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace psf::util
