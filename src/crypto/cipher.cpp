#include "crypto/cipher.hpp"

#include "util/rng.hpp"

namespace psf::crypto {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_string(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

SymmetricKey derive_key(std::uint64_t master_secret,
                        const std::string& label) {
  const std::uint64_t lh = hash_string(label);
  SymmetricKey key;
  key.k0 = mix(master_secret ^ lh);
  key.k1 = mix(master_secret + 0x9E3779B97F4A7C15ULL * lh);
  return key;
}

std::vector<std::uint8_t> apply_keystream(const SymmetricKey& key,
                                          std::uint64_t nonce,
                                          std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.size());
  util::SplitMix64 stream(mix(key.k0 ^ nonce) ^ key.k1);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) word = stream.next();
    out[i] = data[i] ^ static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
  return out;
}

std::uint64_t compute_mac(const SymmetricKey& key,
                          std::span<const std::uint8_t> data) {
  std::uint64_t h = key.k1 ^ 0xA0761D6478BD642FULL;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001B3ULL;
  }
  return mix(h ^ key.k0);
}

SealedBlob seal(const SymmetricKey& key, std::uint64_t nonce,
                std::span<const std::uint8_t> plaintext) {
  SealedBlob blob;
  blob.nonce = nonce;
  blob.ciphertext = apply_keystream(key, nonce, plaintext);
  blob.mac = compute_mac(key, blob.ciphertext);
  return blob;
}

bool unseal(const SymmetricKey& key, const SealedBlob& blob,
            std::vector<std::uint8_t>& out) {
  out.clear();
  if (compute_mac(key, blob.ciphertext) != blob.mac) return false;
  out = apply_keystream(key, blob.nonce, blob.ciphertext);
  return true;
}

double crypto_cpu_cost(std::size_t bytes) {
  // ~0.0025 cpu units/byte: a 4 KB body costs ~10 units vs ~100 units for a
  // mail-server request in the case-study spec.
  return 2.0 + 0.0025 * static_cast<double>(bytes);
}

}  // namespace psf::crypto
