#include "crypto/keystore.hpp"

namespace psf::crypto {

void KeyStore::provision_user(const std::string& user,
                              std::int64_t max_level) {
  for (std::int64_t level = 1; level <= max_level; ++level) {
    const KeyRef ref{user, level};
    if (keys_.find(ref) != keys_.end()) continue;
    keys_[ref] =
        derive_key(master_secret_, user + "#" + std::to_string(level));
  }
}

util::Expected<SymmetricKey> KeyStore::key(const KeyRef& ref) const {
  auto it = keys_.find(ref);
  if (it == keys_.end()) {
    return util::not_found("no key for user '" + ref.user + "' level " +
                           std::to_string(ref.sensitivity_level));
  }
  return it->second;
}

util::Status KeyStore::release_to_node(const std::string& node,
                                       const std::string& user,
                                       std::int64_t level) {
  for (std::int64_t l = 1; l <= level; ++l) {
    if (!has_key(KeyRef{user, l})) {
      return util::not_found("user '" + user + "' has no key at level " +
                             std::to_string(l));
    }
  }
  auto& released = releases_[{node, user}];
  released = std::max(released, level);
  return util::Status::ok();
}

std::int64_t KeyStore::released_level(const std::string& node,
                                      const std::string& user) const {
  auto it = releases_.find({node, user});
  return it == releases_.end() ? 0 : it->second;
}

}  // namespace psf::crypto
