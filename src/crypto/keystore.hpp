// Per-(user, sensitivity-level) key management (paper §2: "Each level is
// associated with an encryption/decryption key pair (one per user) generated
// at account setup time").
//
// Key *placement* is the security-relevant part for the planner: a node may
// hold keys only up to its trust level. The keystore tracks which levels
// were released to which node, so tests can assert the framework never
// ships a level-5 key to a trust-2 node.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "crypto/cipher.hpp"
#include "util/status.hpp"

namespace psf::crypto {

struct KeyRef {
  std::string user;
  std::int64_t sensitivity_level = 0;

  bool operator==(const KeyRef&) const = default;
  auto operator<=>(const KeyRef&) const = default;
};

class KeyStore {
 public:
  explicit KeyStore(std::uint64_t master_secret)
      : master_secret_(master_secret) {}

  // Generates (idempotently) keys for levels 1..max_level for a user.
  void provision_user(const std::string& user, std::int64_t max_level);

  bool has_key(const KeyRef& ref) const {
    return keys_.find(ref) != keys_.end();
  }

  util::Expected<SymmetricKey> key(const KeyRef& ref) const;

  // Records that keys for `user` up to `level` were released to `node`.
  // Fails when any key for the user at ≤ level is missing.
  util::Status release_to_node(const std::string& node,
                               const std::string& user, std::int64_t level);

  // Highest level released to the node for the user (0 = none).
  std::int64_t released_level(const std::string& node,
                              const std::string& user) const;

  std::size_t key_count() const { return keys_.size(); }

 private:
  std::uint64_t master_secret_;
  std::map<KeyRef, SymmetricKey> keys_;
  // (node, user) -> max released level
  std::map<std::pair<std::string, std::string>, std::int64_t> releases_;
};

}  // namespace psf::crypto
