// Toy symmetric cipher + MAC used by the Encryptor/Decryptor components.
//
// >>> NOT CRYPTOGRAPHICALLY SECURE. <<<
// The paper used the Cryptix JCE; what the framework actually needs from the
// crypto substrate is (a) a payload transformation so confidentiality
// semantics are exercised end-to-end, (b) keys bound to (user, sensitivity
// level) so trust decisions about key placement are real, and (c) a
// deterministic CPU cost per byte so encryption shows up in latency
// measurements. A keystream XOR + keyed hash delivers all three at
// simulation fidelity; see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace psf::crypto {

struct SymmetricKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  bool operator==(const SymmetricKey&) const = default;
};

// Deterministic key derivation from a master secret + label; stands in for
// account-setup-time key-pair generation (paper §2).
SymmetricKey derive_key(std::uint64_t master_secret, const std::string& label);

// Keystream XOR; encryption and decryption are the same operation.
// `nonce` must differ per message (the mail runtime uses the message id).
std::vector<std::uint8_t> apply_keystream(const SymmetricKey& key,
                                          std::uint64_t nonce,
                                          std::span<const std::uint8_t> data);

// Keyed 64-bit tag over the ciphertext (toy integrity check).
std::uint64_t compute_mac(const SymmetricKey& key,
                          std::span<const std::uint8_t> data);

// A sealed payload: ciphertext + nonce + tag.
struct SealedBlob {
  std::vector<std::uint8_t> ciphertext;
  std::uint64_t nonce = 0;
  std::uint64_t mac = 0;

  // Wire size, for the network cost model (nonce + mac overhead).
  std::size_t wire_size() const { return ciphertext.size() + 16; }
};

SealedBlob seal(const SymmetricKey& key, std::uint64_t nonce,
                std::span<const std::uint8_t> plaintext);

// Returns false (and leaves `out` empty) on MAC mismatch.
bool unseal(const SymmetricKey& key, const SealedBlob& blob,
            std::vector<std::uint8_t>& out);

// Cost model: abstract cpu units consumed to seal/unseal `bytes` bytes.
// Tuned so encrypting a 4 KB mail body costs about one tenth of a mail-server
// request (the paper reports encryption overhead as minor relative to
// transfer time on slow links).
double crypto_cpu_cost(std::size_t bytes);

}  // namespace psf::crypto
