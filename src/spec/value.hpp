// Property value model for service specifications (§3.1 of the paper).
//
// A property value is a boolean, an integer (for Interval-typed properties)
// or a string. The framework never interprets the *semantics* of a property
// (the paper is explicit about this); it only needs:
//   - a partial order for the compatibility check of §3.3 condition 2
//     ("implemented must be a superset of required"): booleans F < T,
//     integers numerically, strings comparable only when equal;
//   - equality, for conditions and modification-rule patterns.
//
// ValueExpr extends literals with environment references (`node.TrustLevel`,
// `link.Confidentiality`) and factor references (`factor.TrustLevel`), which
// bind at planning time when a view is instantiated on a concrete node —
// this is how the paper's `Factors` keyword produces multiple component
// configurations from one view definition.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "util/assert.hpp"

namespace psf::spec {

class PropertyValue {
 public:
  PropertyValue() = default;  // "unset"
  static PropertyValue boolean(bool b) { return PropertyValue(Data(b)); }
  static PropertyValue integer(std::int64_t i) { return PropertyValue(Data(i)); }
  static PropertyValue string(std::string s) {
    return PropertyValue(Data(std::move(s)));
  }

  bool is_set() const { return !std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  bool as_bool() const {
    PSF_CHECK(is_bool());
    return std::get<bool>(data_);
  }
  std::int64_t as_int() const {
    PSF_CHECK(is_int());
    return std::get<std::int64_t>(data_);
  }
  const std::string& as_string() const {
    PSF_CHECK(is_string());
    return std::get<std::string>(data_);
  }

  bool operator==(const PropertyValue&) const = default;

  // True when this value, offered by a server-side interface, satisfies
  // `required`: booleans T satisfies {T,F}, F satisfies only F; integers
  // offered >= required; strings must match exactly. Mixed kinds never
  // satisfy. An unset offered value satisfies nothing; anything satisfies an
  // unset requirement.
  bool satisfies(const PropertyValue& required) const;

  // Minimum of two comparable values (used by aggregation rules); returns
  // unset when kinds differ.
  static PropertyValue min_of(const PropertyValue& a, const PropertyValue& b);

  std::string to_string() const;

 private:
  using Data = std::variant<std::monostate, bool, std::int64_t, std::string>;
  explicit PropertyValue(Data d) : data_(std::move(d)) {}
  Data data_;
};

enum class EnvScope { kNode, kLink };

// A value expression appearing in Implements / Requires / Factors blocks.
struct ValueExpr {
  enum class Kind { kLiteral, kEnvRef, kFactorRef, kAny };

  Kind kind = Kind::kLiteral;
  PropertyValue literal;   // kLiteral
  EnvScope env_scope = EnvScope::kNode;  // kEnvRef
  std::string ref_name;    // kEnvRef: env property; kFactorRef: factor name

  static ValueExpr lit(PropertyValue v) {
    ValueExpr e;
    e.kind = Kind::kLiteral;
    e.literal = std::move(v);
    return e;
  }
  static ValueExpr env(EnvScope scope, std::string name) {
    ValueExpr e;
    e.kind = Kind::kEnvRef;
    e.env_scope = scope;
    e.ref_name = std::move(name);
    return e;
  }
  static ValueExpr factor(std::string name) {
    ValueExpr e;
    e.kind = Kind::kFactorRef;
    e.ref_name = std::move(name);
    return e;
  }
  static ValueExpr any() {
    ValueExpr e;
    e.kind = Kind::kAny;
    return e;
  }

  bool operator==(const ValueExpr&) const = default;
  std::string to_string() const;
};

// The translated service-property view of one node (or of one link) — the
// output of credential translation (§3.3). Keys are service property names.
class Environment {
 public:
  void set(std::string name, PropertyValue value) {
    values_[std::move(name)] = std::move(value);
  }

  std::optional<PropertyValue> get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  const std::map<std::string, PropertyValue>& all() const { return values_; }
  std::string to_string() const;

 private:
  std::map<std::string, PropertyValue> values_;
};

}  // namespace psf::spec
