#include "spec/lexer.hpp"

#include <cctype>

namespace psf::spec {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek() const { return done() ? '\0' : src_[pos_]; }
  char peek2() const {
    return pos_ + 1 >= src_.size() ? '\0' : src_[pos_ + 1];
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

std::string location(int line, int column) {
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

}  // namespace

std::string Token::describe() const {
  switch (kind) {
    case TokenKind::kIdent: return "identifier '" + text + "'";
    case TokenKind::kInt: return "integer " + std::to_string(int_value);
    case TokenKind::kFloat: return "number";
    case TokenKind::kString: return "string \"" + text + "\"";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

// Shared lexer loop. With `errors == nullptr` the first malformed token
// aborts the scan (strict mode); otherwise it is recorded and skipped.
util::Status run_lexer(std::string_view source, std::vector<Token>& tokens,
                       std::vector<ParseError>* errors) {
  Cursor cur(source);

  auto fail = [&](std::string message, int line, int column) {
    if (errors != nullptr) {
      errors->push_back({std::move(message), SourceLoc{line, column}});
      return util::Status::ok();  // keep scanning
    }
    return util::parse_error(message + " at " + location(line, column));
  };

  auto push = [&](TokenKind kind, int line, int column) -> Token& {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    tokens.push_back(std::move(t));
    return tokens.back();
  };

  while (!cur.done()) {
    const char c = cur.peek();
    const int line = cur.line();
    const int column = cur.column();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '#' || (c == '/' && cur.peek2() == '/')) {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (is_ident_start(c)) {
      std::string text;
      while (!cur.done() && is_ident_char(cur.peek())) text += cur.advance();
      push(TokenKind::kIdent, line, column).text = std::move(text);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(cur.peek2())))) {
      std::string text;
      if (cur.peek() == '-') text += cur.advance();
      bool is_float = false;
      while (!cur.done() &&
             (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
              cur.peek() == '.')) {
        // '.' followed by a non-digit is a member access, not a decimal
        // point (no such case in practice: numbers aren't followed by '.').
        if (cur.peek() == '.') {
          if (!std::isdigit(static_cast<unsigned char>(cur.peek2()))) break;
          is_float = true;
        }
        text += cur.advance();
      }
      Token& t = push(is_float ? TokenKind::kFloat : TokenKind::kInt, line,
                      column);
      if (is_float) {
        t.float_value = std::stod(text);
      } else {
        t.int_value = std::stoll(text);
        t.float_value = static_cast<double>(t.int_value);
      }
      continue;
    }
    if (c == '"') {
      cur.advance();
      std::string text;
      bool closed = false;
      while (!cur.done()) {
        const char ch = cur.advance();
        if (ch == '"') {
          closed = true;
          break;
        }
        if (ch == '\\' && !cur.done()) {
          const char esc = cur.advance();
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += esc; break;
          }
          continue;
        }
        text += ch;
      }
      if (!closed) {
        if (auto st = fail("unterminated string", line, column); !st) {
          return st;
        }
        continue;  // recover mode: input is exhausted, loop will terminate
      }
      push(TokenKind::kString, line, column).text = std::move(text);
      continue;
    }

    cur.advance();
    switch (c) {
      case '{': push(TokenKind::kLBrace, line, column); break;
      case '}': push(TokenKind::kRBrace, line, column); break;
      case '(': push(TokenKind::kLParen, line, column); break;
      case ')': push(TokenKind::kRParen, line, column); break;
      case ',': push(TokenKind::kComma, line, column); break;
      case ';': push(TokenKind::kSemi, line, column); break;
      case ':': push(TokenKind::kColon, line, column); break;
      case '.': push(TokenKind::kDot, line, column); break;
      case '=':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::kEq, line, column);
        } else {
          push(TokenKind::kAssign, line, column);
        }
        break;
      case '>':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::kGe, line, column);
        } else {
          if (auto st = fail("unexpected '>'", line, column); !st) return st;
        }
        break;
      case '<':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::kLe, line, column);
        } else {
          if (auto st = fail("unexpected '<'", line, column); !st) return st;
        }
        break;
      case '-':
        if (cur.peek() == '>') {
          cur.advance();
          push(TokenKind::kArrow, line, column);
        } else {
          if (auto st = fail("unexpected '-'", line, column); !st) return st;
        }
        break;
      default:
        if (auto st = fail(std::string("unexpected character '") + c + "'",
                           line, column);
            !st) {
          return st;
        }
        break;
    }
  }

  push(TokenKind::kEnd, cur.line(), cur.column());
  return util::Status::ok();
}

}  // namespace

util::Expected<std::vector<Token>> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  if (auto st = run_lexer(source, tokens, nullptr); !st) return st;
  return tokens;
}

std::vector<Token> tokenize_recover(std::string_view source,
                                    std::vector<ParseError>& errors) {
  std::vector<Token> tokens;
  run_lexer(source, tokens, &errors);  // cannot fail in recover mode
  return tokens;
}

}  // namespace psf::spec
