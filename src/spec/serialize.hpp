// PSDL serializer: renders a ServiceSpec back into parseable PSDL text.
//
// Guarantee (tested property): parse_spec(serialize_spec(s)) produces a spec
// structurally identical to `s`. Useful for persisting programmatically
// built specs, for diffing two specs, and as the canonical pretty-printer.
#pragma once

#include <string>

#include "spec/model.hpp"

namespace psf::spec {

std::string serialize_spec(const ServiceSpec& spec);

// Structural equality (field-by-field; used by round-trip tests and spec
// diffing).
bool specs_equal(const ServiceSpec& a, const ServiceSpec& b);

}  // namespace psf::spec
