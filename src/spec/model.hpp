// Object model of a declarative service specification (§3.1).
//
// A ServiceSpec mirrors the paper's Figure 2: properties, interfaces,
// components and views (with Represents / Factors), linkage declarations
// (Implements / Requires with property value expressions), installation
// Conditions, resource Behaviors, and property modification rules (Fig. 4).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "spec/rules.hpp"
#include "spec/source.hpp"
#include "spec/value.hpp"
#include "util/status.hpp"

namespace psf::spec {

enum class PropertyType { kBoolean, kInterval, kString };

struct PropertyDef {
  std::string name;
  PropertyType type = PropertyType::kBoolean;
  // For kInterval: inclusive bounds.
  std::int64_t interval_lo = 0;
  std::int64_t interval_hi = 0;
  SourceLoc loc{};  // of the declaration's name; invalid when built in code

  // Checks a literal against the declared type/range.
  bool admits(const PropertyValue& v) const;
  std::string to_string() const;
};

struct InterfaceDef {
  std::string name;
  std::vector<std::string> properties;  // names of PropertyDefs
  SourceLoc loc{};

  bool has_property(const std::string& p) const;
  std::string to_string() const;
};

// One property assignment inside an Implements / Requires / Factors block.
struct PropertyAssignment {
  std::string property;
  ValueExpr value;
  SourceLoc loc{};

  std::string to_string() const;
};

// An Implements or Requires declaration: interface + property expressions.
struct LinkageDecl {
  std::string interface_name;
  std::vector<PropertyAssignment> properties;
  SourceLoc loc{};

  std::optional<ValueExpr> value_of(const std::string& property) const;
  std::string to_string(const char* keyword) const;
};

// Installation condition (§3.1 "Conditions"): a constraint on the translated
// environment of the candidate node.
struct Condition {
  enum class Op { kEq, kGe, kLe, kInRange };

  std::string property;           // environment property name
  Op op = Op::kEq;
  PropertyValue value;            // kEq / kGe / kLe
  std::int64_t range_lo = 0;      // kInRange (inclusive)
  std::int64_t range_hi = 0;
  SourceLoc loc{};

  // Evaluates against a node environment. A missing environment property
  // fails the condition (fail closed — this is a security check).
  bool holds(const Environment& env) const;
  std::string to_string() const;
};

// Resource behaviours (§3.1 "Behaviors"). Units:
//  - capacity_rps: requests/second this component can absorb (0 = unbounded);
//  - rrf: Request Reduction Factor — fraction of incoming requests forwarded
//    along each required linkage (paper: ViewMailServer RRF = 0.2);
//  - cpu_per_request: abstract cpu units consumed per request;
//  - bytes_per_request / bytes_per_response: average wire sizes;
//  - code_size_bytes: size of the mobile code charged when the runtime
//    "downloads" the component to a node.
struct Behaviors {
  double capacity_rps = 0.0;
  double rrf = 1.0;
  double cpu_per_request = 100.0;
  std::uint64_t bytes_per_request = 1024;
  std::uint64_t bytes_per_response = 1024;
  std::uint64_t code_size_bytes = 64 * 1024;

  // Which keys the spec text set explicitly (vs the defaults above) — the
  // static analyzer distinguishes "omitted" from "deliberately zero".
  bool capacity_set = false;
  bool rrf_set = false;
  bool code_size_set = false;
  SourceLoc loc{};  // of the `behaviors` keyword

  std::string to_string() const;
};

enum class ComponentKind { kComponent, kObjectView, kDataView };

struct ComponentDef {
  std::string name;
  ComponentKind kind = ComponentKind::kComponent;
  std::string represents;  // views: name of the represented component

  // Factors (views only): named bindings evaluated against the candidate
  // node environment when the view is instantiated, referenced from
  // implements/requires expressions as `factor.Name`.
  std::vector<PropertyAssignment> factors;

  std::vector<LinkageDecl> implements;
  std::vector<LinkageDecl> requires_;
  std::vector<Condition> conditions;
  Behaviors behaviors;
  SourceLoc loc{};

  // Transparent components (e.g. Encryptor/Decryptor) pass through interface
  // properties they do not explicitly set: the effective implemented value is
  // taken from the component's downstream chain. This is what lets an
  // Encryptor->Decryptor pair preserve the MailServer's TrustLevel=5 while
  // restoring Confidentiality=T over an insecure link.
  bool transparent = false;

  // Static components are never instantiated on demand by the planner; only
  // pre-placed instances (service registration's initial placements) can
  // satisfy linkages to them. This expresses case-study constraints like
  // "the primary mail server is located in New York" — a fresh stateful
  // authority cannot be conjured at an arbitrary node.
  bool static_placement = false;

  bool is_view() const { return kind != ComponentKind::kComponent; }
  const LinkageDecl* find_implements(const std::string& iface) const;
  std::string to_string() const;
};

// One Implements declaration of one component, as indexed by interface name.
struct ImplementerRef {
  const ComponentDef* component = nullptr;
  const LinkageDecl* linkage = nullptr;
};

// interface name → implementers, in component declaration order (one entry
// per component: its first Implements of that interface, matching
// find_implements). The planner resolves an interface for every candidate
// edge of its mapping search; this index replaces a linear component scan on
// that hot path.
using ImplementerIndex = std::map<std::string, std::vector<ImplementerRef>>;

class ServiceSpec {
 public:
  std::string name;
  std::vector<PropertyDef> properties;
  std::vector<InterfaceDef> interfaces;
  std::vector<ComponentDef> components;
  RuleSet rules;
  SourceLoc loc{};  // of the `service` keyword

  const PropertyDef* find_property(const std::string& n) const;
  const InterfaceDef* find_interface(const std::string& n) const;
  const ComponentDef* find_component(const std::string& n) const;

  // Components whose Implements list contains `iface`.
  std::vector<const ComponentDef*> implementers_of(
      const std::string& iface) const;

  // Builds the interface→implementers index. References point into this
  // spec; the index is invalidated by any mutation of `components`.
  ImplementerIndex build_implementer_index() const;

  // Structural validation: every reference resolves, literal values admit
  // their property types, views represent real components, factor references
  // are declared, rule properties exist. Returns the first problem found.
  util::Status validate() const;

  std::string to_string() const;
};

}  // namespace psf::spec
