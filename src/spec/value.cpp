#include "spec/value.hpp"

#include <sstream>

namespace psf::spec {

bool PropertyValue::satisfies(const PropertyValue& required) const {
  if (!required.is_set()) return true;   // no requirement
  if (!is_set()) return false;           // requirement but nothing offered
  if (is_bool() && required.is_bool()) {
    // F < T: offering T satisfies any boolean requirement; offering F only
    // satisfies a requirement of F.
    return as_bool() || !required.as_bool();
  }
  if (is_int() && required.is_int()) {
    return as_int() >= required.as_int();
  }
  if (is_string() && required.is_string()) {
    return as_string() == required.as_string();
  }
  return false;  // kind mismatch
}

PropertyValue PropertyValue::min_of(const PropertyValue& a,
                                    const PropertyValue& b) {
  if (!a.is_set()) return b;
  if (!b.is_set()) return a;
  if (a.is_bool() && b.is_bool()) {
    return PropertyValue::boolean(a.as_bool() && b.as_bool());
  }
  if (a.is_int() && b.is_int()) {
    return PropertyValue::integer(std::min(a.as_int(), b.as_int()));
  }
  if (a.is_string() && b.is_string() && a.as_string() == b.as_string()) {
    return a;
  }
  return PropertyValue();
}

std::string PropertyValue::to_string() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<unset>"; }
    std::string operator()(bool b) const { return b ? "T" : "F"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(const std::string& s) const {
      return "\"" + s + "\"";
    }
  };
  return std::visit(Visitor{}, data_);
}

std::string ValueExpr::to_string() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.to_string();
    case Kind::kEnvRef:
      return std::string(env_scope == EnvScope::kNode ? "node." : "link.") +
             ref_name;
    case Kind::kFactorRef:
      return "factor." + ref_name;
    case Kind::kAny:
      return "any";
  }
  return "?";
}

std::string Environment::to_string() const {
  std::ostringstream oss;
  oss << "{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) oss << ", ";
    first = false;
    oss << name << "=" << value.to_string();
  }
  oss << "}";
  return oss.str();
}

}  // namespace psf::spec
