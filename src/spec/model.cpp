#include "spec/model.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace psf::spec {

bool PropertyDef::admits(const PropertyValue& v) const {
  if (!v.is_set()) return true;
  switch (type) {
    case PropertyType::kBoolean:
      return v.is_bool();
    case PropertyType::kInterval:
      return v.is_int() && v.as_int() >= interval_lo &&
             v.as_int() <= interval_hi;
    case PropertyType::kString:
      return v.is_string();
  }
  return false;
}

std::string PropertyDef::to_string() const {
  std::ostringstream oss;
  oss << "property " << name << " { type: ";
  switch (type) {
    case PropertyType::kBoolean: oss << "boolean"; break;
    case PropertyType::kInterval:
      oss << "interval(" << interval_lo << ", " << interval_hi << ")";
      break;
    case PropertyType::kString: oss << "string"; break;
  }
  oss << "; }";
  return oss.str();
}

bool InterfaceDef::has_property(const std::string& p) const {
  return std::find(properties.begin(), properties.end(), p) !=
         properties.end();
}

std::string InterfaceDef::to_string() const {
  std::ostringstream oss;
  oss << "interface " << name << " { properties: ";
  for (std::size_t i = 0; i < properties.size(); ++i) {
    if (i) oss << ", ";
    oss << properties[i];
  }
  oss << "; }";
  return oss.str();
}

std::string PropertyAssignment::to_string() const {
  return property + " = " + value.to_string();
}

std::optional<ValueExpr> LinkageDecl::value_of(
    const std::string& property) const {
  for (const auto& pa : properties) {
    if (pa.property == property) return pa.value;
  }
  return std::nullopt;
}

std::string LinkageDecl::to_string(const char* keyword) const {
  std::ostringstream oss;
  oss << keyword << " " << interface_name << " { ";
  for (const auto& pa : properties) oss << pa.to_string() << "; ";
  oss << "}";
  return oss.str();
}

bool Condition::holds(const Environment& env) const {
  const auto actual = env.get(property);
  if (!actual) return false;  // fail closed
  switch (op) {
    case Op::kEq:
      return *actual == value;
    case Op::kGe:
      return actual->satisfies(value);
    case Op::kLe:
      return value.satisfies(*actual);
    case Op::kInRange:
      return actual->is_int() && actual->as_int() >= range_lo &&
             actual->as_int() <= range_hi;
  }
  return false;
}

std::string Condition::to_string() const {
  std::ostringstream oss;
  oss << "node." << property << " ";
  switch (op) {
    case Op::kEq: oss << "== " << value.to_string(); break;
    case Op::kGe: oss << ">= " << value.to_string(); break;
    case Op::kLe: oss << "<= " << value.to_string(); break;
    case Op::kInRange:
      oss << "in (" << range_lo << ", " << range_hi << ")";
      break;
  }
  return oss.str();
}

std::string Behaviors::to_string() const {
  std::ostringstream oss;
  oss << "behaviors { capacity: " << capacity_rps << "; rrf: " << rrf
      << "; cpu_per_request: " << cpu_per_request
      << "; bytes_per_request: " << bytes_per_request
      << "; bytes_per_response: " << bytes_per_response
      << "; code_size: " << code_size_bytes << "; }";
  return oss.str();
}

const LinkageDecl* ComponentDef::find_implements(
    const std::string& iface) const {
  for (const auto& decl : implements) {
    if (decl.interface_name == iface) return &decl;
  }
  return nullptr;
}

std::string ComponentDef::to_string() const {
  std::ostringstream oss;
  switch (kind) {
    case ComponentKind::kComponent: oss << "component "; break;
    case ComponentKind::kObjectView: oss << "object view "; break;
    case ComponentKind::kDataView: oss << "data view "; break;
  }
  oss << name;
  if (is_view()) oss << " represents " << represents;
  oss << " {\n";
  if (transparent) oss << "  transparent;\n";
  if (static_placement) oss << "  static;\n";
  if (!factors.empty()) {
    oss << "  factors { ";
    for (const auto& f : factors) oss << f.to_string() << "; ";
    oss << "}\n";
  }
  for (const auto& decl : implements) {
    oss << "  " << decl.to_string("implements") << "\n";
  }
  for (const auto& decl : requires_) {
    oss << "  " << decl.to_string("requires") << "\n";
  }
  if (!conditions.empty()) {
    oss << "  conditions { ";
    for (const auto& c : conditions) oss << c.to_string() << "; ";
    oss << "}\n";
  }
  oss << "  " << behaviors.to_string() << "\n}";
  return oss.str();
}

const PropertyDef* ServiceSpec::find_property(const std::string& n) const {
  for (const auto& p : properties) {
    if (p.name == n) return &p;
  }
  return nullptr;
}

const InterfaceDef* ServiceSpec::find_interface(const std::string& n) const {
  for (const auto& i : interfaces) {
    if (i.name == n) return &i;
  }
  return nullptr;
}

const ComponentDef* ServiceSpec::find_component(const std::string& n) const {
  for (const auto& c : components) {
    if (c.name == n) return &c;
  }
  return nullptr;
}

std::vector<const ComponentDef*> ServiceSpec::implementers_of(
    const std::string& iface) const {
  std::vector<const ComponentDef*> out;
  for (const auto& c : components) {
    if (c.find_implements(iface) != nullptr) out.push_back(&c);
  }
  return out;
}

ImplementerIndex ServiceSpec::build_implementer_index() const {
  ImplementerIndex index;
  for (const ComponentDef& c : components) {
    for (const LinkageDecl& decl : c.implements) {
      auto& refs = index[decl.interface_name];
      // Only the first Implements of an interface counts (find_implements
      // semantics); components are visited in declaration order, so a repeat
      // within one component lands adjacent.
      if (!refs.empty() && refs.back().component == &c) continue;
      refs.push_back({&c, &decl});
    }
  }
  return index;
}

namespace {

util::Status check_assignment(const ServiceSpec& spec,
                              const ComponentDef& comp,
                              const InterfaceDef* iface,
                              const PropertyAssignment& pa,
                              const char* where) {
  const PropertyDef* prop = spec.find_property(pa.property);
  if (prop == nullptr) {
    return util::invalid_argument("component '" + comp.name + "' " + where +
                                  " references undeclared property '" +
                                  pa.property + "'");
  }
  if (iface != nullptr && !iface->has_property(pa.property)) {
    return util::invalid_argument(
        "component '" + comp.name + "' " + where + " sets property '" +
        pa.property + "' not declared on interface '" + iface->name + "'");
  }
  if (pa.value.kind == ValueExpr::Kind::kLiteral &&
      !prop->admits(pa.value.literal)) {
    return util::invalid_argument(
        "component '" + comp.name + "' " + where + ": value " +
        pa.value.literal.to_string() + " out of range for property '" +
        pa.property + "'");
  }
  if (pa.value.kind == ValueExpr::Kind::kFactorRef) {
    const bool declared =
        std::any_of(comp.factors.begin(), comp.factors.end(),
                    [&](const PropertyAssignment& f) {
                      return f.property == pa.value.ref_name;
                    });
    if (!declared) {
      return util::invalid_argument("component '" + comp.name + "' " + where +
                                    " references undeclared factor '" +
                                    pa.value.ref_name + "'");
    }
  }
  return util::Status::ok();
}

}  // namespace

util::Status ServiceSpec::validate() const {
  if (name.empty()) return util::invalid_argument("service name is empty");

  std::set<std::string> seen;
  for (const auto& p : properties) {
    if (!seen.insert("p:" + p.name).second) {
      return util::already_exists("duplicate property '" + p.name + "'");
    }
    if (p.type == PropertyType::kInterval && p.interval_lo > p.interval_hi) {
      return util::invalid_argument("property '" + p.name +
                                    "' has an empty interval");
    }
  }
  for (const auto& i : interfaces) {
    if (!seen.insert("i:" + i.name).second) {
      return util::already_exists("duplicate interface '" + i.name + "'");
    }
    for (const auto& p : i.properties) {
      if (find_property(p) == nullptr) {
        return util::invalid_argument("interface '" + i.name +
                                      "' references undeclared property '" +
                                      p + "'");
      }
    }
  }

  for (const auto& c : components) {
    if (!seen.insert("c:" + c.name).second) {
      return util::already_exists("duplicate component '" + c.name + "'");
    }
    if (c.is_view()) {
      const ComponentDef* rep = find_component(c.represents);
      if (rep == nullptr) {
        return util::invalid_argument("view '" + c.name +
                                      "' represents unknown component '" +
                                      c.represents + "'");
      }
      if (rep->is_view()) {
        return util::invalid_argument("view '" + c.name +
                                      "' represents another view '" +
                                      c.represents + "' (must be a component)");
      }
    } else if (!c.represents.empty()) {
      return util::invalid_argument("component '" + c.name +
                                    "' has Represents but is not a view");
    }
    if (c.implements.empty()) {
      return util::invalid_argument("component '" + c.name +
                                    "' implements no interface");
    }
    for (const auto& decl : c.implements) {
      const InterfaceDef* iface = find_interface(decl.interface_name);
      if (iface == nullptr) {
        return util::invalid_argument("component '" + c.name +
                                      "' implements unknown interface '" +
                                      decl.interface_name + "'");
      }
      for (const auto& pa : decl.properties) {
        if (auto st = check_assignment(*this, c, iface, pa, "implements");
            !st) {
          return st;
        }
      }
    }
    for (const auto& decl : c.requires_) {
      const InterfaceDef* iface = find_interface(decl.interface_name);
      if (iface == nullptr) {
        return util::invalid_argument("component '" + c.name +
                                      "' requires unknown interface '" +
                                      decl.interface_name + "'");
      }
      for (const auto& pa : decl.properties) {
        if (auto st = check_assignment(*this, c, iface, pa, "requires");
            !st) {
          return st;
        }
      }
    }
    for (const auto& f : c.factors) {
      if (auto st = check_assignment(*this, c, nullptr, f, "factors"); !st) {
        return st;
      }
      if (f.value.kind == ValueExpr::Kind::kFactorRef) {
        return util::invalid_argument("component '" + c.name +
                                      "': factor may not reference a factor");
      }
    }
    for (const auto& cond : c.conditions) {
      if (find_property(cond.property) == nullptr) {
        return util::invalid_argument("component '" + c.name +
                                      "' condition on undeclared property '" +
                                      cond.property + "'");
      }
    }
    if (c.behaviors.rrf < 0.0 || c.behaviors.rrf > 1.0) {
      return util::invalid_argument("component '" + c.name +
                                    "': rrf must be in [0, 1]");
    }
  }

  for (const auto& rule : rules.all()) {
    if (find_property(rule.property) == nullptr) {
      return util::invalid_argument(
          "modification rule on undeclared property '" + rule.property + "'");
    }
  }
  return util::Status::ok();
}

std::string ServiceSpec::to_string() const {
  std::ostringstream oss;
  oss << "service " << name << " {\n";
  for (const auto& p : properties) oss << "  " << p.to_string() << "\n";
  for (const auto& i : interfaces) oss << "  " << i.to_string() << "\n";
  for (const auto& r : rules.all()) oss << "  " << r.to_string() << "\n";
  for (const auto& c : components) oss << c.to_string() << "\n";
  oss << "}";
  return oss.str();
}

}  // namespace psf::spec
