// Fluent programmatic builder for service specifications — the alternative
// to parsing PSDL text, used by examples that assemble specs in code.
//
//   ServiceSpec spec =
//       SpecBuilder("CacheDemo")
//           .boolean_property("Fresh")
//           .interval_property("Quality", 1, 10)
//           .interface("Api", {"Fresh", "Quality"})
//           .component("Origin")
//               .implements("Api", {{"Fresh", lit_bool(true)},
//                                   {"Quality", lit_int(10)}})
//               .capacity(500)
//               .done()
//           .build();  // validates
#pragma once

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "spec/model.hpp"
#include "util/assert.hpp"

namespace psf::spec {

inline ValueExpr lit_bool(bool b) {
  return ValueExpr::lit(PropertyValue::boolean(b));
}
inline ValueExpr lit_int(std::int64_t i) {
  return ValueExpr::lit(PropertyValue::integer(i));
}
inline ValueExpr lit_string(std::string s) {
  return ValueExpr::lit(PropertyValue::string(std::move(s)));
}
inline ValueExpr node_ref(std::string name) {
  return ValueExpr::env(EnvScope::kNode, std::move(name));
}
inline ValueExpr factor_ref(std::string name) {
  return ValueExpr::factor(std::move(name));
}

class SpecBuilder;

class ComponentBuilder {
 public:
  ComponentBuilder(SpecBuilder& parent, ComponentDef def)
      : parent_(parent), def_(std::move(def)) {}

  using Assignments =
      std::initializer_list<std::pair<std::string, ValueExpr>>;

  ComponentBuilder& implements(std::string iface, Assignments props = {}) {
    def_.implements.push_back(make_linkage(std::move(iface), props));
    return *this;
  }
  ComponentBuilder& requires_iface(std::string iface, Assignments props = {}) {
    def_.requires_.push_back(make_linkage(std::move(iface), props));
    return *this;
  }
  ComponentBuilder& factor(std::string property, ValueExpr value) {
    def_.factors.push_back({std::move(property), std::move(value)});
    return *this;
  }
  ComponentBuilder& condition_eq(std::string property, PropertyValue value) {
    Condition c;
    c.property = std::move(property);
    c.op = Condition::Op::kEq;
    c.value = std::move(value);
    def_.conditions.push_back(std::move(c));
    return *this;
  }
  ComponentBuilder& condition_ge(std::string property, PropertyValue value) {
    Condition c;
    c.property = std::move(property);
    c.op = Condition::Op::kGe;
    c.value = std::move(value);
    def_.conditions.push_back(std::move(c));
    return *this;
  }
  ComponentBuilder& condition_in_range(std::string property, std::int64_t lo,
                                       std::int64_t hi) {
    Condition c;
    c.property = std::move(property);
    c.op = Condition::Op::kInRange;
    c.range_lo = lo;
    c.range_hi = hi;
    def_.conditions.push_back(std::move(c));
    return *this;
  }
  ComponentBuilder& transparent() {
    def_.transparent = true;
    return *this;
  }
  ComponentBuilder& static_placement() {
    def_.static_placement = true;
    return *this;
  }
  ComponentBuilder& capacity(double rps) {
    def_.behaviors.capacity_rps = rps;
    def_.behaviors.capacity_set = true;
    return *this;
  }
  ComponentBuilder& rrf(double value) {
    def_.behaviors.rrf = value;
    def_.behaviors.rrf_set = true;
    return *this;
  }
  ComponentBuilder& cpu_per_request(double units) {
    def_.behaviors.cpu_per_request = units;
    return *this;
  }
  ComponentBuilder& message_bytes(std::uint64_t request,
                                  std::uint64_t response) {
    def_.behaviors.bytes_per_request = request;
    def_.behaviors.bytes_per_response = response;
    return *this;
  }
  ComponentBuilder& code_size(std::uint64_t bytes) {
    def_.behaviors.code_size_bytes = bytes;
    def_.behaviors.code_size_set = true;
    return *this;
  }

  // Finishes this component and returns the spec builder.
  SpecBuilder& done();

 private:
  static LinkageDecl make_linkage(std::string iface, Assignments props) {
    LinkageDecl decl;
    decl.interface_name = std::move(iface);
    for (const auto& [name, value] : props) {
      decl.properties.push_back({name, value});
    }
    return decl;
  }

  SpecBuilder& parent_;
  ComponentDef def_;

  friend class SpecBuilder;
};

class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name) { spec_.name = std::move(name); }

  SpecBuilder& boolean_property(std::string name) {
    PropertyDef def;
    def.name = std::move(name);
    def.type = PropertyType::kBoolean;
    spec_.properties.push_back(std::move(def));
    return *this;
  }
  SpecBuilder& interval_property(std::string name, std::int64_t lo,
                                 std::int64_t hi) {
    PropertyDef def;
    def.name = std::move(name);
    def.type = PropertyType::kInterval;
    def.interval_lo = lo;
    def.interval_hi = hi;
    spec_.properties.push_back(std::move(def));
    return *this;
  }
  SpecBuilder& string_property(std::string name) {
    PropertyDef def;
    def.name = std::move(name);
    def.type = PropertyType::kString;
    spec_.properties.push_back(std::move(def));
    return *this;
  }

  SpecBuilder& interface(std::string name,
                         std::vector<std::string> properties) {
    InterfaceDef def;
    def.name = std::move(name);
    def.properties = std::move(properties);
    spec_.interfaces.push_back(std::move(def));
    return *this;
  }

  SpecBuilder& rule(PropertyModificationRule r) {
    spec_.rules.add(std::move(r));
    return *this;
  }

  // The standard confidentiality degradation table from the paper's Fig. 4:
  // (T, T) -> T; (F, any) -> F; (any, F) -> F.
  SpecBuilder& confidentiality_rule(std::string property) {
    PropertyModificationRule r;
    r.property = std::move(property);
    r.rows.push_back({RulePattern::lit(PropertyValue::boolean(true)),
                      RulePattern::lit(PropertyValue::boolean(true)),
                      RuleRow::OutKind::kLiteral,
                      PropertyValue::boolean(true)});
    r.rows.push_back({RulePattern::lit(PropertyValue::boolean(false)),
                      RulePattern::wildcard(), RuleRow::OutKind::kLiteral,
                      PropertyValue::boolean(false)});
    r.rows.push_back({RulePattern::wildcard(),
                      RulePattern::lit(PropertyValue::boolean(false)),
                      RuleRow::OutKind::kLiteral,
                      PropertyValue::boolean(false)});
    spec_.rules.add(std::move(r));
    return *this;
  }

  ComponentBuilder component(std::string name) {
    ComponentDef def;
    def.name = std::move(name);
    def.kind = ComponentKind::kComponent;
    return ComponentBuilder(*this, std::move(def));
  }
  ComponentBuilder data_view(std::string name, std::string represents) {
    ComponentDef def;
    def.name = std::move(name);
    def.kind = ComponentKind::kDataView;
    def.represents = std::move(represents);
    return ComponentBuilder(*this, std::move(def));
  }
  ComponentBuilder object_view(std::string name, std::string represents) {
    ComponentDef def;
    def.name = std::move(name);
    def.kind = ComponentKind::kObjectView;
    def.represents = std::move(represents);
    return ComponentBuilder(*this, std::move(def));
  }

  // Validates and returns the spec; aborts on an invalid spec (builder use
  // is programmer-driven, so an invalid spec is a bug, not input error).
  ServiceSpec build() {
    auto st = spec_.validate();
    PSF_CHECK_MSG(st.is_ok(), st.to_string());
    return std::move(spec_);
  }

  // Non-aborting variant for tests that exercise validation failures.
  util::Expected<ServiceSpec> try_build() {
    auto st = spec_.validate();
    if (!st) return st;
    return std::move(spec_);
  }

 private:
  ServiceSpec spec_;

  friend class ComponentBuilder;
};

inline SpecBuilder& ComponentBuilder::done() {
  parent_.spec_.components.push_back(std::move(def_));
  return parent_;
}

}  // namespace psf::spec
