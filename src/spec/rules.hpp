// Property modification rules (paper Fig. 4).
//
// A rule table describes how the environment transforms an interface
// property as it crosses a node/link: e.g. Confidentiality stays T only
// across environments that are themselves T. Patterns may be literal values
// or ANY; the first matching row wins (the paper's table is order-free
// because its rows are disjoint, but first-match keeps semantics defined for
// overlapping user tables).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "spec/source.hpp"
#include "spec/value.hpp"

namespace psf::spec {

struct RulePattern {
  bool any = false;
  PropertyValue value;

  static RulePattern wildcard() { return RulePattern{true, {}}; }
  static RulePattern lit(PropertyValue v) {
    return RulePattern{false, std::move(v)};
  }

  bool matches(const PropertyValue& v) const {
    return any || value == v;
  }
  std::string to_string() const { return any ? "any" : value.to_string(); }
};

struct RuleRow {
  RulePattern in;
  RulePattern env;
  // Output: either a literal, or "pass through the input" / "pass through
  // the env value" — the latter two let one row express e.g.
  // (any, any) -> min(in, env) style degradation for interval properties.
  enum class OutKind { kLiteral, kInput, kEnvValue, kMin };
  OutKind out_kind = OutKind::kLiteral;
  PropertyValue out;
  SourceLoc loc{};

  std::string to_string() const;
};

class PropertyModificationRule {
 public:
  std::string property;
  std::vector<RuleRow> rows;
  SourceLoc loc{};

  // Applies the table: returns the transformed value, or the input unchanged
  // when no row matches (identity default — a property with no rule is
  // unaffected by the environment).
  PropertyValue apply(const PropertyValue& in,
                      const PropertyValue& env) const;

  std::string to_string() const;
};

class RuleSet {
 public:
  void add(PropertyModificationRule rule) {
    rules_.push_back(std::move(rule));
  }

  const PropertyModificationRule* find(const std::string& property) const;

  // Transform `in` for property `property` across an environment whose
  // translated value for that property is `env`. Identity if no rule.
  PropertyValue apply(const std::string& property, const PropertyValue& in,
                      const PropertyValue& env) const;

  const std::vector<PropertyModificationRule>& all() const { return rules_; }
  bool empty() const { return rules_.empty(); }

 private:
  std::vector<PropertyModificationRule> rules_;
};

}  // namespace psf::spec
