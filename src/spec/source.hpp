// Source locations for PSDL text.
//
// The lexer stamps every token with line/column; the parser copies those
// positions onto the object-model nodes it builds so downstream consumers
// (the static analyzer, error messages) can point at real spec text.
// Programmatically built specs (SpecBuilder) leave locations invalid, and
// every consumer must tolerate that.
#pragma once

#include <string>

namespace psf::spec {

struct SourceLoc {
  int line = 0;    // 1-based; 0 = unknown (built programmatically)
  int column = 0;  // 1-based

  bool valid() const { return line > 0; }
  std::string to_string() const {
    if (!valid()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  // Source order; invalid locations sort first.
  friend bool operator<(const SourceLoc& a, const SourceLoc& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.column < b.column;
  }
  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return a.line == b.line && a.column == b.column;
  }
};

// One recoverable parse error: the bare message (no embedded location) plus
// where it happened. parse_spec_recover and tokenize_recover accumulate
// these instead of stopping at the first failure.
struct ParseError {
  std::string message;
  SourceLoc loc{};
};

}  // namespace psf::spec
