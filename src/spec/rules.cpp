#include "spec/rules.hpp"

#include <sstream>

namespace psf::spec {

std::string RuleRow::to_string() const {
  std::ostringstream oss;
  oss << "(" << in.to_string() << ", " << env.to_string() << ") -> ";
  switch (out_kind) {
    case OutKind::kLiteral: oss << out.to_string(); break;
    case OutKind::kInput: oss << "in"; break;
    case OutKind::kEnvValue: oss << "env"; break;
    case OutKind::kMin: oss << "min(in, env)"; break;
  }
  return oss.str();
}

PropertyValue PropertyModificationRule::apply(const PropertyValue& in,
                                              const PropertyValue& env) const {
  for (const RuleRow& row : rows) {
    if (!row.in.matches(in) || !row.env.matches(env)) continue;
    switch (row.out_kind) {
      case RuleRow::OutKind::kLiteral: return row.out;
      case RuleRow::OutKind::kInput: return in;
      case RuleRow::OutKind::kEnvValue: return env;
      case RuleRow::OutKind::kMin: return PropertyValue::min_of(in, env);
    }
  }
  return in;
}

std::string PropertyModificationRule::to_string() const {
  std::ostringstream oss;
  oss << "rule " << property << " {";
  for (const RuleRow& row : rows) oss << " " << row.to_string() << ";";
  oss << " }";
  return oss.str();
}

const PropertyModificationRule* RuleSet::find(
    const std::string& property) const {
  for (const auto& r : rules_) {
    if (r.property == property) return &r;
  }
  return nullptr;
}

PropertyValue RuleSet::apply(const std::string& property,
                             const PropertyValue& in,
                             const PropertyValue& env) const {
  const PropertyModificationRule* rule = find(property);
  if (rule == nullptr) return in;
  return rule->apply(in, env);
}

}  // namespace psf::spec
