// Tokenizer for PSDL, the textual service-description language.
//
// PSDL is this repo's machine-readable rendition of the paper's Figure 2
// (the paper used XML but printed "a different form to improve readability";
// PSDL is that readable form). Comments: `//` and `#` to end of line.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "spec/source.hpp"
#include "util/status.hpp"

namespace psf::spec {

enum class TokenKind {
  kIdent,
  kInt,
  kFloat,
  kString,
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kSemi,      // ;
  kColon,     // :
  kDot,       // .
  kAssign,    // =
  kEq,        // ==
  kGe,        // >=
  kLe,        // <=
  kArrow,     // ->
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier / string contents
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int column = 0;

  SourceLoc loc() const { return SourceLoc{line, column}; }
  std::string describe() const;
};

// Tokenizes the whole input; returns a parse error with line/column on any
// malformed token.
util::Expected<std::vector<Token>> tokenize(std::string_view source);

// Recovering variant: malformed tokens are recorded in `errors` (in source
// order) and skipped, so the parser can still see everything after the first
// lexical error. Always returns a token stream terminated by kEnd.
std::vector<Token> tokenize_recover(std::string_view source,
                                    std::vector<ParseError>& errors);

}  // namespace psf::spec
