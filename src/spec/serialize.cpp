#include "spec/serialize.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace psf::spec {

namespace {

// Shortest representation that parses back to the same double.
std::string number(double v) {
  std::ostringstream oss;
  oss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return oss.str();
}

std::string value_literal(const PropertyValue& v) {
  PSF_CHECK_MSG(v.is_set(), "cannot serialize an unset literal");
  return v.to_string();  // T/F, integer, or a quoted string — all PSDL
}

std::string value_expr(const ValueExpr& e) {
  switch (e.kind) {
    case ValueExpr::Kind::kLiteral:
      return value_literal(e.literal);
    case ValueExpr::Kind::kEnvRef:
      return (e.env_scope == EnvScope::kNode ? "node." : "link.") +
             e.ref_name;
    case ValueExpr::Kind::kFactorRef:
      return "factor." + e.ref_name;
    case ValueExpr::Kind::kAny:
      return "any";
  }
  return "any";
}

void emit_assignments(std::ostringstream& oss, const char* indent,
                      const std::vector<PropertyAssignment>& assignments) {
  oss << "{";
  if (assignments.empty()) {
    oss << " }";
    return;
  }
  oss << "\n";
  for (const auto& pa : assignments) {
    oss << indent << "  " << pa.property << " = " << value_expr(pa.value)
        << ";\n";
  }
  oss << indent << "}";
}

void emit_component(std::ostringstream& oss, const ComponentDef& comp) {
  switch (comp.kind) {
    case ComponentKind::kComponent:
      oss << "  component " << comp.name;
      break;
    case ComponentKind::kObjectView:
      oss << "  object view " << comp.name << " represents "
          << comp.represents;
      break;
    case ComponentKind::kDataView:
      oss << "  data view " << comp.name << " represents " << comp.represents;
      break;
  }
  oss << " {\n";
  if (comp.transparent) oss << "    transparent;\n";
  if (comp.static_placement) oss << "    static;\n";
  if (!comp.factors.empty()) {
    oss << "    factors ";
    emit_assignments(oss, "    ", comp.factors);
    oss << "\n";
  }
  for (const auto& decl : comp.implements) {
    oss << "    implements " << decl.interface_name << " ";
    emit_assignments(oss, "    ", decl.properties);
    oss << "\n";
  }
  for (const auto& decl : comp.requires_) {
    oss << "    requires " << decl.interface_name << " ";
    emit_assignments(oss, "    ", decl.properties);
    oss << "\n";
  }
  if (!comp.conditions.empty()) {
    oss << "    conditions {\n";
    for (const auto& cond : comp.conditions) {
      oss << "      node." << cond.property;
      switch (cond.op) {
        case Condition::Op::kEq:
          oss << " == " << value_literal(cond.value);
          break;
        case Condition::Op::kGe:
          oss << " >= " << value_literal(cond.value);
          break;
        case Condition::Op::kLe:
          oss << " <= " << value_literal(cond.value);
          break;
        case Condition::Op::kInRange:
          oss << " in (" << cond.range_lo << ", " << cond.range_hi << ")";
          break;
      }
      oss << ";\n";
    }
    oss << "    }\n";
  }
  const Behaviors& b = comp.behaviors;
  oss << "    behaviors {\n";
  oss << "      capacity: " << number(b.capacity_rps) << ";\n";
  oss << "      rrf: " << number(b.rrf) << ";\n";
  oss << "      cpu_per_request: " << number(b.cpu_per_request) << ";\n";
  oss << "      bytes_per_request: " << b.bytes_per_request << ";\n";
  oss << "      bytes_per_response: " << b.bytes_per_response << ";\n";
  oss << "      code_size: " << b.code_size_bytes << ";\n";
  oss << "    }\n";
  oss << "  }\n";
}

std::string pattern(const RulePattern& p) {
  return p.any ? "any" : value_literal(p.value);
}

}  // namespace

std::string serialize_spec(const ServiceSpec& spec) {
  std::ostringstream oss;
  oss << "service " << spec.name << " {\n";

  for (const auto& p : spec.properties) {
    oss << "  property " << p.name << " { type: ";
    switch (p.type) {
      case PropertyType::kBoolean:
        oss << "boolean";
        break;
      case PropertyType::kInterval:
        oss << "interval(" << p.interval_lo << ", " << p.interval_hi << ")";
        break;
      case PropertyType::kString:
        oss << "string";
        break;
    }
    oss << "; }\n";
  }

  for (const auto& i : spec.interfaces) {
    oss << "  interface " << i.name << " { ";
    if (!i.properties.empty()) {
      oss << "properties: ";
      for (std::size_t k = 0; k < i.properties.size(); ++k) {
        if (k) oss << ", ";
        oss << i.properties[k];
      }
      oss << "; ";
    }
    oss << "}\n";
  }

  for (const auto& rule : spec.rules.all()) {
    oss << "  rule " << rule.property << " {\n";
    for (const auto& row : rule.rows) {
      oss << "    (" << pattern(row.in) << ", " << pattern(row.env)
          << ") -> ";
      switch (row.out_kind) {
        case RuleRow::OutKind::kLiteral:
          oss << value_literal(row.out);
          break;
        case RuleRow::OutKind::kInput:
          oss << "in";
          break;
        case RuleRow::OutKind::kEnvValue:
          oss << "env";
          break;
        case RuleRow::OutKind::kMin:
          oss << "min";
          break;
      }
      oss << ";\n";
    }
    oss << "  }\n";
  }

  for (const auto& comp : spec.components) {
    emit_component(oss, comp);
  }
  oss << "}\n";
  return oss.str();
}

bool specs_equal(const ServiceSpec& a, const ServiceSpec& b) {
  // The serializer is canonical: structural equality is string equality of
  // the canonical form.
  return serialize_spec(a) == serialize_spec(b);
}

}  // namespace psf::spec
