#include "spec/parser.hpp"

#include <algorithm>
#include <utility>

#include "spec/lexer.hpp"

namespace psf::spec {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Expected<ServiceSpec> parse() {
    ServiceSpec spec;
    if (auto st = parse_header(spec); !st) return st;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) return error("unexpected end of input");
      if (auto st = parse_item(spec); !st) return st;
    }
    advance();  // consume '}'
    if (!at(TokenKind::kEnd)) {
      return error("trailing input after service body");
    }
    if (auto st = spec.validate(); !st) return st;
    return spec;
  }

  // Recovering parse: on an item error, record it and skip to the next item
  // boundary (`}` closing the service body, or the next top-level keyword)
  // instead of stopping. Does NOT run validate() — the analyzer subsumes it.
  ParseResult parse_recover() && {
    ParseResult result;
    ServiceSpec& spec = result.spec;
    auto record = [&] { result.errors.push_back(pending_error_); };
    if (auto st = parse_header(spec); !st) {
      record();
      return result;  // no service body to resynchronize into
    }
    for (;;) {
      if (at(TokenKind::kEnd)) {
        (void)error("unexpected end of input");
        record();
        return result;
      }
      if (at(TokenKind::kRBrace)) {
        advance();
        break;
      }
      if (auto st = parse_item(spec); !st) {
        record();
        synchronize();
      }
    }
    if (!at(TokenKind::kEnd)) {
      (void)error("trailing input after service body");
      record();
    }
    return result;
  }

 private:
  // `service IDENT {`
  util::Status parse_header(ServiceSpec& spec) {
    spec.loc = peek().loc();
    if (auto st = expect_keyword("service"); !st) return st;
    if (auto name = expect_ident(); !name) {
      return name.status();
    } else {
      spec.name = *name;
    }
    return expect(TokenKind::kLBrace);
  }

  static bool is_item_keyword(std::string_view word) {
    return word == "property" || word == "interface" || word == "rule" ||
           word == "component" || word == "view" || word == "object" ||
           word == "data";
  }

  // One top-level declaration, dispatched on the leading keyword.
  util::Status parse_item(ServiceSpec& spec) {
    const Token& t = peek();
    if (t.kind != TokenKind::kIdent) {
      return error("expected a declaration, got " + t.describe());
    }
    if (t.text == "property") return parse_property(spec);
    if (t.text == "interface") return parse_interface(spec);
    if (t.text == "rule") return parse_rule(spec);
    if (t.text == "component") {
      return parse_component(spec, ComponentKind::kComponent);
    }
    if (t.text == "view") return parse_component(spec, ComponentKind::kDataView);
    if (t.text == "object" || t.text == "data") {
      const ComponentKind kind = t.text == "object"
                                     ? ComponentKind::kObjectView
                                     : ComponentKind::kDataView;
      const SourceLoc loc = t.loc();
      advance();
      if (auto kw = expect_keyword("view"); !kw) return kw;
      return parse_component(spec, kind, /*consumed_view_keyword=*/true, loc);
    }
    return error("unknown declaration '" + t.text + "'");
  }

  // Skips tokens until the next plausible top-level item: a `}` that would
  // close the service body, or an item keyword at service-body depth.
  void synchronize() {
    while (!at(TokenKind::kEnd)) {
      if (depth_ <= 1) {
        if (at(TokenKind::kRBrace)) return;
        const Token& t = peek();
        if (t.kind == TokenKind::kIdent && is_item_keyword(t.text)) return;
      }
      advance();
    }
  }

  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() {
    const Token& t = tokens_[pos_++];
    if (t.kind == TokenKind::kLBrace) {
      ++depth_;
    } else if (t.kind == TokenKind::kRBrace) {
      --depth_;
    }
    return t;
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool at_ident(std::string_view text) const {
    return peek().kind == TokenKind::kIdent && peek().text == text;
  }

  util::Status error(const std::string& message) {
    const Token& t = peek();
    pending_error_ = ParseError{message, t.loc()};
    return util::parse_error(message + " (line " + std::to_string(t.line) +
                             ", column " + std::to_string(t.column) + ")");
  }

  util::Status expect(TokenKind kind) {
    if (!at(kind)) {
      Token want;
      want.kind = kind;
      return error("expected " + want.describe() + ", got " +
                   peek().describe());
    }
    advance();
    return util::Status::ok();
  }

  util::Status expect_keyword(std::string_view kw) {
    if (!at_ident(kw)) {
      return error("expected '" + std::string(kw) + "', got " +
                   peek().describe());
    }
    advance();
    return util::Status::ok();
  }

  util::Expected<std::string> expect_ident() {
    if (!at(TokenKind::kIdent)) {
      return error("expected identifier, got " + peek().describe());
    }
    return advance().text;
  }

  util::Expected<std::int64_t> expect_int() {
    if (!at(TokenKind::kInt)) {
      return error("expected integer, got " + peek().describe());
    }
    return advance().int_value;
  }

  // value := T | F | true | false | INT | STRING
  util::Expected<PropertyValue> parse_value() {
    const Token& t = peek();
    if (t.kind == TokenKind::kInt) {
      advance();
      return PropertyValue::integer(t.int_value);
    }
    if (t.kind == TokenKind::kString) {
      advance();
      return PropertyValue::string(t.text);
    }
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "T" || t.text == "true") {
        advance();
        return PropertyValue::boolean(true);
      }
      if (t.text == "F" || t.text == "false") {
        advance();
        return PropertyValue::boolean(false);
      }
    }
    return error("expected a value (T/F, integer, or string), got " +
                 t.describe());
  }

  // vexpr := value | node.X | link.X | factor.X | any
  util::Expected<ValueExpr> parse_value_expr() {
    if (at(TokenKind::kIdent)) {
      const std::string& word = peek().text;
      if (word == "any") {
        advance();
        return ValueExpr::any();
      }
      if (word == "node" || word == "link" || word == "factor") {
        const std::string scope = advance().text;
        if (auto st = expect(TokenKind::kDot); !st) return st;
        auto name = expect_ident();
        if (!name) return name.status();
        if (scope == "factor") return ValueExpr::factor(*name);
        return ValueExpr::env(
            scope == "node" ? EnvScope::kNode : EnvScope::kLink, *name);
      }
    }
    auto v = parse_value();
    if (!v) return v.status();
    return ValueExpr::lit(*v);
  }

  util::Status parse_property(ServiceSpec& spec) {
    PropertyDef def;
    def.loc = peek().loc();
    advance();  // 'property'
    if (auto name = expect_ident(); !name) {
      return name.status();
    } else {
      def.name = *name;
    }
    if (auto st = expect(TokenKind::kLBrace); !st) return st;
    if (auto st = expect_keyword("type"); !st) return st;
    if (auto st = expect(TokenKind::kColon); !st) return st;
    auto type_name = expect_ident();
    if (!type_name) return type_name.status();
    if (*type_name == "boolean") {
      def.type = PropertyType::kBoolean;
    } else if (*type_name == "string") {
      def.type = PropertyType::kString;
    } else if (*type_name == "interval") {
      def.type = PropertyType::kInterval;
      if (auto st = expect(TokenKind::kLParen); !st) return st;
      auto lo = expect_int();
      if (!lo) return lo.status();
      if (auto st = expect(TokenKind::kComma); !st) return st;
      auto hi = expect_int();
      if (!hi) return hi.status();
      if (auto st = expect(TokenKind::kRParen); !st) return st;
      def.interval_lo = *lo;
      def.interval_hi = *hi;
    } else {
      return error("unknown property type '" + *type_name + "'");
    }
    if (auto st = expect(TokenKind::kSemi); !st) return st;
    if (auto st = expect(TokenKind::kRBrace); !st) return st;
    spec.properties.push_back(std::move(def));
    return util::Status::ok();
  }

  util::Status parse_interface(ServiceSpec& spec) {
    InterfaceDef def;
    def.loc = peek().loc();
    advance();  // 'interface'
    if (auto name = expect_ident(); !name) {
      return name.status();
    } else {
      def.name = *name;
    }
    if (auto st = expect(TokenKind::kLBrace); !st) return st;
    // Properties list is optional (an interface may be property-free).
    if (at_ident("properties")) {
      advance();
      if (auto st = expect(TokenKind::kColon); !st) return st;
      for (;;) {
        auto prop = expect_ident();
        if (!prop) return prop.status();
        def.properties.push_back(*prop);
        if (at(TokenKind::kComma)) {
          advance();
          continue;
        }
        break;
      }
      if (auto st = expect(TokenKind::kSemi); !st) return st;
    }
    if (auto st = expect(TokenKind::kRBrace); !st) return st;
    spec.interfaces.push_back(std::move(def));
    return util::Status::ok();
  }

  util::Expected<RulePattern> parse_pattern() {
    if (at_ident("any")) {
      advance();
      return RulePattern::wildcard();
    }
    auto v = parse_value();
    if (!v) return v.status();
    return RulePattern::lit(*v);
  }

  util::Status parse_rule(ServiceSpec& spec) {
    PropertyModificationRule rule;
    rule.loc = peek().loc();
    advance();  // 'rule'
    if (auto name = expect_ident(); !name) {
      return name.status();
    } else {
      rule.property = *name;
    }
    if (auto st = expect(TokenKind::kLBrace); !st) return st;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) return error("unexpected end of input in rule");
      RuleRow row;
      row.loc = peek().loc();
      if (auto st = expect(TokenKind::kLParen); !st) return st;
      auto in = parse_pattern();
      if (!in) return in.status();
      row.in = *in;
      if (auto st = expect(TokenKind::kComma); !st) return st;
      auto env = parse_pattern();
      if (!env) return env.status();
      row.env = *env;
      if (auto st = expect(TokenKind::kRParen); !st) return st;
      if (auto st = expect(TokenKind::kArrow); !st) return st;
      if (at_ident("in")) {
        advance();
        row.out_kind = RuleRow::OutKind::kInput;
      } else if (at_ident("env")) {
        advance();
        row.out_kind = RuleRow::OutKind::kEnvValue;
      } else if (at_ident("min")) {
        advance();
        row.out_kind = RuleRow::OutKind::kMin;
      } else {
        auto v = parse_value();
        if (!v) return v.status();
        row.out_kind = RuleRow::OutKind::kLiteral;
        row.out = *v;
      }
      if (auto st = expect(TokenKind::kSemi); !st) return st;
      rule.rows.push_back(std::move(row));
    }
    advance();  // '}'
    spec.rules.add(std::move(rule));
    return util::Status::ok();
  }

  util::Expected<std::vector<PropertyAssignment>> parse_assign_block() {
    std::vector<PropertyAssignment> out;
    if (auto st = expect(TokenKind::kLBrace); !st) return st;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) {
        return error("unexpected end of input in assignment block");
      }
      PropertyAssignment pa;
      pa.loc = peek().loc();
      auto name = expect_ident();
      if (!name) return name.status();
      pa.property = *name;
      if (auto st = expect(TokenKind::kAssign); !st) return st;
      auto value = parse_value_expr();
      if (!value) return value.status();
      pa.value = *value;
      if (auto st = expect(TokenKind::kSemi); !st) return st;
      out.push_back(std::move(pa));
    }
    advance();  // '}'
    return out;
  }

  util::Status parse_conditions(ComponentDef& comp) {
    if (auto st = expect(TokenKind::kLBrace); !st) return st;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) {
        return error("unexpected end of input in conditions");
      }
      Condition cond;
      cond.loc = peek().loc();
      // Optional `node.` prefix; conditions always evaluate on the node env.
      if (at_ident("node")) {
        advance();
        if (auto st = expect(TokenKind::kDot); !st) return st;
      }
      auto prop = expect_ident();
      if (!prop) return prop.status();
      cond.property = *prop;
      if (at(TokenKind::kEq) || at(TokenKind::kAssign)) {
        advance();
        cond.op = Condition::Op::kEq;
        auto v = parse_value();
        if (!v) return v.status();
        cond.value = *v;
      } else if (at(TokenKind::kGe)) {
        advance();
        cond.op = Condition::Op::kGe;
        auto v = parse_value();
        if (!v) return v.status();
        cond.value = *v;
      } else if (at(TokenKind::kLe)) {
        advance();
        cond.op = Condition::Op::kLe;
        auto v = parse_value();
        if (!v) return v.status();
        cond.value = *v;
      } else if (at_ident("in")) {
        advance();
        cond.op = Condition::Op::kInRange;
        if (auto st = expect(TokenKind::kLParen); !st) return st;
        auto lo = expect_int();
        if (!lo) return lo.status();
        if (auto st = expect(TokenKind::kComma); !st) return st;
        auto hi = expect_int();
        if (!hi) return hi.status();
        if (auto st = expect(TokenKind::kRParen); !st) return st;
        cond.range_lo = *lo;
        cond.range_hi = *hi;
      } else {
        return error("expected a condition operator (==, >=, <=, in), got " +
                     peek().describe());
      }
      if (auto st = expect(TokenKind::kSemi); !st) return st;
      comp.conditions.push_back(std::move(cond));
    }
    advance();  // '}'
    return util::Status::ok();
  }

  util::Status parse_behaviors(ComponentDef& comp) {
    if (auto st = expect(TokenKind::kLBrace); !st) return st;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) {
        return error("unexpected end of input in behaviors");
      }
      auto key = expect_ident();
      if (!key) return key.status();
      if (auto st = expect(TokenKind::kColon); !st) return st;
      if (!at(TokenKind::kInt) && !at(TokenKind::kFloat)) {
        return error("expected a number for behavior '" + *key + "', got " +
                     peek().describe());
      }
      double value = advance().float_value;
      // Optional size unit for byte quantities.
      if (at_ident("KB")) {
        advance();
        value *= 1024.0;
      } else if (at_ident("MB")) {
        advance();
        value *= 1024.0 * 1024.0;
      }
      if (*key == "capacity") {
        comp.behaviors.capacity_rps = value;
        comp.behaviors.capacity_set = true;
      } else if (*key == "rrf") {
        comp.behaviors.rrf = value;
        comp.behaviors.rrf_set = true;
      } else if (*key == "cpu_per_request") {
        comp.behaviors.cpu_per_request = value;
      } else if (*key == "bytes_per_request") {
        comp.behaviors.bytes_per_request = static_cast<std::uint64_t>(value);
      } else if (*key == "bytes_per_response") {
        comp.behaviors.bytes_per_response = static_cast<std::uint64_t>(value);
      } else if (*key == "code_size") {
        comp.behaviors.code_size_bytes = static_cast<std::uint64_t>(value);
        comp.behaviors.code_size_set = true;
      } else {
        return error("unknown behavior '" + *key + "'");
      }
      if (auto st = expect(TokenKind::kSemi); !st) return st;
    }
    advance();  // '}'
    return util::Status::ok();
  }

  util::Status parse_component(ServiceSpec& spec, ComponentKind kind,
                               bool consumed_view_keyword = false,
                               SourceLoc loc = {}) {
    ComponentDef comp;
    comp.loc = consumed_view_keyword ? loc : peek().loc();
    if (!consumed_view_keyword) advance();  // 'component' or 'view'
    comp.kind = kind;
    if (auto name = expect_ident(); !name) {
      return name.status();
    } else {
      comp.name = *name;
    }
    if (kind != ComponentKind::kComponent) {
      if (auto st = expect_keyword("represents"); !st) return st;
      auto rep = expect_ident();
      if (!rep) return rep.status();
      comp.represents = *rep;
    }
    if (auto st = expect(TokenKind::kLBrace); !st) return st;
    while (!at(TokenKind::kRBrace)) {
      if (at(TokenKind::kEnd)) {
        return error("unexpected end of input in component body");
      }
      if (!at(TokenKind::kIdent)) {
        return error("expected a component member, got " + peek().describe());
      }
      const std::string member = peek().text;
      if (member == "transparent") {
        advance();
        if (auto st = expect(TokenKind::kSemi); !st) return st;
        comp.transparent = true;
      } else if (member == "static") {
        advance();
        if (auto st = expect(TokenKind::kSemi); !st) return st;
        comp.static_placement = true;
      } else if (member == "factors") {
        advance();
        auto assigns = parse_assign_block();
        if (!assigns) return assigns.status();
        comp.factors = std::move(*assigns);
      } else if (member == "implements" || member == "requires") {
        LinkageDecl decl;
        decl.loc = peek().loc();
        advance();
        auto iface = expect_ident();
        if (!iface) return iface.status();
        decl.interface_name = *iface;
        auto assigns = parse_assign_block();
        if (!assigns) return assigns.status();
        decl.properties = std::move(*assigns);
        if (member == "implements") {
          comp.implements.push_back(std::move(decl));
        } else {
          comp.requires_.push_back(std::move(decl));
        }
      } else if (member == "conditions") {
        advance();
        if (auto st = parse_conditions(comp); !st) return st;
      } else if (member == "behaviors") {
        comp.behaviors.loc = peek().loc();
        advance();
        if (auto st = parse_behaviors(comp); !st) return st;
      } else {
        return error("unknown component member '" + member + "'");
      }
    }
    advance();  // '}'
    spec.components.push_back(std::move(comp));
    return util::Status::ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;  // brace depth of consumed tokens (service body = 1)
  ParseError pending_error_;  // innermost error of the current item
};

}  // namespace

util::Expected<ServiceSpec> parse_spec(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.parse();
}

ParseResult parse_spec_recover(std::string_view source) {
  std::vector<ParseError> lex_errors;
  std::vector<Token> tokens = tokenize_recover(source, lex_errors);
  ParseResult result = Parser(std::move(tokens)).parse_recover();
  // Lexical errors come first positionally only per-error; merge by source
  // order so callers see one stream.
  result.errors.insert(result.errors.end(), lex_errors.begin(),
                       lex_errors.end());
  std::stable_sort(result.errors.begin(), result.errors.end(),
                   [](const ParseError& a, const ParseError& b) {
                     return a.loc < b.loc;
                   });
  return result;
}

}  // namespace psf::spec
