// Recursive-descent parser for PSDL service specifications.
//
// Grammar sketch (see tests/spec_parser_test.cpp and src/mail/mail_spec.cpp
// for complete worked examples):
//
//   spec       := "service" IDENT "{" item* "}"
//   item       := property | interface | rule | component | view
//   property   := "property" IDENT "{" "type" ":" ptype ";" "}"
//   ptype      := "boolean" | "string" | "interval" "(" INT "," INT ")"
//   interface  := "interface" IDENT "{" "properties" ":" ident-list ";" "}"
//   rule       := "rule" IDENT "{" row* "}"
//   row        := "(" pattern "," pattern ")" "->" out ";"
//   pattern    := "any" | value
//   out        := "in" | "env" | "min" | value
//   component  := "component" IDENT body
//   view       := ("object" | "data")? "view" IDENT "represents" IDENT body
//   body       := "{" member* "}"
//   member     := "transparent" ";"
//              | "factors" assigns
//              | "implements" IDENT assigns
//              | "requires" IDENT assigns
//              | "conditions" "{" (condition ";")* "}"
//              | "behaviors" "{" (IDENT ":" number unit? ";")* "}"
//   assigns    := "{" (IDENT "=" vexpr ";")* "}"
//   vexpr      := value | ("node"|"link"|"factor") "." IDENT | "any"
//   condition  := ("node" ".")? IDENT ( "==" value | ">=" value
//              | "<=" value | "in" "(" INT "," INT ")" )
//   value      := "T" | "F" | "true" | "false" | INT | STRING
//   unit       := "KB" | "MB"   (behaviors byte quantities)
//
// parse_spec returns the first error with source location; a successfully
// parsed spec is additionally run through ServiceSpec::validate().
//
// parse_spec_recover instead collects *every* lexical and syntax error it
// can attribute (re-synchronizing on `}` / the next top-level keyword after
// each one) and returns the partial spec alongside them — the entry point
// for tooling (psflint) that wants all findings in one run. It does not run
// validate(); the static analyzer in src/analysis subsumes it.
#pragma once

#include <string_view>
#include <vector>

#include "spec/model.hpp"
#include "spec/source.hpp"
#include "util/status.hpp"

namespace psf::spec {

util::Expected<ServiceSpec> parse_spec(std::string_view source);

struct ParseResult {
  ServiceSpec spec;               // partial when errors is non-empty
  std::vector<ParseError> errors; // lexical + syntax errors, in source order
  bool ok() const { return errors.empty(); }
};

ParseResult parse_spec_recover(std::string_view source);

}  // namespace psf::spec
