// detlint:ordered-output — DP results must equal search bit-for-bit.
#include "planner/dp_chain.hpp"

#include <algorithm>
#include <limits>

namespace psf::planner {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

util::Expected<ChainPlanResult> plan_chain_dp(
    const spec::ServiceSpec& spec, const EnvironmentView& env,
    const std::vector<const spec::ComponentDef*>& chain,
    const std::vector<net::NodeId>& path, const ChainPlanOptions& options) {
  const std::size_t k = chain.size();
  const std::size_t m = path.size();
  if (k == 0) return util::invalid_argument("empty component chain");
  if (m == 0) return util::invalid_argument("empty node path");
  const net::Network& network = env.network();

  // Verify the path is actually a path in the network and collect its links.
  std::vector<const net::Link*> path_links;  // path_links[j]: n_j -> n_{j+1}
  path_links.reserve(m - 1);
  for (std::size_t j = 0; j + 1 < m; ++j) {
    auto lid = network.link_between(path[j], path[j + 1]);
    if (!lid) {
      return util::invalid_argument(
          "path nodes " + network.node(path[j]).name + " and " +
          network.node(path[j + 1]).name + " are not adjacent");
    }
    path_links.push_back(&network.link(*lid));
  }

  // prefix[i] = fraction of client requests reaching chain[i].
  std::vector<double> prefix(k, 1.0);
  for (std::size_t i = 1; i < k; ++i) {
    prefix[i] = prefix[i - 1] * chain[i - 1]->behaviors.rrf;
  }

  // Feasibility of hosting component i at path position j: installation
  // conditions + node CPU capacity at the component's arrival rate. Each
  // (i, j) pair is tested at most once, so the rejection counters read as
  // "placements ruled out", matching the search's exploration diagnostics.
  std::uint64_t rejected_condition = 0;
  std::uint64_t rejected_node_capacity = 0;
  std::uint64_t rejected_instance_capacity = 0;
  auto feasible = [&](std::size_t i, std::size_t j) {
    const spec::Environment& node_env = env.node_env(path[j]);
    for (const spec::Condition& cond : chain[i]->conditions) {
      if (!cond.holds(node_env)) {
        ++rejected_condition;
        return false;
      }
    }
    const net::Node& node = network.node(path[j]);
    const double rate = options.request_rate_rps * prefix[i];
    if (rate * chain[i]->behaviors.cpu_per_request > node.cpu_available()) {
      ++rejected_node_capacity;
      return false;
    }
    if (chain[i]->behaviors.capacity_rps > 0.0 &&
        rate > chain[i]->behaviors.capacity_rps) {
      ++rejected_instance_capacity;
      return false;
    }
    return true;
  };

  // cpu_cost[i][j]: weighted seconds of CPU for component i at position j.
  auto cpu_cost = [&](std::size_t i, std::size_t j) {
    return prefix[i] * chain[i]->behaviors.cpu_per_request /
           network.node(path[j]).cpu_capacity;
  };

  // Link cost of the hop sequence (a..b) carrying requests into component i,
  // weighted by that component's arrival fraction, plus a bandwidth check.
  auto hop_cost = [&](std::size_t i, std::size_t a, std::size_t b) {
    double total = 0.0;
    const double rate = options.request_rate_rps * prefix[i];
    const double bits =
        static_cast<double>(chain[i]->behaviors.bytes_per_request +
                            chain[i]->behaviors.bytes_per_response) *
        8.0;
    for (std::size_t j = a; j < b; ++j) {
      const net::Link& link = *path_links[j];
      if (rate * bits > link.bandwidth_available_bps()) return kInfinity;
      total += 2.0 * link.latency.seconds() +
               bits / link.bandwidth_bps;
    }
    return prefix[i] * total;
  };

  // Property compatibility between consecutive components i-1 (client) and
  // i (server) when placed at positions a and b: every literal requirement
  // of i-1 must be satisfied by i's declared value after transformation
  // across the links in between. Environment references in view factors
  // bind against the server's node environment.
  auto compatible = [&](std::size_t i, std::size_t a, std::size_t b) {
    const spec::ComponentDef& client = *chain[i - 1];
    const spec::ComponentDef& server = *chain[i];
    if (client.requires_.empty()) return true;
    const spec::LinkageDecl& req = client.requires_.front();
    const spec::LinkageDecl* impl = server.find_implements(req.interface_name);
    if (impl == nullptr) return false;
    const spec::Environment& server_env = env.node_env(path[b]);
    const spec::Environment& client_env = env.node_env(path[a]);

    auto resolve = [&](const spec::ValueExpr& expr,
                       const spec::Environment& node_env,
                       const spec::ComponentDef& comp) -> spec::PropertyValue {
      switch (expr.kind) {
        case spec::ValueExpr::Kind::kLiteral:
          return expr.literal;
        case spec::ValueExpr::Kind::kEnvRef:
          if (expr.env_scope == spec::EnvScope::kNode) {
            return node_env.get(expr.ref_name)
                .value_or(spec::PropertyValue());
          }
          return {};
        case spec::ValueExpr::Kind::kFactorRef:
          // Factors bind from the node environment in this approximation.
          for (const spec::PropertyAssignment& f : comp.factors) {
            if (f.property == expr.ref_name) {
              if (f.value.kind == spec::ValueExpr::Kind::kEnvRef &&
                  f.value.env_scope == spec::EnvScope::kNode) {
                return node_env.get(f.value.ref_name)
                    .value_or(spec::PropertyValue());
              }
              if (f.value.kind == spec::ValueExpr::Kind::kLiteral) {
                return f.value.literal;
              }
            }
          }
          return {};
        case spec::ValueExpr::Kind::kAny:
          return {};
      }
      return {};
    };

    for (const spec::PropertyAssignment& pa : req.properties) {
      const spec::PropertyValue required =
          resolve(pa.value, client_env, client);
      if (!required.is_set()) continue;
      spec::PropertyValue offered;
      if (auto expr = impl->value_of(pa.property)) {
        offered = resolve(*expr, server_env, server);
      } else if (server.transparent) {
        continue;  // decided downstream; approximated as satisfiable
      }
      // Degrade across each link (and intermediate node) between them.
      for (std::size_t j = b; j-- > a;) {
        const net::Link& link = *path_links[j];
        offered = spec.rules.apply(
            pa.property, offered,
            env.link_env(link.id).get(pa.property)
                .value_or(spec::PropertyValue()));
        if (j > a) {
          offered = spec.rules.apply(
              pa.property, offered,
              env.node_env(path[j]).get(pa.property)
                  .value_or(spec::PropertyValue()));
        }
      }
      if (!offered.satisfies(required)) return false;
    }
    return true;
  };

  // dp[i][j]: minimum cost with chain[i] hosted at path position j.
  std::vector<std::vector<double>> dp(k, std::vector<double>(m, kInfinity));
  std::vector<std::vector<std::size_t>> parent(
      k, std::vector<std::size_t>(m, SIZE_MAX));

  for (std::size_t j = 0; j < m; ++j) {
    if (options.pin_first && j != 0) break;
    if (feasible(0, j)) dp[0][j] = cpu_cost(0, j);
  }

  for (std::size_t i = 1; i < k; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!feasible(i, j)) continue;
      for (std::size_t jp = 0; jp <= j; ++jp) {
        if (dp[i - 1][jp] == kInfinity) continue;
        if (!compatible(i, jp, j)) continue;
        const double hop = hop_cost(i, jp, j);
        if (hop == kInfinity) continue;
        const double cost = dp[i - 1][jp] + hop + cpu_cost(i, j);
        if (cost < dp[i][j]) {
          dp[i][j] = cost;
          parent[i][j] = jp;
        }
      }
    }
  }

  std::size_t best_j = SIZE_MAX;
  double best = kInfinity;
  for (std::size_t j = 0; j < m; ++j) {
    if (options.pin_last && j != m - 1) continue;
    if (dp[k - 1][j] < best) {
      best = dp[k - 1][j];
      best_j = j;
    }
  }
  if (best_j == SIZE_MAX) {
    return util::unsatisfiable(
        "no feasible order-preserving mapping of the chain onto the path");
  }

  ChainPlanResult result;
  result.expected_latency_s = best;
  result.rejected_condition = rejected_condition;
  result.rejected_node_capacity = rejected_node_capacity;
  result.rejected_instance_capacity = rejected_instance_capacity;
  result.assignment.assign(k, 0);
  std::size_t j = best_j;
  for (std::size_t i = k; i-- > 0;) {
    result.assignment[i] = j;
    if (i > 0) j = parent[i][j];
  }
  return result;
}

}  // namespace psf::planner
