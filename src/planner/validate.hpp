// Independent re-validation of a DeploymentPlan against the specification,
// environment, and request — a second implementation of the §3.3 constraint
// checks, deliberately structured differently from the search (checks a
// finished plan bottom-up instead of pruning candidates top-down).
//
// Uses:
//  - property-based tests: any plan the search emits, on any random
//    topology, must pass validation;
//  - operators: audit a plan before handing it to the deployment engine;
//  - the adaptation loop: after a network change, re-validate the *current*
//    deployment to decide whether redeployment is called for at all.
#pragma once

#include <string>
#include <vector>

#include "planner/environment.hpp"
#include "planner/plan.hpp"
#include "planner/planner.hpp"
#include "spec/model.hpp"
#include "util/status.hpp"

namespace psf::planner {

struct Violation {
  enum class Kind {
    kStructure,       // malformed plan (bad indices, missing wires)
    kCondition,       // §3.3 condition 1: installation conditions
    kCompatibility,   // §3.3 condition 2: interface property compatibility
    kCapacity,        // §3.3 condition 3: node / link / component capacity
    kPolicy,          // framework rules (entry pinning, static placement,
                      // duplicate view configurations)
  };

  Kind kind = Kind::kStructure;
  InstanceId instance = 0;  // primary offender (plan-local id)
  std::string detail;

  std::string to_string() const;
};

struct ValidationReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

// Validates `plan` as the answer to `request`. `existing` must be the same
// instance set the planner saw (reused placements are resolved against it).
ValidationReport validate_plan(const spec::ServiceSpec& spec,
                               const EnvironmentView& env,
                               const PlanRequest& request,
                               const DeploymentPlan& plan,
                               const std::vector<ExistingInstance>& existing = {});

}  // namespace psf::planner
