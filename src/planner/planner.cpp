#include "planner/planner.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace psf::planner {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Round-trip cost of one request/response exchange over a route.
double edge_rtt_seconds(const net::Network& network, const net::Route& route,
                        std::uint64_t bytes_request,
                        std::uint64_t bytes_response) {
  double total = 0.0;
  for (net::LinkId lid : route.links) {
    const net::Link& link = network.link(lid);
    total += 2.0 * link.latency.seconds();
    total += static_cast<double>(bytes_request) * 8.0 / link.bandwidth_bps;
    total += static_cast<double>(bytes_response) * 8.0 / link.bandwidth_bps;
  }
  return total;
}

// Lexicographic plan score: lower is better on every field.
struct Score {
  double primary = kInfinity;
  double secondary = kInfinity;
  double tertiary = kInfinity;

  bool operator<(const Score& other) const {
    if (primary != other.primary) return primary < other.primary;
    if (secondary != other.secondary) return secondary < other.secondary;
    return tertiary < other.tertiary;
  }
};

Score score_plan(Objective objective, const PlanMetrics& m) {
  switch (objective) {
    case Objective::kMinLatency:
      return {m.expected_latency_s, m.deployment_cost_s,
              static_cast<double>(m.new_components)};
    case Objective::kMinDeploymentCost:
      return {m.deployment_cost_s + static_cast<double>(m.new_components),
              m.expected_latency_s, 0.0};
    case Objective::kMaxCapacity:
      return {-m.min_headroom, m.expected_latency_s, m.deployment_cost_s};
  }
  return {};
}

class Search {
 public:
  Search(const spec::ServiceSpec& spec, const EnvironmentView& env,
         const PlanRequest& request,
         const std::vector<ExistingInstance>& existing, SearchStats& stats)
      : spec_(spec),
        env_(env),
        network_(env.network()),
        request_(request),
        existing_(existing),
        stats_(stats) {
    node_load_.assign(network_.node_count(), 0.0);
    link_load_.assign(network_.link_count(), 0.0);
    existing_added_rps_.assign(existing.size(), 0.0);
  }

  std::optional<DeploymentPlan> run() {
    satisfy(request_.interface_name, request_.required_properties,
            request_.client_node, request_.request_rate_rps, /*depth=*/1,
            /*entry_level=*/true, kNoParent,
            [this](InstanceId root, double padded_s, double warm_s) {
              finish_plan(root, padded_s, warm_s);
            });
    return std::move(best_);
  }

 private:
  using Requirements =
      std::vector<std::pair<std::string, spec::PropertyValue>>;
  // sink(root, padded, warm): both values are edge_rtt + subtree latency as
  // seen from the caller. `padded` applies the cold-view discount to newly
  // deployed views and drives plan *scoring*; `warm` uses true RRFs and is
  // what gets recorded (and later reused as an existing instance's
  // downstream latency once its cache is warm).
  using Sink = std::function<void(InstanceId, double, double)>;

  // A solved child edge, kept for transparent property inheritance.
  struct ChildRecord {
    InstanceId root;
    std::string iface;
    const net::Route* route_to_parent;  // from the child's node to `parent`
  };

  // ---- value resolution ---------------------------------------------------

  spec::PropertyValue resolve(const spec::ValueExpr& expr,
                              const spec::Environment& node_env,
                              const FactorBindings& factors) const {
    switch (expr.kind) {
      case spec::ValueExpr::Kind::kLiteral:
        return expr.literal;
      case spec::ValueExpr::Kind::kEnvRef:
        if (expr.env_scope == spec::EnvScope::kNode) {
          return node_env.get(expr.ref_name).value_or(spec::PropertyValue());
        }
        return {};  // link refs are not meaningful at placement time
      case spec::ValueExpr::Kind::kFactorRef: {
        auto it = factors.values.find(expr.ref_name);
        return it == factors.values.end() ? spec::PropertyValue()
                                          : it->second;
      }
      case spec::ValueExpr::Kind::kAny:
        return {};
    }
    return {};
  }

  // ---- search ---------------------------------------------------------

  // Explores every feasible way to provide `iface` (meeting `reqs`) to a
  // consumer at `from`; for each, invokes `sink` with the working state
  // extended by the candidate subtree, then undoes the extension.
  static constexpr InstanceId kNoParent = UINT32_MAX;

  // True when linking `parent` to a candidate that is the *same component
  // with the same factor bindings*. Two identically-configured instances of
  // one view hold the same data, so chaining them yields no additional
  // request reduction — permitting it would let the search stack caches to
  // multiply RRF for free (a degenerate optimum the paper's case study
  // never exhibits; Seattle's view chains to San Diego's because their
  // trust factors differ).
  bool duplicates_parent(InstanceId parent, const spec::ComponentDef* comp,
                         const FactorBindings& factors) const {
    if (parent == kNoParent) return false;
    const Placement& p = placements_[parent];
    return p.component == comp && p.factors == factors;
  }

  // Views extend the duplicate check to the entire requirement path: a
  // second identically-configured instance of one data view anywhere in the
  // chain holds the same cached contents, so it contributes no real request
  // reduction — even when a transparent tunnel sits between the two copies.
  bool view_duplicated_on_path(const spec::ComponentDef* comp,
                               const FactorBindings& factors) const {
    if (!comp->is_view()) return false;
    for (const auto& [path_comp, path_factors] : view_path_) {
      if (path_comp == comp && path_factors == factors) return true;
    }
    return false;
  }

  void satisfy(const std::string& iface, const Requirements& reqs,
               net::NodeId from, double rate, std::size_t depth,
               bool entry_level, InstanceId parent, const Sink& sink) {
    if (depth > request_.max_depth) return;

    // (a) Reuse an already-running instance.
    if (!entry_level) {
      for (std::size_t e = 0; e < existing_.size(); ++e) {
        try_existing(e, iface, reqs, from, rate, parent, sink);
      }
    }

    // (b) Deploy a new component.
    for (const spec::ComponentDef& comp : spec_.components) {
      const spec::LinkageDecl* impl = comp.find_implements(iface);
      if (impl == nullptr) continue;
      if (entry_level && request_.pin_entry_to_client) {
        try_new(comp, *impl, request_.client_node, iface, reqs, from, rate,
                depth, parent, sink);
      } else {
        for (net::NodeId node : network_.all_nodes()) {
          try_new(comp, *impl, node, iface, reqs, from, rate, depth, parent,
                  sink);
        }
      }
    }
  }

  void try_existing(std::size_t index, const std::string& iface,
                    const Requirements& reqs, net::NodeId from, double rate,
                    InstanceId parent, const Sink& sink) {
    const ExistingInstance& inst = existing_[index];
    ++stats_.candidates_examined;
    auto eff_it = inst.effective.find(iface);
    if (eff_it == inst.effective.end()) return;
    if (duplicates_parent(parent, inst.component, inst.factors) ||
        view_duplicated_on_path(inst.component, inst.factors)) {
      ++stats_.rejected_duplicate_view;
      return;
    }

    const double capacity = inst.component->behaviors.capacity_rps;
    if (capacity > 0.0 &&
        inst.current_load_rps + existing_added_rps_[index] + rate > capacity) {
      ++stats_.rejected_instance_capacity;
      return;
    }

    const net::Route* route_in = network_.cached_route(from, inst.node);
    if (route_in->bottleneck_bandwidth_bps == 0.0 && !route_in->local()) {
      ++stats_.rejected_unroutable;
      return;
    }
    const net::Route* route_back = network_.cached_route(inst.node, from);

    // §3.3 condition 2 against the instance's stored effective properties.
    for (const auto& [prop, required] : reqs) {
      spec::PropertyValue v;
      auto vit = eff_it->second.find(prop);
      if (vit != eff_it->second.end()) v = vit->second;
      v = env_.transform_along(spec_.rules, prop, v, *route_back, inst.node);
      if (!v.satisfies(required)) {
        ++stats_.rejected_compatibility;
        return;
      }
    }

    // §3.3 condition 3 for the new edge.
    if (!reserve_route(*route_in, inst.component->behaviors, rate)) {
      ++stats_.rejected_link_capacity;
      return;
    }

    InstanceId pid;
    bool created = false;
    auto placed = placed_existing_.find(inst.runtime_id);
    if (placed != placed_existing_.end()) {
      pid = placed->second;
    } else {
      pid = static_cast<InstanceId>(placements_.size());
      Placement p;
      p.id = pid;
      p.component = inst.component;
      p.node = inst.node;
      p.factors = inst.factors;
      p.effective = inst.effective;
      p.expected_latency_s = inst.downstream_latency_s;
      p.reuse_existing = true;
      p.existing_runtime_id = inst.runtime_id;
      placements_.push_back(std::move(p));
      placed_existing_[inst.runtime_id] = pid;
      created = true;
    }
    placements_[pid].inbound_rate_rps += rate;
    existing_added_rps_[index] += rate;

    const double rtt = edge_rtt_seconds(
        network_, *route_in, inst.component->behaviors.bytes_per_request,
        inst.component->behaviors.bytes_per_response);
    // An existing instance is warm on both tracks.
    sink(pid, rtt + inst.downstream_latency_s,
         rtt + inst.downstream_latency_s);

    // Undo.
    existing_added_rps_[index] -= rate;
    placements_[pid].inbound_rate_rps -= rate;
    if (created) {
      placed_existing_.erase(inst.runtime_id);
      placements_.pop_back();
    }
    release_route(*route_in, inst.component->behaviors, rate);
  }

  void try_new(const spec::ComponentDef& comp, const spec::LinkageDecl& impl,
               net::NodeId node, const std::string& iface,
               const Requirements& reqs, net::NodeId from, double rate,
               std::size_t depth, InstanceId parent, const Sink& sink) {
    ++stats_.candidates_examined;

    // Static components only participate through pre-placed instances.
    if (comp.static_placement) {
      ++stats_.rejected_static;
      return;
    }

    // Cycle guard: never place the same component twice on the same node
    // along one requirement path.
    if (path_.count({&comp, node.value}) != 0) {
      ++stats_.rejected_cycle;
      return;
    }

    const spec::Environment& node_env = env_.node_env(node);

    // §3.3 condition 1: installation conditions.
    for (const spec::Condition& cond : comp.conditions) {
      if (!cond.holds(node_env)) {
        ++stats_.rejected_condition;
        return;
      }
    }

    // Bind factors against the node environment.
    FactorBindings factors;
    for (const spec::PropertyAssignment& f : comp.factors) {
      spec::PropertyValue v = resolve(f.value, node_env, factors);
      if (!v.is_set()) {
        ++stats_.rejected_factor;
        return;  // unbindable factor: infeasible here
      }
      factors.values[f.property] = std::move(v);
    }
    if (duplicates_parent(parent, &comp, factors) ||
        view_duplicated_on_path(&comp, factors)) {
      ++stats_.rejected_duplicate_view;
      return;
    }

    const net::Route* route_in = network_.cached_route(from, node);
    if (route_in->bottleneck_bandwidth_bps == 0.0 && !route_in->local()) {
      ++stats_.rejected_unroutable;
      return;
    }
    const net::Route* route_back = network_.cached_route(node, from);

    // Early filter for §3.3 condition 2: a *declared* value that fails its
    // requirement can only be rescued by a modification rule; without a rule
    // for the property, prune before recursing.
    for (const auto& [prop, required] : reqs) {
      if (auto declared = impl.value_of(prop)) {
        const spec::PropertyValue v = resolve(*declared, node_env, factors);
        if (v.is_set() && spec_.rules.find(prop) == nullptr &&
            !v.satisfies(required)) {
          ++stats_.subtrees_pruned;
          ++stats_.rejected_compatibility;
          return;
        }
      }
    }

    // §3.3 condition 3: node CPU, component capacity, inbound link load.
    const double cpu_add = rate * comp.behaviors.cpu_per_request;
    const net::Node& host = network_.node(node);
    if (node_load_[node.value] + cpu_add > host.cpu_available()) {
      ++stats_.rejected_node_capacity;
      return;
    }
    if (comp.behaviors.capacity_rps > 0.0 &&
        rate > comp.behaviors.capacity_rps) {
      ++stats_.rejected_instance_capacity;
      return;
    }
    if (!reserve_route(*route_in, comp.behaviors, rate)) {
      ++stats_.rejected_link_capacity;
      return;
    }
    node_load_[node.value] += cpu_add;
    path_.insert({&comp, node.value});
    if (comp.is_view()) view_path_.emplace_back(&comp, factors);

    const InstanceId pid = static_cast<InstanceId>(placements_.size());
    {
      Placement p;
      p.id = pid;
      p.component = &comp;
      p.node = node;
      p.factors = factors;
      p.inbound_rate_rps = rate;
      placements_.push_back(std::move(p));
    }

    const double cpu_time_s =
        comp.behaviors.cpu_per_request / host.cpu_capacity;
    // Cold-cache discount for newly deployed views (see PlanRequest).
    const double warm_rrf = comp.behaviors.rrf;
    double padded_rrf = warm_rrf;
    if (comp.is_view()) {
      padded_rrf =
          std::min(1.0, warm_rrf +
                            request_.cold_view_penalty * (1.0 - warm_rrf));
    }
    std::vector<ChildRecord> children;

    satisfy_children(
        comp, factors, node_env, pid, node, rate * padded_rrf, depth,
        0, 0.0, 0.0, children,
        [&](double children_padded_s, double children_warm_s) {
          Placement& self = placements_[pid];
          self.expected_latency_s = cpu_time_s + warm_rrf * children_warm_s;
          const double padded_latency_s =
              cpu_time_s + padded_rrf * children_padded_s;
          self.effective =
              compute_effective(comp, node_env, factors, children);

          // §3.3 condition 2 in full: effective properties, degraded along
          // the route back to the consumer, must satisfy the requirements.
          auto eff_it = self.effective.find(iface);
          PSF_CHECK(eff_it != self.effective.end());
          for (const auto& [prop, required] : reqs) {
            spec::PropertyValue v;
            auto vit = eff_it->second.find(prop);
            if (vit != eff_it->second.end()) v = vit->second;
            v = env_.transform_along(spec_.rules, prop, v, *route_back, node);
            if (!v.satisfies(required)) {
              ++stats_.subtrees_pruned;
              ++stats_.rejected_compatibility;
              return;
            }
          }

          const double rtt = edge_rtt_seconds(
              network_, *route_in, comp.behaviors.bytes_per_request,
              comp.behaviors.bytes_per_response);
          sink(pid, rtt + padded_latency_s, rtt + self.expected_latency_s);
        });

    // Undo (children are fully undone by their own frames).
    PSF_CHECK(placements_.size() == static_cast<std::size_t>(pid) + 1);
    placements_.pop_back();
    if (comp.is_view()) view_path_.pop_back();
    path_.erase({&comp, node.value});
    node_load_[node.value] -= cpu_add;
    release_route(*route_in, comp.behaviors, rate);
  }

  // Satisfies comp.requires_[index..) in declaration order; when all are
  // placed, calls done(total_cost) where total_cost = Σ over children of
  // (edge rtt + child subtree latency).
  void satisfy_children(const spec::ComponentDef& comp,
                        const FactorBindings& factors,
                        const spec::Environment& node_env, InstanceId parent,
                        net::NodeId node, double child_rate, std::size_t depth,
                        std::size_t index, double padded_so_far,
                        double warm_so_far, std::vector<ChildRecord>& children,
                        const std::function<void(double, double)>& done) {
    if (index == comp.requires_.size()) {
      done(padded_so_far, warm_so_far);
      return;
    }
    const spec::LinkageDecl& req = comp.requires_[index];

    // Resolve this edge's requirements to literals (factor/env refs bind in
    // the *requiring* component's context).
    Requirements reqs;
    for (const spec::PropertyAssignment& pa : req.properties) {
      spec::PropertyValue v = resolve(pa.value, node_env, factors);
      if (v.is_set()) reqs.emplace_back(pa.property, std::move(v));
    }

    satisfy(req.interface_name, reqs, node, child_rate, depth + 1,
            /*entry_level=*/false, parent,
            [&](InstanceId child_root, double edge_padded_s,
                double edge_warm_s) {
              const net::NodeId child_node = placements_[child_root].node;
              wires_.push_back(Wire{parent, req.interface_name, child_root,
                                    *network_.cached_route(node, child_node),
                                    child_rate});
              children.push_back(
                  ChildRecord{child_root, req.interface_name,
                              network_.cached_route(child_node, node)});
              satisfy_children(comp, factors, node_env, parent, node,
                               child_rate, depth, index + 1,
                               padded_so_far + edge_padded_s,
                               warm_so_far + edge_warm_s, children, done);
              children.pop_back();
              wires_.pop_back();
            });
  }

  // ---- constraint helpers -------------------------------------------------

  bool reserve_route(const net::Route& route, const spec::Behaviors& b,
                     double rate) {
    const double add_bps =
        rate *
        static_cast<double>(b.bytes_per_request + b.bytes_per_response) * 8.0;
    for (net::LinkId lid : route.links) {
      const net::Link& link = network_.link(lid);
      if (link_load_[lid.value] + add_bps > link.bandwidth_available_bps()) {
        return false;
      }
    }
    for (net::LinkId lid : route.links) link_load_[lid.value] += add_bps;
    return true;
  }

  void release_route(const net::Route& route, const spec::Behaviors& b,
                     double rate) {
    const double add_bps =
        rate *
        static_cast<double>(b.bytes_per_request + b.bytes_per_response) * 8.0;
    for (net::LinkId lid : route.links) link_load_[lid.value] -= add_bps;
  }

  EffectiveProps compute_effective(
      const spec::ComponentDef& comp, const spec::Environment& node_env,
      const FactorBindings& factors,
      const std::vector<ChildRecord>& children) const {
    EffectiveProps out;
    for (const spec::LinkageDecl& decl : comp.implements) {
      const spec::InterfaceDef* iface =
          spec_.find_interface(decl.interface_name);
      PSF_CHECK(iface != nullptr);
      auto& props = out[decl.interface_name];
      for (const std::string& prop : iface->properties) {
        spec::PropertyValue value;
        if (auto expr = decl.value_of(prop)) {
          value = resolve(*expr, node_env, factors);
        } else if (comp.transparent) {
          // Inherit from downstream: the minimum across children of the
          // child's effective value transformed along the connecting route.
          spec::PropertyValue inherited;
          bool first = true;
          for (const ChildRecord& child : children) {
            const Placement& cp = placements_[child.root];
            spec::PropertyValue cv;
            for (const auto& [child_iface, child_props] : cp.effective) {
              auto pit = child_props.find(prop);
              if (pit != child_props.end()) {
                cv = pit->second;
                break;
              }
            }
            cv = env_.transform_along(spec_.rules, prop, cv,
                                      *child.route_to_parent, cp.node);
            if (first) {
              inherited = cv;
              first = false;
            } else {
              inherited = spec::PropertyValue::min_of(inherited, cv);
            }
          }
          value = inherited;
        }
        if (value.is_set()) props[prop] = value;
      }
    }
    return out;
  }

  // ---- plan completion ------------------------------------------------

  void finish_plan(InstanceId root, double padded_s, double warm_s) {
    ++stats_.plans_scored;
    PlanMetrics metrics;
    // Report the warm (steady-state) expectation; score with the padded
    // value so cold-cache effects influence the choice.
    metrics.expected_latency_s = warm_s;

    const net::NodeId origin = request_.code_origin.valid()
                                   ? request_.code_origin
                                   : request_.client_node;
    double headroom = 1.0;
    for (const Placement& p : placements_) {
      if (p.reuse_existing) {
        ++metrics.reused_components;
        continue;
      }
      ++metrics.new_components;
      const net::Route* code_route = network_.cached_route(origin, p.node);
      for (net::LinkId lid : code_route->links) {
        const net::Link& link = network_.link(lid);
        metrics.deployment_cost_s +=
            link.latency.seconds() +
            static_cast<double>(p.component->behaviors.code_size_bytes) *
                8.0 / link.bandwidth_bps;
      }
      if (p.component->behaviors.capacity_rps > 0.0) {
        headroom = std::min(headroom,
                            1.0 - p.inbound_rate_rps /
                                      p.component->behaviors.capacity_rps);
      }
    }
    for (std::size_t i = 0; i < node_load_.size(); ++i) {
      if (node_load_[i] <= 0.0) continue;
      const net::Node& n =
          network_.node(net::NodeId{static_cast<std::uint32_t>(i)});
      const double u = node_load_[i] / n.cpu_available();
      metrics.max_node_utilization = std::max(metrics.max_node_utilization, u);
      headroom = std::min(headroom, 1.0 - u);
    }
    for (std::size_t i = 0; i < link_load_.size(); ++i) {
      if (link_load_[i] <= 0.0) continue;
      const net::Link& l =
          network_.link(net::LinkId{static_cast<std::uint32_t>(i)});
      const double u = link_load_[i] / l.bandwidth_available_bps();
      metrics.max_link_utilization = std::max(metrics.max_link_utilization, u);
      headroom = std::min(headroom, 1.0 - u);
    }
    metrics.min_headroom = headroom;

    PlanMetrics scoring = metrics;
    scoring.expected_latency_s = padded_s;
    const Score score = score_plan(request_.objective, scoring);
    if (best_ && !(score < best_score_)) return;

    DeploymentPlan plan;
    plan.placements = placements_;
    plan.wires = wires_;
    plan.entry = root;
    plan.metrics = metrics;
    best_ = std::move(plan);
    best_score_ = score;
  }

  const spec::ServiceSpec& spec_;
  const EnvironmentView& env_;
  const net::Network& network_;
  const PlanRequest& request_;
  const std::vector<ExistingInstance>& existing_;
  SearchStats& stats_;

  // Working state (mutated along the DFS, undone on backtrack).
  std::vector<Placement> placements_;
  std::vector<Wire> wires_;
  std::vector<double> node_load_;  // added cpu units/s per node
  std::vector<double> link_load_;  // added bps per link
  std::vector<double> existing_added_rps_;
  std::map<std::uint64_t, InstanceId> placed_existing_;
  std::set<std::pair<const spec::ComponentDef*, std::uint32_t>> path_;
  std::vector<std::pair<const spec::ComponentDef*, FactorBindings>>
      view_path_;

  std::optional<DeploymentPlan> best_;
  Score best_score_;
};

}  // namespace

std::string SearchStats::to_string() const {
  std::ostringstream oss;
  oss << "examined " << candidates_examined << " candidates, scored "
      << plans_scored << " plan(s); rejections:";
  const std::pair<const char*, std::uint64_t> rows[] = {
      {"static", rejected_static},
      {"cycle", rejected_cycle},
      {"duplicate-view", rejected_duplicate_view},
      {"condition", rejected_condition},
      {"factor", rejected_factor},
      {"compatibility", rejected_compatibility},
      {"node-capacity", rejected_node_capacity},
      {"link-capacity", rejected_link_capacity},
      {"instance-capacity", rejected_instance_capacity},
      {"unroutable", rejected_unroutable},
  };
  bool any = false;
  for (const auto& [label, count] : rows) {
    if (count == 0) continue;
    oss << " " << label << "=" << count;
    any = true;
  }
  if (!any) oss << " none";
  return oss.str();
}

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kMinLatency: return "min-latency";
    case Objective::kMinDeploymentCost: return "min-deployment-cost";
    case Objective::kMaxCapacity: return "max-capacity";
  }
  return "?";
}

std::vector<util::Expected<DeploymentPlan>> Planner::plan_many(
    const std::vector<PlanRequest>& requests,
    const std::vector<ExistingInstance>& existing,
    std::size_t num_threads) const {
  std::vector<util::Expected<DeploymentPlan>> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(util::internal_error("not planned"));
  }
  if (requests.empty()) return results;

  const std::size_t threads =
      num_threads == 0
          ? std::min(requests.size(), util::ThreadPool::default_thread_count())
          : num_threads;
  if (threads <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      results[i] = plan(requests[i], existing);
    }
    return results;
  }
  util::ThreadPool pool(threads);
  pool.parallel_for(requests.size(), [&](std::size_t i) {
    results[i] = plan(requests[i], existing);
  });
  return results;
}

util::Expected<DeploymentPlan> Planner::plan(
    const PlanRequest& request, const std::vector<ExistingInstance>& existing,
    SearchStats* stats) const {
  if (spec_.find_interface(request.interface_name) == nullptr) {
    return util::not_found("service '" + spec_.name +
                           "' has no interface named '" +
                           request.interface_name + "'");
  }
  if (!request.client_node.valid() ||
      request.client_node.value >= env_.network().node_count()) {
    return util::invalid_argument("invalid client node");
  }
  if (request.request_rate_rps < 0.0) {
    return util::invalid_argument("negative request rate");
  }

  SearchStats local_stats;
  Search search(spec_, env_, request, existing, local_stats);
  std::optional<DeploymentPlan> best = search.run();
  if (stats != nullptr) *stats = local_stats;
  if (!best) {
    return util::unsatisfiable(
        "no deployment of '" + spec_.name + "' satisfies interface '" +
        request.interface_name + "' from node '" +
        env_.network().node(request.client_node).name + "'");
  }
  return std::move(*best);
}

}  // namespace psf::planner
