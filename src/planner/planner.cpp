// detlint:ordered-output — search visit order decides plan tie-breaks.
// detlint:allow-file(DET004 PlanRequest::deadline_budget is a wall-clock anytime budget by design)
#include "planner/planner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "planner/cluster.hpp"
#include "planner/dp_chain.hpp"
#include "planner/hierarchy.hpp"
#include "planner/linkage.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace psf::planner {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Round-trip cost of one request/response exchange over a route.
double edge_rtt_seconds(const net::Network& network, const net::Route& route,
                        std::uint64_t bytes_request,
                        std::uint64_t bytes_response) {
  double total = 0.0;
  for (net::LinkId lid : route.links) {
    const net::Link& link = network.link(lid);
    total += 2.0 * link.latency.seconds();
    total += static_cast<double>(bytes_request) * 8.0 / link.bandwidth_bps;
    total += static_cast<double>(bytes_response) * 8.0 / link.bandwidth_bps;
  }
  return total;
}

// Lexicographic plan score: lower is better on every field.
struct Score {
  double primary = kInfinity;
  double secondary = kInfinity;
  double tertiary = kInfinity;

  bool operator<(const Score& other) const {
    if (primary != other.primary) return primary < other.primary;
    if (secondary != other.secondary) return secondary < other.secondary;
    return tertiary < other.tertiary;
  }
};

bool score_equal(const Score& a, const Score& b) {
  return !(a < b) && !(b < a);
}

Score score_plan(Objective objective, const PlanMetrics& m) {
  switch (objective) {
    case Objective::kMinLatency:
      return {m.expected_latency_s, m.deployment_cost_s,
              static_cast<double>(m.new_components)};
    case Objective::kMinDeploymentCost:
      return {m.deployment_cost_s + static_cast<double>(m.new_components),
              m.expected_latency_s, 0.0};
    case Objective::kMaxCapacity:
      return {-m.min_headroom, m.expected_latency_s, m.deployment_cost_s};
  }
  return {};
}

// One entry-level candidate of the mapping search: the depth-1 placement
// choice (component × node) that roots an independent subtree. The parallel
// search fans these out across workers.
struct EntryBranch {
  const spec::ComponentDef* component = nullptr;
  const spec::LinkageDecl* impl = nullptr;
  net::NodeId node;
};

// The incumbent's primary score, shared across search workers so that one
// worker's good plan prunes the others' subtrees. Only the primary field is
// shared: it is sufficient for the strict bound test, and a single double
// can be maintained lock-free.
class SharedIncumbent {
 public:
  double load() const { return primary_.load(std::memory_order_relaxed); }

  void offer(double primary) {
    double cur = primary_.load(std::memory_order_relaxed);
    while (primary < cur &&
           !primary_.compare_exchange_weak(cur, primary,
                                           std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> primary_{kInfinity};
};

class Search {
 public:
  // `candidate_nodes` restricts where NEW components may be placed (existing
  // instances are reachable regardless). The flat search passes every node;
  // a hierarchical refinement passes its cluster's candidate set.
  // `deadline` (when enabled) turns the search anytime: once any incumbent
  // exists — this worker's or the fleet's — passing the deadline unwinds
  // the DFS and returns the best plan found so far.
  Search(const spec::ServiceSpec& spec, const EnvironmentView& env,
         const spec::ImplementerIndex& index, const PlanRequest& request,
         const std::vector<ExistingInstance>& existing,
         SharedIncumbent& shared, SearchStats& stats,
         const std::vector<net::NodeId>& candidate_nodes,
         std::chrono::steady_clock::time_point deadline, bool has_deadline)
      : spec_(spec),
        env_(env),
        network_(env.network()),
        index_(index),
        request_(request),
        existing_(existing),
        shared_(shared),
        stats_(stats),
        bound_pruning_(request.bound_pruning),
        candidate_nodes_(candidate_nodes),
        deadline_(deadline),
        has_deadline_(has_deadline) {
    node_load_.assign(network_.node_count(), 0.0);
    link_load_.assign(network_.link_count(), 0.0);
    existing_added_rps_.assign(existing.size(), 0.0);
  }

  // Explores branches[first], branches[first + stride], ... in order. With
  // first=0, stride=1 this is exactly the serial search; a parallel worker
  // takes a stride-W slice so that adjacent (similar-cost) branches spread
  // across workers.
  void run_branches(const std::vector<EntryBranch>& branches,
                    std::size_t first, std::size_t stride) {
    if (request_.max_depth < 1) return;
    for (std::size_t i = first; i < branches.size(); i += stride) {
      if (expired()) return;
      current_branch_ = i;
      const EntryBranch& b = branches[i];
      try_new(*b.component, *b.impl, b.node, request_.interface_name,
              request_.required_properties, request_.client_node,
              request_.request_rate_rps, /*depth=*/1, kNoParent,
              /*discount=*/1.0, /*committed=*/0.0,
              [this](InstanceId root, double padded_s, double warm_s) {
                finish_plan(root, padded_s, warm_s);
              });
    }
  }

  std::optional<DeploymentPlan> take_best() { return std::move(best_); }
  const Score& best_score() const { return best_score_; }
  std::size_t best_branch() const { return best_branch_; }

 private:
  using Requirements =
      std::vector<std::pair<std::string, spec::PropertyValue>>;
  // sink(root, padded, warm): both values are edge_rtt + subtree latency as
  // seen from the caller. `padded` applies the cold-view discount to newly
  // deployed views and drives plan *scoring*; `warm` uses true RRFs and is
  // what gets recorded (and later reused as an existing instance's
  // downstream latency once its cache is warm).
  using Sink = std::function<void(InstanceId, double, double)>;

  // A solved child edge, kept for transparent property inheritance.
  struct ChildRecord {
    InstanceId root;
    std::string iface;
    const net::Route* route_to_parent;  // from the child's node to `parent`
  };

  // ---- value resolution ---------------------------------------------------

  spec::PropertyValue resolve(const spec::ValueExpr& expr,
                              const spec::Environment& node_env,
                              const FactorBindings& factors) const {
    switch (expr.kind) {
      case spec::ValueExpr::Kind::kLiteral:
        return expr.literal;
      case spec::ValueExpr::Kind::kEnvRef:
        if (expr.env_scope == spec::EnvScope::kNode) {
          return node_env.get(expr.ref_name).value_or(spec::PropertyValue());
        }
        return {};  // link refs are not meaningful at placement time
      case spec::ValueExpr::Kind::kFactorRef: {
        auto it = factors.values.find(expr.ref_name);
        return it == factors.values.end() ? spec::PropertyValue()
                                          : it->second;
      }
      case spec::ValueExpr::Kind::kAny:
        return {};
    }
    return {};
  }

  // ---- branch-and-bound ---------------------------------------------------

  // The incumbent primary score this worker must beat: the better of its own
  // best and the fleet-wide shared best.
  double incumbent_primary() const {
    double inc = shared_.load();
    if (best_.has_value() && best_score_.primary < inc) {
      inc = best_score_.primary;
    }
    return inc;
  }

  // Strict bound test with a small relative margin. The margin absorbs
  // floating-point reassociation between the incrementally accumulated bound
  // and the final score computation, so a mathematical tie is never pruned —
  // that is what keeps the parallel result bit-identical to the serial one
  // (ties keep the earliest branch, and an exact-tie subtree must survive to
  // report its candidate).
  bool should_prune(double bound) const {
    const double inc = incumbent_primary();
    if (inc == kInfinity) return false;
    return bound > inc + 1e-9 * std::max(1.0, std::abs(inc));
  }

  // Anytime deadline. Polled on a counter so the clock read stays off the
  // per-candidate hot path; never fires before SOME incumbent exists (the
  // search must not come back empty-handed just because the budget was
  // tiny), so at worst a bounded tail of ~kDeadlinePollMask candidates runs
  // past the deadline after the first plan completes.
  static constexpr std::uint32_t kDeadlinePollMask = 0x3F;
  bool expired() {
    if (!has_deadline_) return false;
    if (deadline_expired_) return true;
    if ((++deadline_poll_ & kDeadlinePollMask) != 0) return false;
    if (incumbent_primary() == kInfinity) return false;
    if (std::chrono::steady_clock::now() >= deadline_) {
      deadline_expired_ = true;
      stats_.deadline_hit = true;
    }
    return deadline_expired_;
  }

  // Code-transfer time for deploying `comp` at `node` (the deployment-cost
  // metric's per-placement term).
  double code_transfer_cost(const spec::ComponentDef& comp,
                            net::NodeId node) const {
    const net::NodeId origin = request_.code_origin.valid()
                                   ? request_.code_origin
                                   : request_.client_node;
    const net::Route* route = network_.cached_route(origin, node);
    double cost = 0.0;
    for (net::LinkId lid : route->links) {
      const net::Link& link = network_.link(lid);
      cost += link.latency.seconds() +
              static_cast<double>(comp.behaviors.code_size_bytes) * 8.0 /
                  link.bandwidth_bps;
    }
    return cost;
  }

  // ---- search ---------------------------------------------------------

  // Explores every feasible way to provide `iface` (meeting `reqs`) to a
  // consumer at `from`; for each, invokes `sink` with the working state
  // extended by the candidate subtree, then undoes the extension.
  //
  // `discount` and `committed` carry the admissible lower bound through the
  // recursion. Their meaning depends on the active objective:
  //  - kMinLatency: `committed` is the padded latency already locked into the
  //    partial plan (in final-plan seconds); `discount` is the product of
  //    the padded RRFs of the ancestors, i.e. the factor that converts an
  //    edge cost at this depth into final-plan seconds.
  //  - kMaxCapacity: `committed` is the maximum resource utilization
  //    observed while reserving the partial plan (final utilization of those
  //    resources can only be higher).
  //  - kMinDeploymentCost: the bound lives in the `committed_cost_` member
  //    instead (placement-scoped rather than path-scoped).
  static constexpr InstanceId kNoParent = UINT32_MAX;

  // True when linking `parent` to a candidate that is the *same component
  // with the same factor bindings*. Two identically-configured instances of
  // one view hold the same data, so chaining them yields no additional
  // request reduction — permitting it would let the search stack caches to
  // multiply RRF for free (a degenerate optimum the paper's case study
  // never exhibits; Seattle's view chains to San Diego's because their
  // trust factors differ).
  bool duplicates_parent(InstanceId parent, const spec::ComponentDef* comp,
                         const FactorBindings& factors) const {
    if (parent == kNoParent) return false;
    const Placement& p = placements_[parent];
    return p.component == comp && p.factors == factors;
  }

  // Views extend the duplicate check to the entire requirement path: a
  // second identically-configured instance of one data view anywhere in the
  // chain holds the same cached contents, so it contributes no real request
  // reduction — even when a transparent tunnel sits between the two copies.
  bool view_duplicated_on_path(const spec::ComponentDef* comp,
                               const FactorBindings& factors) const {
    if (!comp->is_view()) return false;
    for (const auto& [path_comp, path_factors] : view_path_) {
      if (path_comp == comp && path_factors == factors) return true;
    }
    return false;
  }

  void satisfy(const std::string& iface, const Requirements& reqs,
               net::NodeId from, double rate, std::size_t depth,
               InstanceId parent, double discount, double committed,
               const Sink& sink) {
    if (depth > request_.max_depth) return;
    if (expired()) return;

    // (a) Reuse an already-running instance.
    for (std::size_t e = 0; e < existing_.size(); ++e) {
      try_existing(e, iface, reqs, from, rate, parent, discount, committed,
                   sink);
    }

    // (b) Deploy a new component.
    auto it = index_.find(iface);
    if (it == index_.end()) return;
    for (const spec::ImplementerRef& ref : it->second) {
      for (net::NodeId node : candidate_nodes_) {
        if (expired()) return;
        try_new(*ref.component, *ref.linkage, node, iface, reqs, from, rate,
                depth, parent, discount, committed, sink);
      }
    }
  }

  void try_existing(std::size_t index, const std::string& iface,
                    const Requirements& reqs, net::NodeId from, double rate,
                    InstanceId parent, double discount, double committed,
                    const Sink& sink) {
    const ExistingInstance& inst = existing_[index];
    ++stats_.candidates_examined;
    if (!network_.node_up(inst.node)) {
      ++stats_.rejected_node_down;
      return;
    }
    auto eff_it = inst.effective.find(iface);
    if (eff_it == inst.effective.end()) return;
    if (duplicates_parent(parent, inst.component, inst.factors) ||
        view_duplicated_on_path(inst.component, inst.factors)) {
      ++stats_.rejected_duplicate_view;
      return;
    }

    const double capacity = inst.component->behaviors.capacity_rps;
    if (capacity > 0.0 &&
        inst.current_load_rps + existing_added_rps_[index] + rate > capacity) {
      ++stats_.rejected_instance_capacity;
      return;
    }

    const net::Route* route_in = network_.cached_route(from, inst.node);
    if (route_in->bottleneck_bandwidth_bps == 0.0 && !route_in->local()) {
      ++stats_.rejected_unroutable;
      return;
    }
    const net::Route* route_back = network_.cached_route(inst.node, from);
    // The response path must be routable too: on an asymmetric topology a
    // candidate whose return route is severed would otherwise slip through
    // to property transformation over a dead route.
    if (route_back->bottleneck_bandwidth_bps == 0.0 && !route_back->local()) {
      ++stats_.rejected_unroutable;
      return;
    }

    // §3.3 condition 2 against the instance's stored effective properties.
    for (const auto& [prop, required] : reqs) {
      spec::PropertyValue v;
      auto vit = eff_it->second.find(prop);
      if (vit != eff_it->second.end()) v = vit->second;
      v = memo_.transform(env_, spec_.rules, prop, v, *route_back, inst.node);
      if (!v.satisfies(required)) {
        ++stats_.rejected_compatibility;
        return;
      }
    }

    const double rtt = edge_rtt_seconds(
        network_, *route_in, inst.component->behaviors.bytes_per_request,
        inst.component->behaviors.bytes_per_response);

    // Bound: reusing an instance commits this edge's RTT plus the instance's
    // (exactly known) downstream latency; it adds no deployment cost, and
    // for capacity only the inbound links tighten.
    if (bound_pruning_) {
      double bound = -kInfinity;
      switch (request_.objective) {
        case Objective::kMinLatency:
          bound = committed + discount * (rtt + inst.downstream_latency_s);
          break;
        case Objective::kMinDeploymentCost:
          bound = committed_cost_;
          break;
        case Objective::kMaxCapacity: {
          double u = committed;
          const double add_bps =
              rate *
              static_cast<double>(
                  inst.component->behaviors.bytes_per_request +
                  inst.component->behaviors.bytes_per_response) *
              8.0;
          for (net::LinkId lid : route_in->links) {
            const net::Link& link = network_.link(lid);
            u = std::max(u, (link_load_[lid.value] + add_bps) /
                                link.bandwidth_available_bps());
          }
          bound = u - 1.0;
          break;
        }
      }
      if (should_prune(bound)) {
        ++stats_.pruned_by_bound;
        return;
      }
    }

    // §3.3 condition 3 for the new edge.
    if (!reserve_route(*route_in, inst.component->behaviors, rate)) {
      ++stats_.rejected_link_capacity;
      return;
    }

    InstanceId pid;
    bool created = false;
    auto placed = placed_existing_.find(inst.runtime_id);
    if (placed != placed_existing_.end()) {
      pid = placed->second;
    } else {
      pid = static_cast<InstanceId>(placements_.size());
      Placement p;
      p.id = pid;
      p.component = inst.component;
      p.node = inst.node;
      p.factors = inst.factors;
      p.effective = inst.effective;
      p.expected_latency_s = inst.downstream_latency_s;
      p.reuse_existing = true;
      p.existing_runtime_id = inst.runtime_id;
      placements_.push_back(std::move(p));
      placed_existing_[inst.runtime_id] = pid;
      created = true;
    }
    placements_[pid].inbound_rate_rps += rate;
    existing_added_rps_[index] += rate;

    // An existing instance is warm on both tracks.
    sink(pid, rtt + inst.downstream_latency_s,
         rtt + inst.downstream_latency_s);

    // Undo.
    existing_added_rps_[index] -= rate;
    placements_[pid].inbound_rate_rps -= rate;
    if (created) {
      placed_existing_.erase(inst.runtime_id);
      placements_.pop_back();
    }
    release_route(*route_in, inst.component->behaviors, rate);
  }

  void try_new(const spec::ComponentDef& comp, const spec::LinkageDecl& impl,
               net::NodeId node, const std::string& iface,
               const Requirements& reqs, net::NodeId from, double rate,
               std::size_t depth, InstanceId parent, double discount,
               double committed, const Sink& sink) {
    ++stats_.candidates_examined;

    // A crashed/down node hosts nothing new.
    if (!network_.node_up(node)) {
      ++stats_.rejected_node_down;
      return;
    }

    // Static components only participate through pre-placed instances.
    if (comp.static_placement) {
      ++stats_.rejected_static;
      return;
    }

    // Cycle guard: never place the same component twice on the same node
    // along one requirement path.
    if (path_.count({&comp, node.value}) != 0) {
      ++stats_.rejected_cycle;
      return;
    }

    const spec::Environment& node_env = env_.node_env(node);

    // §3.3 condition 1: installation conditions.
    for (const spec::Condition& cond : comp.conditions) {
      if (!cond.holds(node_env)) {
        ++stats_.rejected_condition;
        return;
      }
    }

    // Bind factors against the node environment.
    FactorBindings factors;
    for (const spec::PropertyAssignment& f : comp.factors) {
      spec::PropertyValue v = resolve(f.value, node_env, factors);
      if (!v.is_set()) {
        ++stats_.rejected_factor;
        return;  // unbindable factor: infeasible here
      }
      factors.values[f.property] = std::move(v);
    }
    if (duplicates_parent(parent, &comp, factors) ||
        view_duplicated_on_path(&comp, factors)) {
      ++stats_.rejected_duplicate_view;
      return;
    }

    const net::Route* route_in = network_.cached_route(from, node);
    if (route_in->bottleneck_bandwidth_bps == 0.0 && !route_in->local()) {
      ++stats_.rejected_unroutable;
      return;
    }
    const net::Route* route_back = network_.cached_route(node, from);

    // Early filter for §3.3 condition 2: a *declared* value that fails its
    // requirement can only be rescued by a modification rule; without a rule
    // for the property, prune before recursing.
    for (const auto& [prop, required] : reqs) {
      if (auto declared = impl.value_of(prop)) {
        const spec::PropertyValue v = resolve(*declared, node_env, factors);
        if (v.is_set() && spec_.rules.find(prop) == nullptr &&
            !v.satisfies(required)) {
          ++stats_.subtrees_pruned;
          ++stats_.rejected_compatibility;
          return;
        }
      }
    }

    // §3.3 condition 3: node CPU, component capacity, inbound link load.
    const double cpu_add = rate * comp.behaviors.cpu_per_request;
    const net::Node& host = network_.node(node);
    if (node_load_[node.value] + cpu_add > host.cpu_available()) {
      ++stats_.rejected_node_capacity;
      return;
    }
    if (comp.behaviors.capacity_rps > 0.0 &&
        rate > comp.behaviors.capacity_rps) {
      ++stats_.rejected_instance_capacity;
      return;
    }

    const double cpu_time_s =
        comp.behaviors.cpu_per_request / host.cpu_capacity;
    const double rtt = edge_rtt_seconds(
        network_, *route_in, comp.behaviors.bytes_per_request,
        comp.behaviors.bytes_per_response);
    // Cold-cache discount for newly deployed views (see PlanRequest).
    const double warm_rrf = comp.behaviors.rrf;
    double padded_rrf = warm_rrf;
    if (comp.is_view()) {
      padded_rrf =
          std::min(1.0, warm_rrf +
                            request_.cold_view_penalty * (1.0 - warm_rrf));
    }

    // Bound: every completion through this candidate pays at least the work
    // already committed plus this edge's RTT and CPU time — all remaining
    // contributions are non-negative, so pruning here is admissible.
    double child_committed = committed;
    double cost_add = 0.0;
    if (bound_pruning_) {
      double bound = -kInfinity;
      switch (request_.objective) {
        case Objective::kMinLatency:
          child_committed = committed + discount * (rtt + cpu_time_s);
          bound = child_committed;
          break;
        case Objective::kMinDeploymentCost:
          cost_add = 1.0 + code_transfer_cost(comp, node);
          bound = committed_cost_ + cost_add;
          break;
        case Objective::kMaxCapacity: {
          double u = committed;
          const double avail = host.cpu_available();
          if (cpu_add > 0.0 && avail > 0.0) {
            u = std::max(u, (node_load_[node.value] + cpu_add) / avail);
          }
          const double add_bps =
              rate *
              static_cast<double>(comp.behaviors.bytes_per_request +
                                  comp.behaviors.bytes_per_response) *
              8.0;
          for (net::LinkId lid : route_in->links) {
            const net::Link& link = network_.link(lid);
            u = std::max(u, (link_load_[lid.value] + add_bps) /
                                link.bandwidth_available_bps());
          }
          if (comp.behaviors.capacity_rps > 0.0) {
            u = std::max(u, rate / comp.behaviors.capacity_rps);
          }
          child_committed = u;
          bound = u - 1.0;
          break;
        }
      }
      if (should_prune(bound)) {
        ++stats_.pruned_by_bound;
        return;
      }
    }

    if (!reserve_route(*route_in, comp.behaviors, rate)) {
      ++stats_.rejected_link_capacity;
      return;
    }
    node_load_[node.value] += cpu_add;
    path_.insert({&comp, node.value});
    if (comp.is_view()) view_path_.emplace_back(&comp, factors);
    committed_cost_ += cost_add;

    const InstanceId pid = static_cast<InstanceId>(placements_.size());
    {
      Placement p;
      p.id = pid;
      p.component = &comp;
      p.node = node;
      p.factors = factors;
      p.inbound_rate_rps = rate;
      placements_.push_back(std::move(p));
    }

    std::vector<ChildRecord> children;

    satisfy_children(
        comp, factors, node_env, pid, node, rate * padded_rrf, depth,
        0, 0.0, 0.0, discount * padded_rrf, child_committed, children,
        [&](double children_padded_s, double children_warm_s) {
          Placement& self = placements_[pid];
          self.expected_latency_s = cpu_time_s + warm_rrf * children_warm_s;
          const double padded_latency_s =
              cpu_time_s + padded_rrf * children_padded_s;
          self.effective =
              compute_effective(comp, node_env, factors, children);

          // §3.3 condition 2 in full: effective properties, degraded along
          // the route back to the consumer, must satisfy the requirements.
          auto eff_it = self.effective.find(iface);
          PSF_CHECK(eff_it != self.effective.end());
          for (const auto& [prop, required] : reqs) {
            spec::PropertyValue v;
            auto vit = eff_it->second.find(prop);
            if (vit != eff_it->second.end()) v = vit->second;
            v = memo_.transform(env_, spec_.rules, prop, v, *route_back,
                                node);
            if (!v.satisfies(required)) {
              ++stats_.subtrees_pruned;
              ++stats_.rejected_compatibility;
              return;
            }
          }

          sink(pid, rtt + padded_latency_s, rtt + self.expected_latency_s);
        });

    // Undo (children are fully undone by their own frames).
    PSF_CHECK(placements_.size() == static_cast<std::size_t>(pid) + 1);
    placements_.pop_back();
    committed_cost_ -= cost_add;
    if (comp.is_view()) view_path_.pop_back();
    path_.erase({&comp, node.value});
    node_load_[node.value] -= cpu_add;
    release_route(*route_in, comp.behaviors, rate);
  }

  // Satisfies comp.requires_[index..) in declaration order; when all are
  // placed, calls done(total_cost) where total_cost = Σ over children of
  // (edge rtt + child subtree latency). `child_discount` / `base_committed`
  // carry the bound (see satisfy); completed sibling edges enter the
  // committed value as they accumulate in `padded_so_far`.
  void satisfy_children(const spec::ComponentDef& comp,
                        const FactorBindings& factors,
                        const spec::Environment& node_env, InstanceId parent,
                        net::NodeId node, double child_rate, std::size_t depth,
                        std::size_t index, double padded_so_far,
                        double warm_so_far, double child_discount,
                        double base_committed,
                        std::vector<ChildRecord>& children,
                        const std::function<void(double, double)>& done) {
    if (index == comp.requires_.size()) {
      done(padded_so_far, warm_so_far);
      return;
    }
    const spec::LinkageDecl& req = comp.requires_[index];

    // Resolve this edge's requirements to literals (factor/env refs bind in
    // the *requiring* component's context).
    Requirements reqs;
    for (const spec::PropertyAssignment& pa : req.properties) {
      spec::PropertyValue v = resolve(pa.value, node_env, factors);
      if (v.is_set()) reqs.emplace_back(pa.property, std::move(v));
    }

    double committed_here = base_committed;
    if (request_.objective == Objective::kMinLatency) {
      committed_here = base_committed + child_discount * padded_so_far;
    }

    satisfy(req.interface_name, reqs, node, child_rate, depth + 1, parent,
            child_discount, committed_here,
            [&](InstanceId child_root, double edge_padded_s,
                double edge_warm_s) {
              const net::NodeId child_node = placements_[child_root].node;
              wires_.push_back(Wire{parent, req.interface_name, child_root,
                                    *network_.cached_route(node, child_node),
                                    child_rate});
              children.push_back(
                  ChildRecord{child_root, req.interface_name,
                              network_.cached_route(child_node, node)});
              satisfy_children(comp, factors, node_env, parent, node,
                               child_rate, depth, index + 1,
                               padded_so_far + edge_padded_s,
                               warm_so_far + edge_warm_s, child_discount,
                               base_committed, children, done);
              children.pop_back();
              wires_.pop_back();
            });
  }

  // ---- constraint helpers -------------------------------------------------

  bool reserve_route(const net::Route& route, const spec::Behaviors& b,
                     double rate) {
    const double add_bps =
        rate *
        static_cast<double>(b.bytes_per_request + b.bytes_per_response) * 8.0;
    for (net::LinkId lid : route.links) {
      const net::Link& link = network_.link(lid);
      if (link_load_[lid.value] + add_bps > link.bandwidth_available_bps()) {
        return false;
      }
    }
    for (net::LinkId lid : route.links) link_load_[lid.value] += add_bps;
    return true;
  }

  void release_route(const net::Route& route, const spec::Behaviors& b,
                     double rate) {
    const double add_bps =
        rate *
        static_cast<double>(b.bytes_per_request + b.bytes_per_response) * 8.0;
    for (net::LinkId lid : route.links) link_load_[lid.value] -= add_bps;
  }

  EffectiveProps compute_effective(
      const spec::ComponentDef& comp, const spec::Environment& node_env,
      const FactorBindings& factors,
      const std::vector<ChildRecord>& children) {
    EffectiveProps out;
    for (const spec::LinkageDecl& decl : comp.implements) {
      const spec::InterfaceDef* iface =
          spec_.find_interface(decl.interface_name);
      PSF_CHECK(iface != nullptr);
      auto& props = out[decl.interface_name];
      for (const std::string& prop : iface->properties) {
        spec::PropertyValue value;
        if (auto expr = decl.value_of(prop)) {
          value = resolve(*expr, node_env, factors);
        } else if (comp.transparent) {
          // Inherit from downstream: the minimum across children of the
          // child's effective value transformed along the connecting route.
          spec::PropertyValue inherited;
          bool first = true;
          for (const ChildRecord& child : children) {
            const Placement& cp = placements_[child.root];
            spec::PropertyValue cv;
            for (const auto& [child_iface, child_props] : cp.effective) {
              auto pit = child_props.find(prop);
              if (pit != child_props.end()) {
                cv = pit->second;
                break;
              }
            }
            cv = memo_.transform(env_, spec_.rules, prop, cv,
                                 *child.route_to_parent, cp.node);
            if (first) {
              inherited = cv;
              first = false;
            } else {
              inherited = spec::PropertyValue::min_of(inherited, cv);
            }
          }
          value = inherited;
        }
        if (value.is_set()) props[prop] = value;
      }
    }
    return out;
  }

  // ---- plan completion ------------------------------------------------

  void finish_plan(InstanceId root, double padded_s, double warm_s) {
    ++stats_.plans_scored;
    PlanMetrics metrics;
    // Report the warm (steady-state) expectation; score with the padded
    // value so cold-cache effects influence the choice.
    metrics.expected_latency_s = warm_s;

    double headroom = 1.0;
    for (const Placement& p : placements_) {
      if (p.reuse_existing) {
        ++metrics.reused_components;
        continue;
      }
      ++metrics.new_components;
      metrics.deployment_cost_s += code_transfer_cost(*p.component, p.node);
      if (p.component->behaviors.capacity_rps > 0.0) {
        headroom = std::min(headroom,
                            1.0 - p.inbound_rate_rps /
                                      p.component->behaviors.capacity_rps);
      }
    }
    for (std::size_t i = 0; i < node_load_.size(); ++i) {
      if (node_load_[i] <= 0.0) continue;
      const net::Node& n =
          network_.node(net::NodeId{static_cast<std::uint32_t>(i)});
      const double u = node_load_[i] / n.cpu_available();
      metrics.max_node_utilization = std::max(metrics.max_node_utilization, u);
      headroom = std::min(headroom, 1.0 - u);
    }
    for (std::size_t i = 0; i < link_load_.size(); ++i) {
      if (link_load_[i] <= 0.0) continue;
      const net::Link& l =
          network_.link(net::LinkId{static_cast<std::uint32_t>(i)});
      const double u = link_load_[i] / l.bandwidth_available_bps();
      metrics.max_link_utilization = std::max(metrics.max_link_utilization, u);
      headroom = std::min(headroom, 1.0 - u);
    }
    metrics.min_headroom = headroom;

    PlanMetrics scoring = metrics;
    scoring.expected_latency_s = padded_s;
    const Score score = score_plan(request_.objective, scoring);
    if (best_ && !(score < best_score_)) return;

    DeploymentPlan plan;
    plan.placements = placements_;
    plan.wires = wires_;
    plan.entry = root;
    plan.metrics = metrics;
    best_ = std::move(plan);
    best_score_ = score;
    best_branch_ = current_branch_;
    shared_.offer(best_score_.primary);
  }

  const spec::ServiceSpec& spec_;
  const EnvironmentView& env_;
  const net::Network& network_;
  const spec::ImplementerIndex& index_;
  const PlanRequest& request_;
  const std::vector<ExistingInstance>& existing_;
  SharedIncumbent& shared_;
  SearchStats& stats_;
  const bool bound_pruning_;
  const std::vector<net::NodeId>& candidate_nodes_;
  const std::chrono::steady_clock::time_point deadline_;
  const bool has_deadline_;
  std::uint32_t deadline_poll_ = 0;
  bool deadline_expired_ = false;
  TransformMemo memo_;

  // Working state (mutated along the DFS, undone on backtrack).
  std::vector<Placement> placements_;
  std::vector<Wire> wires_;
  std::vector<double> node_load_;  // added cpu units/s per node
  std::vector<double> link_load_;  // added bps per link
  std::vector<double> existing_added_rps_;
  std::map<std::uint64_t, InstanceId> placed_existing_;
  std::set<std::pair<const spec::ComponentDef*, std::uint32_t>> path_;
  std::vector<std::pair<const spec::ComponentDef*, FactorBindings>>
      view_path_;
  // Committed (1 + code-transfer cost) of the current partial plan's new
  // placements — the kMinDeploymentCost bound.
  double committed_cost_ = 0.0;

  std::size_t current_branch_ = 0;
  std::size_t best_branch_ = 0;
  std::optional<DeploymentPlan> best_;
  Score best_score_;
};

// Enumerates the entry-level fan-out in the serial search's visit order:
// implementing components in declaration order, candidate nodes in the
// given order (or just the client node when the entry is pinned there).
std::vector<EntryBranch> make_entry_branches(
    const spec::ImplementerIndex& index, const PlanRequest& request,
    const std::vector<net::NodeId>& candidate_nodes) {
  std::vector<EntryBranch> branches;
  auto it = index.find(request.interface_name);
  if (it == index.end()) return branches;
  for (const spec::ImplementerRef& ref : it->second) {
    if (request.pin_entry_to_client) {
      branches.push_back({ref.component, ref.linkage, request.client_node});
    } else {
      for (net::NodeId node : candidate_nodes) {
        branches.push_back({ref.component, ref.linkage, node});
      }
    }
  }
  return branches;
}

// Detects a fault-free path topology with `client` at an endpoint and
// returns its node sequence starting from the client; nullopt on any other
// shape (branching, cycles, parallel edges, down elements, client mid-path)
// — the caller falls back to the general search.
std::optional<std::vector<net::NodeId>> path_topology_from(
    const net::Network& network, net::NodeId client) {
  const std::size_t n = network.node_count();
  for (net::NodeId id : network.all_nodes()) {
    if (!network.node_up(id)) return std::nullopt;
    if (network.links_of(id).size() > 2) return std::nullopt;
  }
  for (net::LinkId lid : network.all_links()) {
    if (!network.link_up(lid)) return std::nullopt;
  }
  if (network.links_of(client).size() > 1) return std::nullopt;

  std::vector<net::NodeId> path{client};
  net::NodeId prev;  // invalid
  net::NodeId cur = client;
  while (true) {
    net::NodeId next;  // invalid
    for (net::LinkId lid : network.links_of(cur)) {
      const net::NodeId other = network.link(lid).other(cur);
      if (other == prev) continue;
      if (next.valid()) return std::nullopt;  // parallel edges
      next = other;
    }
    if (!next.valid()) break;
    path.push_back(next);
    prev = cur;
    cur = next;
    if (path.size() > n) return std::nullopt;  // cycle
  }
  if (path.size() != n) return std::nullopt;  // disconnected / mid-path start
  return path;
}

}  // namespace

SearchStats& SearchStats::operator+=(const SearchStats& other) {
  candidates_examined += other.candidates_examined;
  subtrees_pruned += other.subtrees_pruned;
  plans_scored += other.plans_scored;
  pruned_by_bound += other.pruned_by_bound;
  workers_used = std::max(workers_used, other.workers_used);
  rejected_static += other.rejected_static;
  rejected_cycle += other.rejected_cycle;
  rejected_duplicate_view += other.rejected_duplicate_view;
  rejected_condition += other.rejected_condition;
  rejected_factor += other.rejected_factor;
  rejected_compatibility += other.rejected_compatibility;
  rejected_node_capacity += other.rejected_node_capacity;
  rejected_link_capacity += other.rejected_link_capacity;
  rejected_instance_capacity += other.rejected_instance_capacity;
  rejected_unroutable += other.rejected_unroutable;
  rejected_node_down += other.rejected_node_down;
  clusters_total += other.clusters_total;
  clusters_pruned += other.clusters_pruned;
  clusters_refined += other.clusters_refined;
  used_hierarchy = used_hierarchy || other.used_hierarchy;
  used_chain_dp = used_chain_dp || other.used_chain_dp;
  deadline_hit = deadline_hit || other.deadline_hit;
  return *this;
}

std::string SearchStats::to_string() const {
  std::ostringstream oss;
  oss << "examined " << candidates_examined << " candidates, scored "
      << plans_scored << " plan(s), pruned " << pruned_by_bound
      << " subtree(s) by bound, " << workers_used
      << " worker(s); rejections:";
  const std::pair<const char*, std::uint64_t> rows[] = {
      {"static", rejected_static},
      {"cycle", rejected_cycle},
      {"duplicate-view", rejected_duplicate_view},
      {"condition", rejected_condition},
      {"factor", rejected_factor},
      {"compatibility", rejected_compatibility},
      {"node-capacity", rejected_node_capacity},
      {"link-capacity", rejected_link_capacity},
      {"instance-capacity", rejected_instance_capacity},
      {"unroutable", rejected_unroutable},
      {"node-down", rejected_node_down},
  };
  bool any = false;
  for (const auto& [label, count] : rows) {
    if (count == 0) continue;
    oss << " " << label << "=" << count;
    any = true;
  }
  if (!any) oss << " none";
  if (used_hierarchy) {
    oss << "; hierarchy: " << clusters_refined << "/" << clusters_total
        << " cluster(s) refined, " << clusters_pruned << " pruned by bound";
  }
  if (used_chain_dp) oss << "; chain-DP fast path";
  if (deadline_hit) oss << "; DEADLINE HIT (anytime incumbent)";
  return oss.str();
}

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kMinLatency: return "min-latency";
    case Objective::kMinDeploymentCost: return "min-deployment-cost";
    case Objective::kMaxCapacity: return "max-capacity";
  }
  return "?";
}

const char* search_mode_name(SearchMode m) {
  switch (m) {
    case SearchMode::kAuto: return "auto";
    case SearchMode::kFlat: return "flat";
    case SearchMode::kHierarchical: return "hierarchical";
  }
  return "?";
}

double plan_primary_score(Objective objective, const PlanMetrics& metrics) {
  return score_plan(objective, metrics).primary;
}

Planner::Planner(const spec::ServiceSpec& spec, const EnvironmentView& env)
    : spec_(spec), env_(env), iface_index_(spec.build_implementer_index()) {}

std::vector<util::Expected<DeploymentPlan>> Planner::plan_many(
    const std::vector<PlanRequest>& requests,
    const std::vector<ExistingInstance>& existing,
    std::size_t num_threads) const {
  std::vector<util::Expected<DeploymentPlan>> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(util::internal_error("not planned"));
  }
  if (requests.empty()) return results;

  const std::size_t threads =
      num_threads == 0
          ? std::min(requests.size(), util::ThreadPool::default_thread_count())
          : num_threads;
  if (threads <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      results[i] = plan(requests[i], existing);
    }
    return results;
  }
  // Route rows materialize lazily and thread-safely; no eager O(V^2)
  // precompute needed before the fan-out.
  util::ThreadPool pool(threads);
  pool.parallel_for(requests.size(), [&](std::size_t i) {
    results[i] = plan(requests[i], existing);
  });
  return results;
}

util::Expected<DeploymentPlan> Planner::plan(
    const PlanRequest& request, const std::vector<ExistingInstance>& existing,
    SearchStats* stats) const {
  if (spec_.find_interface(request.interface_name) == nullptr) {
    return util::not_found("service '" + spec_.name +
                           "' has no interface named '" +
                           request.interface_name + "'");
  }
  if (!request.client_node.valid() ||
      request.client_node.value >= env_.network().node_count()) {
    return util::invalid_argument("invalid client node");
  }
  if (request.request_rate_rps < 0.0) {
    return util::invalid_argument("negative request rate");
  }

  // A restricted candidate set (plan repair) bypasses the chain-DP and
  // hierarchical strategies: both assume the whole topology is in play, and
  // a repair's set is already cluster-sized — flat BnB over it is exact and
  // cheap.
  if (!request.candidate_nodes.empty()) {
    return plan_flat(request, existing, stats);
  }

  // CANS chain-DP fast path (paper §3.3's pointer to [13]): answers the
  // request outright when the request/spec/topology shape allows it.
  if (auto dp = try_chain_dp(request, existing, stats)) {
    return std::move(*dp);
  }

  const bool hierarchical =
      request.search_mode == SearchMode::kHierarchical ||
      (request.search_mode == SearchMode::kAuto &&
       env_.network().node_count() >= kHierarchyAutoThreshold);
  if (hierarchical) return plan_hierarchical(request, existing, stats);
  return plan_flat(request, existing, stats);
}

util::Expected<DeploymentPlan> Planner::plan_flat(
    const PlanRequest& request, const std::vector<ExistingInstance>& existing,
    SearchStats* stats) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0,
                                                 request.deadline_budget)));
  const bool has_deadline = request.deadline_budget > 0.0;

  const std::vector<net::NodeId> all_nodes =
      request.candidate_nodes.empty() ? env_.network().all_nodes()
                                      : request.candidate_nodes;
  const std::vector<EntryBranch> branches =
      make_entry_branches(iface_index_, request, all_nodes);

  std::size_t workers = request.search_threads == 0
                            ? util::ThreadPool::default_thread_count()
                            : request.search_threads;
  workers = std::min(workers, std::max<std::size_t>(branches.size(), 1));

  SharedIncumbent shared;
  SearchStats merged;
  std::optional<DeploymentPlan> best;
  Score best_score;
  std::size_t best_branch = 0;

  if (workers <= 1) {
    Search search(spec_, env_, iface_index_, request, existing, shared,
                  merged, all_nodes, deadline, has_deadline);
    search.run_branches(branches, 0, 1);
    best = search.take_best();
    best_score = search.best_score();
    best_branch = search.best_branch();
    merged.workers_used = 1;
  } else {
    // Workers read the route cache concurrently; per-row materialization is
    // thread-safe, so rows fault in on demand instead of paying the full
    // O(V^2) table up front.
    struct WorkerOutcome {
      SearchStats stats;
      std::optional<DeploymentPlan> plan;
      Score score;
      std::size_t branch = 0;
    };
    std::vector<WorkerOutcome> outcomes(workers);
    {
      util::ThreadPool pool(workers);
      std::vector<std::future<void>> futures;
      futures.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        futures.push_back(pool.submit([&, w] {
          WorkerOutcome& out = outcomes[w];
          Search search(spec_, env_, iface_index_, request, existing, shared,
                        out.stats, all_nodes, deadline, has_deadline);
          search.run_branches(branches, w, workers);
          out.plan = search.take_best();
          out.score = search.best_score();
          out.branch = search.best_branch();
        }));
      }
      for (auto& f : futures) f.get();
    }

    // Deterministic reduction: lowest (score, entry branch index) wins, so
    // equal-score plans resolve to the one the serial search would have kept
    // regardless of worker timing.
    for (std::size_t w = 0; w < workers; ++w) {
      merged += outcomes[w].stats;
      if (!outcomes[w].plan.has_value()) continue;
      const bool better =
          !best.has_value() || outcomes[w].score < best_score ||
          (score_equal(outcomes[w].score, best_score) &&
           outcomes[w].branch < best_branch);
      if (better) {
        best = std::move(outcomes[w].plan);
        best_score = outcomes[w].score;
        best_branch = outcomes[w].branch;
      }
    }
    merged.workers_used = workers;
  }

  if (stats != nullptr) *stats = merged;
  if (!best) {
    return util::unsatisfiable(
        "no deployment of '" + spec_.name + "' satisfies interface '" +
        request.interface_name + "' from node '" +
        env_.network().node(request.client_node).name + "'");
  }
  return std::move(*best);
}

std::optional<util::Expected<DeploymentPlan>> Planner::try_chain_dp(
    const PlanRequest& request, const std::vector<ExistingInstance>& existing,
    SearchStats* stats) const {
  // Eligibility: the DP models exactly "new components along a chain, in
  // path order, entry at the client endpoint, scored by expected latency".
  // Anything outside that — reuse, client-side property requirements, an
  // unpinned entry, other objectives — silently falls through to the search.
  if (!request.chain_dp) return std::nullopt;
  if (request.objective != Objective::kMinLatency) return std::nullopt;
  if (!existing.empty()) return std::nullopt;
  if (!request.required_properties.empty()) return std::nullopt;
  if (!request.pin_entry_to_client) return std::nullopt;
  if (request.max_depth < 1) return std::nullopt;

  const net::Network& network = env_.network();
  const auto path = path_topology_from(network, request.client_node);
  if (!path) return std::nullopt;

  LinkageOptions lopts;
  lopts.max_depth = request.max_depth;
  lopts.max_trees = 64;
  const std::vector<LinkageTree> trees =
      enumerate_linkages(spec_, request.interface_name, lopts);
  if (trees.empty()) return std::nullopt;  // let the search report why

  std::vector<std::vector<const spec::ComponentDef*>> chains;
  chains.reserve(trees.size());
  for (const LinkageTree& tree : trees) {
    if (!tree.is_chain()) return std::nullopt;
    std::vector<const spec::ComponentDef*> chain = tree.as_chain();
    for (const spec::ComponentDef* comp : chain) {
      // Views bring cold-RRF padding and duplicate-on-path rules the DP
      // does not model; transparent components inherit properties from
      // downstream; factors bind per-node; rrf > 1 breaks the
      // order-preserving optimality argument. All → general search.
      if (comp->is_view() || comp->transparent || comp->static_placement ||
          !comp->factors.empty() || comp->behaviors.rrf > 1.0) {
        return std::nullopt;
      }
    }
    for (std::size_t i = 0; i < chain.size(); ++i) {
      for (std::size_t j = i + 1; j < chain.size(); ++j) {
        if (chain[i] == chain[j]) return std::nullopt;  // cycle-guard parity
      }
    }
    chains.push_back(std::move(chain));
  }

  ChainPlanOptions copts;
  copts.request_rate_rps = request.request_rate_rps;
  copts.pin_first = true;  // == pin_entry_to_client
  copts.pin_last = false;  // the search does not pin the tail either

  const std::vector<const spec::ComponentDef*>* best_chain = nullptr;
  ChainPlanResult best_result;
  std::uint64_t examined = 0;
  std::uint64_t scored = 0;
  std::uint64_t rejected_condition = 0;
  std::uint64_t rejected_node_capacity = 0;
  std::uint64_t rejected_instance_capacity = 0;
  for (const auto& chain : chains) {
    examined += chain.size() * path->size();
    auto result = plan_chain_dp(spec_, env_, chain, *path, copts);
    if (!result) continue;
    rejected_condition += result->rejected_condition;
    rejected_node_capacity += result->rejected_node_capacity;
    rejected_instance_capacity += result->rejected_instance_capacity;
    ++scored;
    if (best_chain == nullptr ||
        result->expected_latency_s < best_result.expected_latency_s) {
      best_chain = &chain;
      best_result = std::move(*result);
    }
  }
  // No feasible chain: fall through so the search can double-check (it
  // models co-location load accumulation the DP's feasibility test lacks).
  if (best_chain == nullptr) return std::nullopt;

  // Materialize the DeploymentPlan the BnB search would have produced for
  // this assignment.
  const std::vector<const spec::ComponentDef*>& chain = *best_chain;
  const std::size_t k = chain.size();
  DeploymentPlan plan;
  plan.entry = 0;

  std::vector<double> rate(k, request.request_rate_rps);
  for (std::size_t i = 1; i < k; ++i) {
    rate[i] = rate[i - 1] * chain[i - 1]->behaviors.rrf;
  }

  const auto resolve_literal =
      [&](const spec::ValueExpr& expr,
          const spec::Environment& node_env) -> spec::PropertyValue {
    switch (expr.kind) {
      case spec::ValueExpr::Kind::kLiteral:
        return expr.literal;
      case spec::ValueExpr::Kind::kEnvRef:
        if (expr.env_scope == spec::EnvScope::kNode) {
          return node_env.get(expr.ref_name).value_or(spec::PropertyValue());
        }
        return {};
      case spec::ValueExpr::Kind::kFactorRef:  // factors.empty() was checked
      case spec::ValueExpr::Kind::kAny:
        return {};
    }
    return {};
  };

  for (std::size_t i = 0; i < k; ++i) {
    const net::NodeId node = (*path)[best_result.assignment[i]];
    Placement p;
    p.id = static_cast<InstanceId>(i);
    p.component = chain[i];
    p.node = node;
    p.inbound_rate_rps = rate[i];
    const spec::Environment& node_env = env_.node_env(node);
    for (const spec::LinkageDecl& decl : chain[i]->implements) {
      const spec::InterfaceDef* iface =
          spec_.find_interface(decl.interface_name);
      PSF_CHECK(iface != nullptr);
      auto& props = p.effective[decl.interface_name];
      for (const std::string& prop : iface->properties) {
        if (auto expr = decl.value_of(prop)) {
          spec::PropertyValue v = resolve_literal(*expr, node_env);
          if (v.is_set()) props[prop] = std::move(v);
        }
      }
    }
    plan.placements.push_back(std::move(p));
  }

  for (std::size_t i = 1; i < k; ++i) {
    PSF_CHECK(!chain[i - 1]->requires_.empty());
    plan.wires.push_back(
        Wire{static_cast<InstanceId>(i - 1),
             chain[i - 1]->requires_.front().interface_name,
             static_cast<InstanceId>(i),
             *network.cached_route(plan.placements[i - 1].node,
                                   plan.placements[i].node),
             rate[i]});
  }

  // Post-validation the DP's per-component feasibility test cannot do:
  // co-located placements accumulate on node CPU and shared hops accumulate
  // on links. A violation falls back to the exact search.
  std::vector<double> node_cpu(network.node_count(), 0.0);
  std::vector<double> link_bps(network.link_count(), 0.0);
  for (const Placement& p : plan.placements) {
    node_cpu[p.node.value] +=
        p.inbound_rate_rps * p.component->behaviors.cpu_per_request;
  }
  for (const Wire& w : plan.wires) {
    const spec::Behaviors& b = plan.placements[w.server].component->behaviors;
    const double add_bps =
        w.rate_rps *
        static_cast<double>(b.bytes_per_request + b.bytes_per_response) * 8.0;
    for (net::LinkId lid : w.route.links) link_bps[lid.value] += add_bps;
  }
  for (std::uint32_t v = 0; v < network.node_count(); ++v) {
    if (node_cpu[v] > network.node(net::NodeId{v}).cpu_available()) {
      return std::nullopt;
    }
  }
  for (std::uint32_t l = 0; l < network.link_count(); ++l) {
    if (link_bps[l] >
        network.link(net::LinkId{l}).bandwidth_available_bps()) {
      return std::nullopt;
    }
  }

  // Per-placement expected latency, leaf to root — the same recurrence the
  // search's sinks evaluate (warm == padded here: no views in the chain).
  for (std::size_t i = k; i-- > 0;) {
    Placement& p = plan.placements[i];
    const double cpu_time_s = p.component->behaviors.cpu_per_request /
                              network.node(p.node).cpu_capacity;
    double downstream = 0.0;
    if (i + 1 < k) {
      const Wire& w = plan.wires[i];
      const spec::Behaviors& b =
          plan.placements[i + 1].component->behaviors;
      downstream =
          p.component->behaviors.rrf *
          (edge_rtt_seconds(network, w.route, b.bytes_per_request,
                            b.bytes_per_response) +
           plan.placements[i + 1].expected_latency_s);
    }
    p.expected_latency_s = cpu_time_s + downstream;
  }

  PlanMetrics metrics;
  metrics.expected_latency_s = plan.placements[0].expected_latency_s;
  metrics.new_components = k;
  const net::NodeId origin = request.code_origin.valid()
                                 ? request.code_origin
                                 : request.client_node;
  double headroom = 1.0;
  for (const Placement& p : plan.placements) {
    const net::Route* route = network.cached_route(origin, p.node);
    for (net::LinkId lid : route->links) {
      const net::Link& link = network.link(lid);
      metrics.deployment_cost_s +=
          link.latency.seconds() +
          static_cast<double>(p.component->behaviors.code_size_bytes) * 8.0 /
              link.bandwidth_bps;
    }
    if (p.component->behaviors.capacity_rps > 0.0) {
      headroom = std::min(
          headroom,
          1.0 - p.inbound_rate_rps / p.component->behaviors.capacity_rps);
    }
  }
  for (std::uint32_t v = 0; v < network.node_count(); ++v) {
    if (node_cpu[v] <= 0.0) continue;
    const double u =
        node_cpu[v] / network.node(net::NodeId{v}).cpu_available();
    metrics.max_node_utilization = std::max(metrics.max_node_utilization, u);
    headroom = std::min(headroom, 1.0 - u);
  }
  for (std::uint32_t l = 0; l < network.link_count(); ++l) {
    if (link_bps[l] <= 0.0) continue;
    const double u =
        link_bps[l] /
        network.link(net::LinkId{l}).bandwidth_available_bps();
    metrics.max_link_utilization = std::max(metrics.max_link_utilization, u);
    headroom = std::min(headroom, 1.0 - u);
  }
  metrics.min_headroom = headroom;
  plan.metrics = metrics;

  if (stats != nullptr) {
    *stats = SearchStats{};
    stats->used_chain_dp = true;
    stats->candidates_examined = examined;
    stats->plans_scored = scored;
    stats->rejected_condition = rejected_condition;
    stats->rejected_node_capacity = rejected_node_capacity;
    stats->rejected_instance_capacity = rejected_instance_capacity;
    stats->workers_used = 1;
  }
  return util::Expected<DeploymentPlan>(std::move(plan));
}

util::Expected<DeploymentPlan> Planner::plan_hierarchical(
    const PlanRequest& request, const std::vector<ExistingInstance>& existing,
    SearchStats* stats) const {
  const net::Network& network = env_.network();
  const std::size_t n = network.node_count();
  const std::size_t k = request.cluster_count == 0
                            ? ClusterIndex::default_cluster_count(n)
                            : request.cluster_count;
  const ClusterIndex index(network, k);
  if (index.num_clusters() < 2) return plan_flat(request, existing, stats);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0,
                                                 request.deadline_budget)));
  const bool has_deadline = request.deadline_budget > 0.0;

  const std::vector<ClusterRefinement> refinements =
      build_refinements(index, spec_, request, existing);

  SharedIncumbent shared;
  struct RefinementOutcome {
    SearchStats stats;
    std::optional<DeploymentPlan> plan;
    Score score;
    std::size_t branch = 0;
  };
  std::vector<RefinementOutcome> outcomes(refinements.size());
  std::atomic<std::uint64_t> pruned{0};
  std::atomic<std::uint64_t> refined{0};
  std::atomic<bool> deadline_hit{false};

  const auto run_refinement = [&](std::size_t r) {
    const ClusterRefinement& ref = refinements[r];
    RefinementOutcome& out = outcomes[r];
    const double inc = shared.load();
    // Cluster-level bound: plans unique to this refinement score at least
    // ref.lower_bound; skipping it when that exceeds the incumbent (same
    // strict margin as the in-search bound) can only drop dominated plans.
    if (request.bound_pruning && inc < kInfinity &&
        ref.lower_bound > inc + 1e-9 * std::max(1.0, std::abs(inc))) {
      pruned.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (has_deadline && inc < kInfinity &&
        std::chrono::steady_clock::now() >= deadline) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return;
    }
    refined.fetch_add(1, std::memory_order_relaxed);
    Search search(spec_, env_, iface_index_, request, existing, shared,
                  out.stats, ref.candidates, deadline, has_deadline);
    search.run_branches(make_entry_branches(iface_index_, request,
                                            ref.candidates),
                        0, 1);
    out.plan = search.take_best();
    out.score = search.best_score();
    out.branch = search.best_branch();
  };

  std::size_t workers = request.search_threads == 0
                            ? util::ThreadPool::default_thread_count()
                            : request.search_threads;
  workers = std::min(workers, std::max<std::size_t>(refinements.size(), 1));

  if (workers <= 1) {
    for (std::size_t r = 0; r < refinements.size(); ++r) run_refinement(r);
  } else {
    // Rank 0 (the client's own cluster, lower bound 0) runs first so its
    // incumbent prunes the fan-out; the remaining refinements go wide.
    run_refinement(0);
    util::ThreadPool pool(workers);
    pool.parallel_for(refinements.size() - 1,
                      [&](std::size_t i) { run_refinement(i + 1); });
  }

  // Deterministic reduction: refinements are rank-ordered, so iterating in
  // rank order and replacing only on strictly-better scores keeps, among
  // ties, the lowest (rank, entry branch) — independent of worker timing.
  SearchStats merged;
  std::optional<DeploymentPlan> best;
  Score best_score;
  for (std::size_t r = 0; r < refinements.size(); ++r) {
    merged += outcomes[r].stats;
    if (!outcomes[r].plan.has_value()) continue;
    if (!best.has_value() || outcomes[r].score < best_score) {
      best = std::move(outcomes[r].plan);
      best_score = outcomes[r].score;
    }
  }
  merged.workers_used = workers;
  merged.used_hierarchy = true;
  merged.clusters_total = refinements.size();
  merged.clusters_pruned = pruned.load(std::memory_order_relaxed);
  merged.clusters_refined = refined.load(std::memory_order_relaxed);
  merged.deadline_hit =
      merged.deadline_hit || deadline_hit.load(std::memory_order_relaxed);

  if (stats != nullptr) *stats = merged;
  if (!best) {
    return util::unsatisfiable(
        "no deployment of '" + spec_.name + "' satisfies interface '" +
        request.interface_name + "' from node '" +
        network.node(request.client_node).name + "' (hierarchical search, " +
        std::to_string(refinements.size()) + " clusters)");
  }
  return std::move(*best);
}

}  // namespace psf::planner
