#include "planner/validate.hpp"

#include <map>
#include <set>
#include <sstream>

namespace psf::planner {

namespace {

const char* kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kStructure: return "structure";
    case Violation::Kind::kCondition: return "condition";
    case Violation::Kind::kCompatibility: return "compatibility";
    case Violation::Kind::kCapacity: return "capacity";
    case Violation::Kind::kPolicy: return "policy";
  }
  return "?";
}

class Validator {
 public:
  Validator(const spec::ServiceSpec& spec, const EnvironmentView& env,
            const PlanRequest& request, const DeploymentPlan& plan,
            const std::vector<ExistingInstance>& existing,
            ValidationReport& report)
      : spec_(spec),
        env_(env),
        request_(request),
        plan_(plan),
        existing_(existing),
        report_(report) {}

  void run() {
    if (!check_structure()) return;  // later checks need sane structure
    check_policy();
    check_conditions();
    compute_rates();
    check_compatibility();
    check_capacity();
  }

 private:
  void add(Violation::Kind kind, InstanceId instance, std::string detail) {
    report_.violations.push_back(Violation{kind, instance, std::move(detail)});
  }

  const ExistingInstance* find_existing(std::uint64_t runtime_id) const {
    for (const auto& e : existing_) {
      if (e.runtime_id == runtime_id) return &e;
    }
    return nullptr;
  }

  // ---- structure ----------------------------------------------------------

  bool check_structure() {
    bool ok = true;
    if (plan_.placements.empty()) {
      add(Violation::Kind::kStructure, 0, "plan has no placements");
      return false;
    }
    for (std::size_t i = 0; i < plan_.placements.size(); ++i) {
      const Placement& p = plan_.placements[i];
      if (p.id != i) {
        add(Violation::Kind::kStructure, p.id, "placement id != index");
        ok = false;
      }
      if (p.component == nullptr) {
        add(Violation::Kind::kStructure, p.id, "null component");
        return false;
      }
      if (!p.node.valid() || p.node.value >= env_.network().node_count()) {
        add(Violation::Kind::kStructure, p.id, "invalid node");
        ok = false;
      }
      if (p.reuse_existing && find_existing(p.existing_runtime_id) == nullptr) {
        add(Violation::Kind::kStructure, p.id,
            "reused placement references unknown runtime instance " +
                std::to_string(p.existing_runtime_id));
        ok = false;
      }
    }
    if (plan_.entry >= plan_.placements.size()) {
      add(Violation::Kind::kStructure, plan_.entry, "entry index out of range");
      return false;
    }
    for (const Wire& w : plan_.wires) {
      if (w.client >= plan_.placements.size() ||
          w.server >= plan_.placements.size()) {
        add(Violation::Kind::kStructure, w.client,
            "wire references out-of-range placement");
        ok = false;
        continue;
      }
      wires_of_[w.client].push_back(&w);
    }
    // Every new placement must have exactly one wire per required interface.
    for (const Placement& p : plan_.placements) {
      if (p.reuse_existing) continue;
      std::multiset<std::string> wired;
      for (const Wire* w : wires_of_[p.id]) wired.insert(w->interface_name);
      for (const spec::LinkageDecl& req : p.component->requires_) {
        if (wired.count(req.interface_name) != 1) {
          add(Violation::Kind::kStructure, p.id,
              p.component->name + " has " +
                  std::to_string(wired.count(req.interface_name)) +
                  " wires for required interface '" + req.interface_name +
                  "' (want 1)");
          ok = false;
        }
      }
    }
    // The entry must implement the requested interface.
    if (plan_.entry_placement().component->find_implements(
            request_.interface_name) == nullptr) {
      add(Violation::Kind::kStructure, plan_.entry,
          "entry component does not implement '" + request_.interface_name +
              "'");
      ok = false;
    }
    return ok;
  }

  // ---- policy ------------------------------------------------------------

  void check_policy() {
    const Placement& entry = plan_.entry_placement();
    if (request_.pin_entry_to_client && entry.node != request_.client_node) {
      add(Violation::Kind::kPolicy, entry.id,
          "entry not pinned to the client node");
    }
    for (const Placement& p : plan_.placements) {
      if (!p.reuse_existing && p.component->static_placement) {
        add(Violation::Kind::kPolicy, p.id,
            "static component '" + p.component->name + "' deployed anew");
      }
    }
    // No identically-configured view twice along any entry-to-leaf path.
    std::vector<std::pair<const spec::ComponentDef*, const FactorBindings*>>
        path;
    walk_for_duplicates(plan_.entry, path);
  }

  void walk_for_duplicates(
      InstanceId id,
      std::vector<std::pair<const spec::ComponentDef*, const FactorBindings*>>&
          path) {
    const Placement& p = plan_.placements[id];
    if (p.component->is_view()) {
      for (const auto& [comp, factors] : path) {
        if (comp == p.component && *factors == p.factors) {
          add(Violation::Kind::kPolicy, id,
              "view configuration '" + comp->name +
                  "' duplicated along a requirement path");
        }
      }
      path.emplace_back(p.component, &p.factors);
    }
    for (const Wire* w : wires_of_[id]) {
      walk_for_duplicates(w->server, path);
    }
    if (p.component->is_view()) path.pop_back();
  }

  // ---- conditions & factors -------------------------------------------

  void check_conditions() {
    for (const Placement& p : plan_.placements) {
      if (p.reuse_existing) continue;  // validated when originally deployed
      const spec::Environment& node_env = env_.node_env(p.node);
      for (const spec::Condition& cond : p.component->conditions) {
        if (!cond.holds(node_env)) {
          add(Violation::Kind::kCondition, p.id,
              p.component->name + " at " +
                  env_.network().node(p.node).name + ": condition " +
                  cond.to_string() + " violated");
        }
      }
      // Factors must re-derive from the environment.
      for (const spec::PropertyAssignment& f : p.component->factors) {
        const spec::PropertyValue derived =
            resolve(f.value, node_env, p.factors);
        auto it = p.factors.values.find(f.property);
        if (it == p.factors.values.end() || !(it->second == derived)) {
          add(Violation::Kind::kCondition, p.id,
              "factor '" + f.property + "' does not re-derive from the node "
              "environment");
        }
      }
    }
  }

  spec::PropertyValue resolve(const spec::ValueExpr& expr,
                              const spec::Environment& node_env,
                              const FactorBindings& factors) const {
    switch (expr.kind) {
      case spec::ValueExpr::Kind::kLiteral:
        return expr.literal;
      case spec::ValueExpr::Kind::kEnvRef:
        if (expr.env_scope == spec::EnvScope::kNode) {
          return node_env.get(expr.ref_name).value_or(spec::PropertyValue());
        }
        return {};
      case spec::ValueExpr::Kind::kFactorRef: {
        auto it = factors.values.find(expr.ref_name);
        return it == factors.values.end() ? spec::PropertyValue()
                                          : it->second;
      }
      case spec::ValueExpr::Kind::kAny:
        return {};
    }
    return {};
  }

  // ---- rates ------------------------------------------------------------

  void compute_rates() {
    rate_.assign(plan_.placements.size(), 0.0);
    propagate_rate(plan_.entry, request_.request_rate_rps);
  }

  void propagate_rate(InstanceId id, double rate) {
    rate_[id] += rate;
    const Placement& p = plan_.placements[id];
    const double child_rate = rate * p.component->behaviors.rrf;
    for (const Wire* w : wires_of_[id]) propagate_rate(w->server, child_rate);
  }

  // ---- effective properties (independent bottom-up computation) -----------

  const std::map<std::string, std::map<std::string, spec::PropertyValue>>&
  effective_of(InstanceId id) {
    auto memo = effective_.find(id);
    if (memo != effective_.end()) return memo->second;
    const Placement& p = plan_.placements[id];
    EffectiveProps out;
    if (p.reuse_existing) {
      if (const ExistingInstance* e = find_existing(p.existing_runtime_id)) {
        out = e->effective;
      }
    } else {
      for (const spec::LinkageDecl& decl : p.component->implements) {
        const spec::InterfaceDef* iface =
            spec_.find_interface(decl.interface_name);
        if (iface == nullptr) continue;
        auto& props = out[decl.interface_name];
        for (const std::string& prop : iface->properties) {
          spec::PropertyValue value;
          if (auto expr = decl.value_of(prop)) {
            value = resolve(*expr, env_.node_env(p.node), p.factors);
          } else if (p.component->transparent) {
            spec::PropertyValue inherited;
            bool first = true;
            for (const Wire* w : wires_of_[id]) {
              const auto& child_eff = effective_of(w->server);
              spec::PropertyValue cv;
              for (const auto& [ciface, cprops] : child_eff) {
                auto pit = cprops.find(prop);
                if (pit != cprops.end()) {
                  cv = pit->second;
                  break;
                }
              }
              auto back = env_.network().route(
                  plan_.placements[w->server].node, p.node);
              if (back) {
                cv = env_.transform_along(spec_.rules, prop, cv, *back,
                                          plan_.placements[w->server].node);
              }
              if (first) {
                inherited = cv;
                first = false;
              } else {
                inherited = spec::PropertyValue::min_of(inherited, cv);
              }
            }
            value = inherited;
          }
          if (value.is_set()) props[prop] = value;
        }
      }
    }
    return effective_.emplace(id, std::move(out)).first->second;
  }

  // ---- compatibility ------------------------------------------------------

  void check_requirements(
      InstanceId server, const std::string& iface, net::NodeId consumer_node,
      const std::vector<std::pair<std::string, spec::PropertyValue>>& reqs,
      InstanceId blame) {
    const auto& eff = effective_of(server);
    auto eff_it = eff.find(iface);
    const net::NodeId server_node = plan_.placements[server].node;
    auto back = env_.network().route(server_node, consumer_node);
    for (const auto& [prop, required] : reqs) {
      spec::PropertyValue v;
      if (eff_it != eff.end()) {
        auto vit = eff_it->second.find(prop);
        if (vit != eff_it->second.end()) v = vit->second;
      }
      if (back) {
        v = env_.transform_along(spec_.rules, prop, v, *back, server_node);
      }
      if (!v.satisfies(required)) {
        add(Violation::Kind::kCompatibility, blame,
            "interface '" + iface + "' property '" + prop + "': offered " +
                v.to_string() + " does not satisfy required " +
                required.to_string());
      }
    }
  }

  void check_compatibility() {
    // The client's own requirements against the entry placement.
    check_requirements(plan_.entry, request_.interface_name,
                       request_.client_node, request_.required_properties,
                       plan_.entry);

    // Every wire: the client placement's requires against the server's
    // effective properties.
    for (const Wire& w : plan_.wires) {
      const Placement& client = plan_.placements[w.client];
      for (const spec::LinkageDecl& req : client.component->requires_) {
        if (req.interface_name != w.interface_name) continue;
        std::vector<std::pair<std::string, spec::PropertyValue>> reqs;
        for (const spec::PropertyAssignment& pa : req.properties) {
          spec::PropertyValue v =
              resolve(pa.value, env_.node_env(client.node), client.factors);
          if (v.is_set()) reqs.emplace_back(pa.property, std::move(v));
        }
        check_requirements(w.server, w.interface_name, client.node, reqs,
                           w.client);
      }
    }
  }

  // ---- capacity --------------------------------------------------------

  void check_capacity() {
    // Component capacity (including pre-existing load on reused instances).
    for (const Placement& p : plan_.placements) {
      const double capacity = p.component->behaviors.capacity_rps;
      if (capacity <= 0.0) continue;
      double load = rate_[p.id];
      if (p.reuse_existing) {
        if (const ExistingInstance* e = find_existing(p.existing_runtime_id)) {
          load += e->current_load_rps;
        }
      }
      if (load > capacity * (1.0 + 1e-9)) {
        add(Violation::Kind::kCapacity, p.id,
            p.component->name + ": load " + std::to_string(load) +
                " rps exceeds capacity " + std::to_string(capacity));
      }
    }
    // Node CPU.
    std::map<std::uint32_t, double> node_load;
    for (const Placement& p : plan_.placements) {
      if (p.reuse_existing) continue;
      node_load[p.node.value] +=
          rate_[p.id] * p.component->behaviors.cpu_per_request;
    }
    for (const auto& [node, load] : node_load) {
      const net::Node& n = env_.network().node(net::NodeId{node});
      if (load > n.cpu_available() * (1.0 + 1e-9)) {
        add(Violation::Kind::kCapacity, plan_.entry,
            "node " + n.name + ": cpu load " + std::to_string(load) +
                " exceeds available " + std::to_string(n.cpu_available()));
      }
    }
    // Link bandwidth.
    std::map<std::uint32_t, double> link_load;
    for (const Wire& w : plan_.wires) {
      const Placement& server = plan_.placements[w.server];
      const double bps =
          rate_[w.server] *
          static_cast<double>(server.component->behaviors.bytes_per_request +
                              server.component->behaviors.bytes_per_response) *
          8.0;
      for (net::LinkId lid : w.route.links) link_load[lid.value] += bps;
    }
    for (const auto& [link, load] : link_load) {
      const net::Link& l = env_.network().link(net::LinkId{link});
      if (load > l.bandwidth_available_bps() * (1.0 + 1e-9)) {
        add(Violation::Kind::kCapacity, plan_.entry,
            "link " + std::to_string(link) + ": load " +
                std::to_string(load / 1e6) + " Mbps exceeds available " +
                std::to_string(l.bandwidth_available_bps() / 1e6) + " Mbps");
      }
    }
  }

  const spec::ServiceSpec& spec_;
  const EnvironmentView& env_;
  const PlanRequest& request_;
  const DeploymentPlan& plan_;
  const std::vector<ExistingInstance>& existing_;
  ValidationReport& report_;

  std::map<InstanceId, std::vector<const Wire*>> wires_of_;
  std::vector<double> rate_;
  std::map<InstanceId, EffectiveProps> effective_;
};

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream oss;
  oss << "[" << kind_name(kind) << "] placement #" << instance << ": "
      << detail;
  return oss.str();
}

std::string ValidationReport::to_string() const {
  if (ok()) return "plan valid";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) oss << "  " << v.to_string() << "\n";
  return oss.str();
}

ValidationReport validate_plan(const spec::ServiceSpec& spec,
                               const EnvironmentView& env,
                               const PlanRequest& request,
                               const DeploymentPlan& plan,
                               const std::vector<ExistingInstance>& existing) {
  ValidationReport report;
  Validator validator(spec, env, request, plan, existing, report);
  validator.run();
  return report;
}

}  // namespace psf::planner
