// Dynamic-programming planner for chain-shaped linkage graphs mapped onto a
// network path.
//
// The paper (§3.3): "For the case where all component graphs are chains, an
// efficient dynamic programming algorithm is described and evaluated in
// [13]" — i.e. CANS (Fu, Shi, Akkerman, Karamcheti, USITS'01). This module
// implements that algorithm: given a component chain C1..Ck and a node path
// n1..nm (typically the route from the client to the service's home node),
// it finds the order-preserving assignment minimizing expected request
// latency in O(k · m²) instead of the exhaustive planner's exponential
// search. bench/planner_scaling compares the two.
//
// Scope notes (matching what CANS handled): installation conditions and
// pairwise property compatibility (with modification rules across the links
// between consecutive components) are enforced; transparent pass-through
// inheritance is approximated by skipping requirements a transparent
// component cannot decide locally. For general graphs use Planner.
#pragma once

#include <vector>

#include "planner/environment.hpp"
#include "spec/model.hpp"
#include "util/status.hpp"

namespace psf::planner {

struct ChainPlanOptions {
  double request_rate_rps = 1.0;
  // Pin the first component to the first path node (the client's machine)
  // and the last component to the last path node (the service home).
  bool pin_first = true;
  bool pin_last = true;
};

struct ChainPlanResult {
  // assignment[i] = path index hosting chain[i]; non-decreasing.
  std::vector<std::size_t> assignment;
  double expected_latency_s = 0.0;
  // Exploration diagnostics: (component, position) pairs the feasibility
  // test rejected, by cause — the DP's analogue of the search's rejection
  // counters, folded into SearchStats by the fast-path caller.
  std::uint64_t rejected_condition = 0;
  std::uint64_t rejected_node_capacity = 0;
  std::uint64_t rejected_instance_capacity = 0;
};

util::Expected<ChainPlanResult> plan_chain_dp(
    const spec::ServiceSpec& spec, const EnvironmentView& env,
    const std::vector<const spec::ComponentDef*>& chain,
    const std::vector<net::NodeId>& path, const ChainPlanOptions& options = {});

}  // namespace psf::planner
