// detlint:ordered-output — refinement reduction order decides plan tie-breaks.
#include "planner/hierarchy.hpp"

#include <algorithm>
#include <cmath>

namespace psf::planner {

double discount_floor(const spec::ServiceSpec& spec,
                      const PlanRequest& request) {
  double min_rrf = 1.0;
  for (const spec::ComponentDef& comp : spec.components) {
    double rrf = comp.behaviors.rrf;
    if (comp.is_view()) {
      // The planner scores new views with the cold-padded RRF, which is
      // >= the warm one — keep the smaller (warm) value; the floor must sit
      // below every discount the search can actually apply.
      rrf = std::min(rrf, std::min(1.0, rrf + request.cold_view_penalty *
                                                  (1.0 - rrf)));
    }
    min_rrf = std::min(min_rrf, rrf);
  }
  min_rrf = std::clamp(min_rrf, 0.0, 1.0);
  const std::size_t exponent =
      request.max_depth >= 1 ? request.max_depth - 1 : 0;
  return std::pow(min_rrf, static_cast<double>(exponent));
}

std::vector<ClusterRefinement> build_refinements(
    const ClusterIndex& index, const spec::ServiceSpec& spec,
    const PlanRequest& request,
    const std::vector<ExistingInstance>& existing) {
  const std::size_t k = index.num_clusters();
  const ClusterIndex::ClusterId home = index.cluster_of(request.client_node);

  // Nodes every refinement must contain: the client, the code origin (its
  // routes price deployment cost), and every reusable instance's host.
  std::vector<net::NodeId> fixed;
  fixed.push_back(request.client_node);
  if (request.code_origin.valid()) fixed.push_back(request.code_origin);
  for (const ExistingInstance& inst : existing) fixed.push_back(inst.node);

  const double floor = discount_floor(spec, request);

  std::vector<ClusterRefinement> out;
  out.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    ClusterRefinement ref;
    ref.cluster = static_cast<ClusterIndex::ClusterId>(c);

    std::vector<net::NodeId>& cand = ref.candidates;
    const std::vector<net::NodeId>& home_members = index.members(home);
    cand.insert(cand.end(), home_members.begin(), home_members.end());
    if (ref.cluster != home) {
      const std::vector<net::NodeId>& own = index.members(ref.cluster);
      cand.insert(cand.end(), own.begin(), own.end());
      const std::vector<net::NodeId> relays =
          index.path_border_nodes(home, ref.cluster);
      cand.insert(cand.end(), relays.begin(), relays.end());
    }
    cand.insert(cand.end(), fixed.begin(), fixed.end());
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

    if (ref.cluster != home && request.objective == Objective::kMinLatency) {
      // Any plan placing a new component in c carries at least one wire
      // crossing from the home side, whose RTT is >= 2 * one-way quotient
      // LB; the floor converts it into score units (see header).
      ref.lower_bound = 2.0 * index.latency_lb_s(home, ref.cluster) * floor;
    }
    out.push_back(std::move(ref));
  }

  std::sort(out.begin(), out.end(),
            [home](const ClusterRefinement& a, const ClusterRefinement& b) {
              const bool a_home = a.cluster == home;
              const bool b_home = b.cluster == home;
              if (a_home != b_home) return a_home;
              if (a.lower_bound != b.lower_bound) {
                return a.lower_bound < b.lower_bound;
              }
              return a.cluster < b.cluster;
            });
  return out;
}

}  // namespace psf::planner
