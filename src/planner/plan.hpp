// detlint:ordered-output — plan content is fingerprinted and compared bit-for-bit.
// Deployment plans: the planner's output, consumed by the Smock runtime's
// deployment engine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "spec/model.hpp"

namespace psf::planner {

using InstanceId = std::uint32_t;

struct FactorBindings {
  std::map<std::string, spec::PropertyValue> values;

  bool operator==(const FactorBindings&) const = default;
  std::string to_string() const;
};

// Effective property values of the interfaces a placed component offers,
// after factor binding and transparent pass-through resolution.
using EffectiveProps =
    std::map<std::string, std::map<std::string, spec::PropertyValue>>;

struct Placement {
  InstanceId id = 0;
  const spec::ComponentDef* component = nullptr;
  net::NodeId node;
  FactorBindings factors;
  EffectiveProps effective;
  // Expected downstream latency of a request entering this component
  // (seconds) — the planner's objective value at this subtree.
  double expected_latency_s = 0.0;
  // Request rate entering this instance under the plan (requests/second).
  double inbound_rate_rps = 0.0;

  // Set when the plan binds to an already-running instance instead of
  // deploying a new component.
  bool reuse_existing = false;
  std::uint64_t existing_runtime_id = 0;
};

struct Wire {
  InstanceId client = 0;
  std::string interface_name;
  InstanceId server = 0;
  net::Route route;  // from client placement's node to server's node
  double rate_rps = 0.0;
};

struct PlanMetrics {
  double expected_latency_s = 0.0;   // client-perceived, per request
  double deployment_cost_s = 0.0;    // total code-transfer time
  std::size_t new_components = 0;
  std::size_t reused_components = 0;
  // Worst-case utilization introduced by this plan (fraction of remaining
  // capacity consumed; 1.0 = the plan exactly exhausts some resource).
  double max_node_utilization = 0.0;
  double max_link_utilization = 0.0;
  // Headroom fraction used by the max-capacity objective (1 = idle).
  double min_headroom = 1.0;
};

struct DeploymentPlan {
  std::vector<Placement> placements;
  std::vector<Wire> wires;
  InstanceId entry = 0;
  PlanMetrics metrics;

  const Placement& entry_placement() const { return placements.at(entry); }

  // Human-readable rendering in the style of the paper's Fig. 6 narrative.
  std::string to_string(const net::Network& network) const;

  // Graphviz DOT rendering: components clustered by hosting node, wires as
  // edges labeled with interface and route latency. Pipe through
  // `dot -Tpng` to draw the paper's Fig. 6 boxes.
  std::string to_dot(const net::Network& network) const;
};

}  // namespace psf::planner
