// Incremental plan repair (ROADMAP item 2).
//
// A violation invalidates part of a running deployment; everything else is
// worth keeping. Repair classifies the old plan's placements into surviving
// vs broken, then re-runs the search over a restricted candidate set built
// from the survivors' nodes plus the ClusterIndex neighborhoods of the
// broken pieces — the same locality machinery hierarchical search uses, so
// the repair search is cluster-sized no matter how large the topology is.
// Survivors are "pinned" through the reuse mechanism: the caller offers the
// live deployment as ExistingInstances, and with the candidate set shrunk to
// (mostly) their own nodes, rebinding them is both the cheapest and usually
// the only feasible completion. Exactness within the restricted set comes
// for free from flat BnB; global optimality is deliberately traded for
// locality, with a full replan as the safety net.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "planner/cluster.hpp"
#include "planner/planner.hpp"

namespace psf::planner {

const char* repair_violation_kind_name(RepairViolation::Kind kind) {
  switch (kind) {
    case RepairViolation::Kind::kNodeDeath: return "node-death";
    case RepairViolation::Kind::kLinkDegradation: return "link-degradation";
    case RepairViolation::Kind::kLoadOverCapacity: return "load-over-capacity";
    case RepairViolation::Kind::kPropertyDrift: return "property-drift";
  }
  return "unknown";
}

util::Expected<DeploymentPlan> Planner::repair(
    const PlanRequest& request, const DeploymentPlan& old_plan,
    const std::vector<RepairViolation>& violations,
    const std::vector<ExistingInstance>& existing,
    RepairOutcome* outcome) const {
  const net::Network& network = env_.network();
  const std::size_t node_count = network.node_count();
  if (outcome != nullptr) *outcome = RepairOutcome{};
  if (!request.client_node.valid() ||
      request.client_node.value >= node_count) {
    // Let plan() produce its usual validation error.
    return plan(request, existing, outcome ? &outcome->stats : nullptr);
  }

  // Nodes nothing new may land on. All node-scoped violation kinds exclude
  // the node: a dead node cannot host, an over-capacity node must shed, and
  // a drifted node must not be re-chosen until the next full plan validates
  // it. Draining a live node works by feeding a kNodeDeath violation without
  // crashing it.
  std::vector<char> excluded(node_count, 0);
  std::vector<net::LinkId> degraded_links;
  for (const RepairViolation& v : violations) {
    switch (v.kind) {
      case RepairViolation::Kind::kNodeDeath:
      case RepairViolation::Kind::kLoadOverCapacity:
      case RepairViolation::Kind::kPropertyDrift:
        if (v.node.valid() && v.node.value < node_count) {
          excluded[v.node.value] = 1;
        }
        break;
      case RepairViolation::Kind::kLinkDegradation:
        if (v.link.valid() && v.link.value < network.link_count()) {
          degraded_links.push_back(v.link);
        }
        break;
    }
  }

  const auto usable = [&](net::NodeId n) {
    return n.valid() && n.value < node_count && excluded[n.value] == 0 &&
           network.node(n).up;
  };
  const auto wire_degraded = [&](const Wire& w) {
    for (net::LinkId l : w.route.links) {
      for (net::LinkId d : degraded_links) {
        if (l == d) return true;
      }
    }
    return false;
  };

  // Classify the old placements. A placement breaks when its node is
  // excluded or down, or when a wire it *serves* rides a degraded link (the
  // client side of such a wire may be the entry, which is pinned — moving
  // the server side is what re-routes the traffic).
  std::vector<char> broken(old_plan.placements.size(), 0);
  for (std::size_t i = 0; i < old_plan.placements.size(); ++i) {
    if (!usable(old_plan.placements[i].node)) broken[i] = 1;
  }
  for (const Wire& w : old_plan.wires) {
    if (!wire_degraded(w)) continue;
    for (std::size_t i = 0; i < old_plan.placements.size(); ++i) {
      if (old_plan.placements[i].id == w.server) broken[i] = 1;
    }
  }

  // Candidate set: the survivors' nodes and the client node, widened by the
  // cluster neighborhoods of every broken node / degraded link so the search
  // can place replacements near where the casualties were.
  std::vector<char> candidate(node_count, 0);
  if (request.client_node.valid() && request.client_node.value < node_count) {
    candidate[request.client_node.value] = 1;
  }
  std::size_t broken_count = 0;
  std::vector<net::NodeId> node_seeds;
  std::vector<net::NodeId> link_seeds;
  for (std::size_t i = 0; i < old_plan.placements.size(); ++i) {
    const net::NodeId n = old_plan.placements[i].node;
    if (broken[i] != 0) {
      ++broken_count;
      if (n.valid() && n.value < node_count) node_seeds.push_back(n);
    } else if (n.valid() && n.value < node_count) {
      candidate[n.value] = 1;
    }
  }
  for (net::LinkId l : degraded_links) {
    link_seeds.push_back(network.link(l).a);
    link_seeds.push_back(network.link(l).b);
  }

  const std::size_t cluster_count =
      request.cluster_count != 0
          ? request.cluster_count
          : ClusterIndex::default_cluster_count(node_count);
  if (cluster_count >= 2 && node_count > cluster_count) {
    ClusterIndex index(network, cluster_count);
    const ClusterIndex::ClusterId home =
        index.cluster_of(request.client_node);
    const auto widen = [&](net::NodeId seed) {
      const ClusterIndex::ClusterId c = index.cluster_of(seed);
      for (net::NodeId m : index.members(c)) candidate[m.value] = 1;
      for (net::NodeId m : index.path_border_nodes(home, c)) {
        candidate[m.value] = 1;
      }
    };
    for (net::NodeId seed : link_seeds) widen(seed);
    for (net::NodeId seed : node_seeds) {
      widen(seed);
      // A replacement usually lands one hop from the casualty, and the
      // partition may split a well-connected site across clusters — admit
      // the seed's direct neighbors too (the nodes themselves, not their
      // whole clusters: the repair search must stay cluster-sized).
      for (net::LinkId l : network.links_of(seed)) {
        const net::NodeId n = network.link(l).other(seed);
        if (n.valid() && n.value < node_count) candidate[n.value] = 1;
      }
    }
  } else {
    // Too small to partition meaningfully: the whole network is one
    // neighborhood.
    std::fill(candidate.begin(), candidate.end(), 1);
  }

  std::vector<net::NodeId> candidate_nodes;
  for (std::uint32_t v = 0; v < node_count; ++v) {
    const net::NodeId n{v};
    if (candidate[v] != 0 && usable(n)) candidate_nodes.push_back(n);
  }

  // Reuse pool: the live deployment minus anything stranded on an excluded
  // or down node.
  std::vector<ExistingInstance> pool;
  pool.reserve(existing.size());
  for (const ExistingInstance& e : existing) {
    if (usable(e.node)) pool.push_back(e);
  }

  if (outcome != nullptr) {
    outcome->surviving_placements = old_plan.placements.size() - broken_count;
    outcome->broken_placements = broken_count;
    outcome->candidate_nodes = candidate_nodes;
  }

  PlanRequest restricted = request;
  restricted.candidate_nodes = candidate_nodes;
  SearchStats stats;
  auto repaired = plan(restricted, pool, &stats);
  if (outcome != nullptr) outcome->stats = stats;
  if (repaired.has_value()) return repaired;

  // Restricted search came up empty — fall back to a full replan, still
  // excluding violation nodes. With nothing excluded the candidate list is
  // cleared entirely so the hierarchical / chain-DP strategies stay
  // available at scale.
  PlanRequest full = request;
  full.candidate_nodes.clear();
  for (std::uint32_t v = 0; v < node_count; ++v) {
    if (excluded[v] != 0) {
      for (std::uint32_t w = 0; w < node_count; ++w) {
        const net::NodeId n{w};
        if (usable(n)) full.candidate_nodes.push_back(n);
      }
      break;
    }
  }
  SearchStats full_stats;
  auto cold = plan(full, pool, &full_stats);
  if (outcome != nullptr) {
    outcome->fell_back_to_full = true;
    outcome->stats += full_stats;
  }
  return cold;
}

}  // namespace psf::planner
