#include "planner/environment.hpp"

namespace psf::planner {

namespace {

spec::PropertyValue coerce(const net::CredentialValue& cred,
                           spec::PropertyType type) {
  switch (type) {
    case spec::PropertyType::kBoolean:
      if (auto* b = std::get_if<bool>(&cred)) {
        return spec::PropertyValue::boolean(*b);
      }
      if (auto* i = std::get_if<std::int64_t>(&cred)) {
        return spec::PropertyValue::boolean(*i != 0);
      }
      return {};
    case spec::PropertyType::kInterval:
      if (auto* i = std::get_if<std::int64_t>(&cred)) {
        return spec::PropertyValue::integer(*i);
      }
      if (auto* d = std::get_if<double>(&cred)) {
        return spec::PropertyValue::integer(static_cast<std::int64_t>(*d));
      }
      return {};
    case spec::PropertyType::kString:
      if (auto* s = std::get_if<std::string>(&cred)) {
        return spec::PropertyValue::string(*s);
      }
      return {};
  }
  return {};
}

}  // namespace

spec::Environment CredentialMapTranslator::translate(
    const net::Credentials& creds,
    const std::vector<CredentialMapping>& mappings) {
  spec::Environment env;
  for (const CredentialMapping& m : mappings) {
    spec::PropertyValue value;
    if (auto cred = creds.get(m.credential)) {
      value = coerce(*cred, m.type);
    }
    if (!value.is_set()) value = m.default_value;
    if (value.is_set()) env.set(m.property, value);
  }
  return env;
}

spec::Environment CredentialMapTranslator::translate_node(
    const net::Node& node) const {
  return translate(node.credentials, node_mappings_);
}

spec::Environment CredentialMapTranslator::translate_link(
    const net::Link& link) const {
  return translate(link.credentials, link_mappings_);
}

spec::Environment TrustBackedTranslator::translate_node(
    const net::Node& node) const {
  return from_holdings(graph_.holdings_of(node.name));
}

spec::Environment TrustBackedTranslator::translate_principal(
    const std::string& principal) const {
  return from_holdings(graph_.holdings_of(principal));
}

spec::Environment TrustBackedTranslator::from_holdings(
    const trust::Holdings& holdings) const {
  spec::Environment env;
  for (const CredentialMapping& m : node_properties_) {
    const trust::Role role{role_ns_, m.credential};
    auto it = holdings.find(role);
    spec::PropertyValue value;
    if (it != holdings.end()) {
      switch (m.type) {
        case spec::PropertyType::kBoolean:
          value = spec::PropertyValue::boolean(true);
          break;
        case spec::PropertyType::kInterval:
          value = spec::PropertyValue::integer(it->second);
          break;
        case spec::PropertyType::kString:
          value = spec::PropertyValue::string(std::to_string(it->second));
          break;
      }
    } else if (m.default_value.is_set()) {
      value = m.default_value;
    }
    if (value.is_set()) env.set(m.property, value);
  }
  return env;
}

spec::Environment TrustBackedTranslator::translate_link(
    const net::Link& link) const {
  return link_fallback_.translate_link(link);
}

EnvironmentView::EnvironmentView(const net::Network& network,
                                 const PropertyTranslator& translator)
    : network_(network), translator_(&translator) {
  node_envs_.reserve(network.node_count());
  for (net::NodeId id : network.all_nodes()) {
    node_envs_.push_back(translator.translate_node(network.node(id)));
  }
  link_envs_.reserve(network.link_count());
  for (net::LinkId id : network.all_links()) {
    link_envs_.push_back(translator.translate_link(network.link(id)));
  }
}

const spec::Environment& EnvironmentView::node_env(net::NodeId id) const {
  PSF_CHECK(id.valid() && id.value < node_envs_.size());
  return node_envs_[id.value];
}

const spec::Environment& EnvironmentView::link_env(net::LinkId id) const {
  PSF_CHECK(id.valid() && id.value < link_envs_.size());
  return link_envs_[id.value];
}

const spec::Environment& EnvironmentView::principal_env(
    const std::string& principal) const {
  auto it = principal_envs_.find(principal);
  if (it == principal_envs_.end()) {
    it = principal_envs_
             .emplace(principal, translator_->translate_principal(principal))
             .first;
  }
  return it->second;
}

spec::PropertyValue EnvironmentView::transform_along(
    const spec::RuleSet& rules, const std::string& property,
    spec::PropertyValue value, const net::Route& route,
    net::NodeId from) const {
  net::NodeId current = from;
  for (std::size_t i = 0; i < route.links.size(); ++i) {
    const net::LinkId lid = route.links[i];
    const spec::Environment& lenv = link_env(lid);
    value = rules.apply(property, value,
                        lenv.get(property).value_or(spec::PropertyValue()));
    current = network_.link(lid).other(current);
    const bool is_final = i + 1 == route.links.size();
    if (!is_final) {
      const spec::Environment& nenv = node_env(current);
      value = rules.apply(property, value,
                          nenv.get(property).value_or(spec::PropertyValue()));
    }
  }
  return value;
}

spec::PropertyValue TransformMemo::transform(const EnvironmentView& env,
                                             const spec::RuleSet& rules,
                                             const std::string& property,
                                             const spec::PropertyValue& value,
                                             const net::Route& route,
                                             net::NodeId from) {
  if (route.local()) return value;  // identity: nothing to traverse or cache
  std::vector<Entry>& entries = cache_[Key{&route, from.value, property}];
  for (const Entry& e : entries) {
    if (e.in == value) {
      ++hits_;
      return e.out;
    }
  }
  ++misses_;
  spec::PropertyValue out =
      env.transform_along(rules, property, value, route, from);
  entries.push_back(Entry{value, out});
  return out;
}

}  // namespace psf::planner
