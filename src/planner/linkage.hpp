// Valid-linkage enumeration (paper §3.3 step 1, Figure 3).
//
// Starting from the interface(s) a client requested, the enumerator finds
// components implementing them and recurses on each component's required
// interfaces, stopping at components with no requirements. The result is the
// set of component trees (chains, in the mail service) that could satisfy
// the request — *before* any placement decision. The planner proper fuses
// this enumeration with mapping (as the paper's implementation does); this
// standalone form exists for Fig. 3, for tests, and for the DP chain
// planner, which needs explicit chains.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spec/model.hpp"

namespace psf::planner {

struct LinkageNode {
  const spec::ComponentDef* component = nullptr;
  // One child per required interface, in declaration order.
  std::vector<std::unique_ptr<LinkageNode>> children;
};

struct LinkageTree {
  std::unique_ptr<LinkageNode> root;

  std::size_t size() const;
  bool is_chain() const;
  // For chains: the components from root to leaf.
  std::vector<const spec::ComponentDef*> as_chain() const;
  std::string to_string() const;
};

struct LinkageOptions {
  // Maximum number of components on any root-to-leaf path. Views may require
  // the interface they implement (ViewMailServer chains), so enumeration
  // must be depth-bounded to terminate.
  std::size_t max_depth = 6;
  // Cap on trees produced (safety valve for adversarial specs).
  std::size_t max_trees = 10000;
};

// All valid component trees able to satisfy `interface_name`.
std::vector<LinkageTree> enumerate_linkages(const spec::ServiceSpec& spec,
                                            const std::string& interface_name,
                                            const LinkageOptions& options = {});

// Convenience for Fig. 3: formats each tree on one line
// ("MailClient -> ViewMailServer -> MailServer").
std::vector<std::string> describe_linkages(
    const std::vector<LinkageTree>& trees);

}  // namespace psf::planner
