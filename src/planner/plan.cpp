// detlint:ordered-output — plan content is fingerprinted and compared bit-for-bit.
#include "planner/plan.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace psf::planner {

std::string FactorBindings::to_string() const {
  if (values.empty()) return "";
  std::ostringstream oss;
  oss << "[";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) oss << ", ";
    first = false;
    oss << name << "=" << value.to_string();
  }
  oss << "]";
  return oss.str();
}

std::string DeploymentPlan::to_string(const net::Network& network) const {
  std::ostringstream oss;
  oss << "DeploymentPlan (expected latency "
      << metrics.expected_latency_s * 1e3 << " ms, " << metrics.new_components
      << " new / " << metrics.reused_components << " reused components)\n";
  for (const Placement& p : placements) {
    oss << "  #" << p.id << " " << p.component->name
        << p.factors.to_string() << " @ " << network.node(p.node).name;
    if (p.reuse_existing) oss << " (existing)";
    if (p.id == entry) oss << " (entry)";
    oss << "\n";
  }
  for (const Wire& w : wires) {
    oss << "  #" << w.client << " --" << w.interface_name << "--> #"
        << w.server;
    if (w.route.local()) {
      oss << " (local)";
    } else {
      oss << " (" << w.route.links.size() << " hop(s), "
          << w.route.total_latency.millis() << " ms)";
    }
    oss << "\n";
  }
  return oss.str();
}

std::string DeploymentPlan::to_dot(const net::Network& network) const {
  std::ostringstream oss;
  oss << "digraph deployment {\n  rankdir=LR;\n  node [shape=box];\n";

  std::map<std::uint32_t, std::vector<const Placement*>> by_node;
  for (const Placement& p : placements) {
    by_node[p.node.value].push_back(&p);
  }
  for (const auto& [node, members] : by_node) {
    oss << "  subgraph cluster_" << node << " {\n"
        << "    label=\"" << network.node(net::NodeId{node}).name
        << "\";\n";
    for (const Placement* p : members) {
      oss << "    p" << p->id << " [label=\"" << p->component->name;
      const std::string factors = p->factors.to_string();
      if (!factors.empty()) oss << "\\n" << factors;
      if (p->reuse_existing) oss << "\\n(existing)";
      oss << "\"";
      if (p->id == entry) oss << ", style=bold";
      if (p->reuse_existing) oss << ", style=dashed";
      oss << "];\n";
    }
    oss << "  }\n";
  }
  for (const Wire& w : wires) {
    oss << "  p" << w.client << " -> p" << w.server << " [label=\""
        << w.interface_name;
    if (!w.route.local()) {
      oss << "\\n" << w.route.total_latency.millis() << " ms";
    }
    oss << "\"];\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace psf::planner
