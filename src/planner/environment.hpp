// Credential→property translation and the planner's environment view
// (paper §3.3: "the planner first needs to translate these credentials into
// properties that the service cares about based on external service-specific
// functions").
//
// Two translators are provided:
//  - CredentialMapTranslator: declarative mapping from network credential
//    names to service property names, with per-property defaults — the
//    "service-supplied external procedure" of §3.1;
//  - TrustBackedTranslator: the §6 extension — node properties are derived
//    from a dRBAC-style trust graph, so cross-domain delegation and
//    revocation drive what the planner sees.
//
// EnvironmentView caches the translated Environment of every node and link,
// and implements property transformation along a route (applying the
// service's modification rules across each link and intermediate node).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "spec/model.hpp"
#include "spec/value.hpp"
#include "trust/trust_graph.hpp"

namespace psf::planner {

class PropertyTranslator {
 public:
  virtual ~PropertyTranslator() = default;

  virtual spec::Environment translate_node(const net::Node& node) const = 0;
  virtual spec::Environment translate_link(const net::Link& link) const = 0;

  // Translates a client principal's credentials into service properties
  // (§3.1: the access request carries the client's credentials, and the
  // planner "first needs to translate these credentials into properties").
  // The generic server merges the result into a request's required
  // properties before planning. Default: no derived properties.
  virtual spec::Environment translate_principal(
      const std::string& principal) const {
    (void)principal;
    return {};
  }
};

// One mapping row: service property <- credential, with an optional default
// used when the credential is absent.
struct CredentialMapping {
  std::string property;    // service property name
  std::string credential;  // network credential name
  spec::PropertyType type = spec::PropertyType::kBoolean;
  spec::PropertyValue default_value;  // unset = no default (property absent)
};

class CredentialMapTranslator : public PropertyTranslator {
 public:
  CredentialMapTranslator() = default;

  CredentialMapTranslator& map_node(CredentialMapping mapping) {
    node_mappings_.push_back(std::move(mapping));
    return *this;
  }
  CredentialMapTranslator& map_link(CredentialMapping mapping) {
    link_mappings_.push_back(std::move(mapping));
    return *this;
  }

  spec::Environment translate_node(const net::Node& node) const override;
  spec::Environment translate_link(const net::Link& link) const override;

 private:
  static spec::Environment translate(
      const net::Credentials& creds,
      const std::vector<CredentialMapping>& mappings);

  std::vector<CredentialMapping> node_mappings_;
  std::vector<CredentialMapping> link_mappings_;
};

// Derives node properties from trust-graph role holdings: property P of node
// n = value of role `role_ns.P` held by principal `principal_prefix + n.name`.
// Boolean properties are held/not-held; interval properties use the role
// value. Link properties fall back to an inner credential-map translator.
class TrustBackedTranslator : public PropertyTranslator {
 public:
  TrustBackedTranslator(const trust::TrustGraph& graph, std::string role_ns,
                        std::vector<CredentialMapping> node_properties,
                        CredentialMapTranslator link_fallback)
      : graph_(graph),
        role_ns_(std::move(role_ns)),
        node_properties_(std::move(node_properties)),
        link_fallback_(std::move(link_fallback)) {}

  spec::Environment translate_node(const net::Node& node) const override;
  spec::Environment translate_link(const net::Link& link) const override;

  // A principal's properties derive from its own role holdings, exactly as
  // node properties do — delegation to a user drives what the planner is
  // asked to guarantee for that user.
  spec::Environment translate_principal(
      const std::string& principal) const override;

 private:
  spec::Environment from_holdings(const trust::Holdings& holdings) const;

  const trust::TrustGraph& graph_;
  std::string role_ns_;
  std::vector<CredentialMapping> node_properties_;
  CredentialMapTranslator link_fallback_;
};

class EnvironmentView {
 public:
  EnvironmentView(const net::Network& network,
                  const PropertyTranslator& translator);

  const net::Network& network() const { return network_; }

  const spec::Environment& node_env(net::NodeId id) const;
  const spec::Environment& link_env(net::LinkId id) const;

  // Translated requirement set of a client principal, memoized: repeated
  // accesses by the same principal (the common case under fleet load)
  // translate once per environment view. A refresh_environment rebuilds the
  // view, so the memo never outlives the credentials it was derived from.
  const spec::Environment& principal_env(const std::string& principal) const;
  std::size_t principal_cache_size() const { return principal_envs_.size(); }

  // Transforms `value` of property `property` across `route` starting from
  // node `from`: the modification rules are applied for each link crossed
  // and each *intermediate* node traversed (endpoints are the communicating
  // components' own nodes and are not transit environments).
  spec::PropertyValue transform_along(const spec::RuleSet& rules,
                                      const std::string& property,
                                      spec::PropertyValue value,
                                      const net::Route& route,
                                      net::NodeId from) const;

 private:
  const net::Network& network_;
  const PropertyTranslator* translator_;
  std::vector<spec::Environment> node_envs_;
  std::vector<spec::Environment> link_envs_;
  mutable std::map<std::string, spec::Environment> principal_envs_;
};

// Memoizes EnvironmentView::transform_along within one planner search. The
// mapping DFS re-applies the same (property, value, route) transform every
// time it revisits a candidate edge under a different partial plan, and each
// application walks every link and intermediate node of the route. Keyed by
// route identity (pointers into the network's route cache are stable between
// mutations), traversal origin, property, and input value; distinct input
// values per key are few, so they live in a small linear-scanned vector.
// Not thread-safe: each search worker owns one memo.
class TransformMemo {
 public:
  spec::PropertyValue transform(const EnvironmentView& env,
                                const spec::RuleSet& rules,
                                const std::string& property,
                                const spec::PropertyValue& value,
                                const net::Route& route, net::NodeId from);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    spec::PropertyValue in;
    spec::PropertyValue out;
  };
  using Key = std::tuple<const net::Route*, std::uint32_t, std::string>;
  std::map<Key, std::vector<Entry>> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace psf::planner
