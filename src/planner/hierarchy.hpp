// Refinement schedule for the hierarchical (two-level) mapping search.
//
// The coordinator in planner.cpp searches one ClusterRefinement at a time
// (or fans them out over the thread pool): an exact BnB search restricted to
// the refinement's candidate node set. Candidate sets are built so that
//  - the client cluster's refinement (always rank 0) can express every plan
//    confined to the client's own cluster plus existing instances, and
//  - cluster c's refinement can express every plan that stages components
//    in c, along the quotient path back to the client, or in the client
//    cluster itself.
// Every node of the topology appears in at least one refinement, so a
// satisfiable request is never missed; what hierarchical search gives up is
// plans spanning two non-client clusters that are not on each other's
// quotient path (the measured optimality gap, gated <= 5% in the bench).
//
// lower_bound is an admissible bound on the primary score of any plan that
// places a NEW component inside cluster c (the plans unique to refinement
// c): such a plan routes at least once from the client cluster to c, paying
// >= 2 * quotient latency LB on that wire, discounted by no less than
// discount_floor(spec, request). Plans that avoid c's members entirely are
// expressible at some lower-bound-smaller rank, so skipping refinement c
// when lower_bound exceeds the incumbent never discards the optimum over
// the hierarchical plan space.
#pragma once

#include <vector>

#include "planner/cluster.hpp"
#include "planner/planner.hpp"

namespace psf::planner {

struct ClusterRefinement {
  ClusterIndex::ClusterId cluster = 0;
  // Admissible lower bound on the primary score of plans unique to this
  // refinement. Always 0 for the client cluster and for objectives other
  // than kMinLatency (deployment cost and headroom do not grow with
  // distance in a way the quotient can bound).
  double lower_bound = 0.0;
  std::vector<net::NodeId> candidates;  // id-sorted, duplicate-free
};

// Conservative floor on the RRF discount any plan edge can carry: (min over
// components of its cold-padded RRF, clamped to <= 1) ^ (max_depth - 1).
// Multiplying a raw latency bound by this keeps it admissible for *scores*,
// where deep edges are discounted by ancestor RRF products.
double discount_floor(const spec::ServiceSpec& spec,
                      const PlanRequest& request);

// One refinement per cluster, ordered client cluster first, then ascending
// (lower_bound, cluster id). Deterministic for a fixed network and request.
std::vector<ClusterRefinement> build_refinements(
    const ClusterIndex& index, const spec::ServiceSpec& spec,
    const PlanRequest& request,
    const std::vector<ExistingInstance>& existing);

}  // namespace psf::planner
