// ClusterIndex: the hierarchical planner's view of a partitioned topology.
//
// Built on net::partition_graph (the same capacity-bounded streaming
// partition the region-parallel engine uses), it adds what two-level search
// needs:
//   - members(c): the nodes of cluster c, in id order;
//   - border_nodes(c): members of c incident to at least one cut link;
//   - a quotient graph over clusters whose edge (a, b) carries the MINIMUM
//     latency over cut links joining a and b, closed under all-pairs
//     shortest paths. latency_lb_s(a, b) is therefore an admissible lower
//     bound on the one-way latency of ANY route between a node of a and a
//     node of b: every real path crossing from a to b pays at least the
//     min cut latency of each quotient edge it crosses, and APSP only ever
//     relaxes downward.
//   - bandwidth_ub_bps(a, b): an optimistic upper bound on the bottleneck
//     bandwidth of any inter-cluster route — min of the best cut-link
//     bandwidth leaving a and the best entering b.
//
// Bounds ignore fault state on purpose: min latency over ALL cut links <=
// min over up links, and max bandwidth over ALL cut links >= max over up
// links, so both stay sound when links flap (they just get weaker).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/partition.hpp"

namespace psf::planner {

class ClusterIndex {
 public:
  using ClusterId = net::PartId;

  ClusterIndex(const net::Network& network, std::size_t num_clusters);

  std::size_t num_clusters() const { return members_.size(); }
  ClusterId cluster_of(net::NodeId n) const { return cluster_of_node_[n.value]; }
  const std::vector<net::NodeId>& members(ClusterId c) const;
  const std::vector<net::NodeId>& border_nodes(ClusterId c) const;
  std::size_t cut_links() const { return cut_links_; }

  // Admissible lower bound (seconds) on the one-way latency of any route
  // between a node of cluster a and a node of cluster b. 0 when a == b;
  // +infinity when the quotient graph is disconnected between them.
  double latency_lb_s(ClusterId a, ClusterId b) const;

  // Optimistic upper bound (bits/sec) on the bottleneck bandwidth of any
  // route between clusters a and b. +infinity when a == b; 0 when either
  // cluster has no cut link at all.
  double bandwidth_ub_bps(ClusterId a, ClusterId b) const;

  // Border nodes of the clusters strictly between a and b on the quotient
  // shortest-latency path (excluding a's and b's own borders), in id order.
  // These are the relay candidates a refinement of b should consider so a
  // plan may stage components along the way back to a.
  std::vector<net::NodeId> path_border_nodes(ClusterId a, ClusterId b) const;

  // ~sqrt(n) clusters: balances quotient size against cluster size.
  static std::size_t default_cluster_count(std::size_t node_count);

 private:
  std::vector<ClusterId> cluster_of_node_;
  std::vector<std::vector<net::NodeId>> members_;
  std::vector<std::vector<net::NodeId>> borders_;
  // Dense k*k matrices over cluster ids.
  std::vector<double> latency_lb_s_;          // APSP over the quotient
  std::vector<ClusterId> next_hop_;           // quotient path reconstruction
  std::vector<double> max_cut_bandwidth_bps_; // per cluster, over its cut links
  std::size_t cut_links_ = 0;
};

}  // namespace psf::planner
