// The planning module (paper §3.3).
//
// Given a service specification, the translated environment view of the
// network, and a client request for an interface (with required property
// values), the planner searches for the deployment that best satisfies the
// request: which components (and view configurations) to instantiate, where,
// and how to wire them. The search fuses linkage enumeration with network
// mapping, exactly as the paper's implementation does, validating the three
// §3.3 conditions for every linked pair:
//
//   1. each component's installation Conditions hold in its node's
//      environment;
//   2. the server side's *effective* interface properties — after factor
//      binding, transparent pass-through, and modification-rule degradation
//      along the connecting route — satisfy the client side's requirements;
//   3. the traffic implied by the request rate (scaled by RRF through the
//      component graph) fits within node CPU, link bandwidth, and component
//      capacity limits.
//
// Plans may bind to already-deployed instances (ExistingInstance), which is
// how a Seattle request reuses the San Diego ViewMailServer in the paper's
// case study.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "planner/environment.hpp"
#include "planner/plan.hpp"
#include "spec/model.hpp"
#include "util/status.hpp"

namespace psf::planner {

// A component instance that is already running, offered for reuse.
struct ExistingInstance {
  std::uint64_t runtime_id = 0;
  const spec::ComponentDef* component = nullptr;
  net::NodeId node;
  FactorBindings factors;
  EffectiveProps effective;
  double downstream_latency_s = 0.0;  // expected latency behind this instance
  double current_load_rps = 0.0;
};

enum class Objective { kMinLatency, kMinDeploymentCost, kMaxCapacity };

const char* objective_name(Objective o);

// How the mapping search traverses the topology.
//
//   kFlat          — PR 1 branch-and-bound over every node (exact).
//   kHierarchical  — two-level search: partition the topology into ~sqrt(n)
//                    clusters (ClusterIndex), search the client's cluster
//                    first (quotient rank 0, lower bound 0 — its result
//                    seeds the shared incumbent), then refine the remaining
//                    clusters in quotient lower-bound order, each restricted
//                    to its own members + the client cluster + the border
//                    nodes along the quotient path + existing instances.
//                    Clusters whose admissible quotient bound exceeds the
//                    incumbent are pruned without being searched.
//                    Heuristic: exact within every refinement, but a plan
//                    spanning two non-client clusters that are not on each
//                    other's quotient path is out of reach (measured gap
//                    vs kFlat is gated <= 5% in bench/planner_scaling).
//   kAuto          — kHierarchical at >= kHierarchyAutoThreshold nodes,
//                    kFlat below.
enum class SearchMode { kAuto, kFlat, kHierarchical };

const char* search_mode_name(SearchMode m);

// Node count at which kAuto switches to hierarchical search. Below a few
// dozen nodes flat BnB is already sub-millisecond and exact — no reason to
// give up optimality.
inline constexpr std::size_t kHierarchyAutoThreshold = 64;

struct PlanRequest {
  std::string interface_name;
  // Required property values (the client's QoS/security expectations).
  std::vector<std::pair<std::string, spec::PropertyValue>> required_properties;
  net::NodeId client_node;
  double request_rate_rps = 1.0;
  // Client principal whose credentials the generic server translates into
  // additional required properties (memoized per principal in the
  // EnvironmentView). Empty = anonymous, no derived requirements. The
  // planner itself never reads this field: translation happens in the
  // runtime before the search (and before cache fingerprinting), so two
  // principals with identical derived properties plan — and cache —
  // identically.
  std::string principal;
  // Where component code is downloaded from when computing deployment cost;
  // defaults to the client node when invalid.
  net::NodeId code_origin;
  Objective objective = Objective::kMinLatency;
  // The entry component is normally instantiated at the client's own node
  // (the paper's MailClient always runs beside the requesting application).
  bool pin_entry_to_client = true;
  std::size_t max_depth = 6;
  // A freshly deployed view starts with a cold cache, so at plan time its
  // request-reduction factor is discounted: rrf' = rrf + penalty*(1 - rrf).
  // This is what makes the planner attach to an existing warm replica when
  // one is equally placed, instead of conjuring an identical cold twin,
  // while still preferring a *local* new cache over a remote warm one when
  // the WAN savings dominate.
  double cold_view_penalty = 0.1;
  // Branch-and-bound workers fanned out over the entry-level candidate set
  // (component × node at depth 1). 1 = serial search (default), 0 = one
  // worker per hardware thread. Workers share the incumbent score, so the
  // result is bit-identical to the serial search at any worker count; see
  // DESIGN.md "Planner search strategy".
  std::size_t search_threads = 1;
  // Admissible lower-bound pruning of the mapping search. Disabling it never
  // changes the returned plan, only the search cost — the toggle exists for
  // benchmarks and for isolating planner bugs from pruning bugs.
  bool bound_pruning = true;
  // Topology traversal strategy; see SearchMode.
  SearchMode search_mode = SearchMode::kAuto;
  // Cluster count for hierarchical search; 0 = ~sqrt(node_count).
  std::size_t cluster_count = 0;
  // Auto-detected CANS dynamic-programming fast path: when the linkage
  // graph is a pure chain, the topology is a path with the client at an
  // endpoint, and no reuse/property/view machinery is in play, the O(k*m^2)
  // DP (dp_chain.hpp) replaces the exponential mapping search and returns
  // the same optimal chain. Opt-out toggle for benchmarks and equivalence
  // tests; ineligible requests silently fall through to the search.
  bool chain_dp = true;
  // Restricts where NEW components may be placed. Empty = every node (the
  // normal case). Plan repair populates this with the surviving placement
  // nodes plus the affected cluster's members so the search touches only the
  // broken suffix of the deployment; existing instances offered for reuse
  // are still considered wherever they live. Excluded from the plan-cache
  // fingerprint (like deadline_budget): a restricted repair answers the same
  // logical request, just with a smaller search space.
  std::vector<net::NodeId> candidate_nodes;
  // Anytime mode: > 0 is a wall-clock budget in seconds. Once a first
  // incumbent exists, the search stops at the deadline and returns the best
  // plan found so far (SearchStats::deadline_hit tells the caller the
  // result may be improvable — the runtime's background improver re-plans
  // without a deadline and hot-swaps through the plan-cache epoch
  // mechanism, see GenericServer::drain_improvements). The search never
  // returns empty-handed because of a deadline: until an incumbent exists
  // it keeps going.
  double deadline_budget = 0.0;
};

struct SearchStats {
  std::uint64_t candidates_examined = 0;
  std::uint64_t subtrees_pruned = 0;
  std::uint64_t plans_scored = 0;
  // Subtrees cut because the admissible lower bound of every completion was
  // already worse than the incumbent plan's score.
  std::uint64_t pruned_by_bound = 0;
  // Search workers that explored the entry-level fan-out (1 = serial).
  std::uint64_t workers_used = 1;

  // Rejection breakdown — why candidates fell out of the search. The
  // dominant cause is the first place to look when a request comes back
  // kUnsatisfiable ("everything failed the trust condition" reads very
  // differently from "every link was over capacity").
  std::uint64_t rejected_static = 0;        // static component, no instance
  std::uint64_t rejected_cycle = 0;         // same (component,node) on path
  std::uint64_t rejected_duplicate_view = 0;
  std::uint64_t rejected_condition = 0;     // §3.3 condition 1
  std::uint64_t rejected_factor = 0;        // unbindable factor
  std::uint64_t rejected_compatibility = 0; // §3.3 condition 2
  std::uint64_t rejected_node_capacity = 0; // §3.3 condition 3 (cpu)
  std::uint64_t rejected_link_capacity = 0; // §3.3 condition 3 (bandwidth)
  std::uint64_t rejected_instance_capacity = 0;
  std::uint64_t rejected_unroutable = 0;
  std::uint64_t rejected_node_down = 0;     // candidate node is down/crashed

  // Hierarchical-search breakdown (zero for flat searches).
  std::uint64_t clusters_total = 0;    // refinements scheduled
  std::uint64_t clusters_pruned = 0;   // skipped: quotient bound > incumbent
  std::uint64_t clusters_refined = 0;  // actually searched
  bool used_hierarchy = false;
  // The chain-DP fast path answered this request (no tree search ran).
  bool used_chain_dp = false;
  // The anytime deadline truncated the search; the returned plan is the
  // best incumbent, not necessarily the optimum.
  bool deadline_hit = false;

  // Merges another worker's stats into this one: counters add, flags OR,
  // workers_used keeps the maximum (the coordinator overwrites it with the
  // actual fan-out after merging).
  SearchStats& operator+=(const SearchStats& other);

  std::string to_string() const;
};

// A constraint violation detected against a running deployment — the input
// to incremental plan repair. Produced by the runtime's AdaptationController
// from monitor change events; the planner only cares about which nodes/links
// it can no longer rely on.
struct RepairViolation {
  enum class Kind {
    kNodeDeath,        // node crashed or is being drained: nothing may stay
    kLinkDegradation,  // link latency/bandwidth/loss drifted past the plan's
                       // assumptions; wires routed over it must be replaced
    kLoadOverCapacity, // node capacity shrank (or load grew) past headroom
    kPropertyDrift,    // node credential/property changed; placements there
                       // must re-validate and may need to move
  };
  Kind kind = Kind::kNodeDeath;
  net::NodeId node;  // kNodeDeath / kLoadOverCapacity / kPropertyDrift
  net::LinkId link;  // kLinkDegradation
  std::string detail;
};

const char* repair_violation_kind_name(RepairViolation::Kind kind);

// What Planner::repair actually did, for telemetry and tests.
struct RepairOutcome {
  // Repair could not satisfy the request within the restricted candidate
  // set; the result came from an unrestricted full replan instead.
  bool fell_back_to_full = false;
  std::size_t surviving_placements = 0;  // placements untouched by violations
  std::size_t broken_placements = 0;     // placements invalidated
  // The restricted node set the repair searched (before any fallback).
  std::vector<net::NodeId> candidate_nodes;
  SearchStats stats;
};

class Planner {
 public:
  Planner(const spec::ServiceSpec& spec, const EnvironmentView& env);

  // Finds the best deployment; kUnsatisfiable when no mapping meets all
  // constraints. Thread-compatible: concurrent plan() calls are safe.
  util::Expected<DeploymentPlan> plan(
      const PlanRequest& request,
      const std::vector<ExistingInstance>& existing = {},
      SearchStats* stats = nullptr) const;

  // Plans many requests concurrently across a thread pool (what-if
  // analysis: each plan is computed against the same snapshot of existing
  // instances and does NOT see the others' resource reservations — commit
  // them one at a time through the generic server for that). num_threads
  // 0 = hardware concurrency. Results are index-aligned with requests.
  std::vector<util::Expected<DeploymentPlan>> plan_many(
      const std::vector<PlanRequest>& requests,
      const std::vector<ExistingInstance>& existing = {},
      std::size_t num_threads = 0) const;

  // Incremental plan repair (ROADMAP item 2, after Dearle/Kirby's autonomic
  // management loop). Classifies old_plan's placements into surviving vs
  // broken under the given violations, pins the survivors by offering them
  // as reuse candidates, and re-searches only a restricted candidate set:
  // the survivors' nodes, the client node, and the members + path border
  // nodes of the clusters containing the broken placements (ClusterIndex —
  // the same locality machinery hierarchical search uses). Violation nodes
  // are excluded outright, which is also how drains work: the node is alive
  // but nothing new may land on it. Falls back to a full replan (still
  // excluding violation nodes) when the restricted search is unsatisfiable.
  // kUnsatisfiable only when even the full replan fails. `existing` is the
  // caller's reuse pool; repair filters out instances on violation nodes.
  util::Expected<DeploymentPlan> repair(
      const PlanRequest& request, const DeploymentPlan& old_plan,
      const std::vector<RepairViolation>& violations,
      const std::vector<ExistingInstance>& existing = {},
      RepairOutcome* outcome = nullptr) const;

  const spec::ServiceSpec& spec() const { return spec_; }
  const EnvironmentView& environment() const { return env_; }

 private:
  util::Expected<DeploymentPlan> plan_flat(
      const PlanRequest& request,
      const std::vector<ExistingInstance>& existing, SearchStats* stats) const;
  util::Expected<DeploymentPlan> plan_hierarchical(
      const PlanRequest& request,
      const std::vector<ExistingInstance>& existing, SearchStats* stats) const;
  // nullopt = request not chain-DP eligible (fall through to the search).
  std::optional<util::Expected<DeploymentPlan>> try_chain_dp(
      const PlanRequest& request,
      const std::vector<ExistingInstance>& existing, SearchStats* stats) const;

  const spec::ServiceSpec& spec_;
  const EnvironmentView& env_;
  // interface → implementing components, built once so the search does not
  // rescan the component list for every candidate edge.
  spec::ImplementerIndex iface_index_;
};

// The primary (lexicographically first) objective value score_plan assigns
// to a finished plan's metrics: expected latency for kMinLatency, deployment
// cost + new components for kMinDeploymentCost, negated min headroom for
// kMaxCapacity. This is the quantity the anytime improver must drive
// monotonically down across hot-swaps.
double plan_primary_score(Objective objective, const PlanMetrics& metrics);

}  // namespace psf::planner
