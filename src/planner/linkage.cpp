#include "planner/linkage.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace psf::planner {

namespace {

std::size_t subtree_size(const LinkageNode& node) {
  std::size_t n = 1;
  for (const auto& child : node.children) n += subtree_size(*child);
  return n;
}

std::unique_ptr<LinkageNode> clone(const LinkageNode& node) {
  auto copy = std::make_unique<LinkageNode>();
  copy->component = node.component;
  for (const auto& child : node.children) {
    copy->children.push_back(clone(*child));
  }
  return copy;
}

void describe(const LinkageNode& node, std::ostringstream& oss) {
  oss << node.component->name;
  if (node.children.empty()) return;
  if (node.children.size() == 1) {
    oss << " -> ";
    describe(*node.children[0], oss);
    return;
  }
  oss << " -> (";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i) oss << " | ";
    describe(*node.children[i], oss);
  }
  oss << ")";
}

class Enumerator {
 public:
  Enumerator(const spec::ServiceSpec& spec, const LinkageOptions& options)
      : spec_(spec), options_(options) {}

  std::vector<LinkageTree> run(const std::string& interface_name) {
    std::vector<LinkageTree> out;
    for (auto& root : satisfy(interface_name, 1)) {
      if (out.size() >= options_.max_trees) break;
      out.push_back(LinkageTree{std::move(root)});
    }
    return out;
  }

 private:
  // All subtrees rooted at a component implementing `iface`, at `depth`.
  std::vector<std::unique_ptr<LinkageNode>> satisfy(const std::string& iface,
                                                    std::size_t depth) {
    std::vector<std::unique_ptr<LinkageNode>> out;
    if (depth > options_.max_depth) return out;
    for (const spec::ComponentDef* comp : spec_.implementers_of(iface)) {
      // Solve each required interface independently, then take the cross
      // product across requirement positions.
      std::vector<std::vector<std::unique_ptr<LinkageNode>>> alternatives;
      bool feasible = true;
      for (const spec::LinkageDecl& req : comp->requires_) {
        auto subs = satisfy(req.interface_name, depth + 1);
        if (subs.empty()) {
          feasible = false;
          break;
        }
        alternatives.push_back(std::move(subs));
      }
      if (!feasible) continue;

      // Build the cross product of child alternatives iteratively.
      std::vector<std::vector<const LinkageNode*>> partial{{}};
      for (const auto& alt : alternatives) {
        std::vector<std::vector<const LinkageNode*>> next;
        for (const auto& prefix : partial) {
          for (const auto& option : alt) {
            auto extended = prefix;
            extended.push_back(option.get());
            next.push_back(std::move(extended));
          }
        }
        partial = std::move(next);
      }
      for (const auto& combo : partial) {
        if (out.size() >= options_.max_trees) return out;
        auto node = std::make_unique<LinkageNode>();
        node->component = comp;
        for (const LinkageNode* child : combo) {
          node->children.push_back(clone(*child));
        }
        out.push_back(std::move(node));
      }
    }
    return out;
  }

  const spec::ServiceSpec& spec_;
  const LinkageOptions& options_;
};

}  // namespace

std::size_t LinkageTree::size() const {
  return root ? subtree_size(*root) : 0;
}

bool LinkageTree::is_chain() const {
  const LinkageNode* node = root.get();
  while (node != nullptr) {
    if (node->children.size() > 1) return false;
    node = node->children.empty() ? nullptr : node->children[0].get();
  }
  return true;
}

std::vector<const spec::ComponentDef*> LinkageTree::as_chain() const {
  PSF_CHECK_MSG(is_chain(), "as_chain() on a non-chain linkage tree");
  std::vector<const spec::ComponentDef*> out;
  const LinkageNode* node = root.get();
  while (node != nullptr) {
    out.push_back(node->component);
    node = node->children.empty() ? nullptr : node->children[0].get();
  }
  return out;
}

std::string LinkageTree::to_string() const {
  if (!root) return "<empty>";
  std::ostringstream oss;
  describe(*root, oss);
  return oss.str();
}

std::vector<LinkageTree> enumerate_linkages(const spec::ServiceSpec& spec,
                                            const std::string& interface_name,
                                            const LinkageOptions& options) {
  Enumerator e(spec, options);
  return e.run(interface_name);
}

std::vector<std::string> describe_linkages(
    const std::vector<LinkageTree>& trees) {
  std::vector<std::string> out;
  out.reserve(trees.size());
  for (const auto& t : trees) out.push_back(t.to_string());
  return out;
}

}  // namespace psf::planner
