// detlint:ordered-output — cluster numbering feeds the hierarchical reduction.
#include "planner/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace psf::planner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr ClusterIndex::ClusterId kNoHop =
    std::numeric_limits<ClusterIndex::ClusterId>::max();
}  // namespace

ClusterIndex::ClusterIndex(const net::Network& network,
                           std::size_t num_clusters) {
  const net::GraphPartition part =
      net::partition_graph(network, num_clusters);
  const std::size_t k = part.num_parts;
  cluster_of_node_ = part.part_of_node;
  cut_links_ = part.cut_links;

  members_.assign(k, {});
  for (std::uint32_t v = 0; v < cluster_of_node_.size(); ++v) {
    members_[cluster_of_node_[v]].push_back(net::NodeId{v});
  }

  // Direct quotient edges: min cut-link latency between each cluster pair,
  // per-cluster best cut-link bandwidth, and border detection.
  latency_lb_s_.assign(k * k, kInf);
  for (std::size_t c = 0; c < k; ++c) latency_lb_s_[c * k + c] = 0.0;
  max_cut_bandwidth_bps_.assign(k, 0.0);
  std::vector<bool> is_border(cluster_of_node_.size(), false);

  for (net::LinkId lid : network.all_links()) {
    const net::Link& l = network.link(lid);
    const ClusterId ca = cluster_of_node_[l.a.value];
    const ClusterId cb = cluster_of_node_[l.b.value];
    if (ca == cb) continue;
    is_border[l.a.value] = true;
    is_border[l.b.value] = true;
    const double lat_s = l.latency.seconds();
    double& fwd = latency_lb_s_[ca * k + cb];
    double& rev = latency_lb_s_[cb * k + ca];
    fwd = std::min(fwd, lat_s);
    rev = std::min(rev, lat_s);
    max_cut_bandwidth_bps_[ca] =
        std::max(max_cut_bandwidth_bps_[ca], l.bandwidth_bps);
    max_cut_bandwidth_bps_[cb] =
        std::max(max_cut_bandwidth_bps_[cb], l.bandwidth_bps);
  }

  borders_.assign(k, {});
  for (std::uint32_t v = 0; v < cluster_of_node_.size(); ++v) {
    if (is_border[v]) borders_[cluster_of_node_[v]].push_back(net::NodeId{v});
  }

  // Floyd–Warshall over the quotient (k ~ sqrt(n), so k^3 ~ n^1.5 — cheap
  // next to even one search refinement). next_hop_ records the first
  // intermediate cluster of the shortest path for path_border_nodes.
  next_hop_.assign(k * k, kNoHop);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      if (a != b && latency_lb_s_[a * k + b] < kInf) {
        next_hop_[a * k + b] = static_cast<ClusterId>(b);
      }
    }
  }
  for (std::size_t m = 0; m < k; ++m) {
    for (std::size_t a = 0; a < k; ++a) {
      const double am = latency_lb_s_[a * k + m];
      if (am == kInf) continue;
      for (std::size_t b = 0; b < k; ++b) {
        const double mb = latency_lb_s_[m * k + b];
        if (mb == kInf) continue;
        if (am + mb < latency_lb_s_[a * k + b]) {
          latency_lb_s_[a * k + b] = am + mb;
          next_hop_[a * k + b] = next_hop_[a * k + m];
        }
      }
    }
  }
}

const std::vector<net::NodeId>& ClusterIndex::members(ClusterId c) const {
  PSF_CHECK(c < members_.size());
  return members_[c];
}

const std::vector<net::NodeId>& ClusterIndex::border_nodes(ClusterId c) const {
  PSF_CHECK(c < borders_.size());
  return borders_[c];
}

double ClusterIndex::latency_lb_s(ClusterId a, ClusterId b) const {
  PSF_CHECK(a < members_.size() && b < members_.size());
  return latency_lb_s_[a * members_.size() + b];
}

double ClusterIndex::bandwidth_ub_bps(ClusterId a, ClusterId b) const {
  PSF_CHECK(a < members_.size() && b < members_.size());
  if (a == b) return kInf;
  return std::min(max_cut_bandwidth_bps_[a], max_cut_bandwidth_bps_[b]);
}

std::vector<net::NodeId> ClusterIndex::path_border_nodes(ClusterId a,
                                                         ClusterId b) const {
  PSF_CHECK(a < members_.size() && b < members_.size());
  std::vector<net::NodeId> out;
  if (a == b) return out;
  const std::size_t k = members_.size();
  ClusterId cur = a;
  std::size_t guard = 0;
  while (cur != b && ++guard <= k) {
    const ClusterId nxt = next_hop_[cur * k + b];
    if (nxt == kNoHop) return out;  // quotient-disconnected
    if (nxt != b) {
      const std::vector<net::NodeId>& bs = borders_[nxt];
      out.insert(out.end(), bs.begin(), bs.end());
    }
    cur = nxt;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t ClusterIndex::default_cluster_count(std::size_t node_count) {
  if (node_count <= 1) return 1;
  const auto k = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(node_count))));
  return std::clamp<std::size_t>(k, 2, node_count);
}

}  // namespace psf::planner
