// psflint's core: a multi-pass semantic analyzer over parsed PSDL specs.
//
// Where ServiceSpec::validate() stops at the first structural problem, the
// analyzer reports *every* finding in one run, each under a stable catalog
// ID (see diagnostics.hpp) with the source span the parser plumbed through
// from the lexer. Passes, in order:
//
//   1. reference resolution — undefined/unused properties, interfaces,
//      components; dangling Represents/Factors targets; duplicates;
//   2. type/value checks — Implements/Requires/Factors literals vs declared
//      property types, interval bounds, condition operand types;
//   3. modification-rule analysis — non-total rule tables (input pairs with
//      no matching row, Fig. 4), unreachable/shadowed rows;
//   4. topology-independent linkage satisfiability — a Requires no
//      Implements in the spec can ever satisfy under any environment
//      (closure of the property's modification rule over its value domain),
//      and contradictory installation conditions;
//   5. behavior sanity — negative capacities, rrf outside [0,1], explicit
//      zero capacity/rrf, installable components without a code_size.
//
// The error-severity subset is a superset of validate()'s checks, so a spec
// with no error diagnostics also passes validate().
#pragma once

#include <string_view>

#include "analysis/diagnostics.hpp"
#include "spec/model.hpp"

namespace psf::analysis {

// Runs every pass over an already-parsed (possibly partial) spec. Findings
// are ordered by source location; programmatically built specs (SpecBuilder)
// analyze fine but carry no locations.
DiagnosticList analyze(const spec::ServiceSpec& spec);

// Parse (recovering — all syntax errors, not just the first, reported as
// PSF100) + analyze, the one-call form used by psflint and tests.
struct LintResult {
  spec::ServiceSpec spec;      // partial when parse errors were found
  bool parsed = false;         // false = nothing usable was recovered
  DiagnosticList diagnostics;  // parse + analysis findings, in source order
};

LintResult lint_source(std::string_view source);

}  // namespace psf::analysis
