#include "analysis/detlint/checks.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace psf::analysis::det {

namespace {

template <std::size_t N>
bool one_of(std::string_view text, const std::string_view (&set)[N]) {
  for (const std::string_view entry : set) {
    if (text == entry) return true;
  }
  return false;
}

// The checks walk a view of the scan with preprocessor-line tokens removed:
// `#include <ctime>` must not look like a wall-clock call.
class TokenView {
 public:
  explicit TokenView(const CxxScan& scan) {
    for (const CxxToken& tok : scan.tokens) {
      if (!tok.preproc) toks_.push_back(&tok);
    }
  }

  std::size_t size() const { return toks_.size(); }
  const CxxToken& at(std::size_t i) const { return *toks_[i]; }

  bool is_ident(std::size_t i, std::string_view name) const {
    return i < size() && at(i).kind == TokKind::kIdent && at(i).text == name;
  }
  bool is_punct(std::size_t i, std::string_view text) const {
    return i < size() && at(i).kind == TokKind::kPunct && at(i).text == text;
  }

  // True when token i is qualified as `std::...` (directly, or through one
  // nested namespace such as std::chrono::).
  bool std_qualified(std::size_t i) const {
    if (i < 2 || !is_punct(i - 1, "::")) return false;
    if (is_ident(i - 2, "std")) return true;
    return i >= 4 && at(i - 2).kind == TokKind::kIdent &&
           is_punct(i - 3, "::") && is_ident(i - 4, "std");
  }

  // True when token i names a free-function call: followed by "(", not a
  // member access, not qualified by a non-std namespace (somebody else's
  // `detail::time(...)` is their business), and not a *declaration* — an
  // identifier directly preceded by another identifier (`long time(int);`)
  // is a declarator, unless that identifier is a statement keyword.
  bool free_call(std::size_t i) const {
    if (!is_punct(i + 1, "(")) return false;
    if (i == 0) return true;
    if (is_punct(i - 1, ".") || is_punct(i - 1, "->")) return false;
    if (is_punct(i - 1, "::")) return std_qualified(i);
    if (at(i - 1).kind == TokKind::kIdent) {
      static constexpr std::string_view kStatementWords[] = {
          "return", "co_return", "co_await", "co_yield", "throw",
          "case",   "else",      "do",       "and",      "or",
          "not",    "sizeof"};
      return one_of(at(i - 1).text, kStatementWords);
    }
    return true;
  }

  // With i on "<", returns the index one past its matching ">" (each ">"
  // counts singly — the scanner never fuses ">>").
  std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    while (i < size()) {
      if (is_punct(i, "<")) ++depth;
      if (is_punct(i, ">") && --depth == 0) return i + 1;
      if (is_punct(i, ";") || is_punct(i, "{")) break;  // not a template
      ++i;
    }
    return i;
  }

 private:
  std::vector<const CxxToken*> toks_;
};

constexpr std::string_view kWallClockCalls[] = {
    "time",     "clock", "gettimeofday", "localtime",
    "gmtime",   "mktime", "ctime",       "timespec_get",
};

constexpr std::string_view kChronoClocks[] = {
    "system_clock", "steady_clock", "high_resolution_clock",
};

constexpr std::string_view kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

// Types whose presence in a static declaration head marks it as properly
// guarded (or immutable, or per-thread).
constexpr std::string_view kGuardedDeclWords[] = {
    "const",        "constexpr",       "constinit",
    "atomic",       "atomic_flag",     "mutex",
    "shared_mutex", "recursive_mutex", "timed_mutex",
    "once_flag",    "condition_variable", "thread_local",
};

constexpr std::string_view kLockGuards[] = {
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
};

// --- DET001..DET004: entropy and clock sources ----------------------------

void check_entropy_and_clocks(const TokenView& toks, DiagnosticList& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const CxxToken& tok = toks.at(i);
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "random_device") {
      out.add("DET001", tok.loc,
              "std::random_device is a nondeterministic entropy source; "
              "seed a util::Rng from the run seed instead");
    } else if ((tok.text == "rand" || tok.text == "srand") &&
               toks.free_call(i)) {
      out.add("DET002", tok.loc,
              std::string(tok.text) +
                  "() uses hidden global RNG state; use a seeded util::Rng");
    } else if (one_of(tok.text, kWallClockCalls) && toks.free_call(i)) {
      out.add("DET003", tok.loc,
              "wall-clock read " + std::string(tok.text) +
                  "() on a simulated path; use the sim clock (sim::Time)");
    } else if (one_of(tok.text, kChronoClocks)) {
      out.add("DET004", tok.loc,
              "std::chrono::" + std::string(tok.text) +
                  " read outside the sim clock; simulated paths must take "
                  "time from sim::Simulator");
    }
  }
}

// --- DET010: unordered iteration in ordered-output files ------------------

void check_unordered_iteration(const TokenView& toks, DiagnosticList& out) {
  // Pass 1: names declared with an unordered container type in this file.
  std::vector<std::string_view> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks.at(i).kind != TokKind::kIdent ||
        !one_of(toks.at(i).text, kUnorderedContainers)) {
      continue;
    }
    std::size_t j = i + 1;
    if (toks.is_punct(j, "<")) j = toks.skip_angles(j);
    while (toks.is_punct(j, "&") || toks.is_punct(j, "*") ||
           toks.is_ident(j, "const")) {
      ++j;
    }
    if (j < toks.size() && toks.at(j).kind == TokKind::kIdent) {
      names.push_back(toks.at(j).text);
    }
  }
  if (names.empty()) return;
  const auto declared = [&](std::string_view name) {
    for (const std::string_view n : names) {
      if (n == name) return true;
    }
    return false;
  };

  // Pass 2: range-for over a declared name, or explicit begin()/end().
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks.is_ident(i, "for") && toks.is_punct(i + 1, "(")) {
      int depth = 0;
      bool past_colon = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks.is_punct(j, "(")) ++depth;
        if (toks.is_punct(j, ")") && --depth == 0) break;
        if (depth == 1 && toks.is_punct(j, ":")) past_colon = true;
        if (past_colon && toks.at(j).kind == TokKind::kIdent &&
            declared(toks.at(j).text)) {
          out.add("DET010", toks.at(i).loc,
                  "iteration over unordered container '" +
                      std::string(toks.at(j).text) +
                      "' in an ordered-output file; use an ordered "
                      "container or sort before emitting");
          break;
        }
      }
    } else if (toks.at(i).kind == TokKind::kIdent &&
               declared(toks.at(i).text) &&
               (toks.is_punct(i + 1, ".") || toks.is_punct(i + 1, "->"))) {
      static constexpr std::string_view kIter[] = {
          "begin", "end", "cbegin", "cend", "rbegin", "rend",
      };
      if (i + 3 < toks.size() && toks.at(i + 2).kind == TokKind::kIdent &&
          one_of(toks.at(i + 2).text, kIter) && toks.is_punct(i + 3, "(")) {
        out.add("DET010", toks.at(i).loc,
                "iterator walk over unordered container '" +
                    std::string(toks.at(i).text) +
                    "' in an ordered-output file; use an ordered container "
                    "or sort before emitting");
      }
    }
  }
}

// --- DET011/DET012: pointer keys in ordered containers, pointer hashing ---

// With `open` on the "<" after the container name: true when the first
// template argument (the key) contains a "*" at any nesting depth — a
// pointer anywhere in the key makes the comparison address-dependent.
bool key_argument_has_pointer(const TokenView& toks, std::size_t open) {
  int angle = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks.is_punct(j, "<")) ++angle;
    if (toks.is_punct(j, ">") && --angle == 0) return false;
    if (angle == 1 && toks.is_punct(j, ",")) return false;  // key arg ends
    if (toks.is_punct(j, ";") || toks.is_punct(j, "{")) return false;
    if (angle >= 1 && toks.is_punct(j, "*")) return true;
  }
  return false;
}

void check_pointer_keys(const TokenView& toks, DiagnosticList& out) {
  static constexpr std::string_view kOrdered[] = {
      "map", "set", "multimap", "multiset",
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const CxxToken& tok = toks.at(i);
    if (tok.kind != TokKind::kIdent || !toks.std_qualified(i) ||
        !toks.is_punct(i + 1, "<")) {
      continue;
    }
    if (one_of(tok.text, kOrdered) &&
        key_argument_has_pointer(toks, i + 1)) {
      out.add("DET011", tok.loc,
              "std::" + std::string(tok.text) +
                  " keyed on a pointer iterates in address order, which "
                  "varies across runs; key on a stable id instead");
    } else if (tok.text == "hash" && key_argument_has_pointer(toks, i + 1)) {
      out.add("DET012", tok.loc,
              "std::hash over a pointer type is address-dependent; hash a "
              "stable id instead");
    }
  }
}

// --- DET020: mutable statics without atomic/mutex discipline --------------

void check_mutable_statics(const TokenView& toks, DiagnosticList& out) {
  constexpr std::size_t kDeclScanLimit = 48;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks.is_ident(i, "static")) continue;
    bool guarded = false;
    bool is_variable = false;
    std::string_view name;
    std::size_t j = i + 1;
    for (std::size_t steps = 0; j < toks.size() && steps < kDeclScanLimit;
         ++steps) {
      const CxxToken& tok = toks.at(j);
      if (tok.kind == TokKind::kIdent) {
        if (one_of(tok.text, kGuardedDeclWords)) {
          guarded = true;
          break;
        }
        name = tok.text;
        ++j;
        continue;
      }
      if (toks.is_punct(j, "<")) {
        j = toks.skip_angles(j);
        continue;
      }
      // "(" first ⇒ a function declaration/definition; "=", "{" or ";"
      // first ⇒ a variable. Constructor-style `static T x(...)` reads as
      // a function here — a documented false negative of the token pass.
      if (toks.is_punct(j, "(")) {
        guarded = true;
        break;
      }
      if (toks.is_punct(j, "=") || toks.is_punct(j, "{") ||
          toks.is_punct(j, ";")) {
        is_variable = true;
        break;
      }
      ++j;
    }
    if (guarded || !is_variable) continue;
    out.add("DET020", toks.at(i).loc,
            "mutable static" +
                (name.empty() ? std::string()
                              : " '" + std::string(name) + "'") +
                " without std::atomic or an adjacent mutex; unsynchronized "
                "shared state breaks parallel determinism");
  }
}

// --- DET021/DET022: detached threads, manual lock calls -------------------

void check_thread_hygiene(const TokenView& toks, DiagnosticList& out) {
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const CxxToken& tok = toks.at(i);
    if (tok.kind != TokKind::kIdent) continue;
    const bool member_call =
        (toks.is_punct(i - 1, ".") || toks.is_punct(i - 1, "->")) &&
        toks.is_punct(i + 1, "(");
    if (!member_call) continue;
    if (tok.text == "detach") {
      out.add("DET021", tok.loc,
              "detached thread outlives its owner and cannot be joined "
              "deterministically; keep the handle and join it");
    } else if ((tok.text == "lock" || tok.text == "unlock") &&
               toks.is_punct(i + 2, ")")) {
      out.add("DET022", tok.loc,
              "manual " + std::string(tok.text) +
                  "() on a mutex; prefer an RAII guard "
                  "(std::lock_guard / std::scoped_lock)");
    }
  }
}

// --- DET023: nested lock acquisition --------------------------------------

void check_nested_locks(const TokenView& toks, DiagnosticList& out) {
  struct Guard {
    int depth;
  };
  std::vector<Guard> active;
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks.is_punct(i, "{")) ++depth;
    if (toks.is_punct(i, "}")) {
      --depth;
      while (!active.empty() && active.back().depth > depth) {
        active.pop_back();
      }
      continue;
    }
    const CxxToken& tok = toks.at(i);
    if (tok.kind != TokKind::kIdent || !one_of(tok.text, kLockGuards)) {
      continue;
    }
    // Declaration shape: guard type, optional <...>, variable name, then
    // "(" or "{" with the mutex argument.
    std::size_t j = i + 1;
    if (toks.is_punct(j, "<")) j = toks.skip_angles(j);
    if (j >= toks.size() || toks.at(j).kind != TokKind::kIdent) continue;
    if (!(toks.is_punct(j + 1, "(") || toks.is_punct(j + 1, "{"))) continue;
    if (!active.empty()) {
      out.add("DET023", tok.loc,
              "lock acquired while another guard is held; take both with "
              "one std::scoped_lock or document the lock order in an "
              "allow comment");
    }
    active.push_back({depth});
  }
}

}  // namespace

bool clock_exempt_path(std::string_view path) {
  // The seeded-RNG wrapper is the one sanctioned consumer of real entropy
  // and clock primitives.
  return path.find("util/rng") != std::string_view::npos;
}

DiagnosticList run_det_checks(const CheckContext& ctx) {
  DiagnosticList out;
  const TokenView toks(*ctx.scan);
  if (!ctx.clock_exempt) check_entropy_and_clocks(toks, out);
  if (ctx.ordered_output) check_unordered_iteration(toks, out);
  check_pointer_keys(toks, out);
  check_mutable_statics(toks, out);
  check_thread_hygiene(toks, out);
  check_nested_locks(toks, out);
  return out;
}

}  // namespace psf::analysis::det
