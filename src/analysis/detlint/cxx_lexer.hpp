// Lightweight token scanner for C++ sources — detlint's front end.
//
// This is deliberately NOT a parser: detlint's checks are token-level
// pattern matchers (the same hand-rolled, recovering style as psflint's
// PSDL lexer), and a full C++ grammar would buy nothing but fragility.
// What the scanner *does* guarantee is the part token-level lint tools
// usually get wrong:
//
//   - comments never produce tokens, but are captured separately (they
//     carry the detlint directives: pragmas and suppressions);
//   - string/char literals never produce identifier tokens, so a check
//     for `random_device` cannot fire on the word inside a log message —
//     raw strings (R"(...)"), escapes, and C++14 digit separators are
//     handled;
//   - preprocessor lines (incl. backslash continuations) are scanned but
//     their tokens are flagged, so checks can ignore `#include <time.h>`;
//   - scanning never fails: unterminated constructs close at EOF.
//
// Every token and comment carries a spec::SourceLoc so findings plug into
// the shared analysis::Diagnostic engine unchanged.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "spec/source.hpp"

namespace psf::analysis::det {

enum class TokKind {
  kIdent,   // identifiers and keywords (scanner does not distinguish)
  kNumber,  // numeric literal, digit separators consumed
  kString,  // string literal incl. raw strings; text is the full lexeme
  kChar,    // character literal
  kPunct,   // one punctuator; "::" and "->" are single tokens
};

struct CxxToken {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  // view into the caller's source buffer
  spec::SourceLoc loc;
  bool preproc = false;  // token lives on a preprocessor directive line
};

struct CxxComment {
  std::string text;  // inner text, `//`, `/*`, `*/` markers stripped
  spec::SourceLoc loc;
  bool own_line = false;  // comment is the first non-whitespace on its line
};

struct CxxScan {
  std::vector<CxxToken> tokens;
  std::vector<CxxComment> comments;
  int line_count = 0;
};

// Scans `source`; the returned token texts view into it, so the buffer
// must outlive the scan result.
CxxScan scan_cxx(std::string_view source);

}  // namespace psf::analysis::det
