// detlint — determinism & concurrency-discipline lint for C++ sources.
//
// The repo's reproducibility guarantees (seeded chaos replay, parallel-DES
// merge, planner reduction) are bit-identity contracts that nothing used
// to enforce mechanically. detlint closes that gap the same way psflint
// does for PSDL specs: a recovering front end (cxx_lexer), a battery of
// checks (checks.cpp), stable catalog IDs through the shared
// analysis::Diagnostic engine, and a CLI (tools/detlint) with severity
// exit codes.
//
// Source-level directives are comments beginning with the tool's marker —
// the tool name immediately followed by a colon. (Spelled indirectly here
// because detlint lints its own sources; docs/ANALYSIS.md shows them
// verbatim.) After the marker:
//
//   ordered-output
//     File pragma (anywhere in the file, conventionally the header
//     comment): this file's iteration order reaches a trace, plan, or
//     merged output, enabling the DET010 unordered-iteration check.
//
//   allow(DET004 reason text)
//     Suppresses DET004 on the comment's line — or on the next line when
//     the comment stands alone. The reason is mandatory; it is the
//     reviewable justification. Suppressions that match nothing are
//     reported as DET030; malformed or unknown-ID directives as DET031.
//
//   allow-file(DET004 reason text)
//     Same, file-wide — for files whose whole job is the exempted thing
//     (e.g. a bench that legitimately measures wall-clock time).
//
// Findings that predate the linter live in a checked-in baseline
// (baseline.hpp): matched findings are dropped and counted, so CI fails
// only on NEW hazards. See docs/ANALYSIS.md for the workflow.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "analysis/detlint/baseline.hpp"
#include "analysis/diagnostics.hpp"

namespace psf::analysis::det {

struct CxxLintOptions {
  // When set, surviving findings are matched (and consumed) against it;
  // the caller owns it across files so stale entries can be reported once
  // at the end of the run.
  Baseline* baseline = nullptr;
};

struct CxxLintResult {
  // Post-suppression, post-baseline findings (incl. DET030/DET031),
  // ordered by source location.
  DiagnosticList diagnostics;
  std::size_t suppressed = 0;  // findings dropped by allow directives
  std::size_t baselined = 0;   // findings dropped by the baseline
  // Baseline entries for every finding that survived suppression (what
  // `--write-baseline` records for this file).
  std::vector<BaselineEntry> surviving;
};

// Lints one C++ source buffer. `path` is the file's name as the caller
// knows it: it lands in the baseline entries, drives the util/rng clock
// exemption, and is the `file` field of rendered output.
CxxLintResult lint_cxx_source(std::string_view path, std::string_view source,
                              const CxxLintOptions& options = {});

}  // namespace psf::analysis::det
