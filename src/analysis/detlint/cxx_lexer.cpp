#include "analysis/detlint/cxx_lexer.hpp"

#include <cctype>

namespace psf::analysis::det {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Encoding prefixes that can precede a raw string literal: R, u8R, uR, UR,
// LR. The scanner sees them as an identifier that abuts a double quote.
bool raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

class Scanner {
 public:
  explicit Scanner(std::string_view source) : src_(source) {}

  CxxScan run() {
    while (!at_end()) {
      const char c = peek();
      if (c == '\n') {
        newline();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        // Indentation keeps the line "blank so far": a comment or a `#`
        // preceded only by whitespace still owns its line.
        ++pos_;
        ++col_;
        continue;
      }
      if (c == '#' && line_blank_so_far_) {
        preproc_ = true;  // ends at an uncontinued newline (see newline())
        push_punct();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      punct();
    }
    out_.line_count = line_;
    return std::move(out_);
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  void advance() {
    ++pos_;
    ++col_;
    line_blank_so_far_ = false;
  }
  void newline() {
    // A backslash immediately before the newline continues a preprocessor
    // directive onto the next line.
    const bool continued = pos_ > 0 && src_[pos_ - 1] == '\\';
    ++pos_;
    ++line_;
    col_ = 1;
    line_blank_so_far_ = true;
    if (preproc_ && !continued) preproc_ = false;
  }
  spec::SourceLoc here() const { return {line_, col_}; }

  void emit(TokKind kind, std::size_t start, spec::SourceLoc loc) {
    CxxToken tok;
    tok.kind = kind;
    tok.text = src_.substr(start, pos_ - start);
    tok.loc = loc;
    tok.preproc = preproc_;
    out_.tokens.push_back(tok);
  }

  void push_punct() {
    const spec::SourceLoc loc = here();
    const std::size_t start = pos_;
    advance();
    emit(TokKind::kPunct, start, loc);
  }

  void punct() {
    const spec::SourceLoc loc = here();
    const std::size_t start = pos_;
    const char c = peek();
    advance();
    // "::" and "->" are the only multi-char punctuators the checks key on
    // (qualification and member access); everything else stays one char,
    // including ">>" so template-argument balancing can count each ">".
    if ((c == ':' && peek() == ':') || (c == '-' && peek() == '>')) advance();
    emit(TokKind::kPunct, start, loc);
  }

  void identifier() {
    const spec::SourceLoc loc = here();
    const std::size_t start = pos_;
    while (!at_end() && ident_char(peek())) advance();
    const std::string_view text = src_.substr(start, pos_ - start);
    if (peek() == '"' && raw_string_prefix(text)) {
      raw_string(start, loc);
      return;
    }
    // Other encoding prefixes (u8"x", L'c', ...) abut their literal too;
    // fold them into the literal token rather than emitting an identifier.
    if ((peek() == '"' || peek() == '\'') &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      if (peek() == '"') {
        string_literal_from(start, loc);
      } else {
        char_literal_from(start, loc);
      }
      return;
    }
    emit(TokKind::kIdent, start, loc);
  }

  void number() {
    const spec::SourceLoc loc = here();
    const std::size_t start = pos_;
    while (!at_end()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_') {
        advance();
      } else if (c == '\'' && ident_char(peek(1))) {
        advance();  // C++14 digit separator
      } else if ((c == '+' || c == '-') &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        advance();  // exponent sign
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, start, loc);
  }

  void string_literal() { string_literal_from(pos_, here()); }

  void string_literal_from(std::size_t start, spec::SourceLoc loc) {
    advance();  // opening quote
    while (!at_end()) {
      const char c = peek();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        if (peek() == '\n') {
          newline();
        } else {
          advance();
        }
        continue;
      }
      if (c == '\n') break;  // unterminated: recover at end of line
      advance();
      if (c == '"') break;
    }
    emit(TokKind::kString, start, loc);
  }

  void char_literal() { char_literal_from(pos_, here()); }

  void char_literal_from(std::size_t start, spec::SourceLoc loc) {
    advance();  // opening quote
    while (!at_end()) {
      const char c = peek();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      if (c == '\n') break;
      advance();
      if (c == '\'') break;
    }
    emit(TokKind::kChar, start, loc);
  }

  // R"delim( ... )delim" — pos_ sits on the opening quote, `start` covers
  // the already-consumed encoding prefix.
  void raw_string(std::size_t start, spec::SourceLoc loc) {
    advance();  // opening quote
    std::string delim;
    while (!at_end() && peek() != '(' && peek() != '\n') {
      delim.push_back(peek());
      advance();
    }
    if (peek() == '(') advance();
    const std::string closer = ")" + delim + "\"";
    while (!at_end()) {
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        break;
      }
      if (peek() == '\n') {
        newline();
      } else {
        advance();
      }
    }
    emit(TokKind::kString, start, loc);
  }

  void line_comment() {
    CxxComment comment;
    comment.loc = here();
    comment.own_line = line_blank_so_far_;
    advance();
    advance();  // "//"
    const std::size_t start = pos_;
    while (!at_end() && peek() != '\n') advance();
    comment.text = std::string(src_.substr(start, pos_ - start));
    out_.comments.push_back(std::move(comment));
  }

  void block_comment() {
    CxxComment comment;
    comment.loc = here();
    comment.own_line = line_blank_so_far_;
    advance();
    advance();  // "/*"
    const std::size_t start = pos_;
    std::size_t end = src_.size();
    while (!at_end()) {
      if (peek() == '*' && peek(1) == '/') {
        end = pos_;
        advance();
        advance();
        break;
      }
      if (peek() == '\n') {
        newline();
      } else {
        advance();
      }
    }
    comment.text = std::string(src_.substr(start, end - start));
    out_.comments.push_back(std::move(comment));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool line_blank_so_far_ = true;
  bool preproc_ = false;
  CxxScan out_;
};

}  // namespace

CxxScan scan_cxx(std::string_view source) { return Scanner(source).run(); }

}  // namespace psf::analysis::det
