// detlint's baseline: the checked-in ledger of pre-existing findings.
//
// A baseline lets CI enforce "no NEW determinism hazards" the day the
// linter lands, without demanding every legacy finding be fixed first:
// findings matching a baseline entry are dropped (and counted), anything
// else fails the build. Entries fingerprint the *content* of the finding
// (ID + the trimmed source line text), never the line number, so code
// motion above a baselined line does not churn the file.
//
// Format, one entry per line (["#" comment lines and blanks ignored):
//
//   DET011 0123456789abcdef src/planner/planner.cpp  optional note
//
// Matching is count-aware (N identical entries absorb N findings) and the
// stored path matches any scanned path that ends with it on a component
// boundary, so `detlint src/` and `detlint /abs/repo/src/` both hit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psf::analysis::det {

struct BaselineEntry {
  std::string id;           // catalog ID, e.g. "DET011"
  std::uint64_t fingerprint = 0;
  std::string path;         // repo-relative path as recorded
};

class Baseline {
 public:
  // FNV-1a over id + "|" + trimmed line text. The path is matched
  // separately (suffix rule) so absolute vs relative invocation agrees.
  static std::uint64_t fingerprint(std::string_view id,
                                   std::string_view line_text);

  // Parses the text format above. Unparseable lines are reported into
  // `errors` (one message per line) and skipped.
  static Baseline parse(std::string_view text,
                        std::vector<std::string>* errors = nullptr);

  void add(BaselineEntry entry) { entries_.push_back(std::move(entry)); }

  // Consumes one matching un-consumed entry; false when none is left.
  bool consume(std::string_view id, std::string_view scanned_path,
               std::uint64_t fingerprint);

  // Entries no finding matched this run (stale: the hazard was fixed but
  // the ledger still carries it).
  std::vector<BaselineEntry> unmatched() const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // The writable text form, header comment included, entries in the order
  // added (the CLI adds them in scan order, which is deterministic).
  static std::string render(const std::vector<BaselineEntry>& entries);

 private:
  std::vector<BaselineEntry> entries_;
  std::vector<bool> consumed_;
};

}  // namespace psf::analysis::det
