// detlint's check battery: token-level determinism and concurrency-
// discipline rules over a CxxScan, one function per DET catalog family.
//
// The checks mirror the repo's actual reproducibility contract (seeded
// chaos replay, region-parallel DES merge, hierarchical planner reduction
// are all gated on bit-identical outputs):
//
//   DET001..DET004  nondeterminism sources — entropy, hidden RNG state,
//                   wall-clock reads on simulated paths;
//   DET010..DET012  order hazards — unordered-container iteration in
//                   files tagged `ordered-output`, pointer-keyed ordered
//                   containers, std::hash over pointers;
//   DET020..DET023  concurrency hygiene — unguarded mutable statics,
//                   detached threads, manual lock()/unlock(), nested
//                   lock acquisition without a documented order.
//
// Directive handling (allow/allow-file suppressions, DET030/DET031) lives
// one layer up in detlint.cpp; the checks only produce raw findings.
#pragma once

#include <string_view>

#include "analysis/detlint/cxx_lexer.hpp"
#include "analysis/diagnostics.hpp"

namespace psf::analysis::det {

struct CheckContext {
  std::string_view path;  // as given to the CLI; drives path exemptions
  const CxxScan* scan = nullptr;
  // Set by the `ordered-output` file pragma: this file's iteration order
  // reaches a trace, plan, or merge, so unordered iteration is an error.
  bool ordered_output = false;
  // True for the sanctioned entropy/clock wrappers (src/util/rng): the
  // one place allowed to touch real randomness sources.
  bool clock_exempt = false;
};

// True when `path` is exempt from the clock/entropy checks (DET001..004).
bool clock_exempt_path(std::string_view path);

// Runs every check; findings come back unsorted (the driver sorts after
// merging directive diagnostics).
DiagnosticList run_det_checks(const CheckContext& ctx);

}  // namespace psf::analysis::det
