#include "analysis/detlint/detlint.hpp"

#include <cctype>
#include <string>

#include "analysis/detlint/checks.hpp"
#include "analysis/detlint/cxx_lexer.hpp"

namespace psf::analysis::det {

namespace {

constexpr std::string_view kDirectiveMarker = "detlint:";

struct Allow {
  std::string id;
  spec::SourceLoc loc;   // of the comment carrying the directive
  bool own_line = false;
  bool file_scope = false;
  bool used = false;
};

struct Directives {
  bool ordered_output = false;
  std::vector<Allow> allows;
  DiagnosticList malformed;  // DET031 findings
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses one "allow"/"allow-file" argument list: `(DETnnn reason...)`,
// starting at `rest` positioned on the "(". Returns false (with a message)
// on any malformation.
bool parse_allow_args(std::string_view rest, Allow* allow,
                      std::string* error) {
  if (rest.empty() || rest.front() != '(') {
    *error = "expected '(' after allow directive";
    return false;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    *error = "unterminated allow directive (missing ')')";
    return false;
  }
  const std::string_view args = trim(rest.substr(1, close - 1));
  const std::size_t space = args.find_first_of(" \t");
  const std::string_view id =
      space == std::string_view::npos ? args : args.substr(0, space);
  const std::string_view reason =
      space == std::string_view::npos ? std::string_view()
                                      : trim(args.substr(space + 1));
  if (id.substr(0, 3) != "DET" || find_diagnostic(id) == nullptr) {
    *error = "unknown diagnostic ID '" + std::string(id) + "'";
    return false;
  }
  if (reason.empty()) {
    *error = "suppression of " + std::string(id) +
             " needs a reason: allow(" + std::string(id) + " why)";
    return false;
  }
  allow->id = std::string(id);
  return true;
}

Directives parse_directives(const std::vector<CxxComment>& comments) {
  Directives out;
  for (const CxxComment& comment : comments) {
    std::size_t pos = 0;
    while ((pos = comment.text.find(kDirectiveMarker, pos)) !=
           std::string::npos) {
      const std::string_view rest =
          std::string_view(comment.text).substr(pos + kDirectiveMarker.size());
      pos += kDirectiveMarker.size();
      if (rest.substr(0, 14) == "ordered-output") {
        out.ordered_output = true;
        continue;
      }
      Allow allow;
      allow.loc = comment.loc;
      allow.own_line = comment.own_line;
      std::string error;
      if (rest.substr(0, 11) == "allow-file(") {
        allow.file_scope = true;
        if (!parse_allow_args(rest.substr(10), &allow, &error)) {
          out.malformed.add("DET031", comment.loc, error);
          continue;
        }
      } else if (rest.substr(0, 6) == "allow(") {
        if (!parse_allow_args(rest.substr(5), &allow, &error)) {
          out.malformed.add("DET031", comment.loc, error);
          continue;
        }
      } else {
        const std::size_t word_end = rest.find_first_of(" \t(");
        out.malformed.add("DET031", comment.loc,
                          "unknown detlint directive '" +
                              std::string(rest.substr(0, word_end)) + "'");
        continue;
      }
      out.allows.push_back(std::move(allow));
    }
  }
  return out;
}

// Splits source into lines for baseline fingerprinting; line N (1-based)
// is lines[N-1].
std::vector<std::string_view> split_lines(std::string_view source) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos) end = source.size();
    lines.push_back(source.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool try_suppress(std::vector<Allow>& allows, const Diagnostic& d) {
  // Line-scoped allows are more specific; give them first claim so a
  // file-scoped allow is not marked "used" by a finding a line allow
  // already covers.
  for (Allow& allow : allows) {
    if (allow.file_scope || allow.id != d.id) continue;
    if (d.loc.line == allow.loc.line ||
        (allow.own_line && d.loc.line == allow.loc.line + 1)) {
      allow.used = true;
      return true;
    }
  }
  for (Allow& allow : allows) {
    if (allow.file_scope && allow.id == d.id) {
      allow.used = true;
      return true;
    }
  }
  return false;
}

}  // namespace

CxxLintResult lint_cxx_source(std::string_view path, std::string_view source,
                              const CxxLintOptions& options) {
  const CxxScan scan = scan_cxx(source);
  Directives directives = parse_directives(scan.comments);

  CheckContext ctx;
  ctx.path = path;
  ctx.scan = &scan;
  ctx.ordered_output = directives.ordered_output;
  ctx.clock_exempt = clock_exempt_path(path);

  DiagnosticList raw = run_det_checks(ctx);
  raw.merge(std::move(directives.malformed));

  const std::vector<std::string_view> lines = split_lines(source);
  CxxLintResult result;
  for (const Diagnostic& d : raw.all()) {
    if (try_suppress(directives.allows, d)) {
      ++result.suppressed;
      continue;
    }
    const std::string_view line_text =
        d.loc.line >= 1 && d.loc.line <= static_cast<int>(lines.size())
            ? lines[d.loc.line - 1]
            : std::string_view();
    const std::uint64_t fp = Baseline::fingerprint(d.id, line_text);
    result.surviving.push_back({d.id, fp, std::string(path)});
    if (options.baseline != nullptr &&
        options.baseline->consume(d.id, path, fp)) {
      ++result.baselined;
      continue;
    }
    result.diagnostics.add(d);
  }

  for (const Allow& allow : directives.allows) {
    if (allow.used) continue;
    result.diagnostics.add(
        "DET030", allow.loc,
        "suppression of " + allow.id + " matches no finding" +
            (allow.file_scope ? " in this file" : " on its line") +
            "; remove it (or fix its placement)");
  }
  result.diagnostics.sort_by_location();
  return result;
}

}  // namespace psf::analysis::det
