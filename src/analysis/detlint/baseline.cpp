#include "analysis/detlint/baseline.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace psf::analysis::det {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// entry.path "src/a.cpp" matches scanned "src/a.cpp", "./src/a.cpp",
// "/repo/src/a.cpp" — but not "xsrc/a.cpp".
bool path_matches(std::string_view entry_path, std::string_view scanned) {
  if (scanned.size() < entry_path.size()) return false;
  if (scanned.compare(scanned.size() - entry_path.size(), entry_path.size(),
                      entry_path) != 0) {
    return false;
  }
  if (scanned.size() == entry_path.size()) return true;
  return scanned[scanned.size() - entry_path.size() - 1] == '/';
}

}  // namespace

std::uint64_t Baseline::fingerprint(std::string_view id,
                                    std::string_view line_text) {
  const std::string_view text = trim(line_text);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  mix(id);
  mix("|");
  mix(text);
  return h;
}

Baseline Baseline::parse(std::string_view text,
                         std::vector<std::string>* errors) {
  Baseline baseline;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields{std::string(line)};
    BaselineEntry entry;
    std::string fp_hex;
    char* end = nullptr;
    bool ok = static_cast<bool>(fields >> entry.id >> fp_hex >> entry.path);
    if (ok) {
      entry.fingerprint = std::strtoull(fp_hex.c_str(), &end, 16);
      ok = end != nullptr && *end == '\0' && !fp_hex.empty();
    }
    if (!ok) {
      if (errors != nullptr) {
        errors->push_back("baseline line " + std::to_string(line_no) +
                          ": expected 'DETnnn <hex fingerprint> <path>'");
      }
      continue;
    }
    baseline.add(std::move(entry));
  }
  baseline.consumed_.assign(baseline.entries_.size(), false);
  return baseline;
}

bool Baseline::consume(std::string_view id, std::string_view scanned_path,
                       std::uint64_t fp) {
  consumed_.resize(entries_.size(), false);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (consumed_[i]) continue;
    const BaselineEntry& entry = entries_[i];
    if (entry.id == id && entry.fingerprint == fp &&
        path_matches(entry.path, scanned_path)) {
      consumed_[i] = true;
      return true;
    }
  }
  return false;
}

std::vector<BaselineEntry> Baseline::unmatched() const {
  std::vector<BaselineEntry> stale;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i >= consumed_.size() || !consumed_[i]) stale.push_back(entries_[i]);
  }
  return stale;
}

std::string Baseline::render(const std::vector<BaselineEntry>& entries) {
  std::ostringstream oss;
  oss << "# detlint baseline — pre-existing findings CI tolerates.\n"
      << "# Fix the hazard (and delete its line) rather than adding here;\n"
      << "# regenerate with: tools/detlint --write-baseline <file> <paths>\n";
  for (const BaselineEntry& entry : entries) {
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(entry.fingerprint));
    oss << entry.id << " " << fp << " " << entry.path << "\n";
  }
  return oss.str();
}

}  // namespace psf::analysis::det
