#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "spec/parser.hpp"

namespace psf::analysis {
namespace {

using spec::Behaviors;
using spec::ComponentDef;
using spec::Condition;
using spec::InterfaceDef;
using spec::LinkageDecl;
using spec::PropertyAssignment;
using spec::PropertyDef;
using spec::PropertyModificationRule;
using spec::PropertyType;
using spec::PropertyValue;
using spec::RuleRow;
using spec::ServiceSpec;
using spec::SourceLoc;
using spec::ValueExpr;

std::string quoted(const std::string& s) { return "'" + s + "'"; }

const char* type_name(PropertyType t) {
  switch (t) {
    case PropertyType::kBoolean: return "boolean";
    case PropertyType::kInterval: return "interval";
    case PropertyType::kString: return "string";
  }
  return "?";
}

bool kind_compatible(PropertyType t, const PropertyValue& v) {
  switch (t) {
    case PropertyType::kBoolean: return v.is_bool();
    case PropertyType::kInterval: return v.is_int();
    case PropertyType::kString: return v.is_string();
  }
  return false;
}

// Representative values of a property's domain for rule analysis. Booleans
// and small intervals enumerate fully; large intervals keep their bounds
// plus every literal the rule table mentions (±1, the boundary cases a
// wrong pattern typically misses); strings keep the table's literals plus
// one value no literal can match.
std::vector<PropertyValue> sample_domain(const PropertyDef& def,
                                         const PropertyModificationRule* rule) {
  std::vector<PropertyValue> out;
  auto push_unique = [&](PropertyValue v) {
    if (std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(std::move(v));
    }
  };
  auto rule_literals = [&](auto&& take) {
    if (rule == nullptr) return;
    for (const RuleRow& row : rule->rows) {
      take(row.in.value);
      take(row.env.value);
      take(row.out);
    }
  };
  switch (def.type) {
    case PropertyType::kBoolean:
      push_unique(PropertyValue::boolean(false));
      push_unique(PropertyValue::boolean(true));
      break;
    case PropertyType::kInterval: {
      const std::int64_t lo = def.interval_lo, hi = def.interval_hi;
      if (hi < lo) break;  // empty domain — PSF011 reports it
      const std::uint64_t width =
          static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
      if (width <= 63) {
        for (std::int64_t v = lo;; ++v) {
          push_unique(PropertyValue::integer(v));
          if (v == hi) break;
        }
      } else {
        push_unique(PropertyValue::integer(lo));
        push_unique(PropertyValue::integer(hi));
        rule_literals([&](const PropertyValue& v) {
          if (!v.is_int()) return;
          const std::int64_t i = v.as_int();
          for (const std::int64_t cand : {i - 1, i, i + 1}) {
            if (cand >= lo && cand <= hi) {
              push_unique(PropertyValue::integer(cand));
            }
          }
        });
      }
      break;
    }
    case PropertyType::kString:
      rule_literals([&](const PropertyValue& v) {
        if (v.is_string()) push_unique(v);
      });
      // A value distinct from every literal, so non-wildcard string tables
      // show up as non-total.
      push_unique(PropertyValue::string("\x01<other>"));
      break;
  }
  return out;
}

class Analyzer {
 public:
  explicit Analyzer(const ServiceSpec& spec) : spec_(spec) {}

  DiagnosticList run() {
    pass_references();
    pass_types();
    pass_rules();
    pass_satisfiability();
    pass_behaviors();
    diags_.sort_by_location();
    return std::move(diags_);
  }

 private:
  // ---- pass 1: reference resolution ----------------------------------------

  void use_property(const std::string& name) { used_properties_.insert(name); }

  void check_assignment_refs(const ComponentDef& c,
                             const PropertyAssignment& pa, const char* where) {
    if (spec_.find_property(pa.property) == nullptr) {
      diags_.add("PSF002", pa.loc,
                 "component " + quoted(c.name) + " " + where +
                     " references undeclared property " + quoted(pa.property));
    }
    use_property(pa.property);
    if (pa.value.kind == ValueExpr::Kind::kEnvRef) {
      if (spec_.find_property(pa.value.ref_name) == nullptr) {
        diags_.add("PSF002", pa.loc,
                   "component " + quoted(c.name) + " " + where +
                       " references undeclared environment property " +
                       quoted(pa.value.ref_name));
      }
      use_property(pa.value.ref_name);
    } else if (pa.value.kind == ValueExpr::Kind::kFactorRef) {
      const bool declared =
          std::any_of(c.factors.begin(), c.factors.end(),
                      [&](const PropertyAssignment& f) {
                        return f.property == pa.value.ref_name;
                      });
      if (!declared) {
        diags_.add("PSF005", pa.loc,
                   "component " + quoted(c.name) + " " + where +
                       " references undeclared factor " +
                       quoted(pa.value.ref_name));
      }
    }
  }

  void check_linkage_refs(const ComponentDef& c, const LinkageDecl& decl,
                          const char* where) {
    if (spec_.find_interface(decl.interface_name) == nullptr) {
      diags_.add("PSF003", decl.loc,
                 "component " + quoted(c.name) + " " + where +
                     " undeclared interface " + quoted(decl.interface_name));
    }
    std::set<std::string> assigned;
    for (const PropertyAssignment& pa : decl.properties) {
      if (!assigned.insert(pa.property).second) {
        diags_.add("PSF001", pa.loc,
                   "component " + quoted(c.name) + " " + where + " " +
                       quoted(decl.interface_name) + " sets property " +
                       quoted(pa.property) + " more than once");
      }
      check_assignment_refs(c, pa, where);
    }
  }

  void pass_references() {
    std::map<std::string, SourceLoc> seen;
    auto dedupe = [&](const std::string& key, const std::string& what,
                      const std::string& name, SourceLoc loc) {
      auto [it, fresh] = seen.emplace(key, loc);
      if (!fresh) {
        std::string msg = "duplicate " + what + " " + quoted(name);
        if (it->second.valid()) {
          msg += " (first declared at " + it->second.to_string() + ")";
        }
        diags_.add("PSF001", loc, std::move(msg));
      }
    };

    for (const PropertyDef& p : spec_.properties) {
      dedupe("p:" + p.name, "property", p.name, p.loc);
    }
    for (const InterfaceDef& i : spec_.interfaces) {
      dedupe("i:" + i.name, "interface", i.name, i.loc);
      std::set<std::string> listed;
      for (const std::string& pname : i.properties) {
        if (!listed.insert(pname).second) {
          diags_.add("PSF001", i.loc,
                     "interface " + quoted(i.name) + " lists property " +
                         quoted(pname) + " more than once");
        }
        if (spec_.find_property(pname) == nullptr) {
          diags_.add("PSF002", i.loc,
                     "interface " + quoted(i.name) +
                         " references undeclared property " + quoted(pname));
        }
        use_property(pname);
      }
    }

    for (const ComponentDef& c : spec_.components) {
      dedupe("c:" + c.name, "component", c.name, c.loc);
      if (c.implements.empty()) {
        diags_.add("PSF008", c.loc,
                   "component " + quoted(c.name) + " implements no interface");
      }
      if (c.is_view()) {
        const ComponentDef* rep = spec_.find_component(c.represents);
        if (rep == nullptr) {
          diags_.add("PSF004", c.loc,
                     "view " + quoted(c.name) +
                         " represents unknown component " +
                         quoted(c.represents));
        } else if (rep->is_view()) {
          diags_.add("PSF004", c.loc,
                     "view " + quoted(c.name) + " represents another view " +
                         quoted(c.represents) + " (must be a component)");
        }
      } else if (!c.represents.empty()) {
        diags_.add("PSF004", c.loc,
                   "component " + quoted(c.name) +
                       " has a Represents target but is not a view");
      }

      std::set<std::string> factor_names;
      for (const PropertyAssignment& f : c.factors) {
        if (!factor_names.insert(f.property).second) {
          diags_.add("PSF001", f.loc,
                     "component " + quoted(c.name) + " declares factor " +
                         quoted(f.property) + " more than once");
        }
        check_assignment_refs(c, f, "factors");
        if (f.value.kind == ValueExpr::Kind::kFactorRef) {
          diags_.add("PSF005", f.loc,
                     "factor " + quoted(f.property) + " of component " +
                         quoted(c.name) +
                         " may not reference another factor");
        }
      }
      for (const LinkageDecl& decl : c.implements) {
        check_linkage_refs(c, decl, "implements");
      }
      for (const LinkageDecl& decl : c.requires_) {
        check_linkage_refs(c, decl, "requires");
      }
      for (const Condition& cond : c.conditions) {
        if (spec_.find_property(cond.property) == nullptr) {
          diags_.add("PSF002", cond.loc,
                     "component " + quoted(c.name) +
                         " has a condition on undeclared property " +
                         quoted(cond.property));
        }
        use_property(cond.property);
      }
    }

    std::map<std::string, SourceLoc> rule_seen;
    for (const PropertyModificationRule& rule : spec_.rules.all()) {
      auto [it, fresh] = rule_seen.emplace(rule.property, rule.loc);
      if (!fresh) {
        diags_.add("PSF001", rule.loc,
                   "duplicate modification rule for property " +
                       quoted(rule.property));
      }
      if (spec_.find_property(rule.property) == nullptr) {
        diags_.add("PSF002", rule.loc,
                   "modification rule on undeclared property " +
                       quoted(rule.property));
      }
      use_property(rule.property);
    }

    for (const PropertyDef& p : spec_.properties) {
      if (used_properties_.count(p.name) == 0) {
        diags_.add("PSF006", p.loc,
                   "property " + quoted(p.name) +
                       " is declared but never used");
      }
    }
    std::set<std::string> ifaces_touched;
    for (const ComponentDef& c : spec_.components) {
      for (const LinkageDecl& d : c.implements) {
        ifaces_touched.insert(d.interface_name);
      }
      for (const LinkageDecl& d : c.requires_) {
        ifaces_touched.insert(d.interface_name);
      }
    }
    for (const InterfaceDef& i : spec_.interfaces) {
      if (ifaces_touched.count(i.name) == 0) {
        diags_.add("PSF007", i.loc,
                   "interface " + quoted(i.name) +
                       " is neither implemented nor required");
      }
    }
  }

  // ---- pass 2: type / value checks -----------------------------------------

  void check_linkage_types(const ComponentDef& c, const LinkageDecl& decl,
                           const char* where) {
    const InterfaceDef* iface = spec_.find_interface(decl.interface_name);
    for (const PropertyAssignment& pa : decl.properties) {
      const PropertyDef* prop = spec_.find_property(pa.property);
      if (prop == nullptr) continue;  // PSF002 already reported
      if (iface != nullptr && !iface->has_property(pa.property)) {
        diags_.add("PSF012", pa.loc,
                   "component " + quoted(c.name) + " " + where +
                       " sets property " + quoted(pa.property) +
                       " not declared on interface " +
                       quoted(decl.interface_name));
      }
      if (pa.value.kind == ValueExpr::Kind::kLiteral &&
          pa.value.literal.is_set() && !prop->admits(pa.value.literal)) {
        diags_.add("PSF010", pa.loc,
                   "component " + quoted(c.name) + " " + where + ": value " +
                       pa.value.literal.to_string() +
                       " is incompatible with " + type_name(prop->type) +
                       " property " + quoted(pa.property) +
                       property_domain_suffix(*prop));
      }
    }
  }

  static std::string property_domain_suffix(const PropertyDef& p) {
    if (p.type != PropertyType::kInterval) return "";
    return " (domain [" + std::to_string(p.interval_lo) + ", " +
           std::to_string(p.interval_hi) + "])";
  }

  void pass_types() {
    for (const PropertyDef& p : spec_.properties) {
      if (p.type == PropertyType::kInterval && p.interval_lo > p.interval_hi) {
        diags_.add("PSF011", p.loc,
                   "property " + quoted(p.name) + " has an empty interval (" +
                       std::to_string(p.interval_lo) + " > " +
                       std::to_string(p.interval_hi) + ")");
      }
    }

    for (const ComponentDef& c : spec_.components) {
      for (const LinkageDecl& decl : c.implements) {
        check_linkage_types(c, decl, "implements");
      }
      for (const LinkageDecl& decl : c.requires_) {
        check_linkage_types(c, decl, "requires");
      }
      for (const PropertyAssignment& f : c.factors) {
        const PropertyDef* prop = spec_.find_property(f.property);
        if (prop != nullptr && f.value.kind == ValueExpr::Kind::kLiteral &&
            f.value.literal.is_set() && !prop->admits(f.value.literal)) {
          diags_.add("PSF010", f.loc,
                     "component " + quoted(c.name) + " factors: value " +
                         f.value.literal.to_string() +
                         " is incompatible with " + type_name(prop->type) +
                         " property " + quoted(f.property) +
                         property_domain_suffix(*prop));
        }
      }
      for (const Condition& cond : c.conditions) {
        const PropertyDef* prop = spec_.find_property(cond.property);
        if (prop == nullptr) continue;
        if (cond.op == Condition::Op::kInRange) {
          if (prop->type != PropertyType::kInterval) {
            diags_.add("PSF014", cond.loc,
                       "component " + quoted(c.name) +
                           " uses an in-range condition on " +
                           type_name(prop->type) + " property " +
                           quoted(cond.property));
          }
        } else if (cond.value.is_set() &&
                   !kind_compatible(prop->type, cond.value)) {
          diags_.add("PSF014", cond.loc,
                     "component " + quoted(c.name) + " condition compares " +
                         type_name(prop->type) + " property " +
                         quoted(cond.property) + " with " +
                         cond.value.to_string());
        }
      }
    }

    for (const PropertyModificationRule& rule : spec_.rules.all()) {
      const PropertyDef* prop = spec_.find_property(rule.property);
      if (prop == nullptr) continue;
      for (std::size_t r = 0; r < rule.rows.size(); ++r) {
        const RuleRow& row = rule.rows[r];
        auto check_lit = [&](const PropertyValue& v, const char* what) {
          if (v.is_set() && !prop->admits(v)) {
            diags_.add("PSF013", row.loc,
                       "rule " + quoted(rule.property) + " row " +
                           std::to_string(r + 1) + ": " + what + " " +
                           v.to_string() + " is incompatible with the " +
                           type_name(prop->type) + " property" +
                           property_domain_suffix(*prop));
          }
        };
        if (!row.in.any) check_lit(row.in.value, "input pattern");
        if (!row.env.any) check_lit(row.env.value, "environment pattern");
        if (row.out_kind == RuleRow::OutKind::kLiteral) {
          check_lit(row.out, "output value");
        }
      }
    }
  }

  // ---- pass 3: modification-rule analysis ----------------------------------

  void pass_rules() {
    for (const PropertyModificationRule& rule : spec_.rules.all()) {
      const PropertyDef* prop = spec_.find_property(rule.property);
      if (prop == nullptr) continue;  // PSF002 already reported
      const std::vector<PropertyValue> domain = sample_domain(*prop, &rule);
      if (domain.empty()) continue;

      std::vector<bool> first_match(rule.rows.size(), false);
      std::size_t missing = 0, total = 0;
      std::string example;
      for (const PropertyValue& in : domain) {
        for (const PropertyValue& env : domain) {
          ++total;
          int match = -1;
          for (std::size_t r = 0; r < rule.rows.size(); ++r) {
            if (rule.rows[r].in.matches(in) && rule.rows[r].env.matches(env)) {
              match = static_cast<int>(r);
              break;
            }
          }
          if (match < 0) {
            ++missing;
            if (example.empty()) {
              example = "(" + in.to_string() + ", " + env.to_string() + ")";
            }
          } else {
            first_match[static_cast<std::size_t>(match)] = true;
          }
        }
      }
      if (missing > 0) {
        diags_.add("PSF020", rule.loc,
                   "rule table for " + quoted(rule.property) +
                       " is not total: input pair " + example +
                       " matches no row (" + std::to_string(missing) + " of " +
                       std::to_string(total) +
                       " sampled pairs uncovered; unmatched values pass "
                       "through unchanged)");
      }
      for (std::size_t r = 0; r < rule.rows.size(); ++r) {
        if (!first_match[r]) {
          diags_.add("PSF021", rule.rows[r].loc,
                     "row " + std::to_string(r + 1) + " of rule " +
                         quoted(rule.property) +
                         " is unreachable: every input pair it matches is "
                         "claimed by an earlier row");
        }
      }
    }
  }

  // ---- pass 4: topology-independent linkage satisfiability -----------------

  // Every value `start` can become after any number of rule applications
  // with any environment value — the pessimistic closure: if no member
  // satisfies a requirement, no topology can either.
  std::vector<PropertyValue> reachable_values(const PropertyValue& start,
                                              const PropertyDef& prop) const {
    std::vector<PropertyValue> all{start};
    const PropertyModificationRule* rule = spec_.rules.find(prop.name);
    if (rule == nullptr) return all;  // identity: value crosses unchanged
    const std::vector<PropertyValue> envs = sample_domain(prop, rule);
    std::vector<PropertyValue> frontier{start};
    while (!frontier.empty() && all.size() < 128) {
      std::vector<PropertyValue> next;
      for (const PropertyValue& v : frontier) {
        for (const PropertyValue& env : envs) {
          PropertyValue out = rule->apply(v, env);
          if (!out.is_set()) continue;
          if (std::find(all.begin(), all.end(), out) == all.end()) {
            all.push_back(out);
            next.push_back(std::move(out));
          }
        }
      }
      frontier = std::move(next);
    }
    return all;
  }

  // Can `impl`'s Implements of `iface` ever deliver `required` for
  // `prop`, across any environment? Unknowable (env/factor/any exprs,
  // transparent pass-through) counts as yes — only a provable never is
  // reported.
  bool implementer_can_satisfy(const ComponentDef& impl,
                               const std::string& iface,
                               const PropertyDef& prop,
                               const PropertyValue& required) const {
    const LinkageDecl* decl = impl.find_implements(iface);
    if (decl == nullptr) return false;
    const std::optional<ValueExpr> offered = decl->value_of(prop.name);
    if (!offered.has_value()) {
      // Not declared: transparent components inherit the value from their
      // downstream chain (unknowable here); opaque ones offer nothing.
      return impl.transparent;
    }
    if (offered->kind != ValueExpr::Kind::kLiteral) return true;
    if (!offered->literal.is_set()) return impl.transparent;
    for (const PropertyValue& v : reachable_values(offered->literal, prop)) {
      if (v.satisfies(required)) return true;
    }
    return false;
  }

  void check_conditions(const ComponentDef& c) {
    std::map<std::string, std::vector<const Condition*>> by_prop;
    for (const Condition& cond : c.conditions) {
      by_prop[cond.property].push_back(&cond);
    }
    for (const auto& [name, conds] : by_prop) {
      const PropertyDef* prop = spec_.find_property(name);
      if (prop == nullptr) continue;
      std::string why;
      switch (prop->type) {
        case PropertyType::kInterval: {
          std::int64_t lo = prop->interval_lo, hi = prop->interval_hi;
          for (const Condition* cond : conds) {
            switch (cond->op) {
              case Condition::Op::kEq:
                if (!cond->value.is_int()) continue;  // PSF014 already
                lo = std::max(lo, cond->value.as_int());
                hi = std::min(hi, cond->value.as_int());
                break;
              case Condition::Op::kGe:
                if (!cond->value.is_int()) continue;
                lo = std::max(lo, cond->value.as_int());
                break;
              case Condition::Op::kLe:
                if (!cond->value.is_int()) continue;
                hi = std::min(hi, cond->value.as_int());
                break;
              case Condition::Op::kInRange:
                lo = std::max(lo, cond->range_lo);
                hi = std::min(hi, cond->range_hi);
                break;
            }
          }
          if (lo > hi) {
            why = "no value in the declared domain [" +
                  std::to_string(prop->interval_lo) + ", " +
                  std::to_string(prop->interval_hi) +
                  "] satisfies them all (effective range [" +
                  std::to_string(lo) + ", " + std::to_string(hi) + "])";
          }
          break;
        }
        case PropertyType::kBoolean: {
          bool allow_false = true, allow_true = true;
          for (const Condition* cond : conds) {
            if (!cond->value.is_bool()) continue;  // PSF014 already
            const bool v = cond->value.as_bool();
            switch (cond->op) {
              case Condition::Op::kEq:
                allow_false = allow_false && !v;
                allow_true = allow_true && v;
                break;
              case Condition::Op::kGe:  // actual >= v
                if (v) allow_false = false;
                break;
              case Condition::Op::kLe:  // actual <= v
                if (!v) allow_true = false;
                break;
              case Condition::Op::kInRange:
                break;  // PSF014 already
            }
          }
          if (!allow_false && !allow_true) {
            why = "they demand both T and F";
          }
          break;
        }
        case PropertyType::kString: {
          const std::string* wanted = nullptr;
          for (const Condition* cond : conds) {
            if (cond->op == Condition::Op::kInRange ||
                !cond->value.is_string()) {
              continue;  // PSF014 already
            }
            // For strings every operator degenerates to equality.
            const std::string& s = cond->value.as_string();
            if (wanted == nullptr) {
              wanted = &s;
            } else if (*wanted != s) {
              why = "they demand both \"" + *wanted + "\" and \"" + s + "\"";
            }
          }
          break;
        }
      }
      if (!why.empty()) {
        diags_.add("PSF031", conds.back()->loc,
                   "conditions on node." + name + " of component " +
                       quoted(c.name) + " can never hold simultaneously: " +
                       why);
      }
    }
  }

  void pass_satisfiability() {
    for (const ComponentDef& c : spec_.components) {
      for (const LinkageDecl& decl : c.requires_) {
        if (spec_.find_interface(decl.interface_name) == nullptr) {
          continue;  // PSF003 already reported
        }
        const std::vector<const ComponentDef*> impls =
            spec_.implementers_of(decl.interface_name);
        if (impls.empty()) {
          diags_.add("PSF032", decl.loc,
                     "component " + quoted(c.name) + " requires interface " +
                         quoted(decl.interface_name) +
                         ", which no component implements");
          continue;
        }
        for (const PropertyAssignment& pa : decl.properties) {
          if (pa.value.kind != ValueExpr::Kind::kLiteral ||
              !pa.value.literal.is_set()) {
            continue;  // bound at plan time; unknowable here
          }
          const PropertyDef* prop = spec_.find_property(pa.property);
          if (prop == nullptr || !prop->admits(pa.value.literal)) {
            continue;  // PSF002 / PSF010 already reported
          }
          const bool satisfiable = std::any_of(
              impls.begin(), impls.end(), [&](const ComponentDef* impl) {
                return implementer_can_satisfy(*impl, decl.interface_name,
                                               *prop, pa.value.literal);
              });
          if (!satisfiable) {
            diags_.add(
                "PSF030", pa.loc,
                "component " + quoted(c.name) + " requires " +
                    decl.interface_name + "." + pa.property + " = " +
                    pa.value.literal.to_string() + ", but no implements of " +
                    quoted(decl.interface_name) +
                    " in the spec can ever provide it in any environment "
                    "(modification-rule closure)");
          }
        }
      }
      check_conditions(c);
    }
  }

  // ---- pass 5: behavior sanity ---------------------------------------------

  void pass_behaviors() {
    for (const ComponentDef& c : spec_.components) {
      const Behaviors& b = c.behaviors;
      const SourceLoc loc = b.loc.valid() ? b.loc : c.loc;
      if (b.capacity_rps < 0.0) {
        diags_.add("PSF040", loc,
                   "component " + quoted(c.name) + " has negative capacity " +
                       std::to_string(b.capacity_rps));
      }
      if (b.cpu_per_request < 0.0) {
        diags_.add("PSF040", loc,
                   "component " + quoted(c.name) +
                       " has negative cpu_per_request " +
                       std::to_string(b.cpu_per_request));
      }
      if (b.rrf < 0.0 || b.rrf > 1.0) {
        diags_.add("PSF040", loc,
                   "component " + quoted(c.name) + " has rrf " +
                       std::to_string(b.rrf) + " outside [0, 1]");
      }
      if (b.capacity_set && b.capacity_rps == 0.0) {
        diags_.add("PSF041", loc,
                   "component " + quoted(c.name) +
                       " sets capacity 0, which means *unbounded*; omit the "
                       "key if that is intended");
      }
      if (b.rrf_set && b.rrf == 0.0 && !c.requires_.empty()) {
        diags_.add("PSF041", loc,
                   "component " + quoted(c.name) +
                       " sets rrf 0 — it forwards no requests to the "
                       "interfaces it requires");
      }
      if (!c.static_placement && !b.code_size_set) {
        diags_.add("PSF042", c.loc,
                   "component " + quoted(c.name) +
                       " can be instantiated on demand but declares no "
                       "code_size; deployment will charge the 64 KB default");
      }
    }
  }

  const ServiceSpec& spec_;
  DiagnosticList diags_;
  std::set<std::string> used_properties_;
};

}  // namespace

DiagnosticList analyze(const spec::ServiceSpec& spec) {
  return Analyzer(spec).run();
}

LintResult lint_source(std::string_view source) {
  LintResult result;
  spec::ParseResult parsed = spec::parse_spec_recover(source);
  for (const spec::ParseError& e : parsed.errors) {
    result.diagnostics.add("PSF100", e.loc, e.message);
  }
  result.spec = std::move(parsed.spec);
  result.parsed = !result.spec.name.empty();
  result.diagnostics.merge(analyze(result.spec));
  result.diagnostics.sort_by_location();
  return result;
}

}  // namespace psf::analysis
