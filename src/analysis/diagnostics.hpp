// Reusable diagnostics engine shared by the repo's static analyzers.
//
// A Diagnostic is one finding: a stable catalog ID (PSF001.. for psflint's
// PSDL checks, DET001.. for detlint's C++ determinism checks), a severity,
// a source location, and a message. The DiagnosticList collects findings
// across analysis passes (all of them — no fail-fast), orders them by
// source position, and renders them as compiler-style text or as JSON for
// machine consumers (psflint/detlint --json, CI annotations).
//
// The catalog (diagnostic_catalog) is the single source of truth for IDs,
// default severities, and one-line titles; docs/PSDL.md carries the
// user-facing PSF appendix and docs/ANALYSIS.md the DET one. IDs are never
// reused.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "spec/source.hpp"

namespace psf::analysis {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

const char* severity_name(Severity s);

struct Diagnostic {
  std::string id;        // catalog ID, e.g. "PSF002"
  Severity severity = Severity::kError;
  spec::SourceLoc loc;   // invalid for spec-level findings
  std::string message;

  // `file:line:col: severity[ID]: message` (file omitted when empty).
  std::string to_string(const std::string& file = "") const;
};

// Catalog entry: the stable contract for one diagnostic ID.
struct DiagnosticInfo {
  const char* id;
  Severity severity;
  const char* title;  // one-line summary for --explain / docs
};

// All known IDs, ascending. Stable across releases: IDs are never reused.
const std::vector<DiagnosticInfo>& diagnostic_catalog();

// nullptr for an unknown ID.
const DiagnosticInfo* find_diagnostic(std::string_view id);

class DiagnosticList {
 public:
  // Adds a finding under a catalog ID; severity comes from the catalog.
  // Aborts (debug check) on an unknown ID — every emitted ID must be
  // documented.
  void add(std::string_view id, spec::SourceLoc loc, std::string message);

  // Escape hatch for callers outside the catalog's severity (e.g. a
  // lint driver promoting warnings with --werror).
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }

  void sort_by_location();

  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }
  std::size_t count(Severity s) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  // True when any finding carries `id`.
  bool has(std::string_view id) const;

  const std::vector<Diagnostic>& all() const { return diags_; }

  // Compiler-style listing, one finding per line, plus a summary line.
  std::string render_text(const std::string& file = "") const;
  // {"file": ..., "diagnostics": [...], "counts": {...}} (one JSON object).
  std::string render_json(const std::string& file = "") const;

  // Appends another list's findings (e.g. parse diagnostics + analysis).
  void merge(DiagnosticList other);

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace psf::analysis
