#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace psf::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<DiagnosticInfo>& diagnostic_catalog() {
  // Severity here is the contract psflint ships; `docs/PSDL.md` appendix
  // documents each entry with an example and a fix. IDs are never reused.
  static const std::vector<DiagnosticInfo> kCatalog = {
      {"PSF001", Severity::kError, "duplicate definition"},
      {"PSF002", Severity::kError, "reference to undeclared property"},
      {"PSF003", Severity::kError, "reference to undeclared interface"},
      {"PSF004", Severity::kError, "invalid Represents target"},
      {"PSF005", Severity::kError, "invalid factor reference"},
      {"PSF006", Severity::kWarning, "unused property"},
      {"PSF007", Severity::kWarning, "unused interface"},
      {"PSF008", Severity::kError, "component implements no interface"},
      {"PSF010", Severity::kError, "value incompatible with property type"},
      {"PSF011", Severity::kError, "empty property interval"},
      {"PSF012", Severity::kError, "property not declared on interface"},
      {"PSF013", Severity::kError, "rule value incompatible with property"},
      {"PSF014", Severity::kWarning, "condition incompatible with property"},
      {"PSF020", Severity::kWarning, "modification rule table is not total"},
      {"PSF021", Severity::kWarning, "unreachable (shadowed) rule row"},
      {"PSF030", Severity::kError, "requirement no implementer can satisfy"},
      {"PSF031", Severity::kError, "contradictory installation conditions"},
      {"PSF032", Severity::kError, "required interface has no implementer"},
      {"PSF040", Severity::kError, "behavior value out of range"},
      {"PSF041", Severity::kWarning, "suspicious zero behavior value"},
      {"PSF042", Severity::kNote, "installable component without code_size"},
      {"PSF100", Severity::kError, "PSDL parse error"},
      // DET*: detlint's determinism & concurrency discipline for the C++
      // sources themselves (docs/ANALYSIS.md carries the user-facing
      // catalog with examples and fixes).
      {"DET001", Severity::kError, "std::random_device entropy source"},
      {"DET002", Severity::kError, "rand()/srand() hidden global RNG state"},
      {"DET003", Severity::kError, "wall-clock read on a simulated path"},
      {"DET004", Severity::kError, "std::chrono clock outside the sim clock"},
      {"DET010", Severity::kError,
       "unordered-container iteration in ordered-output file"},
      {"DET011", Severity::kWarning,
       "pointer-keyed ordered container iterates in address order"},
      {"DET012", Severity::kWarning, "std::hash over a pointer type"},
      {"DET020", Severity::kWarning,
       "mutable static without atomic/mutex discipline"},
      {"DET021", Severity::kError, "detached thread"},
      {"DET022", Severity::kWarning, "manual mutex lock()/unlock()"},
      {"DET023", Severity::kWarning,
       "nested lock acquisition without documented order"},
      {"DET030", Severity::kWarning, "unused detlint suppression"},
      {"DET031", Severity::kError, "malformed detlint directive"},
  };
  return kCatalog;
}

const DiagnosticInfo* find_diagnostic(std::string_view id) {
  for (const DiagnosticInfo& info : diagnostic_catalog()) {
    if (id == info.id) return &info;
  }
  return nullptr;
}

std::string Diagnostic::to_string(const std::string& file) const {
  std::ostringstream oss;
  if (!file.empty()) oss << file << ":";
  if (loc.valid()) oss << loc.to_string() << ":";
  if (!file.empty() || loc.valid()) oss << " ";
  oss << severity_name(severity) << "[" << id << "]: " << message;
  return oss.str();
}

void DiagnosticList::add(std::string_view id, spec::SourceLoc loc,
                         std::string message) {
  const DiagnosticInfo* info = find_diagnostic(id);
  PSF_CHECK_MSG(info != nullptr, "unknown diagnostic ID");
  Diagnostic d;
  d.id = std::string(id);
  d.severity = info->severity;
  d.loc = loc;
  d.message = std::move(message);
  diags_.push_back(std::move(d));
}

void DiagnosticList::sort_by_location() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.loc < b.loc;
                   });
}

std::size_t DiagnosticList::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool DiagnosticList::has(std::string_view id) const {
  for (const Diagnostic& d : diags_) {
    if (d.id == id) return true;
  }
  return false;
}

std::string DiagnosticList::render_text(const std::string& file) const {
  std::ostringstream oss;
  for (const Diagnostic& d : diags_) oss << d.to_string(file) << "\n";
  oss << (file.empty() ? std::string() : file + ": ") << count(Severity::kError)
      << " error(s), " << count(Severity::kWarning) << " warning(s), "
      << count(Severity::kNote) << " note(s)\n";
  return oss.str();
}

namespace {

void append_json_string(std::ostringstream& oss, std::string_view s) {
  oss << '"';
  for (const char c : s) {
    switch (c) {
      case '"': oss << "\\\""; break;
      case '\\': oss << "\\\\"; break;
      case '\n': oss << "\\n"; break;
      case '\t': oss << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
  oss << '"';
}

}  // namespace

std::string DiagnosticList::render_json(const std::string& file) const {
  std::ostringstream oss;
  oss << "{\"file\": ";
  append_json_string(oss, file);
  oss << ", \"diagnostics\": [";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i) oss << ", ";
    oss << "{\"id\": ";
    append_json_string(oss, d.id);
    oss << ", \"severity\": ";
    append_json_string(oss, severity_name(d.severity));
    oss << ", \"line\": " << d.loc.line << ", \"column\": " << d.loc.column
        << ", \"message\": ";
    append_json_string(oss, d.message);
    oss << "}";
  }
  oss << "], \"counts\": {\"error\": " << count(Severity::kError)
      << ", \"warning\": " << count(Severity::kWarning)
      << ", \"note\": " << count(Severity::kNote) << "}}";
  return oss.str();
}

void DiagnosticList::merge(DiagnosticList other) {
  for (Diagnostic& d : other.diags_) diags_.push_back(std::move(d));
}

}  // namespace psf::analysis
