// Shared types of the coherence layer.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "runtime/message.hpp"

namespace psf::coherence {

// Describes one update for conflict evaluation. `object_key` identifies the
// object the view granularity is defined over (a mail account, a document);
// `field` optionally narrows it (a folder within the account).
struct UpdateDescriptor {
  std::string object_key;
  std::string field;
  std::uint64_t bytes = 256;
};

// One buffered update: descriptor + opaque payload the home component knows
// how to apply.
struct Update {
  UpdateDescriptor descriptor;
  std::shared_ptr<const runtime::MessageBody> payload;
};

// A batch of updates shipped replica→home (or home→replica for pushes).
struct UpdateBatch : runtime::MessageBody {
  std::uint64_t replica_id = 0;
  std::vector<Update> updates;

  std::uint64_t wire_bytes() const {
    std::uint64_t total = 64;  // envelope
    for (const Update& u : updates) total += u.descriptor.bytes + 32;
    return total;
  }
};

// What a replicated view holds — the view-granularity subscription the
// conflict map evaluates updates against. Empty `object_keys` plus
// `wildcard` subscribes to everything (a full replica).
struct ViewSubscription {
  std::set<std::string> object_keys;
  bool wildcard = false;

  bool covers(const std::string& key) const {
    return wildcard || object_keys.count(key) != 0;
  }
};

// A dynamic conflict map (§3.2): decides whether an update performed by one
// view conflicts with another view and must therefore be propagated to it.
// The default implementation is subscription overlap; services can subclass
// for richer semantics (e.g. folder-level rules).
class ConflictMap {
 public:
  virtual ~ConflictMap() = default;

  virtual bool conflicts(const UpdateDescriptor& update,
                         const ViewSubscription& subscription) const {
    return subscription.covers(update.object_key);
  }
};

}  // namespace psf::coherence
