// detlint:ordered-output — fan-out batch order reaches replica update traces.
#include "coherence/directory.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace psf::coherence {

CoherenceDirectory::CoherenceDirectory(
    runtime::SmockRuntime& runtime, runtime::RuntimeInstanceId home,
    std::string push_op, std::unique_ptr<ConflictMap> conflict_map,
    DirectoryTuning tuning)
    : runtime_(runtime),
      home_(home),
      push_op_(std::move(push_op)),
      conflict_map_(conflict_map ? std::move(conflict_map)
                                 : std::make_unique<ConflictMap>()),
      tuning_(tuning) {}

CoherenceDirectory::~CoherenceDirectory() {
  // The home component may be torn down with an epoch flush still pending;
  // the event captures `this` and must not fire afterwards.
  if (epoch_scheduled_) runtime_.simulator().cancel(epoch_event_);
}

void CoherenceDirectory::register_replica(runtime::RuntimeInstanceId replica,
                                          ViewSubscription subscription) {
  replicas_[replica] = std::move(subscription);
}

void CoherenceDirectory::unregister_replica(
    runtime::RuntimeInstanceId replica) {
  replicas_.erase(replica);
  pending_.erase(replica);
}

void CoherenceDirectory::subscribe(runtime::RuntimeInstanceId replica,
                                   const std::string& key) {
  replicas_[replica].object_keys.insert(key);
}

bool CoherenceDirectory::validate_replica(
    runtime::RuntimeInstanceId replica) {
  if (runtime_.exists(replica)) return true;
  // Lazy pruning: a replica whose instance is gone (uninstalled, crashed)
  // would otherwise be re-evaluated against every future update forever.
  replicas_.erase(replica);
  pending_.erase(replica);
  ++stats_.replicas_evicted;
  if (telemetry_) ++telemetry_->replicas_evicted;
  return false;
}

void CoherenceDirectory::on_update(const Update& update,
                                   runtime::RuntimeInstanceId origin) {
  ++stats_.updates_seen;
  if (telemetry_) ++telemetry_->updates_seen;

  // Collect conflicting live replicas first: validate_replica erases dead
  // entries, which must not invalidate the iteration.
  std::vector<runtime::RuntimeInstanceId> targets;
  targets.reserve(replicas_.size());  // fan-out usually hits most replicas
  for (const auto& [replica, subscription] : replicas_) {
    if (replica == origin) continue;
    if (!conflict_map_->conflicts(update.descriptor, subscription)) continue;
    targets.push_back(replica);
  }
  bool staged_this = false;
  for (runtime::RuntimeInstanceId replica : targets) {
    if (!validate_replica(replica)) continue;
    if (!tuning_.batch_fanout) {
      push_single(replica, update);
      continue;
    }
    pending_[replica].push_back(staged_.size());
    staged_this = true;
  }
  if (!staged_this) return;

  staged_.push_back(update);
  schedule_epoch_flush();
}

void CoherenceDirectory::schedule_epoch_flush() {
  if (epoch_scheduled_) return;
  epoch_scheduled_ = true;
  // A zero epoch still defers to the end of the current event cascade, so
  // every update staged at this timestamp (e.g. a relayed sync batch)
  // ships as one push per replica.
  epoch_event_ = runtime_.simulator().schedule(tuning_.flush_epoch,
                                               [this] { flush_staged(); });
}

void CoherenceDirectory::flush_staged() {
  if (epoch_scheduled_) {
    runtime_.simulator().cancel(epoch_event_);
    epoch_scheduled_ = false;
  }
  if (staged_.empty()) {
    pending_.clear();
    return;
  }
  ++stats_.epochs;

  // Replicas due the same staged set share one immutable batch body.
  std::map<std::vector<std::size_t>, std::shared_ptr<UpdateBatch>> shared;
  std::vector<runtime::RuntimeInstanceId> due;
  due.reserve(pending_.size());
  for (const auto& [replica, indices] : pending_) {
    if (!indices.empty()) due.push_back(replica);
  }
  for (runtime::RuntimeInstanceId replica : due) {
    if (!validate_replica(replica)) continue;
    const std::vector<std::size_t>& indices = pending_[replica];
    auto it = shared.find(indices);
    std::shared_ptr<UpdateBatch> batch;
    if (it != shared.end()) {
      batch = it->second;
      ++stats_.batches_shared;
      if (telemetry_) ++telemetry_->batches_shared;
    } else {
      batch = std::make_shared<UpdateBatch>();
      batch->replica_id = home_;
      batch->updates.reserve(indices.size());
      for (std::size_t idx : indices) batch->updates.push_back(staged_[idx]);
      shared.emplace(indices, batch);
    }
    send_push(replica, batch);
  }
  staged_.clear();
  pending_.clear();
}

void CoherenceDirectory::push_single(runtime::RuntimeInstanceId replica,
                                     const Update& update) {
  auto batch = std::make_shared<UpdateBatch>();
  batch->replica_id = home_;
  batch->updates.push_back(update);
  send_push(replica, std::move(batch));
}

void CoherenceDirectory::send_push(runtime::RuntimeInstanceId replica,
                                   std::shared_ptr<UpdateBatch> batch) {
  runtime::Request request;
  request.op = push_op_;
  request.wire_bytes = batch->wire_bytes();
  const std::size_t updates = batch->updates.size();
  request.body = std::move(batch);

  ++stats_.pushes;
  stats_.push_updates += updates;
  stats_.push_bytes += request.wire_bytes;
  // The naive path would have issued one RPC (64-byte envelope each) per
  // update delivered to this replica.
  stats_.push_rpcs_saved += updates - 1;
  stats_.push_bytes_saved += 64 * (updates - 1);
  if (telemetry_) {
    ++telemetry_->push_rpcs;
    telemetry_->push_updates += updates;
    telemetry_->push_bytes += request.wire_bytes;
    telemetry_->push_rpcs_saved += updates - 1;
    telemetry_->push_bytes_saved += 64 * (updates - 1);
    telemetry_->push_batch_updates.add(static_cast<double>(updates));
  }

  const net::NodeId home_node = runtime_.instance(home_).node;
  runtime_.invoke_from_node(home_node, replica, std::move(request),
                            [](runtime::Response response) {
                              if (!response.ok) {
                                PSF_WARN()
                                    << "coherence push rejected: "
                                    << response.error;
                              }
                            });
}

}  // namespace psf::coherence
