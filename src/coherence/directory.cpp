#include "coherence/directory.hpp"

#include "util/logging.hpp"

namespace psf::coherence {

CoherenceDirectory::CoherenceDirectory(
    runtime::SmockRuntime& runtime, runtime::RuntimeInstanceId home,
    std::string push_op, std::unique_ptr<ConflictMap> conflict_map)
    : runtime_(runtime),
      home_(home),
      push_op_(std::move(push_op)),
      conflict_map_(conflict_map ? std::move(conflict_map)
                                 : std::make_unique<ConflictMap>()) {}

void CoherenceDirectory::register_replica(runtime::RuntimeInstanceId replica,
                                          ViewSubscription subscription) {
  replicas_[replica] = std::move(subscription);
}

void CoherenceDirectory::unregister_replica(
    runtime::RuntimeInstanceId replica) {
  replicas_.erase(replica);
}

void CoherenceDirectory::subscribe(runtime::RuntimeInstanceId replica,
                                   const std::string& key) {
  replicas_[replica].object_keys.insert(key);
}

void CoherenceDirectory::on_update(const Update& update,
                                   runtime::RuntimeInstanceId origin) {
  ++stats_.updates_seen;
  for (const auto& [replica, subscription] : replicas_) {
    if (replica == origin) continue;
    if (!conflict_map_->conflicts(update.descriptor, subscription)) continue;
    if (!runtime_.exists(replica)) continue;

    auto batch = std::make_shared<UpdateBatch>();
    batch->replica_id = home_;
    batch->updates.push_back(update);

    runtime::Request request;
    request.op = push_op_;
    request.body = batch;
    request.wire_bytes = batch->wire_bytes();

    ++stats_.pushes;
    stats_.push_bytes += request.wire_bytes;

    const net::NodeId home_node = runtime_.instance(home_).node;
    runtime_.invoke_from_node(home_node, replica, std::move(request),
                              [](runtime::Response response) {
                                if (!response.ok) {
                                  PSF_WARN()
                                      << "coherence push rejected: "
                                      << response.error;
                                }
                              });
  }
}

}  // namespace psf::coherence
