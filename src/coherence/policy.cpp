#include "coherence/policy.hpp"

#include <sstream>

namespace psf::coherence {

std::string CoherencePolicy::to_string() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::kNone:
      oss << "none";
      break;
    case Kind::kWriteThrough:
      oss << "write-through";
      break;
    case Kind::kCountBased:
      oss << "count-based(" << max_unpropagated << ")";
      break;
    case Kind::kTimeBased:
      oss << "time-based(" << period.millis() << "ms)";
      break;
  }
  if (max_inflight_flushes > 1) oss << "+w" << max_inflight_flushes;
  if (coalesce) oss << "+coalesce";
  return oss.str();
}

}  // namespace psf::coherence
