#include "coherence/replica.hpp"

#include <utility>

#include "util/logging.hpp"

namespace psf::coherence {

ReplicaCoherence::ReplicaCoherence(runtime::SmockRuntime& runtime,
                                   runtime::RuntimeInstanceId self,
                                   runtime::RuntimeInstanceId home,
                                   std::string flush_op,
                                   CoherencePolicy policy)
    : ReplicaCoherence(
          runtime, self,
          [&runtime, self, home](runtime::Request request,
                                 runtime::ResponseCallback done) {
            runtime.invoke_from_node(runtime.instance(self).node, home,
                                     std::move(request), std::move(done));
          },
          std::move(flush_op), policy) {}

ReplicaCoherence::ReplicaCoherence(runtime::SmockRuntime& runtime,
                                   runtime::RuntimeInstanceId self,
                                   Transport transport, std::string flush_op,
                                   CoherencePolicy policy)
    : runtime_(runtime),
      self_(self),
      transport_(std::move(transport)),
      flush_op_(std::move(flush_op)),
      policy_(policy) {
  if (policy_.kind == CoherencePolicy::Kind::kTimeBased) {
    timer_.emplace(runtime_.simulator(), policy_.period,
                   [this]() { flush(); });
    timer_->start();
  }
}

ReplicaCoherence::~ReplicaCoherence() = default;

void ReplicaCoherence::record_update(
    UpdateDescriptor descriptor,
    std::shared_ptr<const runtime::MessageBody> payload) {
  queue_.push_back(Update{std::move(descriptor), std::move(payload)});
  ++stats_.updates_recorded;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  maybe_auto_flush();
}

void ReplicaCoherence::maybe_auto_flush() {
  switch (policy_.kind) {
    case CoherencePolicy::Kind::kNone:
    case CoherencePolicy::Kind::kTimeBased:
      return;  // explicit / timer-driven only
    case CoherencePolicy::Kind::kWriteThrough:
      flush();
      return;
    case CoherencePolicy::Kind::kCountBased:
      if (queue_.size() >= policy_.max_unpropagated) flush();
      return;
  }
}

void ReplicaCoherence::flush(std::function<void()> done) {
  if (queue_.empty() || flush_in_flight_) {
    // Coalesce: a flush finishing re-checks the queue, so pending updates
    // recorded meanwhile are not lost.
    if (done) done();
    return;
  }
  flush_in_flight_ = true;

  auto batch = std::make_shared<UpdateBatch>();
  batch->replica_id = self_;
  batch->updates = std::move(queue_);
  queue_.clear();

  ++stats_.flushes;
  stats_.updates_flushed += batch->updates.size();
  const std::uint64_t bytes = batch->wire_bytes();
  stats_.bytes_flushed += bytes;

  runtime::Request request;
  request.op = flush_op_;
  request.body = batch;
  request.wire_bytes = bytes;

  transport_(
      std::move(request),
      [this, done = std::move(done)](runtime::Response response) {
        flush_in_flight_ = false;
        if (!response.ok) {
          PSF_WARN() << "coherence flush rejected by home: "
                     << response.error;
        }
        if (done) done();
        // Drain anything that accumulated while the batch was in flight.
        maybe_auto_flush();
        if (flush_listener_) flush_listener_();
      });
}

}  // namespace psf::coherence
