#include "coherence/replica.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace psf::coherence {

ReplicaCoherence::ReplicaCoherence(runtime::SmockRuntime& runtime,
                                   runtime::RuntimeInstanceId self,
                                   runtime::RuntimeInstanceId home,
                                   std::string flush_op,
                                   CoherencePolicy policy)
    : ReplicaCoherence(
          runtime, self,
          [&runtime, self, home](runtime::Request request,
                                 runtime::ResponseCallback done) {
            runtime.invoke_from_node(runtime.instance(self).node, home,
                                     std::move(request), std::move(done));
          },
          std::move(flush_op), policy) {}

ReplicaCoherence::ReplicaCoherence(runtime::SmockRuntime& runtime,
                                   runtime::RuntimeInstanceId self,
                                   Transport transport, std::string flush_op,
                                   CoherencePolicy policy)
    : runtime_(runtime),
      self_(self),
      transport_(std::move(transport)),
      flush_op_(std::move(flush_op)),
      policy_(policy) {
  if (policy_.max_inflight_flushes == 0) policy_.max_inflight_flushes = 1;
  if (policy_.kind == CoherencePolicy::Kind::kTimeBased) {
    timer_.emplace(runtime_.simulator(), policy_.period,
                   [this]() { flush(); });
    timer_->start();
  }
}

ReplicaCoherence::~ReplicaCoherence() = default;

void ReplicaCoherence::record_update(
    UpdateDescriptor descriptor,
    std::shared_ptr<const runtime::MessageBody> payload) {
  ++stats_.updates_recorded;
  if (telemetry_) ++telemetry_->updates_recorded;

  if (policy_.coalesce) {
    const std::string key = coalesce_key(descriptor);
    auto it = coalesce_index_.find(key);
    if (it != coalesce_index_.end()) {
      // Last-writer-wins at conflict-map granularity: the superseded
      // update's payload never ships, saving its descriptor bytes plus the
      // per-update batch framing.
      Update& pending = queue_[it->second];
      const std::uint64_t saved = pending.descriptor.bytes + 32;
      ++stats_.updates_coalesced;
      stats_.coalesced_bytes_saved += saved;
      if (telemetry_) {
        ++telemetry_->updates_coalesced;
        telemetry_->coalesced_bytes_saved += saved;
      }
      pending.descriptor = std::move(descriptor);
      pending.payload = std::move(payload);
      maybe_auto_flush();
      return;
    }
    coalesce_index_.emplace(key, queue_.size());
  }

  queue_.push_back(Update{std::move(descriptor), std::move(payload)});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  maybe_auto_flush();
}

void ReplicaCoherence::maybe_auto_flush() {
  switch (policy_.kind) {
    case CoherencePolicy::Kind::kNone:
    case CoherencePolicy::Kind::kTimeBased:
      return;  // explicit / timer-driven only
    case CoherencePolicy::Kind::kWriteThrough:
      flush();
      return;
    case CoherencePolicy::Kind::kCountBased:
      if (queue_.size() >= policy_.max_unpropagated) flush();
      return;
  }
}

void ReplicaCoherence::note_window_state() {
  if (flushing()) {
    if (!window_full_since_) window_full_since_ = runtime_.simulator().now();
  } else if (window_full_since_) {
    stats_.blocked_on_flush_ms +=
        (runtime_.simulator().now() - *window_full_since_).millis();
    window_full_since_.reset();
  }
}

void ReplicaCoherence::rebuild_coalesce_index() {
  coalesce_index_.clear();
  if (!policy_.coalesce) return;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    coalesce_index_.emplace(coalesce_key(queue_[i].descriptor), i);
  }
}

void ReplicaCoherence::flush(std::function<void()> done) {
  if (queue_.empty() || flushing()) {
    // Coalesce: a flush finishing re-checks the queue, so pending updates
    // recorded meanwhile are not lost.
    if (done) done();
    return;
  }

  auto batch = std::make_shared<UpdateBatch>();
  batch->replica_id = self_;
  batch->updates = std::move(queue_);
  queue_.clear();
  coalesce_index_.clear();
  const std::size_t attempt = front_attempts_;
  front_attempts_ = 0;

  ++inflight_flushes_;
  stats_.max_inflight = std::max(stats_.max_inflight, inflight_flushes_);
  note_window_state();

  ++stats_.flushes;
  stats_.updates_flushed += batch->updates.size();
  const std::uint64_t bytes = batch->wire_bytes();
  stats_.bytes_flushed += bytes;
  if (telemetry_) {
    ++telemetry_->flushes;
    telemetry_->updates_flushed += batch->updates.size();
    telemetry_->bytes_flushed += bytes;
    telemetry_->flush_batch_updates.add(
        static_cast<double>(batch->updates.size()));
    telemetry_->flush_window_depth.add(
        static_cast<double>(inflight_flushes_));
  }

  runtime::Request request;
  request.op = flush_op_;
  request.body = batch;
  request.wire_bytes = bytes;

  const sim::Time sent_at = runtime_.simulator().now();
  transport_(std::move(request),
             [this, batch, attempt, sent_at,
              alive = std::weak_ptr<char>(alive_),
              done = std::move(done)](runtime::Response response) mutable {
               if (alive.expired()) {
                 // The replica was retired (live migration / uninstall)
                 // while this flush was in flight. The home has already
                 // applied or rejected the batch; there is no replica left
                 // to account it to, and `done` belonged to the dead
                 // component too.
                 return;
               }
               on_flush_response(std::move(batch), attempt, sent_at,
                                 std::move(done), std::move(response));
             });
}

void ReplicaCoherence::on_flush_response(std::shared_ptr<UpdateBatch> batch,
                                         std::size_t attempt,
                                         sim::Time sent_at,
                                         std::function<void()> done,
                                         runtime::Response response) {
  --inflight_flushes_;
  note_window_state();
  if (telemetry_) {
    telemetry_->flush_rtt_ms.add(
        (runtime_.simulator().now() - sent_at).millis());
  }

  if (!response.ok) {
    ++stats_.flushes_rejected;
    if (telemetry_) ++telemetry_->flushes_rejected;
    if (attempt < policy_.max_flush_retries) {
      // Requeue at the queue front so replay preserves the home's apply
      // order; updates recorded while the batch was in flight stay behind
      // it. The attempt count follows whatever next ships from the front.
      PSF_WARN() << "coherence flush rejected by home (attempt "
                 << attempt + 1 << "): " << response.error << "; requeued "
                 << batch->updates.size() << " updates";
      queue_.insert(queue_.begin(),
                    std::make_move_iterator(batch->updates.begin()),
                    std::make_move_iterator(batch->updates.end()));
      stats_.max_queue_depth =
          std::max(stats_.max_queue_depth, queue_.size());
      ++stats_.flushes_requeued;
      stats_.updates_requeued += batch->updates.size();
      front_attempts_ = attempt + 1;
      if (telemetry_) ++telemetry_->flushes_requeued;
      rebuild_coalesce_index();
    } else {
      PSF_WARN() << "coherence flush rejected by home after "
                 << attempt + 1 << " attempts; dropping "
                 << batch->updates.size() << " updates: " << response.error;
      stats_.updates_dropped += batch->updates.size();
      if (telemetry_) telemetry_->updates_dropped += batch->updates.size();
    }
  }

  if (done) done();
  // Drain anything that accumulated while the batch was in flight (or was
  // just requeued by the failure path).
  maybe_auto_flush();
  if (flush_listener_) flush_listener_();
}

}  // namespace psf::coherence
