// Replica-side coherence module.
//
// A replicated view component owns one ReplicaCoherence. Local updates are
// recorded; the policy decides when the accumulated batch ships to the home
// instance as a single coherence request ("op" chosen by the service, e.g.
// "mail.sync"). Flush traffic flows through the normal runtime transfer
// path, so it contends with request traffic on links and CPUs — which is
// exactly the coherence overhead Fig. 7 measures.
//
// Data path (DESIGN.md §coherence data path):
//  - with `policy.coalesce`, same-descriptor updates still in the pending
//    queue merge last-writer-wins, so a burst of N writes to one object
//    ships one update;
//  - with `policy.max_inflight_flushes` > 1, up to W batches may be
//    unacknowledged at once (pipelined write-back) before the replica
//    reports `flushing()` and its owner starts deferring requests;
//  - a rejected flush is requeued at the queue front and retried up to
//    `policy.max_flush_retries` consecutive times before being dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coherence/policy.hpp"
#include "coherence/types.hpp"
#include "runtime/coherence_telemetry.hpp"
#include "runtime/smock.hpp"

namespace psf::coherence {

struct ReplicaStats {
  std::uint64_t updates_recorded = 0;
  std::uint64_t flushes = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t bytes_flushed = 0;
  std::size_t max_queue_depth = 0;
  // Coalesced write-back: updates merged into an already-pending update of
  // the same (object_key, field), and the wire bytes that merge saved.
  std::uint64_t updates_coalesced = 0;
  std::uint64_t coalesced_bytes_saved = 0;
  // Failure path: rejected flushes, batches requeued at the queue front,
  // updates requeued, and updates dropped after exhausting retries.
  std::uint64_t flushes_rejected = 0;
  std::uint64_t flushes_requeued = 0;
  std::uint64_t updates_requeued = 0;
  std::uint64_t updates_dropped = 0;
  // Window accounting: peak simultaneous unacked batches, and total
  // simulated time the window was full (the interval during which the
  // owning view defers client requests — Fig. 7's blocking overhead).
  std::size_t max_inflight = 0;
  double blocked_on_flush_ms = 0.0;
};

class ReplicaCoherence {
 public:
  // How a flush batch reaches the home: the default (home-instance
  // constructor) sends directly; the transport constructor routes through a
  // caller-supplied channel — a replicated view passes its ServerInterface
  // wire so coherence traffic flows through the same (possibly encrypted)
  // component chain as request traffic.
  using Transport =
      std::function<void(runtime::Request, runtime::ResponseCallback)>;

  ReplicaCoherence(runtime::SmockRuntime& runtime,
                   runtime::RuntimeInstanceId self,
                   runtime::RuntimeInstanceId home, std::string flush_op,
                   CoherencePolicy policy);
  ReplicaCoherence(runtime::SmockRuntime& runtime,
                   runtime::RuntimeInstanceId self, Transport transport,
                   std::string flush_op, CoherencePolicy policy);
  ~ReplicaCoherence();

  ReplicaCoherence(const ReplicaCoherence&) = delete;
  ReplicaCoherence& operator=(const ReplicaCoherence&) = delete;

  const CoherencePolicy& policy() const { return policy_; }
  const ReplicaStats& stats() const { return stats_; }
  std::size_t pending() const { return queue_.size(); }
  std::size_t inflight_flushes() const { return inflight_flushes_; }

  // True while the flush window is full. Replicated views defer serving new
  // requests during propagation (the §3.2 protocol "limits the number of
  // unpropagated messages at each replica": at its limit, the replica must
  // finish writing back before accepting more work) — this blocking is the
  // coherence overhead Fig. 7's 500/1000 scenarios measure. With a window
  // of 1 this is the classic stop-and-wait behavior; with W>1 the replica
  // keeps serving until W batches are unacknowledged.
  bool flushing() const {
    return inflight_flushes_ >= policy_.max_inflight_flushes;
  }

  // Invoked (if set) every time a flush completes — views use it to drain
  // requests deferred while flushing.
  void set_flush_listener(std::function<void()> listener) {
    flush_listener_ = std::move(listener);
  }

  // Shared coherence counters/histograms (optional; must outlive this).
  void attach_telemetry(runtime::CoherenceTelemetry* telemetry) {
    telemetry_ = telemetry;
  }

  // Records a local update; may trigger an automatic flush per the policy.
  void record_update(UpdateDescriptor descriptor,
                     std::shared_ptr<const runtime::MessageBody> payload);

  // Ships all pending updates now. `done` (optional) fires when the home
  // acknowledges. No-op on an empty queue or a full window (the pending
  // updates ride the next flush).
  void flush(std::function<void()> done = nullptr);

 private:
  void maybe_auto_flush();
  void on_flush_response(std::shared_ptr<UpdateBatch> batch,
                         std::size_t attempt, sim::Time sent_at,
                         std::function<void()> done,
                         runtime::Response response);
  void note_window_state();
  void rebuild_coalesce_index();
  static std::string coalesce_key(const UpdateDescriptor& descriptor) {
    return descriptor.object_key + '\x1f' + descriptor.field;
  }

  runtime::SmockRuntime& runtime_;
  runtime::RuntimeInstanceId self_;
  Transport transport_;
  std::string flush_op_;
  CoherencePolicy policy_;
  std::vector<Update> queue_;
  // Pending-queue position per coalesce key (maintained only when
  // policy_.coalesce): record_update overwrites in place on a hit.
  std::map<std::string, std::size_t> coalesce_index_;
  std::size_t inflight_flushes_ = 0;
  // Retry attempts already consumed by the updates at the queue front (a
  // requeued batch); the next flush carries them forward.
  std::size_t front_attempts_ = 0;
  // When the window last became full (for blocked-time accounting).
  std::optional<sim::Time> window_full_since_;
  std::function<void()> flush_listener_;
  std::optional<sim::PeriodicTimer> timer_;
  // Liveness token for in-flight flush responses: a live migration can
  // retire the replica's component (and this object with it) while a flush
  // is still on the wire, and the response must then be dropped instead of
  // dereferencing a dead replica.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  ReplicaStats stats_;
  runtime::CoherenceTelemetry* telemetry_ = nullptr;
};

}  // namespace psf::coherence
