// Replica-side coherence module.
//
// A replicated view component owns one ReplicaCoherence. Local updates are
// recorded; the policy decides when the accumulated batch ships to the home
// instance as a single coherence request ("op" chosen by the service, e.g.
// "mail.sync"). Flush traffic flows through the normal runtime transfer
// path, so it contends with request traffic on links and CPUs — which is
// exactly the coherence overhead Fig. 7 measures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coherence/policy.hpp"
#include "coherence/types.hpp"
#include "runtime/smock.hpp"

namespace psf::coherence {

struct ReplicaStats {
  std::uint64_t updates_recorded = 0;
  std::uint64_t flushes = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t bytes_flushed = 0;
  std::size_t max_queue_depth = 0;
};

class ReplicaCoherence {
 public:
  // How a flush batch reaches the home: the default (home-instance
  // constructor) sends directly; the transport constructor routes through a
  // caller-supplied channel — a replicated view passes its ServerInterface
  // wire so coherence traffic flows through the same (possibly encrypted)
  // component chain as request traffic.
  using Transport =
      std::function<void(runtime::Request, runtime::ResponseCallback)>;

  ReplicaCoherence(runtime::SmockRuntime& runtime,
                   runtime::RuntimeInstanceId self,
                   runtime::RuntimeInstanceId home, std::string flush_op,
                   CoherencePolicy policy);
  ReplicaCoherence(runtime::SmockRuntime& runtime,
                   runtime::RuntimeInstanceId self, Transport transport,
                   std::string flush_op, CoherencePolicy policy);
  ~ReplicaCoherence();

  ReplicaCoherence(const ReplicaCoherence&) = delete;
  ReplicaCoherence& operator=(const ReplicaCoherence&) = delete;

  const CoherencePolicy& policy() const { return policy_; }
  const ReplicaStats& stats() const { return stats_; }
  std::size_t pending() const { return queue_.size(); }

  // True while a batch is in flight to the home. Replicated views defer
  // serving new requests during propagation (the §3.2 protocol "limits the
  // number of unpropagated messages at each replica": at its limit, the
  // replica must finish writing back before accepting more work) — this
  // blocking is the coherence overhead Fig. 7's 500/1000 scenarios measure.
  bool flushing() const { return flush_in_flight_; }

  // Invoked (if set) every time a flush completes — views use it to drain
  // requests deferred while flushing.
  void set_flush_listener(std::function<void()> listener) {
    flush_listener_ = std::move(listener);
  }

  // Records a local update; may trigger an automatic flush per the policy.
  void record_update(UpdateDescriptor descriptor,
                     std::shared_ptr<const runtime::MessageBody> payload);

  // Ships all pending updates now. `done` (optional) fires when the home
  // acknowledges. No-op on an empty queue.
  void flush(std::function<void()> done = nullptr);

 private:
  void maybe_auto_flush();

  runtime::SmockRuntime& runtime_;
  runtime::RuntimeInstanceId self_;
  Transport transport_;
  std::string flush_op_;
  CoherencePolicy policy_;
  std::vector<Update> queue_;
  bool flush_in_flight_ = false;
  std::function<void()> flush_listener_;
  std::optional<sim::PeriodicTimer> timer_;
  ReplicaStats stats_;
};

}  // namespace psf::coherence
