// Home-side coherence directory (§3.2: "Smock manages replicated component
// instances using a directory-based cache coherence protocol ... at the
// granularity of views").
//
// The home component registers each replica with its view subscription.
// When the home applies an update (whether originated locally or received
// in a replica's flush batch), it asks the directory which other replicas
// conflict — per the service's conflict map — and the directory pushes the
// update to them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coherence/types.hpp"
#include "runtime/smock.hpp"

namespace psf::coherence {

struct DirectoryStats {
  std::uint64_t updates_seen = 0;
  std::uint64_t pushes = 0;
  std::uint64_t push_bytes = 0;
};

class CoherenceDirectory {
 public:
  // `push_op`: request op under which replicas apply pushed updates.
  CoherenceDirectory(runtime::SmockRuntime& runtime,
                     runtime::RuntimeInstanceId home, std::string push_op,
                     std::unique_ptr<ConflictMap> conflict_map = nullptr);

  // Registers/updates a replica's subscription.
  void register_replica(runtime::RuntimeInstanceId replica,
                        ViewSubscription subscription);
  void unregister_replica(runtime::RuntimeInstanceId replica);
  std::size_t replica_count() const { return replicas_.size(); }

  // Expands a replica's subscription with one more key (a view caching a
  // new account, for example).
  void subscribe(runtime::RuntimeInstanceId replica, const std::string& key);

  // Called by the home component for every applied update. Pushes the
  // update to each conflicting replica except `origin` (0 = home-local
  // update, push to all conflicting replicas).
  void on_update(const Update& update, runtime::RuntimeInstanceId origin = 0);

  const DirectoryStats& stats() const { return stats_; }

 private:
  runtime::SmockRuntime& runtime_;
  runtime::RuntimeInstanceId home_;
  std::string push_op_;
  std::unique_ptr<ConflictMap> conflict_map_;
  std::map<runtime::RuntimeInstanceId, ViewSubscription> replicas_;
  DirectoryStats stats_;
};

}  // namespace psf::coherence
