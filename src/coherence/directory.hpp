// Home-side coherence directory (§3.2: "Smock manages replicated component
// instances using a directory-based cache coherence protocol ... at the
// granularity of views").
//
// The home component registers each replica with its view subscription.
// When the home applies an update (whether originated locally or received
// in a replica's flush batch), it asks the directory which other replicas
// conflict — per the service's conflict map — and the directory pushes the
// update to them.
//
// Fan-out data path (DESIGN.md §coherence data path): with the default
// DirectoryTuning, conflicting updates are staged in per-replica outbound
// queues and shipped as one multi-update push request per replica per flush
// epoch; replicas whose staged sets are identical share one immutable
// UpdateBatch body. `DirectoryTuning{.batch_fanout = false}` restores the
// naive one-request-per-replica-per-update path for equivalence checks.
// Replicas whose runtime instance no longer exists are pruned lazily when
// an update would fan out to them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coherence/policy.hpp"
#include "coherence/types.hpp"
#include "runtime/coherence_telemetry.hpp"
#include "runtime/smock.hpp"

namespace psf::coherence {

struct DirectoryStats {
  std::uint64_t updates_seen = 0;
  std::uint64_t pushes = 0;  // push requests issued (RPCs)
  std::uint64_t push_updates = 0;
  std::uint64_t push_bytes = 0;
  // Savings versus the naive fan-out (one RPC per conflicting replica per
  // update): RPCs avoided by epoch aggregation and the envelope bytes those
  // avoided requests would have cost.
  std::uint64_t push_rpcs_saved = 0;
  std::uint64_t push_bytes_saved = 0;
  // Replicas beyond the first that reused an identical immutable batch.
  std::uint64_t batches_shared = 0;
  // Dead replicas pruned lazily on push (instance no longer exists()).
  std::uint64_t replicas_evicted = 0;
  std::uint64_t epochs = 0;  // batched flush rounds
};

class CoherenceDirectory {
 public:
  // `push_op`: request op under which replicas apply pushed updates.
  CoherenceDirectory(runtime::SmockRuntime& runtime,
                     runtime::RuntimeInstanceId home, std::string push_op,
                     std::unique_ptr<ConflictMap> conflict_map = nullptr,
                     DirectoryTuning tuning = {});
  ~CoherenceDirectory();

  CoherenceDirectory(const CoherenceDirectory&) = delete;
  CoherenceDirectory& operator=(const CoherenceDirectory&) = delete;

  // Registers/updates a replica's subscription.
  void register_replica(runtime::RuntimeInstanceId replica,
                        ViewSubscription subscription);
  void unregister_replica(runtime::RuntimeInstanceId replica);
  std::size_t replica_count() const { return replicas_.size(); }

  // Expands a replica's subscription with one more key (a view caching a
  // new account, for example).
  void subscribe(runtime::RuntimeInstanceId replica, const std::string& key);

  // Called by the home component for every applied update. Pushes the
  // update to each conflicting replica except `origin` (0 = home-local
  // update, push to all conflicting replicas). Under batched fan-out the
  // push is staged and ships at the end of the current flush epoch.
  void on_update(const Update& update, runtime::RuntimeInstanceId origin = 0);

  // Ships every staged update now (no-op when nothing is staged). The
  // pending epoch timer, if any, is cancelled.
  void flush_staged();

  const DirectoryStats& stats() const { return stats_; }
  const DirectoryTuning& tuning() const { return tuning_; }
  std::size_t staged_updates() const { return staged_.size(); }

  // Shared coherence counters/histograms (optional; must outlive this).
  void attach_telemetry(runtime::CoherenceTelemetry* telemetry) {
    telemetry_ = telemetry;
  }

 private:
  // True when the replica is live; otherwise evicts it (lazy pruning).
  bool validate_replica(runtime::RuntimeInstanceId replica);
  void push_single(runtime::RuntimeInstanceId replica, const Update& update);
  void send_push(runtime::RuntimeInstanceId replica,
                 std::shared_ptr<UpdateBatch> batch);
  void schedule_epoch_flush();

  runtime::SmockRuntime& runtime_;
  runtime::RuntimeInstanceId home_;
  std::string push_op_;
  std::unique_ptr<ConflictMap> conflict_map_;
  DirectoryTuning tuning_;
  std::map<runtime::RuntimeInstanceId, ViewSubscription> replicas_;

  // Batched fan-out state: updates staged during the open epoch, and the
  // indices each replica is due to receive.
  std::vector<Update> staged_;
  std::map<runtime::RuntimeInstanceId, std::vector<std::size_t>> pending_;
  bool epoch_scheduled_ = false;
  sim::EventId epoch_event_ = 0;

  DirectoryStats stats_;
  runtime::CoherenceTelemetry* telemetry_ = nullptr;
};

}  // namespace psf::coherence
