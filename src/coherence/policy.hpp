// Weak-consistency policies for replicated views (§3.2: "dynamic conflict
// maps ... allow expression of a wide range of service-specific weak
// consistency protocols (including time-driven consistency)").
//
// Four policies cover the paper's design space and its Fig. 7 scenarios:
//  - kWriteThrough: every update propagates immediately;
//  - kCountBased:   propagate once `max_unpropagated` updates accumulate
//                   (the case study's "protocol that limits the number of
//                   unpropagated messages at each replica");
//  - kTimeBased:    propagate on a fixed period (time-driven consistency);
//  - kNone:         never propagate automatically (explicit flush only).
//
// Orthogonal to the trigger kind, two data-path knobs shape the replica's
// write-back throughput (DESIGN.md §coherence data path):
//  - `max_inflight_flushes` — the flush window. 1 is the classic
//    stop-and-wait protocol (the replica defers serving while its batch
//    propagates); W>1 lets the replica keep serving and keep up to W
//    unacknowledged batches pipelined toward the home.
//  - `coalesce` — merge same-descriptor updates still waiting in the
//    pending queue (last-writer-wins at conflict-map granularity), so a
//    burst of N writes to one object ships one update.
#pragma once

#include <cstddef>
#include <string>

#include "sim/time.hpp"

namespace psf::coherence {

struct CoherencePolicy {
  enum class Kind { kNone, kWriteThrough, kCountBased, kTimeBased };

  Kind kind = Kind::kWriteThrough;
  std::size_t max_unpropagated = 1;         // kCountBased
  sim::Duration period = sim::Duration::from_millis(1000);  // kTimeBased

  // Flush window: how many batches may be unacknowledged at once. 1
  // reproduces stop-and-wait exactly; larger windows pipeline write-back.
  std::size_t max_inflight_flushes = 1;

  // Merge same-(object_key, field) updates in the pending queue.
  bool coalesce = false;

  // A rejected flush is requeued at the queue front and retried; after this
  // many consecutive rejections the batch is dropped (and counted).
  std::size_t max_flush_retries = 3;

  static CoherencePolicy none() {
    return {Kind::kNone, 0, sim::Duration::zero()};
  }
  static CoherencePolicy write_through() {
    return {Kind::kWriteThrough, 1, sim::Duration::zero()};
  }
  static CoherencePolicy count_based(std::size_t max_unpropagated) {
    return {Kind::kCountBased, max_unpropagated, sim::Duration::zero()};
  }
  static CoherencePolicy time_based(sim::Duration period) {
    return {Kind::kTimeBased, 0, period};
  }

  // Chainers for the data-path knobs.
  CoherencePolicy windowed(std::size_t window) const {
    CoherencePolicy p = *this;
    p.max_inflight_flushes = window == 0 ? 1 : window;
    return p;
  }
  CoherencePolicy coalescing(bool on = true) const {
    CoherencePolicy p = *this;
    p.coalesce = on;
    return p;
  }

  std::string to_string() const;
};

// Home-side fan-out tuning for CoherenceDirectory.
//
// `batch_fanout` selects the coalesced data path: conflicting updates are
// staged per replica and shipped as one multi-update push per replica per
// flush epoch (replicas with identical staged sets share one immutable
// batch body). When false, the directory uses the naive pre-batching path —
// one push request per conflicting replica per update — kept for the
// write-through-equivalence guard and the E6 before/after comparison.
//
// `flush_epoch` bounds how long a staged update may wait for companions.
// Zero still batches everything staged within one simulated timestamp (a
// relayed sync batch fans out as one push per replica) without delaying
// propagation beyond the current event cascade.
struct DirectoryTuning {
  bool batch_fanout = true;
  sim::Duration flush_epoch = sim::Duration::zero();
};

}  // namespace psf::coherence
