// Weak-consistency policies for replicated views (§3.2: "dynamic conflict
// maps ... allow expression of a wide range of service-specific weak
// consistency protocols (including time-driven consistency)").
//
// Four policies cover the paper's design space and its Fig. 7 scenarios:
//  - kWriteThrough: every update propagates immediately;
//  - kCountBased:   propagate once `max_unpropagated` updates accumulate
//                   (the case study's "protocol that limits the number of
//                   unpropagated messages at each replica");
//  - kTimeBased:    propagate on a fixed period (time-driven consistency);
//  - kNone:         never propagate automatically (explicit flush only).
#pragma once

#include <cstddef>
#include <string>

#include "sim/time.hpp"

namespace psf::coherence {

struct CoherencePolicy {
  enum class Kind { kNone, kWriteThrough, kCountBased, kTimeBased };

  Kind kind = Kind::kWriteThrough;
  std::size_t max_unpropagated = 1;         // kCountBased
  sim::Duration period = sim::Duration::from_millis(1000);  // kTimeBased

  static CoherencePolicy none() {
    return {Kind::kNone, 0, sim::Duration::zero()};
  }
  static CoherencePolicy write_through() {
    return {Kind::kWriteThrough, 1, sim::Duration::zero()};
  }
  static CoherencePolicy count_based(std::size_t max_unpropagated) {
    return {Kind::kCountBased, max_unpropagated, sim::Duration::zero()};
  }
  static CoherencePolicy time_based(sim::Duration period) {
    return {Kind::kTimeBased, 0, period};
  }

  std::string to_string() const;
};

}  // namespace psf::coherence
