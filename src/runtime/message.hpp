// Request/response messages exchanged between component instances.
//
// Payloads are polymorphic (MessageBody) so application components exchange
// typed data while the runtime only sees opaque bodies plus a wire size for
// the network cost model — the C++ stand-in for Java serialization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace psf::runtime {

struct MessageBody {
  virtual ~MessageBody() = default;
};

struct Request {
  std::string op;  // operation name, e.g. "mail.send"
  std::shared_ptr<const MessageBody> body;
  std::uint64_t wire_bytes = 1024;
  std::string principal;  // requesting user, carried as a credential (§2)
};

// Why an invocation failed at the transport layer, as opposed to an
// application-level error the callee produced. Retry policies key off this:
// transport failures are safe to retry (the op may simply have been lost),
// application failures are not.
enum class TransportError : std::uint8_t {
  kNone = 0,     // not a transport failure (ok, or application error)
  kUnreachable,  // no live route to the destination at send time
  kDropped,      // a hop dropped the message (link down mid-route, or loss)
  kTimeout,      // the invocation deadline expired before a response landed
  kDeadTarget,   // the target instance is gone (crashed / tombstoned)
};

inline const char* transport_error_name(TransportError e) {
  switch (e) {
    case TransportError::kNone: return "none";
    case TransportError::kUnreachable: return "unreachable";
    case TransportError::kDropped: return "dropped";
    case TransportError::kTimeout: return "timeout";
    case TransportError::kDeadTarget: return "dead-target";
  }
  return "?";
}

struct Response {
  bool ok = true;
  std::string error;
  std::shared_ptr<const MessageBody> body;
  std::uint64_t wire_bytes = 1024;
  TransportError transport = TransportError::kNone;

  static Response failure(std::string message) {
    Response r;
    r.ok = false;
    r.error = std::move(message);
    r.wire_bytes = 128;
    return r;
  }

  static Response transport_failure(TransportError kind, std::string message) {
    Response r = failure(std::move(message));
    r.transport = kind;
    return r;
  }
};

using ResponseCallback = std::function<void(Response)>;

template <typename T>
const T* body_as(const Request& request) {
  return dynamic_cast<const T*>(request.body.get());
}

template <typename T>
const T* body_as(const Response& response) {
  return dynamic_cast<const T*>(response.body.get());
}

}  // namespace psf::runtime
