// Request/response messages exchanged between component instances.
//
// Payloads are polymorphic (MessageBody) so application components exchange
// typed data while the runtime only sees opaque bodies plus a wire size for
// the network cost model — the C++ stand-in for Java serialization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace psf::runtime {

struct MessageBody {
  virtual ~MessageBody() = default;
};

struct Request {
  std::string op;  // operation name, e.g. "mail.send"
  std::shared_ptr<const MessageBody> body;
  std::uint64_t wire_bytes = 1024;
  std::string principal;  // requesting user, carried as a credential (§2)
};

struct Response {
  bool ok = true;
  std::string error;
  std::shared_ptr<const MessageBody> body;
  std::uint64_t wire_bytes = 1024;

  static Response failure(std::string message) {
    Response r;
    r.ok = false;
    r.error = std::move(message);
    r.wire_bytes = 128;
    return r;
  }
};

using ResponseCallback = std::function<void(Response)>;

template <typename T>
const T* body_as(const Request& request) {
  return dynamic_cast<const T*>(request.body.get());
}

template <typename T>
const T* body_as(const Response& response) {
  return dynamic_cast<const T*>(response.body.get());
}

}  // namespace psf::runtime
