#include "runtime/monitor.hpp"

namespace psf::runtime {

// Every mutator routes through the Network setters (not direct field
// writes): those invalidate the all-pairs route cache, so pointers handed
// out by precompute_routes()/cached_route() are never stale after a
// monitor-reported change.

void NetworkMonitor::set_link_bandwidth(net::LinkId link, double bps) {
  network_.set_link_bandwidth(link, bps);
  notify({ChangeKind::kLinkBandwidth, link, {}});
}

void NetworkMonitor::set_link_latency(net::LinkId link,
                                      sim::Duration latency) {
  network_.set_link_latency(link, latency);
  notify({ChangeKind::kLinkLatency, link, {}});
}

void NetworkMonitor::set_link_credential(net::LinkId link,
                                         const std::string& name,
                                         net::CredentialValue value) {
  network_.link(link).credentials.set(name, std::move(value));
  network_.invalidate_routes();
  notify({ChangeKind::kLinkCredential, link, {}});
}

void NetworkMonitor::set_node_credential(net::NodeId node,
                                         const std::string& name,
                                         net::CredentialValue value) {
  network_.node(node).credentials.set(name, std::move(value));
  network_.invalidate_routes();
  notify({ChangeKind::kNodeCredential, {}, node});
}

void NetworkMonitor::set_node_capacity(net::NodeId node, double cpu_capacity) {
  PSF_CHECK(cpu_capacity > 0.0);
  network_.node(node).cpu_capacity = cpu_capacity;
  network_.invalidate_routes();
  notify({ChangeKind::kNodeCapacity, {}, node});
}

void NetworkMonitor::report_node_failure(net::NodeId node) {
  // Belief, not physical state: a lease can expire because the node is
  // partitioned, not dead, and must be able to rejoin when renewals resume.
  // Physical down-state is set by the fault injector (Framework::crash_node).
  notify({ChangeKind::kNodeFailure, {}, node});
}

void NetworkMonitor::fail_link(net::LinkId link) {
  if (!network_.link_up(link)) return;
  network_.set_link_up(link, false);
  notify({ChangeKind::kLinkState, link, {}});
}

void NetworkMonitor::heal_link(net::LinkId link) {
  if (network_.link_up(link)) return;
  network_.set_link_up(link, true);
  notify({ChangeKind::kLinkState, link, {}});
}

void NetworkMonitor::set_link_loss(net::LinkId link, double loss) {
  network_.set_link_loss(link, loss);
  notify({ChangeKind::kLinkLoss, link, {}});
}

std::vector<net::LinkId> NetworkMonitor::partition(
    const std::vector<net::NodeId>& side_a,
    const std::vector<net::NodeId>& side_b) {
  auto in = [](const std::vector<net::NodeId>& set, net::NodeId n) {
    for (net::NodeId m : set) {
      if (m == n) return true;
    }
    return false;
  };
  std::vector<net::LinkId> severed;
  for (net::LinkId lid : network_.all_links()) {
    const net::Link& l = network_.link(lid);
    if (!l.up) continue;
    const bool crosses = (in(side_a, l.a) && in(side_b, l.b)) ||
                         (in(side_a, l.b) && in(side_b, l.a));
    if (!crosses) continue;
    fail_link(lid);
    severed.push_back(lid);
  }
  return severed;
}

void NetworkMonitor::schedule_change(
    sim::Duration delay, std::function<void(NetworkMonitor&)> change) {
  sim_.schedule(delay, [this, change = std::move(change)]() {
    change(*this);
  });
}

}  // namespace psf::runtime
