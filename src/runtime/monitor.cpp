#include "runtime/monitor.hpp"

namespace psf::runtime {

void NetworkMonitor::set_link_bandwidth(net::LinkId link, double bps) {
  PSF_CHECK(bps > 0.0);
  network_.link(link).bandwidth_bps = bps;
  notify({ChangeKind::kLinkBandwidth, link, {}});
}

void NetworkMonitor::set_link_latency(net::LinkId link,
                                      sim::Duration latency) {
  PSF_CHECK(latency.nanos() >= 0);
  network_.link(link).latency = latency;
  notify({ChangeKind::kLinkLatency, link, {}});
}

void NetworkMonitor::set_link_credential(net::LinkId link,
                                         const std::string& name,
                                         net::CredentialValue value) {
  network_.link(link).credentials.set(name, std::move(value));
  notify({ChangeKind::kLinkCredential, link, {}});
}

void NetworkMonitor::set_node_credential(net::NodeId node,
                                         const std::string& name,
                                         net::CredentialValue value) {
  network_.node(node).credentials.set(name, std::move(value));
  notify({ChangeKind::kNodeCredential, {}, node});
}

void NetworkMonitor::set_node_capacity(net::NodeId node, double cpu_capacity) {
  PSF_CHECK(cpu_capacity > 0.0);
  network_.node(node).cpu_capacity = cpu_capacity;
  notify({ChangeKind::kNodeCapacity, {}, node});
}

void NetworkMonitor::report_node_failure(net::NodeId node) {
  notify({ChangeKind::kNodeFailure, {}, node});
}

void NetworkMonitor::schedule_change(
    sim::Duration delay, std::function<void(NetworkMonitor&)> change) {
  sim_.schedule(delay, [this, change = std::move(change)]() {
    change(*this);
  });
}

}  // namespace psf::runtime
