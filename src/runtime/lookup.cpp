#include "runtime/lookup.hpp"

namespace psf::runtime {

util::Status LookupService::register_service(ServiceAdvertisement ad) {
  if (ad.service_name.empty()) {
    return util::invalid_argument("service name is empty");
  }
  if (services_.count(ad.service_name) != 0) {
    return util::already_exists("service '" + ad.service_name +
                                "' already registered");
  }
  services_.emplace(ad.service_name, std::move(ad));
  return util::Status::ok();
}

util::Status LookupService::unregister_service(
    const std::string& service_name) {
  if (services_.erase(service_name) == 0) {
    return util::not_found("service '" + service_name + "' not registered");
  }
  return util::Status::ok();
}

const ServiceAdvertisement* LookupService::find(
    const std::string& service_name) const {
  auto it = services_.find(service_name);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<const ServiceAdvertisement*> LookupService::query(
    const std::map<std::string, std::string>& filter) const {
  std::vector<const ServiceAdvertisement*> out;
  for (const auto& [name, ad] : services_) {
    bool match = true;
    for (const auto& [key, value] : filter) {
      auto it = ad.attributes.find(key);
      if (it == ad.attributes.end() || it->second != value) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(&ad);
  }
  return out;
}

}  // namespace psf::runtime
