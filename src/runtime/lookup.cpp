#include "runtime/lookup.hpp"

#include <iterator>

namespace psf::runtime {

util::Status LookupService::register_service(ServiceAdvertisement ad) {
  if (ad.service_name.empty()) {
    return util::invalid_argument("service name is empty");
  }
  if (services_.count(ad.service_name) != 0) {
    return util::already_exists("service '" + ad.service_name +
                                "' already registered");
  }
  services_.emplace(ad.service_name, std::move(ad));
  return util::Status::ok();
}

util::Status LookupService::unregister_service(
    const std::string& service_name) {
  if (services_.erase(service_name) == 0) {
    return util::not_found("service '" + service_name + "' not registered");
  }
  for (auto it = proxy_code_nodes_.begin(); it != proxy_code_nodes_.end();) {
    it = it->first == service_name ? proxy_code_nodes_.erase(it)
                                   : std::next(it);
  }
  return util::Status::ok();
}

const ServiceAdvertisement* LookupService::find(
    const std::string& service_name) const {
  auto it = services_.find(service_name);
  return it == services_.end() ? nullptr : &it->second;
}

bool LookupService::proxy_code_cached(const std::string& service_name,
                                      net::NodeId node) const {
  return proxy_code_nodes_.count({service_name, node.value}) != 0;
}

void LookupService::note_proxy_download(const std::string& service_name,
                                        net::NodeId node) {
  if (proxy_code_nodes_.emplace(service_name, node.value).second) {
    ++proxy_stats_.downloads;
  } else {
    ++proxy_stats_.cache_hits;
  }
}

std::vector<const ServiceAdvertisement*> LookupService::query(
    const std::map<std::string, std::string>& filter) const {
  std::vector<const ServiceAdvertisement*> out;
  out.reserve(services_.size());  // empty filter (the common case) keeps all
  for (const auto& [name, ad] : services_) {
    bool match = true;
    for (const auto& [key, value] : filter) {
      auto it = ad.attributes.find(key);
      if (it == ad.attributes.end() || it->second != value) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(&ad);
  }
  return out;
}

}  // namespace psf::runtime
