// Client-side resilience policy for the generic proxy: bounded retries with
// capped exponential backoff and deterministic seeded jitter, plus
// rebind-on-unreachable (drop the cached access path and re-request one).
//
// Only transport failures (Response::transport != kNone) are retried —
// application-level errors are final. Backoff for attempt k (k = 1 is the
// first retry) is min(cap, base * 2^(k-1)) scaled by a jitter factor drawn
// uniformly from [1 - jitter, 1 + jitter] out of a per-proxy seeded RNG, so
// traces replay bit-identically for a fixed seed.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace psf::runtime {

struct RetryPolicy {
  // Per-attempt delivery deadline (passed to invoke_from_node). Zero means
  // attempts never time out — only fast transport failures are retried.
  sim::Duration attempt_timeout = sim::Duration::from_seconds(2);
  // Total attempts including the first. 1 disables retries.
  std::size_t max_attempts = 6;
  sim::Duration backoff_base = sim::Duration::from_millis(200);
  sim::Duration backoff_cap = sim::Duration::from_seconds(2);
  // Jitter fraction in [0, 1): each backoff is scaled by a uniform draw
  // from [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  // Overall budget measured from the first attempt; once exceeded, no
  // further retries are scheduled. Zero means unlimited.
  sim::Duration overall_deadline = sim::Duration::zero();
  // On kUnreachable / kDeadTarget failures, discard the cached binding and
  // re-request an access path before the next attempt.
  bool rebind_on_unreachable = true;
  // Seed for the jitter RNG (forked per proxy with the client node mixed in).
  std::uint64_t seed = 0x7E57AB1E5EEDULL;
};

struct RetryTelemetry {
  std::uint64_t invokes = 0;        // logical operations issued
  std::uint64_t attempts = 0;       // wire attempts (>= invokes)
  std::uint64_t successes = 0;      // operations that eventually succeeded
  std::uint64_t failures = 0;       // operations that gave up
  std::uint64_t retries = 0;        // attempts beyond the first
  std::uint64_t rebinds = 0;        // bindings discarded and re-requested
  std::uint64_t budget_exhausted = 0;  // gave up on attempt/deadline budget
  // Transport failure breakdown across all attempts.
  std::uint64_t timeouts = 0;
  std::uint64_t drops = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t dead_targets = 0;
  // Scheduled backoff delays (ms), jitter included.
  util::SampleSet backoff_ms;
  // Crash-to-lease-expiry latency (ms), filled by the lease manager when
  // failure detection is enabled (see Framework::enable_failure_detection).
  util::SampleSet detection_ms;

  std::string report() const;
};

}  // namespace psf::runtime
