// AdaptationController: the closed autonomic loop (ROADMAP item 2, after the
// Dearle/Kirby constraint-based management papers).
//
// The pieces it composes already exist — leases detect failures, the monitor
// broadcasts change events, epochs invalidate cached plans, the retry layer
// rebinds — but each recovery used to be "client replans from scratch". The
// controller closes the loop:
//
//   monitor event ──▶ classify violations against every tracked deployment
//                      (node death, link degradation past the plan-assumed
//                      latency/bandwidth, load over capacity, property drift)
//                 ──▶ Planner::repair — pin survivors, re-search only the
//                      affected cluster neighborhood (GenericServer::
//                      request_repair, so rebinding clients coalesce onto it)
//                 ──▶ live cutover — state transfers old→new through the
//                      coherence machinery (sync-then-cutover), the client's
//                      live entry is grafted onto the new chain, retired
//                      instances are evicted from the plan cache eagerly and
//                      uninstalled only after a drain window so in-flight
//                      requests complete (or fail into the retry layer).
//
// Rolling maintenance is the same loop with a synthetic violation:
// drain_node() treats a live node as dead for placement purposes, so every
// tracked deployment migrates off it without a single lost send.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "planner/planner.hpp"
#include "planner/validate.hpp"
#include "runtime/generic.hpp"
#include "runtime/monitor.hpp"
#include "runtime/smock.hpp"

namespace psf::runtime {

struct AdaptationParams {
  // How long a replaced instance keeps serving stragglers after cutover
  // before it is uninstalled. Anything arriving later gets kDeadTarget,
  // which the retry layer answers by rebinding.
  sim::Duration drain = sim::Duration::from_millis(500);
  // A wire is degraded when the current latency summed over its planned
  // links exceeds slack x the plan-assumed route latency...
  double latency_slack = 1.5;
  // ...or the current bottleneck bandwidth over its planned links falls
  // below this fraction of the plan-assumed bottleneck.
  double bandwidth_floor = 0.5;
  // Transfer component state old->new on cutover. Off = replacements start
  // cold (still correct — views re-warm through coherence pushes — but the
  // warm cache is the point of migrating instead of redeploying).
  bool migrate_state = true;
};

struct AdaptationEvent {
  sim::Time at;
  std::size_t tracked_index = 0;
  enum class Outcome {
    kStillValid,     // no violation touches this deployment
    kRepaired,       // repair planned, deployed, state moved, entry grafted
    kUnsatisfiable,  // no repair (nor full replan) exists
    kFailed,         // repair planned but deployment/cutover failed
  };
  Outcome outcome = Outcome::kStillValid;
  bool fell_back_to_full = false;  // restricted repair search was infeasible
  std::size_t state_transfers = 0;
  std::string detail;
};

const char* adaptation_outcome_name(AdaptationEvent::Outcome outcome);

struct AdaptationStats {
  std::uint64_t events_observed = 0;  // monitor change events seen
  std::uint64_t checks = 0;
  std::uint64_t still_valid = 0;
  std::uint64_t repairs_triggered = 0;
  std::uint64_t repaired = 0;
  std::uint64_t unsatisfiable = 0;
  std::uint64_t failed = 0;
  std::uint64_t state_transfers = 0;   // successful old->new state moves
  std::uint64_t instances_retired = 0; // forgotten + drain-scheduled
  std::uint64_t drains_requested = 0;
};

class AdaptationController {
 public:
  // Subscribes to `monitor`; `service` must already be registered with
  // `server`. Every change event refreshes the environment and re-checks
  // all tracked deployments.
  AdaptationController(SmockRuntime& runtime, GenericServer& server,
                       NetworkMonitor& monitor, std::string service,
                       AdaptationParams params = {});

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  // Tracks a live deployment (a bound client's AccessOutcome plus the
  // request that produced it). Returns its index.
  std::size_t track(AccessOutcome outcome, planner::PlanRequest request);

  std::size_t tracked_count() const { return tracked_.size(); }
  const planner::DeploymentPlan& current_plan(std::size_t index) const {
    return tracked_.at(index).outcome.plan;
  }
  const AccessOutcome& current_outcome(std::size_t index) const {
    return tracked_.at(index).outcome;
  }

  // Classifies violations and repairs every tracked deployment that is in
  // violation. Runs automatically on monitor events; callable directly.
  void check_now();

  // Rolling maintenance: treat `node` as unusable for placement (a
  // synthetic node-death violation) without crashing it, forget its pooled
  // instances, and migrate every tracked deployment off it live. The node
  // keeps serving until each drain window closes; undrain_node() ends the
  // maintenance. Idempotent while already draining.
  void drain_node(net::NodeId node);
  void undrain_node(net::NodeId node) { drained_.erase(node.value); }
  bool draining(net::NodeId node) const {
    return drained_.count(node.value) != 0;
  }

  const std::vector<AdaptationEvent>& events() const { return events_; }
  const AdaptationStats& stats() const { return stats_; }

 private:
  struct Tracked {
    AccessOutcome outcome;
    planner::PlanRequest request;
  };

  // Plan-relative violation classification for tracked_[index]. Returns the
  // violations that *touch* this deployment; `broken_backing` reports a
  // backing instance that died without any topology-visible violation
  // (e.g. uninstalled by another manager).
  std::vector<planner::RepairViolation> classify(std::size_t index,
                                                 bool* broken_backing) const;

  void maybe_repair(std::size_t index);
  void cutover(std::size_t index, AccessOutcome fresh, AdaptationEvent event);
  void finish_cutover(std::size_t index, AccessOutcome fresh,
                      AdaptationEvent event);
  void push_event(AdaptationEvent event);

  SmockRuntime& runtime_;
  GenericServer& server_;
  std::string service_;
  AdaptationParams params_;
  std::vector<Tracked> tracked_;
  // Runtime ids backing each tracked deployment, index-aligned with
  // tracked_[i].outcome.plan.placements.
  std::vector<std::vector<RuntimeInstanceId>> backing_;
  std::vector<char> repairing_;  // per-index: repair already in flight
  std::set<std::uint32_t> drained_;
  std::vector<AdaptationEvent> events_;
  AdaptationStats stats_;
  bool checking_ = false;  // a monitor storm must not recurse
};

}  // namespace psf::runtime
